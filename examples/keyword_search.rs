//! Keyword-driven visualization search — the paper's §VIII future work
//! ("support keyword queries such that users specify their intent in a
//! natural way"), realized over the flight-delay dataset.
//!
//! ```sh
//! cargo run --release --example keyword_search -- "average delay by hour as line"
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use deepeye::core::keyword_search;
use deepeye::datagen::flight_table;
use deepeye::prelude::*;

fn main() {
    let query_text = std::env::args().skip(1).collect::<Vec<_>>().join(" ");
    let query_text = if query_text.is_empty() {
        "average delay by hour as line".to_owned()
    } else {
        query_text
    };

    let table = flight_table(2015, 10_000);
    println!("searching {} for: {query_text:?}\n", table.schema_string());

    let eye = DeepEye::with_defaults();
    let hits = keyword_search(&eye, &table, &query_text, 3);
    if hits.is_empty() {
        println!("no candidates at all — is the table empty?");
        return;
    }
    for rec in &hits {
        println!("#{} [{}]", rec.rank, rec.node.chart_type());
        println!("{}", rec.node.query.to_language("flights"));
        println!("{}", rec.node.data.ascii_sketch(10));
    }

    println!("--- other queries to try ---");
    for q in [
        "pie share of passengers by carrier",
        "correlation departure versus arrival",
        "monthly total passengers",
        "distribution of delay",
    ] {
        let top = keyword_search(&eye, &table, q, 1);
        if let Some(rec) = top.first() {
            println!(
                "{q:>45}  →  {} of {} vs {}",
                rec.node.chart_type(),
                rec.node.data.x_label,
                rec.node.data.y_label
            );
        }
    }
}
