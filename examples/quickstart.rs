//! Quickstart: recommend visualizations for a small CSV, print ASCII
//! sketches, the query each chart corresponds to, and a Vega-Lite spec.
//!
//! ```sh
//! cargo run --example quickstart
//! # with pipeline tracing:
//! DEEPEYE_TRACE_OUT=trace.json DEEPEYE_METRICS_OUT=metrics.json \
//!     cargo run --example quickstart
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use deepeye::prelude::*;

fn main() {
    let csv = "\
month,region,revenue,units
2015-01,North,102,11
2015-02,North,118,12
2015-03,North,131,14
2015-04,North,150,15
2015-05,North,166,17
2015-06,North,180,19
2015-01,South,95,10
2015-02,South,95,10
2015-03,South,104,11
2015-04,South,112,12
2015-05,South,121,13
2015-06,South,135,14
2015-01,East,60,6
2015-02,East,63,7
2015-03,East,66,7
2015-04,East,71,8
2015-05,East,74,8
2015-06,East,80,9
";
    let table = table_from_csv_str("sales", csv).expect("valid CSV");
    println!("loaded {}\n", table.schema_string());

    // Out of the box: rule-based candidates ranked by the expert partial
    // order — no training data needed. DEEPEYE_TRACE_OUT /
    // DEEPEYE_METRICS_OUT turn on pipeline tracing and export it.
    let trace_out = std::env::var("DEEPEYE_TRACE_OUT")
        .ok()
        .filter(|p| !p.is_empty());
    let metrics_out = std::env::var("DEEPEYE_METRICS_OUT")
        .ok()
        .filter(|p| !p.is_empty());
    let observer = if trace_out.is_some() || metrics_out.is_some() {
        Observer::enabled()
    } else {
        Observer::disabled()
    };
    let eye = DeepEye::new(DeepEyeConfig {
        observer: observer.clone(),
        ..Default::default()
    });
    let recommendations = eye.recommend(&table, 3);
    println!("top-{} recommendations:\n", recommendations.len());
    for rec in &recommendations {
        println!(
            "#{} (M={:.2} Q={:.2} W={:.2})",
            rec.rank, rec.factors.m, rec.factors.q, rec.factors.w
        );
        println!("{}", rec.node.data.ascii_sketch(8));
        println!("query:\n{}\n", rec.query_text("sales"));
    }

    // Every recommendation renders to a Vega-Lite-style spec for the web.
    if let Some(first) = recommendations.first() {
        println!("Vega-Lite spec of #1:\n{}", first.spec());
    }

    // The visualization language can also be driven directly.
    let parsed = parse_query(
        "VISUALIZE bar\nSELECT region, SUM(revenue)\nFROM sales\nGROUP BY region\nORDER BY SUM(revenue)",
    )
    .expect("valid query");
    let chart = execute(&table, &parsed.query).expect("executable");
    println!("\nmanual query result:\n{chart}");

    if let Some(path) = trace_out {
        std::fs::write(&path, observer.chrome_trace_json()).expect("write trace");
        eprintln!("wrote Chrome trace to {path} (load in Perfetto / chrome://tracing)");
    }
    if let Some(path) = metrics_out {
        std::fs::write(&path, observer.metrics_json()).expect("write metrics");
        eprintln!("wrote metrics snapshot to {path}");
    }
    if observer.is_enabled() {
        eprint!("{}", observer.stage_report());
    }
}
