//! The two related-work lenses the paper contrasts DeepEye with (§I):
//! deviation-based interestingness (SeeDB-style) and similarity-based
//! search (zenvisage-style), running side by side with DeepEye's
//! perception-based ranking on the flight-delay table.
//!
//! ```sh
//! cargo run --release --example related_baselines
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use deepeye::core::{find_similar_to_shape, rank_by_deviation, DeepEye, DeviationMetric};
use deepeye::datagen::flight_table;

fn main() {
    let table = flight_table(2015, 8_000);
    println!("dataset: {}\n", table.schema_string());

    let eye = DeepEye::with_defaults();
    let nodes = eye.candidates(&table);
    println!("{} candidate charts\n", nodes.len());

    // --- DeepEye: perception-based (the paper's angle 3) ---
    println!("=== DeepEye partial-order top-3 (perception-based) ===");
    for rec in eye.recommend(&table, 3) {
        println!(
            "#{} [{}] {} vs {}",
            rec.rank,
            rec.node.chart_type(),
            rec.node.data.x_label,
            rec.node.data.y_label
        );
    }

    // --- SeeDB-style: deviation-based (angle 1) ---
    println!("\n=== Deviation top-3 (SeeDB-style, EMD from uniform) ===");
    let dev_order = rank_by_deviation(&nodes, DeviationMetric::EarthMover);
    for (rank, &i) in dev_order.iter().take(3).enumerate() {
        println!(
            "#{} [{}] {} vs {}",
            rank + 1,
            nodes[i].chart_type(),
            nodes[i].data.x_label,
            nodes[i].data.y_label
        );
    }

    // --- zenvisage-style: similarity-based (angle 2) ---
    println!("\n=== Similarity search: charts matching a 'rise then fall' sketch ===");
    let sketch = [0.0, 0.5, 1.0, 0.9, 0.4, 0.0];
    for hit in find_similar_to_shape(&nodes, &sketch, 3) {
        let n = &nodes[hit.index];
        println!(
            "d={:.2} [{}] {} vs {}",
            hit.distance,
            n.chart_type(),
            n.data.x_label,
            n.data.y_label
        );
    }

    println!(
        "\nThe three lenses answer different questions — deviation finds\n\
         outliers, similarity finds a requested trend, and DeepEye finds\n\
         charts that read well on their own (the paper's 55-minute bet)."
    );
}
