//! The full offline + online pipeline of the paper's Figure 4: train the
//! recognition classifier and the learning-to-rank model on the training
//! corpus (with oracle-labeled examples standing in for the paper's
//! crowdsourced annotations), learn the hybrid weight α, then run the
//! trained system on a held-out dataset.
//!
//! ```sh
//! cargo run --release --example train_models
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use deepeye::datagen::{
    build_table, candidate_nodes, ranking_examples, recognition_examples, test_specs,
    training_tables, PerceptionOracle,
};
use deepeye::prelude::*;
use deepeye_core::rank_by_partial_order;

fn main() {
    let scale = 0.15; // keep the example under a minute; raise toward 1.0 for paper scale
    let oracle = PerceptionOracle::default();

    // ---- offline: learn from examples (Figure 4, left) ----
    println!("building training corpus (32 datasets, scale {scale}) …");
    let train = training_tables(scale);

    println!("labeling candidates with the perception oracle …");
    let examples = recognition_examples(&train, &oracle);
    let good = examples.iter().filter(|e| e.good).count();
    println!(
        "  {} labeled examples ({} good / {} bad — the paper had 2,520 / 30,892)",
        examples.len(),
        good,
        examples.len() - good
    );

    println!("training the decision-tree recognizer …");
    let recognizer = Recognizer::train(ClassifierKind::DecisionTree, &examples);

    println!("training LambdaMART on per-dataset rankings …");
    let groups = ranking_examples(&train, &oracle);
    let ltr = LtrRanker::fit(&groups);

    println!("learning the hybrid preference weight α …");
    let alpha_groups: Vec<_> = train
        .iter()
        .map(|t| {
            let nodes = candidate_nodes(t);
            let rel: Vec<f64> = nodes.iter().map(|n| oracle.relevance(n)).collect();
            (ltr.rank(&nodes), rank_by_partial_order(&nodes), rel)
        })
        .collect();
    let hybrid = HybridRanker::learn_alpha(&alpha_groups);
    println!("  α = {}\n", hybrid.alpha);

    // Trained models persist to disk and reload bit-exactly.
    std::fs::write("recognizer.model", recognizer.to_text()).expect("writable cwd");
    std::fs::write("ranker.model", ltr.to_text()).expect("writable cwd");
    let recognizer =
        Recognizer::from_text(&std::fs::read_to_string("recognizer.model").expect("just written"))
            .expect("round trip");
    let ltr = LtrRanker::from_text(&std::fs::read_to_string("ranker.model").expect("just written"))
        .expect("round trip");
    println!("saved + reloaded recognizer.model and ranker.model\n");

    // ---- online: run the trained system on a held-out dataset ----
    let spec = test_specs().into_iter().nth(3).expect("X4 exists"); // X4 Happiness Rank
    let table = build_table(&spec.scaled(scale));
    println!(
        "running trained DeepEye on held-out {} …\n",
        table.schema_string()
    );

    let eye = DeepEye::new(DeepEyeConfig {
        enumeration: EnumerationMode::RuleBased,
        recognizer: Some(recognizer),
        ranking: RankingMethod::Hybrid(ltr, hybrid),
        ..Default::default()
    });
    let recs = eye.recommend(&table, 4);
    if recs.is_empty() {
        println!("(the recognizer filtered everything — rerun with a larger scale)");
    }
    for rec in &recs {
        println!(
            "#{} [{}] oracle score {:.0}",
            rec.rank,
            rec.node.chart_type(),
            oracle.score(&rec.node)
        );
        println!("{}", rec.node.data.ascii_sketch(8));
    }
}
