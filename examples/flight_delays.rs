//! The paper's running example end to end: generate the flight-delay table
//! (Table I / dataset X10) and watch DeepEye rediscover the figures of the
//! paper's introduction — the carrier scatter (Figure 1(a)), the hourly
//! delay line (Figure 1(c)) — while ranking the structureless daily-average
//! line (Figure 1(d)) poorly.
//!
//! ```sh
//! cargo run --release --example flight_delays
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use deepeye::datagen::{flight_table, PerceptionOracle};
use deepeye::prelude::*;
use deepeye_data::TimeUnit;
use deepeye_query::UdfRegistry;

fn main() {
    // A trimmed-down FlyDelay keeps the example snappy; pass the paper's
    // full 99,527 rows if you have a minute.
    let rows = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20_000);
    let table = flight_table(2015, rows);
    println!("generated {}\n", table.schema_string());

    let eye = DeepEye::with_defaults();
    let recs = eye.recommend(&table, 6);
    println!("=== DeepEye's first page (top-6), like the paper's Figure 9 ===\n");
    for rec in &recs {
        println!(
            "#{} [{}]  M={:.2} Q={:.4} W={:.2}",
            rec.rank,
            rec.node.chart_type(),
            rec.factors.m,
            rec.factors.q,
            rec.factors.w
        );
        println!("{}", rec.node.data.ascii_sketch(10));
    }

    // The Figure 1(c) vs 1(d) story, scored explicitly.
    let udfs = UdfRegistry::default();
    let build = |unit: TimeUnit| {
        VisNode::build(
            &table,
            VisQuery {
                chart: ChartType::Line,
                x: "scheduled".into(),
                y: Some("departure delay".into()),
                transform: Transform::Bin(BinStrategy::Unit(unit)),
                aggregate: Aggregate::Avg,
                order: SortOrder::ByX,
            },
            &udfs,
        )
        .expect("valid query")
    };
    let hourly = build(TimeUnit::Hour);
    let daily = build(TimeUnit::Day);
    let oracle = PerceptionOracle::default();
    println!("=== Example 1's good/bad pair ===\n");
    println!(
        "Figure 1(c) — AVG delay by hour of day   | {} buckets, trend: {}, oracle score {:.0}",
        hourly.transformed_rows(),
        hourly.features.trend,
        oracle.score(&hourly)
    );
    println!("{}", hourly.data.ascii_sketch(24));
    println!(
        "Figure 1(d) — AVG delay by day of year   | {} buckets, trend: {}, oracle score {:.0}",
        daily.transformed_rows(),
        daily.features.trend,
        oracle.score(&daily)
    );
    println!("(sketch omitted — 365 structureless points, exactly why it's \"bad\")");
}
