//! Multi-column visualization: rediscovering the paper's Figure 1(b) —
//! "Monthly #-passengers, by destination" — a stacked bar whose series come
//! from grouping one column, whose x-axis comes from binning another, and
//! whose heights aggregate a third (the §II-B multi-column extension).
//!
//! ```sh
//! cargo run --release --example multi_column
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use deepeye::core::recommend_multi;
use deepeye::datagen::flight_table;
use deepeye::query::UdfRegistry;

fn main() {
    let table = flight_table(2015, 12_000);
    println!("generated {}\n", table.schema_string());

    let recs = recommend_multi(&table, 3, &UdfRegistry::default());
    println!("top-{} multi-column charts:\n", recs.len());
    for rec in &recs {
        println!(
            "#{} [{} | series by {} | x: {} | {}({})]  score {:.2}",
            rec.rank,
            rec.query.chart,
            rec.query.series_column,
            rec.query.x,
            rec.query.aggregate.name(),
            rec.query.z,
            rec.score
        );
        for (name, points) in rec.chart.series.iter().take(4) {
            let preview: Vec<String> = points
                .iter()
                .take(6)
                .map(|(k, v)| format!("{k}={v:.0}"))
                .collect();
            println!("  {name:<16} {}", preview.join("  "));
        }
        if rec.chart.series.len() > 4 {
            println!("  … {} more series", rec.chart.series.len() - 4);
        }
        println!();
    }

    // The flattened view can be rendered like any single-series chart.
    if let Some(best) = recs.first() {
        println!(
            "flattened totals of #1:\n{}",
            best.chart.flattened().ascii_sketch(12)
        );
    }
}
