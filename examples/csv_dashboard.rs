//! Build a dashboard from any CSV file: read it, auto-detect column types,
//! and emit an HTML page with the top-k recommended charts as embedded
//! Vega-Lite specs.
//!
//! ```sh
//! cargo run --release --example csv_dashboard -- path/to/data.csv [k]
//! # no argument: uses a built-in demo CSV and writes dashboard.html
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use deepeye::prelude::*;
use std::fmt::Write as _;

const DEMO_CSV: &str = "\
date,city,temp,humidity,aqi
2015-01-05,Beijing,-2,30,160
2015-02-05,Beijing,2,32,150
2015-03-05,Beijing,9,35,120
2015-04-05,Beijing,17,40,95
2015-05-05,Beijing,23,48,80
2015-06-05,Beijing,28,60,70
2015-07-05,Beijing,30,72,65
2015-08-05,Beijing,29,74,60
2015-09-05,Beijing,23,62,75
2015-10-05,Beijing,15,50,105
2015-11-05,Beijing,6,40,140
2015-12-05,Beijing,-1,33,170
2015-01-05,Shanghai,5,70,90
2015-02-05,Shanghai,7,72,85
2015-03-05,Shanghai,11,73,75
2015-04-05,Shanghai,17,75,60
2015-05-05,Shanghai,22,78,55
2015-06-05,Shanghai,26,82,45
2015-07-05,Shanghai,30,80,42
2015-08-05,Shanghai,30,79,40
2015-09-05,Shanghai,26,76,50
2015-10-05,Shanghai,20,72,62
2015-11-05,Shanghai,13,70,78
2015-12-05,Shanghai,7,69,88
";

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let table = match args.get(1) {
        Some(path) => table_from_csv_path(path).unwrap_or_else(|e| {
            eprintln!("failed to read {path}: {e}");
            std::process::exit(1);
        }),
        None => table_from_csv_str("weather_demo", DEMO_CSV).expect("demo CSV is valid"),
    };
    let k: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(6);
    eprintln!("loaded {}", table.schema_string());

    let eye = DeepEye::with_defaults();
    let recs = eye.recommend(&table, k);
    eprintln!("recommending {} charts", recs.len());

    let mut html = String::from(
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n\
         <title>DeepEye dashboard</title>\n\
         <script src=\"https://cdn.jsdelivr.net/npm/vega@5\"></script>\n\
         <script src=\"https://cdn.jsdelivr.net/npm/vega-lite@5\"></script>\n\
         <script src=\"https://cdn.jsdelivr.net/npm/vega-embed@6\"></script>\n\
         <style>body{font-family:sans-serif;display:grid;grid-template-columns:repeat(2,1fr);gap:24px;padding:24px}\
         .card{border:1px solid #ddd;border-radius:8px;padding:12px}</style>\n\
         </head><body>\n",
    );
    for rec in &recs {
        let div = format!("chart{}", rec.rank);
        let _ = writeln!(
            html,
            "<div class=\"card\"><h3>#{} — {} of {} vs {}</h3><div id=\"{div}\"></div>\
             <script>vegaEmbed('#{div}', {});</script></div>",
            rec.rank,
            rec.node.chart_type(),
            rec.node.data.x_label,
            rec.node.data.y_label,
            rec.spec(),
        );
    }
    html.push_str("</body></html>\n");

    let out = "dashboard.html";
    std::fs::write(out, &html).expect("writable working directory");
    println!(
        "wrote {out} with {} charts — open it in a browser.",
        recs.len()
    );

    // Also print terminal sketches so the example is useful offline.
    for rec in &recs {
        println!("\n#{}\n{}", rec.rank, rec.node.data.ascii_sketch(8));
    }
}
