//! Acceptance tests for the decision-provenance layer: a provenance-enabled
//! run must produce (a) an `Explanation` for every enumerated candidate,
//! with tallies that reconcile record-for-record against the observer's
//! counters, (b) hybrid scores that recompute exactly from their recorded
//! parts (`l_v + α·p_v`), (c) tournament leaf accounting that matches
//! `SelectionStats` — and collection must never change what gets
//! recommended.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use deepeye::core::{query_id, validate_provenance_json, Outcome, ProgressiveSelector};
use deepeye::datagen::{flight_table, ranking_examples, recognition_examples, PerceptionOracle};
use deepeye::prelude::*;
use deepeye::query::UdfRegistry;

fn sales_table() -> Table {
    let mut region = Vec::new();
    let mut revenue = Vec::new();
    let mut units = Vec::new();
    for m in 0..12 {
        for (r, base) in [("North", 100.0), ("South", 80.0), ("East", 60.0)] {
            region.push(r.to_owned());
            revenue.push(base + m as f64 * 5.0);
            units.push((m * 2 + 1) as f64);
        }
    }
    TableBuilder::new("sales")
        .text("region", region)
        .numeric("revenue", revenue)
        .numeric("units", units)
        .build()
        .unwrap()
}

fn trained_recognizer() -> Recognizer {
    let oracle = PerceptionOracle::default();
    let train = flight_table(1, 600);
    let examples = recognition_examples(std::slice::from_ref(&train), &oracle);
    Recognizer::train(ClassifierKind::DecisionTree, &examples)
}

#[test]
fn every_candidate_has_an_explanation_and_counts_reconcile() {
    let obs = Observer::enabled();
    let prov = Provenance::enabled();
    let eye = DeepEye::new(DeepEyeConfig {
        enumeration: EnumerationMode::Exhaustive,
        recognizer: Some(trained_recognizer()),
        observer: obs.clone(),
        provenance: prov.clone(),
        ..Default::default()
    });
    let recs = eye.recommend(&sales_table(), 5);
    assert!(!recs.is_empty());

    let log = prov.snapshot();
    let c = log.counts;
    // The tallies reconcile with the observer's stage counters.
    assert_eq!(c.enumerated, obs.counter("enumerate.candidates"));
    assert_eq!(c.sema_rejected, obs.counter("sema.rejected"));
    assert_eq!(c.classifier_kept, obs.counter("recognize.kept"));
    assert_eq!(c.classifier_rejected, obs.counter("recognize.rejected"));
    assert_eq!(c.exec_failed, obs.counter("exec.err"));

    // One record per enumerated candidate — admitted or sema-rejected —
    // and none were silently dropped.
    assert_eq!(c.dropped_records, 0);
    assert_eq!(log.records.len() as u64, c.enumerated + c.sema_rejected);

    // Per-record outcomes re-derive the tallies: candidate-for-candidate,
    // not just in aggregate.
    let count = |kind: &str| {
        log.records
            .iter()
            .filter(|e| e.outcome.kind() == kind)
            .count() as u64
    };
    assert_eq!(count("sema_rejected"), c.sema_rejected);
    assert_eq!(count("exec_failed"), c.exec_failed);
    assert_eq!(count("classifier_rejected"), c.classifier_rejected);
    assert_eq!(count("single_mark"), c.single_mark);
    assert_eq!(count("ranked"), c.ranked);
    assert_eq!(count("ranked"), recs.len() as u64);

    // The ranked records line up with the returned recommendations.
    for rec in &recs {
        let e = log.find(&rec.node.id()).expect("ranked record exists");
        assert_eq!(e.outcome, Outcome::Ranked(rec.rank));
        let f = e.factors.expect("ranked record has factors");
        assert_eq!(f.m, rec.factors.m);
        assert_eq!(f.q, rec.factors.q);
        assert_eq!(f.w, rec.factors.w);
        // Every kept candidate carries its classifier evidence.
        assert!(e.classifier.is_some(), "no evidence for {}", e.id);
    }

    // The export round-trips through the validator.
    let summary = validate_provenance_json(&prov.to_json()).expect("export validates");
    assert_eq!(summary.records, log.records.len());
    assert_eq!(summary.ranked, recs.len());
}

#[test]
fn hybrid_scores_recompute_from_recorded_parts() {
    let oracle = PerceptionOracle::default();
    let train = flight_table(2, 600);
    let ltr = LtrRanker::fit(&ranking_examples(std::slice::from_ref(&train), &oracle));
    let alpha = 0.7;
    let prov = Provenance::enabled();
    let eye = DeepEye::new(DeepEyeConfig {
        ranking: RankingMethod::Hybrid(ltr, HybridRanker::new(alpha)),
        provenance: prov.clone(),
        ..Default::default()
    });
    let recs = eye.recommend(&sales_table(), 5);
    assert!(!recs.is_empty());

    let log = prov.snapshot();
    for rec in &recs {
        let e = log.find(&rec.node.id()).expect("ranked record");
        let r = e.rank.as_ref().expect("rank breakdown recorded");
        let h = r.hybrid.expect("hybrid parts recorded");
        // Golden invariant: the recorded combined score IS l_v + α·p_v,
        // recomputed here from the recorded parts.
        assert_eq!(h.alpha, alpha);
        assert_eq!(h.combined, h.l_pos as f64 + alpha * h.p_pos as f64);
        assert_eq!(
            h.combined,
            HybridRanker::new(alpha).combined_score(h.l_pos, h.p_pos)
        );
        // The component orders were recorded alongside.
        assert_eq!(r.ltr_pos, Some(h.l_pos));
        assert_eq!(r.po_pos, Some(h.p_pos));
        assert!(r.ltr_score.is_some() && r.po_log_score.is_some());
    }
    // The validator re-checks the same identity on the JSON side.
    validate_provenance_json(&prov.to_json()).expect("hybrid export validates");
}

#[test]
fn progressive_tournament_accounting_matches_selection_stats() {
    let table = flight_table(3, 800);
    let prov = Provenance::enabled();
    let eye = DeepEye::new(DeepEyeConfig {
        provenance: prov.clone(),
        ..Default::default()
    });
    let recs = eye.recommend_progressive(&table, 3);
    assert!(!recs.is_empty());

    // Reference run of the same tournament, unexplained.
    let udfs = UdfRegistry::default();
    let (_, stats) = ProgressiveSelector::new(&table, &udfs).top_k(3);

    let log = prov.snapshot();
    let c = log.counts;
    assert_eq!(c.leaves_materialized, stats.leaves_materialized as u64);
    assert_eq!(c.leaves_pruned, stats.leaves_pruned as u64);
    assert_eq!(c.leaves_total, stats.leaves_total as u64);
    assert_eq!(c.leaves_materialized + c.leaves_pruned, c.leaves_total);

    // Leaf records (per column) re-derive the same split.
    let count = |kind: &str| {
        log.records
            .iter()
            .filter(|e| e.outcome.kind() == kind)
            .count() as u64
    };
    assert_eq!(count("leaf_materialized"), c.leaves_materialized);
    assert_eq!(count("leaf_pruned"), c.leaves_pruned);
    assert!(
        c.leaves_pruned > 0,
        "expected the bound to prune some columns: {stats:?}"
    );

    // The winners carry their tournament rank and score.
    for rec in &recs {
        let e = log.find(&rec.node.id()).expect("winner record");
        assert_eq!(e.outcome, Outcome::TournamentRanked(rec.rank));
        assert!(e.tournament_score.is_some());
    }

    validate_provenance_json(&prov.to_json()).expect("tournament export validates");
}

#[test]
fn provenance_collection_never_changes_recommendations() {
    let table = sales_table();
    let configs: Vec<fn() -> DeepEyeConfig> = vec![DeepEyeConfig::default, || DeepEyeConfig {
        enumeration: EnumerationMode::Exhaustive,
        recognizer: Some(trained_recognizer()),
        ..Default::default()
    }];
    for make in configs {
        let plain = DeepEye::new(make());
        let explained = DeepEye::new(DeepEyeConfig {
            provenance: Provenance::enabled(),
            ..make()
        });
        let ids = |recs: Vec<Recommendation>| -> Vec<String> {
            recs.iter().map(|r| r.node.id()).collect()
        };
        assert_eq!(
            ids(plain.recommend(&table, 6)),
            ids(explained.recommend(&table, 6)),
            "recommend() must be provenance-invariant"
        );
        assert_eq!(
            ids(plain.recommend_progressive(&table, 3)),
            ids(explained.recommend_progressive(&table, 3)),
            "recommend_progressive() must be provenance-invariant"
        );
    }
}

#[test]
fn recommendation_explain_is_a_view_over_the_record() {
    let table = sales_table();
    let eye = DeepEye::with_defaults();
    let recs = eye.recommend(&table, 3);
    assert!(!recs.is_empty());
    for rec in &recs {
        let text = rec.explain();
        assert!(text.contains(&format!("Ranked #{}", rec.rank)), "{text}");
        for factor in ["M = ", "Q = ", "W = "] {
            assert!(text.contains(factor), "missing {factor}: {text}");
        }
        // The view and the record agree.
        assert_eq!(text, rec.explanation().render());
        assert_eq!(rec.explanation().id, rec.node.id());
    }
}

#[test]
fn sema_rejections_carry_their_diagnostic_codes() {
    let prov = Provenance::enabled();
    let eye = DeepEye::new(DeepEyeConfig {
        enumeration: EnumerationMode::Exhaustive,
        provenance: prov.clone(),
        ..Default::default()
    });
    let _ = eye.recommend(&sales_table(), 3);
    let log = prov.snapshot();
    let rejected: Vec<_> = log
        .records
        .iter()
        .filter(|e| e.outcome == Outcome::SemaRejected)
        .collect();
    assert!(
        !rejected.is_empty(),
        "exhaustive space has ill-typed queries"
    );
    // The detailed sample carries the sema code that killed the candidate.
    assert!(
        rejected
            .iter()
            .any(|e| e.sema.iter().any(|(code, _)| code.starts_with('E'))),
        "no diagnostic codes recorded"
    );
}

#[test]
fn query_id_is_the_shared_id_space() {
    let table = sales_table();
    let eye = DeepEye::with_defaults();
    for node in eye.candidates(&table) {
        assert_eq!(node.id(), query_id(&node.query));
    }
}
