//! Acceptance tests for the pipeline observability layer: a default-config
//! run must emit (a) a stage report with nonzero enumerate/execute/rank
//! timings, (b) a JSON metrics snapshot whose counters match the
//! pipeline's own `SelectionStats`, and (c) a Chrome trace with balanced
//! span events — and a disabled observer must record nothing.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use deepeye::core::{DeepEye, DeepEyeConfig, ProgressiveSelector};
use deepeye::obs::{parse_json, validate_chrome_trace, Observer};
use deepeye::query::UdfRegistry;
use deepeye_data::{Table, TableBuilder};
use std::path::PathBuf;
use std::process::Command;
use std::time::Duration;

fn sales_table() -> Table {
    let mut region = Vec::new();
    let mut revenue = Vec::new();
    let mut units = Vec::new();
    for m in 0..12 {
        for (r, base) in [("North", 100.0), ("South", 80.0), ("East", 60.0)] {
            region.push(r.to_owned());
            revenue.push(base + m as f64 * 5.0);
            units.push((m * 2 + 1) as f64);
        }
    }
    TableBuilder::new("sales")
        .text("region", region)
        .numeric("revenue", revenue)
        .numeric("units", units)
        .build()
        .unwrap()
}

fn observed_eye(obs: &Observer) -> DeepEye {
    DeepEye::new(DeepEyeConfig {
        observer: obs.clone(),
        ..Default::default()
    })
}

#[test]
fn stage_report_has_nonzero_pipeline_timings() {
    let obs = Observer::enabled();
    let recs = observed_eye(&obs).recommend(&sales_table(), 5);
    assert!(!recs.is_empty());
    for stage in ["pipeline.enumerate", "pipeline.execute", "pipeline.rank"] {
        assert!(
            obs.stage_duration(stage) > Duration::ZERO,
            "{stage} has no recorded time:\n{}",
            obs.stage_report()
        );
    }
    let report = obs.stage_report();
    for needle in [
        "pipeline.recommend",
        "pipeline.enumerate",
        "pipeline.execute",
        "execute.worker",
        "pipeline.rank",
        "rank.partial_order",
        "enumerate.candidates",
        "exec.query_ns",
    ] {
        assert!(
            report.contains(needle),
            "report missing {needle}:\n{report}"
        );
    }
}

#[test]
fn metrics_snapshot_matches_pipeline_counters() {
    let obs = Observer::enabled();
    let eye = observed_eye(&obs);
    let t = sales_table();
    let _ = eye.recommend(&t, 5);
    let json = parse_json(&obs.metrics_json()).expect("metrics JSON parses");
    let counters = json.get("counters").expect("counters object");
    for name in ["enumerate.candidates", "exec.ok", "exec.err", "rank.nodes"] {
        let exported = counters
            .get(name)
            .and_then(|v| v.as_f64())
            .unwrap_or_else(|| panic!("counter {name} missing"));
        assert_eq!(exported as u64, obs.counter(name), "{name}");
    }
    // Every enumerated candidate was either executed ok or failed.
    assert_eq!(
        obs.counter("enumerate.candidates"),
        obs.counter("exec.ok") + obs.counter("exec.err")
    );
    // exec latencies: one histogram sample per executed query.
    let count = json
        .get("histograms")
        .and_then(|h| h.get("exec.query_ns"))
        .and_then(|h| h.get("count"))
        .and_then(|v| v.as_f64())
        .expect("exec.query_ns histogram");
    assert_eq!(count as u64, obs.counter("enumerate.candidates"));
}

#[test]
fn progressive_metrics_match_selection_stats() {
    let obs = Observer::enabled();
    let eye = observed_eye(&obs);
    let t = sales_table();
    let recs = eye.recommend_progressive(&t, 3);
    assert!(!recs.is_empty());
    // Reference run of the same tournament with no observer.
    let udfs = UdfRegistry::default();
    let (_, stats) = ProgressiveSelector::new(&t, &udfs).top_k(3);
    let json = parse_json(&obs.metrics_json()).expect("metrics JSON parses");
    let counters = json.get("counters").expect("counters object");
    for (name, want) in [
        ("progressive.leaves_materialized", stats.leaves_materialized),
        ("progressive.leaves_pruned", stats.leaves_pruned),
        ("progressive.leaves_total", stats.leaves_total),
        ("progressive.nodes_generated", stats.nodes_generated),
        ("progressive.shared_scans", stats.shared_scans),
    ] {
        let exported = counters
            .get(name)
            .and_then(|v| v.as_f64())
            .unwrap_or_else(|| panic!("counter {name} missing"));
        assert_eq!(exported as usize, want, "{name}");
    }
}

#[test]
fn chrome_trace_is_balanced() {
    let obs = Observer::enabled();
    let eye = observed_eye(&obs);
    let t = sales_table();
    let _ = eye.recommend(&t, 5);
    let _ = eye.recommend_progressive(&t, 3);
    let trace = obs.chrome_trace_json();
    let summary = validate_chrome_trace(&trace).expect("trace validates");
    assert_eq!(summary.spans, obs.finished_spans().len());
    assert!(summary.max_depth >= 2, "nested spans expected: {summary:?}");
}

#[test]
fn parallel_and_sequential_counters_agree() {
    let t = sales_table();
    let run = |parallel: bool| {
        let obs = Observer::enabled();
        let eye = DeepEye::new(DeepEyeConfig {
            observer: obs.clone(),
            parallel,
            ..Default::default()
        });
        let recs = eye.recommend(&t, 5);
        (obs, recs)
    };
    let (par, par_recs) = run(true);
    let (seq, seq_recs) = run(false);
    assert_eq!(par_recs.len(), seq_recs.len());
    for name in ["enumerate.candidates", "exec.ok", "exec.err", "rank.nodes"] {
        assert_eq!(par.counter(name), seq.counter(name), "{name}");
    }
    let (ph, sh) = (par.snapshot(), seq.snapshot());
    assert_eq!(
        ph.hist("exec.query_ns").map(|h| h.count),
        sh.hist("exec.query_ns").map(|h| h.count)
    );
}

#[test]
fn disabled_observer_records_nothing() {
    let config = DeepEyeConfig::default();
    assert!(!config.observer.is_enabled());
    let obs = config.observer.clone();
    let eye = DeepEye::new(config);
    let recs = eye.recommend(&sales_table(), 5);
    assert!(!recs.is_empty());
    assert!(obs.finished_spans().is_empty());
    assert_eq!(obs.counter("enumerate.candidates"), 0);
    assert_eq!(obs.counter("exec.ok"), 0);
    let summary = validate_chrome_trace(&obs.chrome_trace_json()).expect("empty trace validates");
    assert_eq!(summary.spans, 0);
}

#[test]
fn cli_exports_metrics_and_trace() {
    let dir = std::env::temp_dir().join(format!("deepeye-obs-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let csv_path = dir.join("sales.csv");
    let mut csv = String::from("month,region,revenue\n");
    for m in 1..=12 {
        for (r, base) in [("North", 100.0), ("South", 80.0)] {
            csv.push_str(&format!("2015-{m:02},{r},{:.0}\n", base + m as f64 * 5.0));
        }
    }
    std::fs::write(&csv_path, csv).unwrap();
    let metrics: PathBuf = dir.join("metrics.json");
    let trace: PathBuf = dir.join("trace.json");
    let out = Command::new(env!("CARGO_BIN_EXE_deepeye"))
        .args([
            "recommend",
            csv_path.to_str().unwrap(),
            "3",
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("pipeline stage report"), "stderr: {stderr}");
    let metrics_text = std::fs::read_to_string(&metrics).unwrap();
    let json = parse_json(&metrics_text).expect("metrics JSON parses");
    assert!(json.get("counters").is_some());
    let trace_text = std::fs::read_to_string(&trace).unwrap();
    let summary = validate_chrome_trace(&trace_text).expect("trace validates");
    assert!(summary.spans > 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_rejects_dangling_flag() {
    let out = Command::new(env!("CARGO_BIN_EXE_deepeye"))
        .args(["recommend", "x.csv", "--trace-out"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

/// DESIGN.md §6's metric-name table and the instrumentation sites in the
/// product crates must list exactly the same names — the audit that keeps
/// the EXPLAIN/metrics documentation from drifting out from under the
/// code. Counters come from `.incr("…")`, histograms from `.timer("…")`
/// and `.record_many_ns("…")`; the scan collapses whitespace so
/// multi-line call sites count too.
#[test]
fn design_doc_metric_names_match_code() {
    use std::collections::BTreeSet;
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let design = std::fs::read_to_string(root.join("DESIGN.md")).expect("DESIGN.md readable");
    let section = design
        .split("### Metric names")
        .nth(1)
        .and_then(|rest| rest.split("### Exporters").next())
        .expect("DESIGN.md has a `Metric names` section inside §6");
    let documented: BTreeSet<String> = section
        .split('`')
        .skip(1)
        .step_by(2)
        .filter(|tok| {
            tok.contains('.')
                && tok
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_')
        })
        .map(str::to_owned)
        .collect();

    let mut in_code = BTreeSet::new();
    for krate in ["core", "query", "ml"] {
        let dir = root.join("crates").join(krate).join("src");
        for entry in std::fs::read_dir(&dir).expect("crate src dir") {
            let path = entry.expect("dir entry").path();
            if path.extension().and_then(|e| e.to_str()) != Some("rs") {
                continue;
            }
            let source = std::fs::read_to_string(&path).expect("source readable");
            let flat: String = source.chars().filter(|c| !c.is_whitespace()).collect();
            for pattern in [".incr(\"", ".timer(\"", ".record_many_ns(\""] {
                for (start, _) in flat.match_indices(pattern) {
                    let name = flat[start + pattern.len()..]
                        .split('"')
                        .next()
                        .unwrap_or_default();
                    if !name.is_empty() {
                        in_code.insert(name.to_owned());
                    }
                }
            }
        }
    }

    let undocumented: Vec<_> = in_code.difference(&documented).collect();
    let phantom: Vec<_> = documented.difference(&in_code).collect();
    assert!(
        undocumented.is_empty() && phantom.is_empty(),
        "metric names drifted — in code but not DESIGN.md §6: {undocumented:?}; \
         documented but not in code: {phantom:?}"
    );
    assert!(
        documented.len() >= 19,
        "expected the full metric table, found {documented:?}"
    );
}
