//! Cross-crate integration tests: CSV → type detection → enumeration →
//! recognition → ranking → selection, exercised through the public facade.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use deepeye::datagen::{flight_table, recognition_examples, PerceptionOracle};
use deepeye::prelude::*;

const CSV: &str = "\
when,store,sales,footfall
2015-01-03 09:15,downtown,120,340
2015-01-03 13:40,downtown,190,520
2015-01-03 18:05,downtown,240,610
2015-01-04 09:30,airport,90,210
2015-01-04 14:10,airport,150,380
2015-01-04 19:45,airport,210,540
2015-01-05 10:00,downtown,130,360
2015-01-05 15:30,downtown,200,545
2015-01-05 20:15,airport,230,580
2015-01-06 09:45,airport,95,225
2015-01-06 13:00,downtown,185,500
2015-01-06 19:30,downtown,250,640
";

#[test]
fn csv_to_recommendations() {
    let table = table_from_csv_str("stores", CSV).unwrap();
    assert_eq!(
        table.column_by_name("when").unwrap().data_type(),
        DataType::Temporal
    );
    assert_eq!(
        table.column_by_name("store").unwrap().data_type(),
        DataType::Categorical
    );
    assert_eq!(
        table.column_by_name("sales").unwrap().data_type(),
        DataType::Numerical
    );

    let eye = DeepEye::with_defaults();
    let recs = eye.recommend(&table, 5);
    assert!(!recs.is_empty());
    assert!(recs.len() <= 5);
    // Ranks are 1-based and contiguous.
    for (i, r) in recs.iter().enumerate() {
        assert_eq!(r.rank, i + 1);
        assert!(!r.node.data.series.is_empty());
        assert!(r.spec().contains("\"mark\""));
    }
    // sales/footfall are strongly correlated → a scatter appears somewhere
    // in the candidate set.
    let candidates = eye.candidates(&table);
    assert!(candidates
        .iter()
        .any(|n| n.chart_type() == ChartType::Scatter));
}

#[test]
fn language_round_trip_through_engine() {
    let table = table_from_csv_str("stores", CSV).unwrap();
    let text =
        "VISUALIZE line\nSELECT when, AVG(sales)\nFROM stores\nBIN when BY HOUR\nORDER BY when";
    let parsed = parse_query(text).unwrap();
    let chart = execute(&table, &parsed.query).unwrap();
    // Hour-of-day bins: 09:00..20:00 → at most 24 buckets.
    assert!(chart.series.len() <= 24);
    // Rendering the query back parses to the same query.
    let rendered = parsed.query.to_language("stores");
    assert_eq!(parse_query(&rendered).unwrap().query, parsed.query);
}

#[test]
fn trained_pipeline_end_to_end() {
    // Train a recognizer on oracle labels from one table, apply to another.
    let oracle = PerceptionOracle::default();
    let train_table = flight_table(1, 800);
    let examples = recognition_examples(std::slice::from_ref(&train_table), &oracle);
    assert!(examples.len() > 50);
    let recognizer = Recognizer::train(ClassifierKind::DecisionTree, &examples);

    let test_table = flight_table(2, 600);
    let eye = DeepEye::new(DeepEyeConfig {
        enumeration: EnumerationMode::RuleBased,
        recognizer: Some(recognizer),
        ranking: RankingMethod::PartialOrder,
        ..Default::default()
    });
    let all = DeepEye::with_defaults().candidates(&test_table).len();
    let kept = eye.candidates(&test_table).len();
    assert!(
        kept < all,
        "recognizer should filter something ({kept} of {all})"
    );
    let recs = eye.recommend(&test_table, 3);
    assert!(recs.len() <= 3);
}

#[test]
fn deterministic_recommendations() {
    let t1 = flight_table(7, 500);
    let t2 = flight_table(7, 500);
    let eye = DeepEye::with_defaults();
    let ids1: Vec<String> = eye.recommend(&t1, 8).iter().map(|r| r.node.id()).collect();
    let ids2: Vec<String> = eye.recommend(&t2, 8).iter().map(|r| r.node.id()).collect();
    assert_eq!(ids1, ids2);
}

#[test]
fn progressive_and_graph_agree_on_quality() {
    // The two selectors use different scoring, but both should surface
    // charts the oracle likes: mean oracle score of their top-3 must beat
    // the mean over all candidates.
    let table = flight_table(3, 1_000);
    let oracle = PerceptionOracle::default();
    let eye = DeepEye::with_defaults();

    let all: Vec<f64> = eye
        .candidates(&table)
        .iter()
        .map(|n| oracle.score(n))
        .collect();
    let baseline = all.iter().sum::<f64>() / all.len() as f64;

    let graph_top: Vec<f64> = eye
        .recommend(&table, 3)
        .iter()
        .map(|r| oracle.score(&r.node))
        .collect();
    let prog_top: Vec<f64> = eye
        .recommend_progressive(&table, 3)
        .iter()
        .map(|r| oracle.score(&r.node))
        .collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    assert!(
        mean(&graph_top) > baseline,
        "graph top-3 {:.1} should beat baseline {baseline:.1}",
        mean(&graph_top)
    );
    assert!(
        mean(&prog_top) > baseline,
        "progressive top-3 {:.1} should beat baseline {baseline:.1}",
        mean(&prog_top)
    );
}

#[test]
fn multi_column_extension_runs() {
    use deepeye::query::{execute_xyz, UdfRegistry, XyzQuery};
    let table = flight_table(4, 800);
    let q = XyzQuery {
        chart: ChartType::Bar,
        series_column: "destination".into(),
        x: "scheduled".into(),
        x_transform: Transform::Bin(BinStrategy::Unit(deepeye::data::TimeUnit::Month)),
        z: "passengers".into(),
        aggregate: Aggregate::Sum,
    };
    let chart = execute_xyz(&table, &q, &UdfRegistry::default()).unwrap();
    assert!(chart.series.len() >= 2, "multiple destination series");
    assert!(
        chart.series.iter().all(|(_, pts)| pts.len() <= 12),
        "month-of-year bins"
    );
}
