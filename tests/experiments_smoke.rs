//! Miniature versions of the paper's headline experimental claims, run as
//! integration tests so `cargo test` proves the reproduction's *shape*
//! without the full harness cost (the `deepeye-bench` binaries run the
//! real thing).

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use deepeye::core::{rank_by_partial_order, ClassifierKind, LtrRanker, Recognizer};
use deepeye::datagen::{
    candidate_nodes, combo_crowd_ranking_examples, combo_evaluation_nodes,
    combo_recognition_examples, combos_of, test_tables, training_tables, PerceptionOracle,
};
use deepeye::ml::{ndcg, Confusion};

const SCALE: f64 = 0.08;

fn f_measure(kind: ClassifierKind, oracle: &PerceptionOracle) -> f64 {
    // Combo granularity (column pair × chart type), like the paper.
    let train = training_tables(SCALE);
    let examples = combo_recognition_examples(&train, oracle);
    let recognizer = Recognizer::train(kind, &examples);
    let test = test_tables(SCALE);
    let mut preds = Vec::new();
    let mut gold = Vec::new();
    for table in &test {
        for combo in combo_evaluation_nodes(table, oracle) {
            preds.push(recognizer.predict(&combo.features));
            gold.push(combo.good);
        }
    }
    Confusion::from_predictions(&preds, &gold).f_measure()
}

#[test]
fn figure_10_shape_dt_wins() {
    let oracle = PerceptionOracle::default();
    let dt = f_measure(ClassifierKind::DecisionTree, &oracle);
    let svm = f_measure(ClassifierKind::Svm, &oracle);
    let bayes = f_measure(ClassifierKind::NaiveBayes, &oracle);
    assert!(
        dt > svm && dt > bayes,
        "DT {dt:.3} vs SVM {svm:.3} vs Bayes {bayes:.3}"
    );
    // The paper-scale harness asserts DT ≈ 95%; at this tiny smoke scale we
    // only require a clearly-working classifier.
    assert!(dt > 0.6, "DT should work even at tiny scale: {dt:.3}");
}

#[test]
fn figure_11_shape_partial_order_beats_ltr() {
    let oracle = PerceptionOracle::default();
    let train = training_tables(SCALE);
    let examples = combo_recognition_examples(&train, &oracle);
    let recognizer = Recognizer::train(ClassifierKind::DecisionTree, &examples);
    let ltr = LtrRanker::fit(&combo_crowd_ranking_examples(&train, &oracle));
    let test = test_tables(SCALE);
    let mut po_total = 0.0;
    let mut ltr_total = 0.0;
    for table in &test {
        // §IV-C: rankers order the classifier-validated charts, judged at
        // combo granularity with the paper's transform-blind features.
        let all = candidate_nodes(table);
        let mut combo_feat = vec![Vec::new(); all.len()];
        for combo in combos_of(table, &all) {
            for &i in &combo.node_indices {
                combo_feat[i] = combo.features.clone();
            }
        }
        let keep: Vec<usize> = (0..all.len())
            .filter(|&i| recognizer.predict(&combo_feat[i]))
            .collect();
        let (nodes, feats): (Vec<_>, Vec<_>) = if keep.len() >= 2 {
            (
                keep.iter().map(|&i| all[i].clone()).collect(),
                keep.iter().map(|&i| combo_feat[i].clone()).collect(),
            )
        } else {
            (all.clone(), combo_feat)
        };
        let rel = deepeye::datagen::dense_relevance(&nodes, &oracle);
        let po_rel: Vec<f64> = rank_by_partial_order(&nodes)
            .iter()
            .map(|&i| rel[i])
            .collect();
        let ltr_rel: Vec<f64> = ltr.rank_features(&feats).iter().map(|&i| rel[i]).collect();
        po_total += ndcg(&po_rel);
        ltr_total += ndcg(&ltr_rel);
    }
    let (po, ltr_score) = (po_total / test.len() as f64, ltr_total / test.len() as f64);
    assert!(
        po > ltr_score,
        "partial order {po:.3} should beat learning-to-rank {ltr_score:.3}"
    );
}

#[test]
fn figure_12_shape_rules_prune_candidates() {
    use deepeye::core::{DeepEye, DeepEyeConfig, EnumerationMode};
    let table = deepeye::datagen::flight_table(9, 400);
    let exhaustive = DeepEye::new(DeepEyeConfig {
        enumeration: EnumerationMode::Exhaustive,
        ..Default::default()
    })
    .candidates(&table)
    .len();
    let ruled = DeepEye::with_defaults().candidates(&table).len();
    assert!(
        ruled * 3 < exhaustive,
        "rules should prune most of the space: {ruled} vs {exhaustive}"
    );
}
