//! End-to-end tests of the `deepeye` CLI binary, driven through the real
//! executable (`CARGO_BIN_EXE_deepeye`).

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_deepeye"))
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("deepeye-cli-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir creatable");
    dir
}

fn sample_csv(dir: &Path) -> PathBuf {
    let path = dir.join("sales.csv");
    let mut csv = String::from("month,region,revenue,units\n");
    for m in 1..=12 {
        for (r, base) in [("North", 100.0), ("South", 80.0), ("East", 60.0)] {
            csv.push_str(&format!(
                "2015-{m:02},{r},{:.0},{}\n",
                base + m as f64 * 5.0,
                m * 2
            ));
        }
    }
    std::fs::write(&path, csv).expect("writable temp file");
    path
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = bin().output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn unknown_command_fails() {
    let out = bin().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());
}

#[test]
fn inspect_reports_types() {
    let dir = tmp_dir("inspect");
    let csv = sample_csv(&dir);
    let out = bin()
        .args(["inspect", csv.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("month"));
    assert!(stdout.contains("Tem"), "month detected temporal: {stdout}");
    assert!(stdout.contains("Cat"), "region detected categorical");
    assert!(stdout.contains("Num"), "revenue detected numerical");
}

#[test]
fn recommend_prints_charts() {
    let dir = tmp_dir("recommend");
    let csv = sample_csv(&dir);
    let out = bin()
        .args(["recommend", csv.to_str().unwrap(), "3"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("#1"), "{stdout}");
    assert!(stdout.contains("chart"), "{stdout}");
}

#[test]
fn search_honors_keywords() {
    let dir = tmp_dir("search");
    let csv = sample_csv(&dir);
    let out = bin()
        .args(["search", csv.to_str().unwrap(), "pie share of revenue", "2"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("pie chart"), "{stdout}");
}

#[test]
fn query_runs_vql_file() {
    let dir = tmp_dir("query");
    let csv = sample_csv(&dir);
    let vql = dir.join("q.vql");
    std::fs::write(
        &vql,
        "VISUALIZE bar\nSELECT region, SUM(revenue)\nFROM sales\nGROUP BY region\nORDER BY SUM(revenue)",
    )
    .unwrap();
    let out = bin()
        .args(["query", csv.to_str().unwrap(), vql.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("SUM(revenue)"), "{stdout}");
    assert!(stdout.contains("North"), "{stdout}");
}

#[test]
fn query_rejects_bad_vql() {
    let dir = tmp_dir("badquery");
    let csv = sample_csv(&dir);
    let vql = dir.join("bad.vql");
    std::fs::write(&vql, "VISUALIZE donut\nSELECT a\nFROM t").unwrap();
    let out = bin()
        .args(["query", csv.to_str().unwrap(), vql.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("parse error"));
}

#[test]
fn svg_writes_files() {
    let dir = tmp_dir("svg");
    let csv = sample_csv(&dir);
    let out_dir = dir.join("charts");
    let out = bin()
        .args(["svg", csv.to_str().unwrap(), out_dir.to_str().unwrap(), "2"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let chart1 = std::fs::read_to_string(out_dir.join("chart1.svg")).unwrap();
    assert!(chart1.starts_with("<svg"));
    assert!(chart1.ends_with("</svg>"));
}

#[test]
fn dashboard_writes_offline_html() {
    let dir = tmp_dir("dash");
    let csv = sample_csv(&dir);
    let html_path = dir.join("dash.html");
    let out = bin()
        .args([
            "dashboard",
            csv.to_str().unwrap(),
            html_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let html = std::fs::read_to_string(&html_path).unwrap();
    assert!(html.contains("<svg"));
    assert!(
        !html.contains("cdn."),
        "offline dashboard must not hit a CDN"
    );
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = bin()
        .args(["recommend", "/no/such/file.csv"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn explain_reports_all_three_factors() {
    let dir = tmp_dir("explain");
    let csv = sample_csv(&dir);
    let out = bin()
        .args(["explain", csv.to_str().unwrap(), "--top", "3"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("why these charts"), "{stdout}");
    assert!(stdout.contains("Ranked #1"), "{stdout}");
    for factor in ["M = ", "Q = ", "W = "] {
        assert!(stdout.contains(factor), "missing {factor}:\n{stdout}");
    }
    assert!(stdout.contains("candidates enumerated"), "{stdout}");
}

#[test]
fn explain_single_query_and_provenance_export() {
    let dir = tmp_dir("explain-query");
    let csv = sample_csv(&dir);
    let prov_path = dir.join("prov.json");
    let query = "VISUALIZE bar\nSELECT region, AVG(revenue)\nFROM sales\nGROUP BY region";
    let out = bin()
        .args([
            "explain",
            csv.to_str().unwrap(),
            "--query",
            query,
            "--provenance-out",
            prov_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("bar"), "{stdout}");
    assert!(stdout.contains("M = "), "{stdout}");
    // The export next to it passes the schema + invariant validator.
    let text = std::fs::read_to_string(&prov_path).unwrap();
    let summary = deepeye::core::validate_provenance_json(&text).expect("provenance validates");
    assert!(summary.records > 0);
}

#[test]
fn recommend_writes_validating_provenance_file() {
    let dir = tmp_dir("rec-prov");
    let csv = sample_csv(&dir);
    let prov_path = dir.join("prov.json");
    let out = bin()
        .args([
            "recommend",
            csv.to_str().unwrap(),
            "3",
            "--provenance-out",
            prov_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = std::fs::read_to_string(&prov_path).unwrap();
    let summary = deepeye::core::validate_provenance_json(&text).expect("provenance validates");
    assert_eq!(summary.ranked, 3);
}

#[test]
fn explain_unknown_query_fails_cleanly() {
    let dir = tmp_dir("explain-miss");
    let csv = sample_csv(&dir);
    // Executable, but not a candidate the rules enumerate (raw bar chart
    // of two numeric columns, no transform).
    let query = "VISUALIZE bar\nSELECT revenue, units\nFROM sales";
    let out = bin()
        .args(["explain", csv.to_str().unwrap(), "--query", query])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("no provenance record"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}
