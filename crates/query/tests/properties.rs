//! Property-based tests for the query engine.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use deepeye_data::{Column, ColumnData, Table, TableBuilder, Timestamp};
use deepeye_query::{
    all_queries, execute, Aggregate, ChartType, Series, SortOrder, Transform, VisQuery,
};
use proptest::prelude::*;

fn arbitrary_table() -> impl Strategy<Value = Table> {
    let rows = 1usize..40;
    rows.prop_flat_map(|n| {
        (
            proptest::collection::vec(-100.0f64..100.0, n),
            proptest::collection::vec(0u8..4, n),
            proptest::collection::vec(0i64..100_000_000, n),
        )
            .prop_map(move |(nums, cats, secs)| {
                TableBuilder::new("t")
                    .numeric("num", nums)
                    .text("cat", cats.iter().map(|c| format!("c{c}")))
                    .column(Column::new(
                        "tem",
                        ColumnData::Temporal(
                            secs.iter()
                                .map(|&s| Some(Timestamp::from_unix_seconds(s)))
                                .collect(),
                        ),
                    ))
                    .build()
                    .unwrap()
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every query in the raw search space either executes cleanly or
    /// returns a typed error — no panics, no NaN outputs.
    #[test]
    fn execution_is_total((table, skip) in (arbitrary_table(), 0usize..200)) {
        // Sample a slice of the (large) space, offset by `skip`.
        for q in all_queries(&table).skip(skip * 7).take(50) {
            if let Ok(chart) = execute(&table, &q) {
                prop_assert!(!chart.series.is_empty());
                for y in chart.series.y_values() {
                    prop_assert!(y.is_finite(), "non-finite y from {q:?}");
                }
            }
        }
    }

    /// SUM over groups conserves the column total (ignoring null rows).
    #[test]
    fn group_sum_conservation(table in arbitrary_table()) {
        let q = VisQuery {
            chart: ChartType::Bar,
            x: "cat".into(),
            y: Some("num".into()),
            transform: Transform::Group,
            aggregate: Aggregate::Sum,
            order: SortOrder::None,
        };
        let chart = execute(&table, &q).unwrap();
        let grouped: f64 = chart.series.y_values().iter().sum();
        let direct: f64 = table.column_by_name("num").unwrap().numbers().iter().sum();
        prop_assert!((grouped - direct).abs() < 1e-6 * (1.0 + direct.abs()));
    }

    /// CNT over groups counts every non-null row exactly once.
    #[test]
    fn group_cnt_partition(table in arbitrary_table()) {
        let q = VisQuery {
            chart: ChartType::Pie,
            x: "cat".into(),
            y: None,
            transform: Transform::Group,
            aggregate: Aggregate::Cnt,
            order: SortOrder::None,
        };
        let chart = execute(&table, &q).unwrap();
        let total: f64 = chart.series.y_values().iter().sum();
        prop_assert_eq!(total as usize, table.row_count());
    }

    /// Binning into N buckets yields at most N buckets and counts every row.
    #[test]
    fn bin_partition((table, n) in (arbitrary_table(), 1usize..20)) {
        let q = VisQuery {
            chart: ChartType::Bar,
            x: "num".into(),
            y: None,
            transform: Transform::Bin(deepeye_query::BinStrategy::IntoBuckets(n)),
            aggregate: Aggregate::Cnt,
            order: SortOrder::None,
        };
        let chart = execute(&table, &q).unwrap();
        prop_assert!(chart.series.len() <= n);
        let total: f64 = chart.series.y_values().iter().sum();
        prop_assert_eq!(total as usize, table.row_count());
    }

    /// ORDER BY X yields a non-decreasing x-scale; ORDER BY Y a
    /// non-increasing y-series.
    #[test]
    fn order_by_laws(table in arbitrary_table()) {
        let base = VisQuery {
            chart: ChartType::Bar,
            x: "cat".into(),
            y: Some("num".into()),
            transform: Transform::Group,
            aggregate: Aggregate::Avg,
            order: SortOrder::ByX,
        };
        let by_x = execute(&table, &base).unwrap();
        if let Series::Keyed(pairs) = &by_x.series {
            for w in pairs.windows(2) {
                prop_assert!(w[0].0.total_cmp(&w[1].0) != std::cmp::Ordering::Greater);
            }
        }
        let by_y = execute(&table, &VisQuery { order: SortOrder::ByY, ..base }).unwrap();
        let ys = by_y.series.y_values();
        for w in ys.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
    }

    /// AVG of each group lies within the min/max of the underlying column.
    #[test]
    fn avg_within_bounds(table in arbitrary_table()) {
        let q = VisQuery {
            chart: ChartType::Bar,
            x: "cat".into(),
            y: Some("num".into()),
            transform: Transform::Group,
            aggregate: Aggregate::Avg,
            order: SortOrder::None,
        };
        let chart = execute(&table, &q).unwrap();
        let col = table.column_by_name("num").unwrap();
        let (lo, hi) = (col.min_scalar().unwrap(), col.max_scalar().unwrap());
        for y in chart.series.y_values() {
            prop_assert!(lo - 1e-9 <= y && y <= hi + 1e-9);
        }
    }

    /// Batch execution with shared scans returns exactly what the scalar
    /// executor returns, for every query in a sampled slice of the space.
    #[test]
    fn batch_equals_scalar((table, skip) in (arbitrary_table(), 0usize..100)) {
        let udfs = deepeye_query::UdfRegistry::default();
        let qs: Vec<VisQuery> = all_queries(&table).skip(skip * 11).take(40).collect();
        let batch = deepeye_query::execute_batch(&table, &qs, &udfs);
        for (q, b) in qs.iter().zip(batch) {
            let scalar = deepeye_query::execute_with(&table, q, &udfs);
            match (b, scalar) {
                (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
                (Err(_), Err(_)) => {}
                other => prop_assert!(false, "outcome mismatch for {:?}: {:?}", q, other),
            }
        }
    }

    /// Sorting never changes the multiset of y-values.
    #[test]
    fn sorting_preserves_values(table in arbitrary_table()) {
        let base = VisQuery {
            chart: ChartType::Bar,
            x: "cat".into(),
            y: Some("num".into()),
            transform: Transform::Group,
            aggregate: Aggregate::Sum,
            order: SortOrder::None,
        };
        let plain = execute(&table, &base).unwrap();
        let sorted = execute(&table, &VisQuery { order: SortOrder::ByY, ..base }).unwrap();
        let mut a = plain.series.y_values();
        let mut b = sorted.series.y_values();
        a.sort_by(f64::total_cmp);
        b.sort_by(f64::total_cmp);
        prop_assert_eq!(a, b);
    }
}
