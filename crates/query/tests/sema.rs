//! Integration tests for the static semantic analyzer (`deepeye_query::sema`).
//!
//! Two halves:
//!
//! 1. Property tests: over randomly generated tables, the lazy enumerator's
//!    `valid_queries` never emits a query the analyzer rejects, and
//!    `check_executable` agrees exactly with `analyze`'s error set.
//! 2. Table-driven negative tests: one crafted query per stable error code
//!    (`E0001`–`E0015`), asserting the analyzer reports that code first and
//!    that the executor indeed refuses the query; plus one crafted query per
//!    warning code (`W0101`–`W0108`) asserting the warning is raised and the
//!    query still executes.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use deepeye_data::{Column, ColumnData, Table, TableBuilder, TimeUnit, Timestamp};
use deepeye_query::sema::{self, Code, Severity};
use deepeye_query::{
    all_queries, analyze, analyze_multi_y, analyze_xyz, check_executable, execute_with,
    parse_query, valid_queries, Aggregate, BinStrategy, ChartType, MultiYQuery, QueryError,
    SortOrder, Transform, UdfRegistry, VisQuery, XyzQuery,
};
use proptest::prelude::*;

/// Fixture with one column of each type plus a numeric column that is
/// deliberately uncorrelated with `num` (for the W0107 scatter rule).
fn fixture() -> Table {
    let n = 24usize;
    TableBuilder::new("t")
        .numeric("num", (0..n).map(|i| i as f64))
        .numeric("noise", (0..n).map(|i| if i % 2 == 0 { 10.0 } else { 0.0 }))
        .text("cat", (0..n).map(|i| ["a", "b", "c"][i % 3]))
        .column(Column::new(
            "tem",
            ColumnData::Temporal(
                (0..n)
                    .map(|i| Some(Timestamp::from_unix_seconds(i as i64 * 86_400)))
                    .collect(),
            ),
        ))
        .build()
        .unwrap()
}

fn q(
    chart: ChartType,
    x: &str,
    y: Option<&str>,
    transform: Transform,
    aggregate: Aggregate,
    order: SortOrder,
) -> VisQuery {
    VisQuery {
        chart,
        x: x.to_owned(),
        y: y.map(str::to_owned),
        transform,
        aggregate,
        order,
    }
}

// ---------------------------------------------------------------------------
// Negative tests: one query per fatal code, E0001..E0013 via the scalar
// analyzer, E0014/E0015 via the multi-column analyzers.
// ---------------------------------------------------------------------------

/// One rejected query per fatal scalar code (E0001–E0013). E0014/E0015
/// come from the multi-column analyzers (see their dedicated tests);
/// `every_code_in_all_is_exercised_by_a_witness` accounts for them.
fn error_witnesses() -> Vec<(Code, VisQuery)> {
    use Aggregate::*;
    use ChartType::*;
    use SortOrder::None as NoOrder;
    use Transform::{Bin, Group, None as NoT};

    vec![
        (
            Code::UnknownXColumn,
            q(Bar, "nope", None, Group, Cnt, NoOrder),
        ),
        (
            Code::UnknownYColumn,
            q(Bar, "cat", Some("nope"), Group, Cnt, NoOrder),
        ),
        (
            Code::AggregateWithoutTransform,
            q(Bar, "cat", Some("num"), NoT, Cnt, NoOrder),
        ),
        (
            Code::TransformWithoutAggregate,
            q(Bar, "cat", Some("num"), Group, Raw, NoOrder),
        ),
        (Code::RawNeedsY, q(Line, "num", None, NoT, Raw, NoOrder)),
        (
            Code::RawNeedsNumericY,
            q(Line, "num", Some("cat"), NoT, Raw, NoOrder),
        ),
        (
            Code::CalendarBinOnNonTemporal,
            q(
                Line,
                "num",
                None,
                Bin(BinStrategy::Unit(TimeUnit::Hour)),
                Cnt,
                NoOrder,
            ),
        ),
        (
            Code::BucketBinOnNonNumeric,
            q(Bar, "cat", None, Bin(BinStrategy::Default), Cnt, NoOrder),
        ),
        (
            Code::ZeroBuckets,
            q(
                Bar,
                "num",
                None,
                Bin(BinStrategy::IntoBuckets(0)),
                Cnt,
                NoOrder,
            ),
        ),
        (
            Code::UnknownUdf,
            q(
                Bar,
                "num",
                None,
                Bin(BinStrategy::Udf("nope".into())),
                Cnt,
                NoOrder,
            ),
        ),
        (
            Code::UdfBinOnNonNumeric,
            q(
                Bar,
                "cat",
                None,
                Bin(BinStrategy::Udf("sign".into())),
                Cnt,
                NoOrder,
            ),
        ),
        (
            Code::OneColumnNeedsCnt,
            q(Bar, "cat", None, Group, Sum, NoOrder),
        ),
        (
            Code::AggregateNeedsNumericY,
            q(Bar, "cat", Some("cat"), Group, Sum, NoOrder),
        ),
    ]
}

#[test]
fn each_error_code_has_a_witness_query() {
    let table = fixture();
    let udfs = UdfRegistry::default();
    for (expected, query) in error_witnesses() {
        let first = check_executable(&table, &query, &udfs)
            .expect_err(&format!("{expected:?} witness must be rejected: {query:?}"));
        assert_eq!(
            first.code, expected,
            "wrong first diagnostic for {query:?}: {first:?}"
        );
        assert_eq!(first.severity(), Severity::Error);
        // The analyzer's full report contains the code too.
        assert!(
            analyze(&table, &query, &udfs)
                .iter()
                .any(|d| d.code == expected),
            "analyze() lost {expected:?} for {query:?}"
        );
        // And the executor refuses the query.
        assert!(
            execute_with(&table, &query, &udfs).is_err(),
            "executor accepted the {expected:?} witness {query:?}"
        );
    }
}

#[test]
fn multi_y_arity_is_e0014() {
    let table = fixture();
    let udfs = UdfRegistry::default();
    let query = MultiYQuery {
        chart: ChartType::Bar,
        x: "cat".into(),
        ys: vec!["num".into()],
        transform: Transform::Group,
        aggregate: Aggregate::Sum,
        order: SortOrder::None,
    };
    let diags = analyze_multi_y(&table, &query, &udfs);
    assert!(diags.iter().any(|d| d.code == Code::MultiYNeedsTwoColumns));
}

#[test]
fn xyz_without_transform_is_e0015() {
    let table = fixture();
    let udfs = UdfRegistry::default();
    let query = XyzQuery {
        chart: ChartType::Line,
        series_column: "cat".into(),
        x: "tem".into(),
        x_transform: Transform::None,
        z: "num".into(),
        aggregate: Aggregate::Sum,
    };
    let diags = analyze_xyz(&table, &query, &udfs);
    assert!(diags.iter().any(|d| d.code == Code::XyzNeedsTransform));
}

// ---------------------------------------------------------------------------
// Warning witnesses: each W-code query executes, but analyze() flags it.
// ---------------------------------------------------------------------------

/// One executable-but-flagged query per warning code (W0101–W0108).
fn warning_witnesses() -> Vec<(Code, VisQuery)> {
    use Aggregate::*;
    use ChartType::*;
    use Transform::{Bin, Group, None as NoT};

    vec![
        (
            Code::RawOnCategoricalX,
            q(Line, "cat", Some("num"), NoT, Raw, SortOrder::None),
        ),
        (
            Code::GroupOnNumericX,
            q(Bar, "num", None, Group, Cnt, SortOrder::None),
        ),
        (
            Code::RawBarChart,
            q(Bar, "num", Some("num"), NoT, Raw, SortOrder::None),
        ),
        (
            Code::ChartTypeMismatch,
            q(Pie, "num", Some("num"), NoT, Raw, SortOrder::None),
        ),
        (
            Code::NonEnumerableBin,
            q(
                Bar,
                "num",
                None,
                Bin(BinStrategy::IntoBuckets(7)),
                Cnt,
                SortOrder::None,
            ),
        ),
        (
            Code::OrderByXOnCategorical,
            q(Bar, "cat", None, Group, Cnt, SortOrder::ByX),
        ),
        (
            Code::UncorrelatedScatter,
            q(Scatter, "num", Some("noise"), NoT, Raw, SortOrder::None),
        ),
        (
            Code::RawOrderByY,
            q(Line, "num", Some("num"), NoT, Raw, SortOrder::ByY),
        ),
    ]
}

#[test]
fn each_warning_code_has_an_executable_witness() {
    let table = fixture();
    let udfs = UdfRegistry::default();
    for (expected, query) in warning_witnesses() {
        assert_eq!(expected.severity(), Severity::Warning);
        let diags = analyze(&table, &query, &udfs);
        assert!(
            diags.iter().any(|d| d.code == expected),
            "missing {expected:?} for {query:?}; got {diags:?}"
        );
        assert!(
            diags.iter().all(|d| !d.is_error()),
            "warning witness for {expected:?} must be error-free: {diags:?}"
        );
        // Warnings never block execution.
        match execute_with(&table, &query, &udfs) {
            Ok(_) | Err(QueryError::EmptyResult) => {}
            Err(e) => panic!("warning witness for {expected:?} failed to execute: {e:?}"),
        }
    }
}

/// Completeness regression: **every** code in [`Code::ALL`] is
/// exercised by a negative witness above. Adding a new diagnostic code
/// without a witness query fails here, so coverage cannot silently rot.
#[test]
fn every_code_in_all_is_exercised_by_a_witness() {
    let mut covered: Vec<Code> = error_witnesses()
        .into_iter()
        .chain(warning_witnesses())
        .map(|(code, _)| code)
        // Multi-column codes have dedicated witnesses in
        // `multi_y_arity_is_e0014` / `xyz_without_transform_is_e0015`.
        .chain([Code::MultiYNeedsTwoColumns, Code::XyzNeedsTransform])
        .collect();
    let before = covered.len();
    covered.sort_by_key(|c| c.as_str());
    covered.dedup();
    assert_eq!(
        before,
        covered.len(),
        "a code has two witnesses in one table"
    );
    let all: Vec<Code> = Code::ALL.to_vec();
    for code in &all {
        assert!(
            covered.contains(code),
            "{code} ({code:?}) is in Code::ALL but no negative witness exercises it"
        );
    }
    assert_eq!(
        covered.len(),
        all.len(),
        "witness for a code not in Code::ALL"
    );
}

#[test]
fn rendered_diagnostic_points_at_offending_clause() {
    let table = fixture();
    let source = "VISUALIZE bar\nSELECT num\nFROM t\nBIN num BY HOUR";
    let parsed = parse_query(source).unwrap();
    let first = check_executable(&table, &parsed.query, &UdfRegistry::default())
        .expect_err("calendar bin on numeric x must be rejected");
    assert_eq!(first.code, Code::CalendarBinOnNonTemporal);
    let rendered = first.render(source, &parsed.spans);
    assert!(
        rendered.starts_with("error[E0007]:"),
        "unexpected render: {rendered}"
    );
    assert!(
        rendered.contains("line 4: BIN num BY HOUR"),
        "render must quote the TRANSFORM clause source: {rendered}"
    );
}

// ---------------------------------------------------------------------------
// Property tests.
// ---------------------------------------------------------------------------

fn arbitrary_table() -> impl Strategy<Value = Table> {
    let rows = 1usize..40;
    rows.prop_flat_map(|n| {
        (
            proptest::collection::vec(-100.0f64..100.0, n),
            proptest::collection::vec(0u8..4, n),
            proptest::collection::vec(0i64..100_000_000, n),
        )
            .prop_map(move |(nums, cats, secs)| {
                TableBuilder::new("t")
                    .numeric("num", nums)
                    .text("cat", cats.iter().map(|c| format!("c{c}")))
                    .column(Column::new(
                        "tem",
                        ColumnData::Temporal(
                            secs.iter()
                                .map(|&s| Some(Timestamp::from_unix_seconds(s)))
                                .collect(),
                        ),
                    ))
                    .build()
                    .unwrap()
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The enumerator invariant: `valid_queries` never yields a query the
    /// analyzer rejects, and every one of them executes (or is merely
    /// empty on this data).
    #[test]
    fn valid_queries_are_error_free(table in arbitrary_table()) {
        let udfs = UdfRegistry::default();
        for query in valid_queries(&table, &udfs).take(400) {
            let errors: Vec<_> = analyze(&table, &query, &udfs)
                .into_iter()
                .filter(|d| d.is_error())
                .collect();
            prop_assert!(errors.is_empty(), "enumerator emitted {query:?}: {errors:?}");
            let outcome = execute_with(&table, &query, &udfs);
            prop_assert!(
                matches!(outcome, Ok(_) | Err(QueryError::EmptyResult)),
                "sema-clean query failed: {query:?}: {outcome:?}"
            );
        }
    }

    /// `check_executable` and `analyze` agree on which queries are fatal,
    /// across the whole raw search space (sampled).
    #[test]
    fn check_executable_agrees_with_analyze((table, skip) in (arbitrary_table(), 0usize..100)) {
        let udfs = UdfRegistry::default();
        for query in all_queries(&table).skip(skip * 11).take(120) {
            let has_error = analyze(&table, &query, &udfs).iter().any(sema::Diagnostic::is_error);
            let rejected = check_executable(&table, &query, &udfs).is_err();
            prop_assert_eq!(
                has_error, rejected,
                "analyze/check_executable disagree on {:?}", query
            );
        }
    }
}
