//! Static semantic analysis for the visualization language.
//!
//! [`analyze`] checks a [`VisQuery`] against a table schema *before*
//! execution and returns structured [`Diagnostic`]s. Two severities:
//!
//! - [`Severity::Error`] — the executor would reject the query
//!   ([`crate::execute`] refuses to run it and reports the same condition
//!   as a [`QueryError`]). Example: `BIN carrier BY HOUR` over a
//!   categorical column.
//! - [`Severity::Warning`] — the query executes, but violates a
//!   "meaningful visualization" rule of §V-A of the paper, so the
//!   rule-based enumerator never emits it. Example: a raw bar chart over
//!   thousands of rows.
//!
//! A query is **sema-clean** (no diagnostics at all) exactly when the
//! §V-A rules admit it; `deepeye_core::rules::passes_rules` is a thin
//! wrapper over this module.
//!
//! # Error-code reference
//!
//! | Code  | Clause     | Condition |
//! |-------|------------|-----------|
//! | E0001 | SELECT     | x column does not exist |
//! | E0002 | SELECT     | y column does not exist |
//! | E0003 | TRANSFORM  | aggregate without GROUP/BIN transform |
//! | E0004 | SELECT     | GROUP/BIN transform without an aggregate |
//! | E0005 | SELECT     | raw query without a y column |
//! | E0006 | SELECT     | raw query with a non-numeric y column |
//! | E0007 | TRANSFORM  | calendar `BIN … BY unit` on a non-temporal x |
//! | E0008 | TRANSFORM  | bucket `BIN` on a non-numeric x |
//! | E0009 | TRANSFORM  | `BIN … INTO 0` |
//! | E0010 | TRANSFORM  | `BIN … BY UDF(name)` with unregistered name |
//! | E0011 | TRANSFORM  | UDF bin on a non-numeric x |
//! | E0012 | SELECT     | one-column query with SUM/AVG (CNT only) |
//! | E0013 | SELECT     | SUM/AVG over a non-numeric y |
//! | E0014 | SELECT     | multi-Y query with fewer than two y columns |
//! | E0015 | TRANSFORM  | XYZ query without a GROUP/BIN on its x column |
//! | W0101 | SELECT     | raw (untransformed) categorical x |
//! | W0102 | TRANSFORM  | GROUP BY on a numeric x (bin instead) |
//! | W0103 | VISUALIZE  | raw bar chart (bars come from transforms) |
//! | W0104 | VISUALIZE  | chart type unsuited to the x-scale (Table 1) |
//! | W0105 | TRANSFORM  | bin outside the paper's nine enumerable cases |
//! | W0106 | ORDER BY   | ORDER BY X on a categorical x-scale |
//! | W0107 | VISUALIZE  | scatter of uncorrelated columns |
//! | W0108 | ORDER BY   | ORDER BY Y on a raw (unaggregated) query |

use crate::ast::{Aggregate, BinStrategy, ChartType, SortOrder, Transform, VisQuery};
use crate::bins::{BinError, UdfRegistry};
use crate::exec::QueryError;
use deepeye_data::{correlation, DataType, Table};
use std::fmt;
use std::sync::OnceLock;

/// Minimum |correlation| between two numeric columns for the visualization
/// rule "T(X)=Num, T(Y)=Num, (X,Y) correlated → scatter" to fire.
pub const SCATTER_CORRELATION_THRESHOLD: f64 = 0.5;

/// How severe a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Severity {
    /// The executor statically rejects the query.
    Error,
    /// The query executes but the §V-A rules consider it meaningless.
    Warning,
}

/// The query clause a diagnostic points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Clause {
    Visualize,
    Select,
    From,
    Transform,
    OrderBy,
}

impl Clause {
    pub fn name(self) -> &'static str {
        match self {
            Clause::Visualize => "VISUALIZE",
            Clause::Select => "SELECT",
            Clause::From => "FROM",
            Clause::Transform => "TRANSFORM",
            Clause::OrderBy => "ORDER BY",
        }
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Stable diagnostic codes. `E…` codes are fatal (the executor rejects the
/// query); `W…` codes mark executable-but-meaningless queries per §V-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Code {
    /// E0001: the x column named in SELECT does not exist.
    UnknownXColumn,
    /// E0002: the y column named in SELECT does not exist.
    UnknownYColumn,
    /// E0003: SUM/AVG/CNT without a GROUP/BIN transform.
    AggregateWithoutTransform,
    /// E0004: GROUP/BIN transform without an aggregate.
    TransformWithoutAggregate,
    /// E0005: raw (untransformed) query without a y column.
    RawNeedsY,
    /// E0006: raw query whose y column is not numerical.
    RawNeedsNumericY,
    /// E0007: `BIN x BY <calendar unit>` on a non-temporal x.
    CalendarBinOnNonTemporal,
    /// E0008: `BIN x` / `BIN x INTO n` on a non-numeric x.
    BucketBinOnNonNumeric,
    /// E0009: `BIN x INTO 0`.
    ZeroBuckets,
    /// E0010: `BIN x BY UDF(name)` where `name` is not registered.
    UnknownUdf,
    /// E0011: UDF bin on a non-numeric x.
    UdfBinOnNonNumeric,
    /// E0012: one-column query with SUM/AVG (only CNT is defined).
    OneColumnNeedsCnt,
    /// E0013: SUM/AVG over a non-numeric y.
    AggregateNeedsNumericY,
    /// E0014: multi-Y query with fewer than two y columns.
    MultiYNeedsTwoColumns,
    /// E0015: XYZ query whose x column is neither grouped nor binned.
    XyzNeedsTransform,
    /// W0101: raw plot of a categorical x-scale.
    RawOnCategoricalX,
    /// W0102: GROUP BY on a numeric x (§V-A bins numerics instead).
    GroupOnNumericX,
    /// W0103: raw bar chart — one bar per row is never meaningful.
    RawBarChart,
    /// W0104: chart type unsuited to the (transformed) x-scale.
    ChartTypeMismatch,
    /// W0105: executable bin outside the paper's nine enumerable cases.
    NonEnumerableBin,
    /// W0106: ORDER BY X over a categorical x-scale (no natural order).
    OrderByXOnCategorical,
    /// W0107: scatter of two numeric columns that are not correlated.
    UncorrelatedScatter,
    /// W0108: ORDER BY Y on a raw (unaggregated) query.
    RawOrderByY,
}

impl Code {
    /// Every code, errors first, in numeric order.
    pub const ALL: [Code; 23] = [
        Code::UnknownXColumn,
        Code::UnknownYColumn,
        Code::AggregateWithoutTransform,
        Code::TransformWithoutAggregate,
        Code::RawNeedsY,
        Code::RawNeedsNumericY,
        Code::CalendarBinOnNonTemporal,
        Code::BucketBinOnNonNumeric,
        Code::ZeroBuckets,
        Code::UnknownUdf,
        Code::UdfBinOnNonNumeric,
        Code::OneColumnNeedsCnt,
        Code::AggregateNeedsNumericY,
        Code::MultiYNeedsTwoColumns,
        Code::XyzNeedsTransform,
        Code::RawOnCategoricalX,
        Code::GroupOnNumericX,
        Code::RawBarChart,
        Code::ChartTypeMismatch,
        Code::NonEnumerableBin,
        Code::OrderByXOnCategorical,
        Code::UncorrelatedScatter,
        Code::RawOrderByY,
    ];

    /// The stable textual code, e.g. `"E0007"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::UnknownXColumn => "E0001",
            Code::UnknownYColumn => "E0002",
            Code::AggregateWithoutTransform => "E0003",
            Code::TransformWithoutAggregate => "E0004",
            Code::RawNeedsY => "E0005",
            Code::RawNeedsNumericY => "E0006",
            Code::CalendarBinOnNonTemporal => "E0007",
            Code::BucketBinOnNonNumeric => "E0008",
            Code::ZeroBuckets => "E0009",
            Code::UnknownUdf => "E0010",
            Code::UdfBinOnNonNumeric => "E0011",
            Code::OneColumnNeedsCnt => "E0012",
            Code::AggregateNeedsNumericY => "E0013",
            Code::MultiYNeedsTwoColumns => "E0014",
            Code::XyzNeedsTransform => "E0015",
            Code::RawOnCategoricalX => "W0101",
            Code::GroupOnNumericX => "W0102",
            Code::RawBarChart => "W0103",
            Code::ChartTypeMismatch => "W0104",
            Code::NonEnumerableBin => "W0105",
            Code::OrderByXOnCategorical => "W0106",
            Code::UncorrelatedScatter => "W0107",
            Code::RawOrderByY => "W0108",
        }
    }

    pub fn severity(self) -> Severity {
        if self.as_str().starts_with('E') {
            Severity::Error
        } else {
            Severity::Warning
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding of the analyzer: a code, the clause it points at, a
/// human-readable message, and an optional fix-it suggestion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub code: Code,
    pub clause: Clause,
    pub message: String,
    pub suggestion: Option<String>,
}

impl Diagnostic {
    pub(crate) fn new(code: Code, clause: Clause, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            clause,
            message: message.into(),
            suggestion: None,
        }
    }

    pub(crate) fn with_suggestion(mut self, s: impl Into<String>) -> Self {
        self.suggestion = Some(s.into());
        self
    }

    pub fn severity(&self) -> Severity {
        self.code.severity()
    }

    pub fn is_error(&self) -> bool {
        self.severity() == Severity::Error
    }

    /// Map a fatal diagnostic onto the executor's [`QueryError`], preserving
    /// the error variants `execute` has always reported (`NoSuchColumn` for
    /// E0001/E0002, `Bin` for E0007–E0011, `Invalid` otherwise).
    pub fn into_query_error(self, query: &VisQuery) -> QueryError {
        match self.code {
            Code::UnknownXColumn => QueryError::NoSuchColumn(query.x.clone()),
            Code::UnknownYColumn => QueryError::NoSuchColumn(query.y.clone().unwrap_or_default()),
            Code::CalendarBinOnNonTemporal => QueryError::Bin(BinError::NotTemporal),
            Code::BucketBinOnNonNumeric | Code::UdfBinOnNonNumeric => {
                QueryError::Bin(BinError::NotNumeric)
            }
            Code::ZeroBuckets => QueryError::Bin(BinError::ZeroBuckets),
            Code::UnknownUdf => {
                let name = match &query.transform {
                    Transform::Bin(BinStrategy::Udf(n)) => n.clone(),
                    _ => String::new(),
                };
                QueryError::Bin(BinError::UnknownUdf(name))
            }
            _ => QueryError::Invalid(self.message),
        }
    }

    /// Render in a compiler-like format against the original query text,
    /// pointing at the offending clause via the parser's recorded spans.
    ///
    /// ```text
    /// error[E0007]: calendar binning requires a temporal x column …
    ///   --> line 4: BIN delay BY HOUR
    ///   = help: bin `delay` into equi-width buckets instead
    /// ```
    pub fn render(&self, source: &str, spans: &crate::parser::ClauseSpans) -> String {
        let level = match self.severity() {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        let mut out = format!("{level}[{}]: {}", self.code, self.message);
        if let Some(span) = spans.get(self.clause) {
            let snippet = source.get(span.start..span.end).unwrap_or("");
            out.push_str(&format!("\n  --> line {}: {snippet}", span.line));
        } else {
            out.push_str(&format!("\n  --> in the {} clause", self.clause));
        }
        if let Some(s) = &self.suggestion {
            out.push_str(&format!("\n  = help: {s}"));
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let level = match self.severity() {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(f, "{level}[{}]: {}", self.code, self.message)
    }
}

/// The process-wide default UDF registry (the paper's `sign` splitter),
/// shared so rule filtering does not rebuild it per query.
pub fn default_registry() -> &'static UdfRegistry {
    static REGISTRY: OnceLock<UdfRegistry> = OnceLock::new();
    REGISTRY.get_or_init(UdfRegistry::default)
}

// ---------------------------------------------------------------------------
// §V-A rule tables. These are the type-level legality tables of the paper;
// they live here (with the language) and are re-exported by
// `deepeye_core::rules` for the enumerator.
// ---------------------------------------------------------------------------

/// Transformation rules (§V-A.1): which transforms may be applied to an
/// x-column of the given type.
///
/// - categorical: group only;
/// - numerical: bin only (default equi-width buckets or the UDF splitter);
/// - temporal: group or bin by any calendar unit.
pub fn applicable_transforms(x_type: DataType) -> Vec<Transform> {
    match x_type {
        DataType::Categorical => vec![Transform::Group],
        DataType::Numerical => vec![
            Transform::Bin(BinStrategy::Default),
            Transform::Bin(BinStrategy::Udf("sign".to_owned())),
        ],
        DataType::Temporal => {
            let mut t = vec![Transform::Group];
            t.extend(
                deepeye_data::TimeUnit::ALL
                    .into_iter()
                    .map(|u| Transform::Bin(BinStrategy::Unit(u))),
            );
            t
        }
    }
}

/// Aggregation half of the transformation rules: AGG = {AVG, SUM, CNT} when
/// Y is numerical, CNT only otherwise.
pub fn applicable_aggregates(y_type: Option<DataType>) -> Vec<Aggregate> {
    match y_type {
        Some(DataType::Numerical) => vec![Aggregate::Avg, Aggregate::Sum, Aggregate::Cnt],
        _ => vec![Aggregate::Cnt],
    }
}

/// The data type of X' after a transform is applied to an x-column of type
/// `x_type`. Grouping preserves the type; interval bins keep a numeric
/// scale; the sign UDF yields categories; calendar bins keep time.
pub fn transformed_x_type(x_type: DataType, transform: &Transform) -> DataType {
    match transform {
        Transform::None | Transform::Group => x_type,
        Transform::Bin(BinStrategy::Default) | Transform::Bin(BinStrategy::IntoBuckets(_)) => {
            DataType::Numerical
        }
        Transform::Bin(BinStrategy::Udf(_)) => DataType::Categorical,
        Transform::Bin(BinStrategy::Unit(_)) => DataType::Temporal,
    }
}

/// Visualization rules (§V-A.3): which chart types suit (T(X'), numeric Y').
///
/// - Cat/Num → bar, pie;
/// - Num/Num → line, bar; scatter additionally when correlated;
/// - Tem/Num → line.
pub fn applicable_charts(x_prime_type: DataType, correlated: bool) -> Vec<ChartType> {
    match x_prime_type {
        DataType::Categorical => vec![ChartType::Bar, ChartType::Pie],
        DataType::Numerical => {
            let mut c = vec![ChartType::Line, ChartType::Bar];
            if correlated {
                c.push(ChartType::Scatter);
            }
            c
        }
        DataType::Temporal => vec![ChartType::Line],
    }
}

/// Sorting rules (§V-A.2): numerical/temporal x-scales may be sorted by X';
/// the (always numerical) aggregate may be sorted by Y'; not sorting is
/// always allowed.
pub fn applicable_orders(x_prime_type: DataType) -> Vec<SortOrder> {
    match x_prime_type {
        DataType::Categorical => vec![SortOrder::None, SortOrder::ByY],
        DataType::Numerical | DataType::Temporal => {
            vec![SortOrder::None, SortOrder::ByX, SortOrder::ByY]
        }
    }
}

// ---------------------------------------------------------------------------
// Analysis entry points.
// ---------------------------------------------------------------------------

/// Full analysis: every error the executor would raise plus every §V-A
/// meaningfulness warning. A query with an empty result is *sema-clean*:
/// it executes and the rule-based enumerator would admit it.
pub fn analyze(table: &Table, query: &VisQuery, udfs: &UdfRegistry) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    collect_errors(table, query, udfs, &mut out);
    collect_warnings(table, query, udfs, &mut out);
    out
}

/// Fast path for the executor: the first fatal diagnostic, in the same
/// order the executor itself discovers failures (so the mapped
/// [`QueryError`] is identical to what execution would have produced).
pub fn check_executable(
    table: &Table,
    query: &VisQuery,
    udfs: &UdfRegistry,
) -> Result<(), Diagnostic> {
    let mut errors = Vec::new();
    collect_errors(table, query, udfs, &mut errors);
    match errors.into_iter().next() {
        Some(d) => Err(d),
        None => Ok(()),
    }
}

/// Collect fatal diagnostics in executor discovery order: column lookups,
/// transform/aggregate combination, bin/type compatibility, aggregate/y
/// compatibility.
fn collect_errors(table: &Table, query: &VisQuery, udfs: &UdfRegistry, out: &mut Vec<Diagnostic>) {
    let x_col = table.column_by_name(&query.x);
    if x_col.is_none() {
        out.push(
            Diagnostic::new(
                Code::UnknownXColumn,
                Clause::Select,
                format!("no column named {:?} in table {:?}", query.x, table.name()),
            )
            .with_suggestion(column_names_hint(table)),
        );
    }
    let y_col = query.y.as_ref().map(|y| (y, table.column_by_name(y)));
    if let Some((y, None)) = &y_col {
        out.push(
            Diagnostic::new(
                Code::UnknownYColumn,
                Clause::Select,
                format!("no column named {y:?} in table {:?}", table.name()),
            )
            .with_suggestion(column_names_hint(table)),
        );
    }
    let x_type = x_col.map(|c| c.data_type());
    let y_type = match &y_col {
        Some((_, Some(c))) => Some(c.data_type()),
        _ => None,
    };

    match (&query.transform, query.aggregate) {
        (Transform::None, Aggregate::Raw) => {
            if query.y.is_none() {
                out.push(
                    Diagnostic::new(
                        Code::RawNeedsY,
                        Clause::Select,
                        "a raw (untransformed) query needs an explicit y column",
                    )
                    .with_suggestion(format!(
                        "aggregate instead: SELECT {0}, CNT({0}) with GROUP BY or BIN",
                        query.x
                    )),
                );
            } else if let Some((y, Some(_))) = &y_col {
                if y_type != Some(DataType::Numerical) {
                    out.push(
                        Diagnostic::new(
                            Code::RawNeedsNumericY,
                            Clause::Select,
                            format!(
                                "raw queries plot y values directly, but {y:?} is {}",
                                type_name(y_type)
                            ),
                        )
                        .with_suggestion("pick a numerical y column, or aggregate with CNT"),
                    );
                }
            }
        }
        (Transform::None, agg) => {
            out.push(
                Diagnostic::new(
                    Code::AggregateWithoutTransform,
                    Clause::Transform,
                    format!("{} requires a GROUP BY or BIN transform", agg.name()),
                )
                .with_suggestion(format!("add `GROUP BY {0}` or `BIN {0}`", query.x)),
            );
        }
        (Transform::Group | Transform::Bin(_), Aggregate::Raw) => {
            out.push(
                Diagnostic::new(
                    Code::TransformWithoutAggregate,
                    Clause::Select,
                    "a GROUP/BIN transform requires an aggregate (SUM, AVG, or CNT)",
                )
                .with_suggestion(match &query.y {
                    Some(y) => format!("select an aggregate, e.g. AVG({y})"),
                    None => format!("select an aggregate, e.g. CNT({})", query.x),
                }),
            );
        }
        (transform, agg) => {
            if let Transform::Bin(strategy) = transform {
                bin_errors(strategy, x_type, &query.x, udfs, out);
            }
            match (&query.y, agg) {
                (None, Aggregate::Cnt) | (Some(_), Aggregate::Cnt) => {}
                (None, other) => {
                    out.push(
                        Diagnostic::new(
                            Code::OneColumnNeedsCnt,
                            Clause::Select,
                            format!("one-column queries support CNT only, got {}", other.name()),
                        )
                        .with_suggestion(format!("use CNT({})", query.x)),
                    );
                }
                (Some(y), other) => {
                    if y_col.as_ref().is_some_and(|(_, c)| c.is_some())
                        && y_type != Some(DataType::Numerical)
                    {
                        out.push(
                            Diagnostic::new(
                                Code::AggregateNeedsNumericY,
                                Clause::Select,
                                format!(
                                    "{} requires a numerical y column, {y:?} is {}",
                                    other.name(),
                                    type_name(y_type)
                                ),
                            )
                            .with_suggestion(format!("count instead: CNT({y})")),
                        );
                    }
                }
            }
        }
    }
}

/// Fatal bin-strategy/type incompatibilities, in executor order: zero
/// buckets and UDF resolution are checked before the column type.
fn bin_errors(
    strategy: &BinStrategy,
    x_type: Option<DataType>,
    x: &str,
    udfs: &UdfRegistry,
    out: &mut Vec<Diagnostic>,
) {
    match strategy {
        BinStrategy::Unit(unit) => {
            if x_type.is_some() && x_type != Some(DataType::Temporal) {
                out.push(
                    Diagnostic::new(
                        Code::CalendarBinOnNonTemporal,
                        Clause::Transform,
                        format!(
                            "`BIN {x} BY {unit}` needs a temporal column, {x:?} is {}",
                            type_name(x_type)
                        ),
                    )
                    .with_suggestion(if x_type == Some(DataType::Numerical) {
                        format!("bin {x:?} into equi-width buckets instead: BIN {x}")
                    } else {
                        format!("group instead: GROUP BY {x}")
                    }),
                );
            }
        }
        BinStrategy::Default | BinStrategy::IntoBuckets(_) => {
            if let BinStrategy::IntoBuckets(0) = strategy {
                out.push(
                    Diagnostic::new(
                        Code::ZeroBuckets,
                        Clause::Transform,
                        "cannot bin into zero buckets",
                    )
                    .with_suggestion(format!("use `BIN {x}` for the default bucket count")),
                );
            } else if x_type.is_some() && x_type != Some(DataType::Numerical) {
                out.push(
                    Diagnostic::new(
                        Code::BucketBinOnNonNumeric,
                        Clause::Transform,
                        format!(
                            "equi-width binning needs a numeric column, {x:?} is {}",
                            type_name(x_type)
                        ),
                    )
                    .with_suggestion(if x_type == Some(DataType::Temporal) {
                        format!("bin by a calendar unit instead, e.g. BIN {x} BY MONTH")
                    } else {
                        format!("group instead: GROUP BY {x}")
                    }),
                );
            }
        }
        BinStrategy::Udf(name) => {
            if udfs.get(name).is_none() {
                let mut known: Vec<&str> = udfs.names().collect();
                known.sort_unstable();
                out.push(
                    Diagnostic::new(
                        Code::UnknownUdf,
                        Clause::Transform,
                        format!("no UDF bin named {name:?} is registered"),
                    )
                    .with_suggestion(format!("registered UDFs: {}", known.join(", "))),
                );
            } else if x_type.is_some() && x_type != Some(DataType::Numerical) {
                out.push(
                    Diagnostic::new(
                        Code::UdfBinOnNonNumeric,
                        Clause::Transform,
                        format!(
                            "UDF binning needs a numeric column, {x:?} is {}",
                            type_name(x_type)
                        ),
                    )
                    .with_suggestion(format!("group instead: GROUP BY {x}")),
                );
            }
        }
    }
}

/// Collect §V-A meaningfulness warnings. Only emitted for aspects whose
/// prerequisites resolved (unknown columns already produced errors).
fn collect_warnings(
    table: &Table,
    query: &VisQuery,
    udfs: &UdfRegistry,
    out: &mut Vec<Diagnostic>,
) {
    let Some(x_col) = table.column_by_name(&query.x) else {
        return;
    };
    let x_type = x_col.data_type();
    let y_col = match &query.y {
        Some(y) => match table.column_by_name(y) {
            Some(c) => Some(c),
            None => return,
        },
        None => None,
    };
    let y_type = y_col.map(|c| c.data_type());

    match &query.transform {
        Transform::None => {
            if query.aggregate != Aggregate::Raw {
                return; // E0003 already reported; rules have nothing to add.
            }
            if x_type == DataType::Categorical {
                out.push(
                    Diagnostic::new(
                        Code::RawOnCategoricalX,
                        Clause::Select,
                        format!(
                            "plotting raw rows over categorical {:?} repeats labels per row",
                            query.x
                        ),
                    )
                    .with_suggestion(format!("group and aggregate: GROUP BY {}", query.x)),
                );
            }
            if query.order == SortOrder::ByY {
                out.push(
                    Diagnostic::new(
                        Code::RawOrderByY,
                        Clause::OrderBy,
                        "sorting raw rows by y hides the x relationship the chart shows",
                    )
                    .with_suggestion("use ORDER BY x, or drop the clause"),
                );
            }
            if query.chart == ChartType::Bar {
                out.push(
                    Diagnostic::new(
                        Code::RawBarChart,
                        Clause::Visualize,
                        "a raw bar chart draws one bar per row; bars come from transforms",
                    )
                    .with_suggestion(format!(
                        "GROUP BY or BIN {} and aggregate, or VISUALIZE line",
                        query.x
                    )),
                );
            } else if x_type != DataType::Categorical {
                raw_chart_warnings(query, x_col, y_col, x_type, y_type, out);
            }
        }
        transform => {
            if x_type == DataType::Numerical && *transform == Transform::Group {
                out.push(
                    Diagnostic::new(
                        Code::GroupOnNumericX,
                        Clause::Transform,
                        format!(
                            "grouping numeric {:?} by exact value makes near-singleton buckets",
                            query.x
                        ),
                    )
                    .with_suggestion(format!("bin instead: BIN {}", query.x)),
                );
            }
            if let Transform::Bin(strategy) = transform {
                let non_enumerable = match strategy {
                    BinStrategy::IntoBuckets(_) => x_type == DataType::Numerical,
                    BinStrategy::Udf(name) => {
                        name != "sign" && x_type == DataType::Numerical && udfs.get(name).is_some()
                    }
                    BinStrategy::Unit(_) | BinStrategy::Default => false,
                };
                if non_enumerable {
                    out.push(
                        Diagnostic::new(
                            Code::NonEnumerableBin,
                            Clause::Transform,
                            format!(
                                "`BIN {} {}` executes but is outside the paper's nine \
                                 enumerable bin cases, so enumeration never emits it",
                                query.x,
                                strategy_text(strategy)
                            ),
                        )
                        .with_suggestion(format!(
                            "use the default buckets (BIN {}) or UDF(sign)",
                            query.x
                        )),
                    );
                }
            }
            let x_prime = transformed_x_type(x_type, transform);
            if !applicable_charts(x_prime, false).contains(&query.chart) {
                out.push(chart_mismatch(query.chart, x_prime));
            }
            if !applicable_orders(x_prime).contains(&query.order) {
                out.push(
                    Diagnostic::new(
                        Code::OrderByXOnCategorical,
                        Clause::OrderBy,
                        "a categorical x-scale has no natural order to sort by",
                    )
                    .with_suggestion("sort by the aggregate instead (ORDER BY the y expression)"),
                );
            }
        }
    }
}

/// Chart-type warnings for raw (untransformed) numeric/temporal plots,
/// including the data-dependent scatter-correlation rule.
fn raw_chart_warnings(
    query: &VisQuery,
    x_col: &deepeye_data::Column,
    y_col: Option<&deepeye_data::Column>,
    x_type: DataType,
    y_type: Option<DataType>,
    out: &mut Vec<Diagnostic>,
) {
    match (x_type, query.chart) {
        (_, ChartType::Line) => {}
        (DataType::Numerical, ChartType::Scatter) => {
            // Data-dependent rule: scatter wants |corr(X, Y)| ≥ threshold.
            if let (Some(y_col), Some(DataType::Numerical)) = (y_col, y_type) {
                let xs = x_col.numbers();
                let ys = y_col.numbers();
                let strength = correlation(&xs, &ys).strength();
                if strength < SCATTER_CORRELATION_THRESHOLD {
                    out.push(
                        Diagnostic::new(
                            Code::UncorrelatedScatter,
                            Clause::Visualize,
                            format!(
                                "scatter plots tell correlation stories, but |corr| = {strength:.2} \
                                 < {SCATTER_CORRELATION_THRESHOLD}"
                            ),
                        )
                        .with_suggestion("VISUALIZE line, or pick correlated columns"),
                    );
                }
            }
        }
        (_, chart) => out.push(chart_mismatch(chart, x_type)),
    }
}

fn chart_mismatch(chart: ChartType, x_prime: DataType) -> Diagnostic {
    let suited: Vec<&str> = applicable_charts(x_prime, false)
        .into_iter()
        .map(ChartType::name)
        .collect();
    Diagnostic::new(
        Code::ChartTypeMismatch,
        Clause::Visualize,
        format!(
            "a {chart} chart does not suit a {} x-scale",
            type_word(x_prime)
        ),
    )
    .with_suggestion(format!("suitable charts: {}", suited.join(", ")))
}

fn column_names_hint(table: &Table) -> String {
    let names: Vec<&str> = table.columns().iter().map(|c| c.name()).collect();
    format!("available columns: {}", names.join(", "))
}

fn type_name(t: Option<DataType>) -> &'static str {
    match t {
        Some(DataType::Numerical) => "numerical",
        Some(DataType::Categorical) => "categorical",
        Some(DataType::Temporal) => "temporal",
        None => "unknown",
    }
}

fn type_word(t: DataType) -> &'static str {
    match t {
        DataType::Numerical => "numerical",
        DataType::Categorical => "categorical",
        DataType::Temporal => "temporal",
    }
}

fn strategy_text(s: &BinStrategy) -> String {
    let text = s.to_string();
    if text.is_empty() {
        "(default)".to_owned()
    } else {
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepeye_data::{parse_timestamp, Column, TableBuilder, TimeUnit};

    fn mixed_table() -> Table {
        let ts: Vec<_> = (1..=4)
            .map(|d| parse_timestamp(&format!("2015-01-0{d}")).unwrap())
            .collect();
        TableBuilder::new("t")
            .text("carrier", ["UA", "AA", "UA", "MQ"])
            .numeric("delay", [5.0, 3.0, -1.0, 2.0])
            .column(Column::temporal("scheduled", ts))
            .build()
            .unwrap()
    }

    fn codes(table: &Table, q: &VisQuery) -> Vec<Code> {
        analyze(table, q, default_registry())
            .into_iter()
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn clean_query_has_no_diagnostics() {
        let t = mixed_table();
        let q = VisQuery {
            chart: ChartType::Bar,
            x: "carrier".into(),
            y: Some("delay".into()),
            transform: Transform::Group,
            aggregate: Aggregate::Avg,
            order: SortOrder::ByY,
        };
        assert!(codes(&t, &q).is_empty());
    }

    #[test]
    fn calendar_bin_on_numeric_is_e0007() {
        let t = mixed_table();
        let q = VisQuery {
            chart: ChartType::Line,
            x: "delay".into(),
            y: Some("delay".into()),
            transform: Transform::Bin(BinStrategy::Unit(TimeUnit::Hour)),
            aggregate: Aggregate::Avg,
            order: SortOrder::None,
        };
        let diags = analyze(&t, &q, default_registry());
        assert_eq!(diags[0].code, Code::CalendarBinOnNonTemporal);
        assert!(diags[0].is_error());
        assert!(diags[0]
            .suggestion
            .as_deref()
            .unwrap()
            .contains("BIN delay"));
    }

    #[test]
    fn severity_split_matches_code_prefix() {
        for code in Code::ALL {
            let s = code.as_str();
            assert_eq!(s.len(), 5);
            match code.severity() {
                Severity::Error => assert!(s.starts_with('E')),
                Severity::Warning => assert!(s.starts_with('W')),
            }
        }
    }

    #[test]
    fn codes_are_unique_and_ordered() {
        let strs: Vec<&str> = Code::ALL.iter().map(|c| c.as_str()).collect();
        let mut sorted = strs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(strs, sorted, "Code::ALL must be unique and sorted");
    }

    #[test]
    fn warnings_do_not_block_execution() {
        // GROUP BY on numeric x: rules-pruned (W0102) but executable.
        let t = mixed_table();
        let q = VisQuery {
            chart: ChartType::Bar,
            x: "delay".into(),
            y: None,
            transform: Transform::Group,
            aggregate: Aggregate::Cnt,
            order: SortOrder::None,
        };
        assert_eq!(codes(&t, &q), vec![Code::GroupOnNumericX]);
        assert!(check_executable(&t, &q, default_registry()).is_ok());
        assert!(crate::execute(&t, &q).is_ok());
    }

    #[test]
    fn error_order_matches_executor_discovery() {
        // Both an unknown y and an invalid bin: the executor reports the
        // column lookup first, so sema must too.
        let t = mixed_table();
        let q = VisQuery {
            chart: ChartType::Bar,
            x: "carrier".into(),
            y: Some("nope".into()),
            transform: Transform::Bin(BinStrategy::Default),
            aggregate: Aggregate::Avg,
            order: SortOrder::None,
        };
        let first = check_executable(&t, &q, default_registry()).unwrap_err();
        assert_eq!(first.code, Code::UnknownYColumn);
        assert_eq!(
            first.into_query_error(&q),
            QueryError::NoSuchColumn("nope".into())
        );
    }

    #[test]
    fn uncorrelated_scatter_warns() {
        let t = TableBuilder::new("t")
            .numeric("a", (0..50).map(f64::from))
            .numeric("b", (0..50).map(|i| f64::from(i) * 2.0 + 1.0))
            .numeric("noise", (0..50).map(|i| f64::from((i * 7919) % 97)))
            .build()
            .unwrap();
        let scatter = VisQuery::raw(ChartType::Scatter, "a", "b");
        assert!(codes(&t, &scatter).is_empty());
        let noisy = VisQuery::raw(ChartType::Scatter, "a", "noise");
        assert_eq!(codes(&t, &noisy), vec![Code::UncorrelatedScatter]);
    }

    #[test]
    fn display_formats() {
        let d = Diagnostic::new(Code::ZeroBuckets, Clause::Transform, "msg");
        assert_eq!(d.to_string(), "error[E0009]: msg");
        assert_eq!(Clause::OrderBy.to_string(), "ORDER BY");
    }
}
