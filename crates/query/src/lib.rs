//! # deepeye-query
//!
//! The DeepEye visualization language (§II-B of the paper) and its
//! executor: query AST, textual parser, binning/grouping/aggregation
//! engine, static semantic analysis, and lazy enumeration of the full
//! search space (`528·m(m−1)` two-column plus `264·m` one-column
//! candidates).
//!
//! Queries are statically checked before execution by the [`sema`]
//! module: [`sema::analyze`] returns structured diagnostics with stable
//! codes (`E0001`–`E0013` for conditions the executor rejects,
//! `W0101`–`W0108` for executable-but-meaningless queries per §V-A of
//! the paper). See the [`sema`] module docs for the full error-code
//! reference table.
//!
//! ```
//! use deepeye_query::{parse_query, execute};
//! use deepeye_data::table_from_csv_str;
//!
//! let table = table_from_csv_str(
//!     "flights",
//!     "carrier,delay\nUA,4\nAA,10\nUA,-2\n",
//! ).unwrap();
//! let parsed = parse_query(
//!     "VISUALIZE bar\nSELECT carrier, AVG(delay)\nFROM flights\nGROUP BY carrier",
//! ).unwrap();
//! let chart = execute(&table, &parsed.query).unwrap();
//! assert_eq!(chart.series.len(), 2); // UA, AA
//! ```

#![forbid(unsafe_code)]

pub mod ast;
pub mod batch;
pub mod bins;
pub mod chart;
pub mod enumerate;
pub mod exec;
pub mod multi;
pub mod parser;
pub mod sema;

pub use ast::{Aggregate, BinStrategy, ChartType, SortOrder, Transform, VisQuery, DEFAULT_BUCKETS};
pub use batch::{execute_batch, execute_batch_costed, BatchCosts};
pub use bins::{bin_keys, group_keys, BinError, Bucketizer, Key, UdfRegistry};
pub use chart::{ChartData, Series};
pub use enumerate::{
    all_queries, one_column_queries, one_column_space_size, queries_with_verdict,
    two_column_queries, two_column_space_size, valid_queries, valid_queries_observed,
};
pub use exec::{execute, execute_costed, execute_observed, execute_with, QueryError};
pub use multi::{
    analyze_multi_y, analyze_xyz, execute_multi_y, execute_xyz, MultiSeriesChart, MultiYQuery,
    XyzQuery,
};
pub use parser::{parse_query, ClauseSpans, ParseError, ParsedQuery, Span};
pub use sema::{analyze, check_executable, Clause, Code, Diagnostic, Severity};
