//! Chart data: the result of executing a visualization query.

use crate::ast::ChartType;
use crate::bins::Key;
use std::fmt;

/// The plotted series of a chart.
#[derive(Debug, Clone, PartialEq)]
pub enum Series {
    /// Discrete x-scale (groups/bins): `(key, y-value)` pairs in plot order.
    Keyed(Vec<(Key, f64)>),
    /// Continuous raw points, e.g. an untransformed scatter plot.
    Points(Vec<(f64, f64)>),
}

impl Series {
    /// Number of plotted marks — `|X'|` of the transformed data.
    pub fn len(&self) -> usize {
        match self {
            Series::Keyed(v) => v.len(),
            Series::Points(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The y-values in plot order.
    pub fn y_values(&self) -> Vec<f64> {
        match self {
            Series::Keyed(v) => v.iter().map(|(_, y)| *y).collect(),
            Series::Points(v) => v.iter().map(|(_, y)| *y).collect(),
        }
    }

    /// The x-scale positions in plot order; text keys yield their rank.
    pub fn x_positions(&self) -> Vec<f64> {
        match self {
            Series::Keyed(v) => v
                .iter()
                .enumerate()
                .map(|(i, (k, _))| k.scale_position().unwrap_or(i as f64))
                .collect(),
            Series::Points(v) => v.iter().map(|(x, _)| *x).collect(),
        }
    }
}

/// A fully materialized chart: what `Q(D)` produces (§II-B).
#[derive(Debug, Clone, PartialEq)]
pub struct ChartData {
    pub chart: ChartType,
    pub x_label: String,
    pub y_label: String,
    pub series: Series,
}

impl ChartData {
    /// Number of distinct x keys, `d(X')` after the transform.
    pub fn distinct_x(&self) -> usize {
        match &self.series {
            Series::Keyed(v) => v.len(),
            Series::Points(v) => {
                let mut xs: Vec<u64> = v.iter().map(|(x, _)| x.to_bits()).collect();
                xs.sort_unstable();
                xs.dedup();
                xs.len()
            }
        }
    }

    /// Rough heap footprint of the materialized series and axis labels,
    /// for allocation attribution ([`alloc_many`] at the executor's arena
    /// points). An estimate — allocator slack and enum niche layout are
    /// not modeled — but deterministic, O(marks) cheap, and stable enough
    /// for stage-relative comparison.
    ///
    /// [`alloc_many`]: https://docs.rs/deepeye-obs
    pub fn approx_heap_bytes(&self) -> u64 {
        let series_bytes = match &self.series {
            Series::Keyed(pairs) => {
                let inline = pairs.len() * std::mem::size_of::<(Key, f64)>();
                let text: usize = pairs
                    .iter()
                    .map(|(k, _)| match k {
                        Key::Text(s) => s.len(),
                        _ => 0,
                    })
                    .sum();
                inline + text
            }
            Series::Points(points) => points.len() * std::mem::size_of::<(f64, f64)>(),
        };
        (series_bytes + self.x_label.len() + self.y_label.len()) as u64
    }

    /// Export the chart data as CSV (header `x,y`), quoting fields that
    /// need it — handy for piping recommendations into other tools.
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        }
        let mut out = format!("{},{}\n", field(&self.x_label), field(&self.y_label));
        match &self.series {
            Series::Keyed(pairs) => {
                for (k, y) in pairs {
                    out.push_str(&format!("{},{y}\n", field(&k.to_string())));
                }
            }
            Series::Points(pts) => {
                for (x, y) in pts {
                    out.push_str(&format!("{x},{y}\n"));
                }
            }
        }
        out
    }

    /// Render a terminal-friendly sketch of the chart (used by examples and
    /// the quickstart; not a substitute for a real renderer).
    pub fn ascii_sketch(&self, max_rows: usize) -> String {
        let mut out = format!(
            "{} chart: {} vs {}\n",
            self.chart, self.x_label, self.y_label
        );
        match &self.series {
            Series::Keyed(pairs) => {
                let max_y = pairs
                    .iter()
                    .map(|(_, y)| y.abs())
                    .fold(0.0f64, f64::max)
                    .max(1e-12);
                for (k, y) in pairs.iter().take(max_rows) {
                    let bar_len = ((y.abs() / max_y) * 40.0).round() as usize;
                    let label = k.to_string();
                    let shown: String = label.chars().take(18).collect();
                    out.push_str(&format!("  {shown:<18} | {} {y:.2}\n", "#".repeat(bar_len)));
                }
                if pairs.len() > max_rows {
                    out.push_str(&format!("  … {} more\n", pairs.len() - max_rows));
                }
            }
            Series::Points(pts) => {
                out.push_str(&format!("  {} points", pts.len()));
                if let (Some(first), Some(last)) = (pts.first(), pts.last()) {
                    out.push_str(&format!(
                        ", x ∈ [{:.2}, {:.2}]",
                        first.0.min(last.0),
                        first.0.max(last.0)
                    ));
                }
                out.push('\n');
            }
        }
        out
    }
}

impl fmt::Display for ChartData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.ascii_sketch(12))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keyed() -> ChartData {
        ChartData {
            chart: ChartType::Bar,
            x_label: "carrier".into(),
            y_label: "AVG(delay)".into(),
            series: Series::Keyed(vec![
                (Key::Text("UA".into()), 4.0),
                (Key::Text("AA".into()), 8.0),
            ]),
        }
    }

    #[test]
    fn series_accessors() {
        let c = keyed();
        assert_eq!(c.series.len(), 2);
        assert_eq!(c.series.y_values(), vec![4.0, 8.0]);
        assert_eq!(c.series.x_positions(), vec![0.0, 1.0]);
        assert_eq!(c.distinct_x(), 2);
    }

    #[test]
    fn points_distinct_x() {
        let c = ChartData {
            chart: ChartType::Scatter,
            x_label: "a".into(),
            y_label: "b".into(),
            series: Series::Points(vec![(1.0, 2.0), (1.0, 3.0), (2.0, 4.0)]),
        };
        assert_eq!(c.distinct_x(), 2);
        assert_eq!(c.series.len(), 3);
    }

    #[test]
    fn ascii_sketch_is_bounded() {
        let c = keyed();
        let sketch = c.ascii_sketch(1);
        assert!(sketch.contains("bar chart"));
        assert!(sketch.contains("… 1 more"));
    }

    #[test]
    fn csv_export_round_trips_through_reader() {
        let c = ChartData {
            chart: ChartType::Bar,
            x_label: "city, state".into(),
            y_label: "AVG(\"delay\")".into(),
            series: Series::Keyed(vec![
                (Key::Text("a,b".into()), 1.5),
                (Key::Text("plain".into()), -2.0),
            ]),
        };
        let csv = c.to_csv();
        let table = deepeye_data::table_from_csv_str("t", &csv).unwrap();
        assert_eq!(table.row_count(), 2);
        assert!(table.column_by_name("city, state").is_some());
        assert_eq!(table.column(1).unwrap().numbers(), vec![1.5, -2.0]);
    }

    #[test]
    fn csv_export_points() {
        let c = ChartData {
            chart: ChartType::Scatter,
            x_label: "x".into(),
            y_label: "y".into(),
            series: Series::Points(vec![(1.0, 2.0), (3.5, -4.0)]),
        };
        let csv = c.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains("3.5,-4"));
    }
}
