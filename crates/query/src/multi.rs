//! Multi-column extensions (§II-B "Extensions for One Column and Multiple
//! Columns").
//!
//! Two cases from the paper:
//!
//! 1. **Multi-Y**: one x-column and several y-columns `Y_1 … Y_z`, each
//!    aggregated the same way and plotted as its own series, "to compare
//!    the Y_i columns".
//! 2. **XYZ**: group by `X` (the series/color), group-or-bin `Y` (the
//!    x-axis), and aggregate `Z` per (X, Y') cell — the shape of the
//!    paper's Figure 1(b) stacked bar of passengers by month and
//!    destination.

use crate::ast::{Aggregate, ChartType, SortOrder, Transform, VisQuery};
use crate::bins::{bin_keys, group_keys, Bucketizer, Key, UdfRegistry};
use crate::chart::{ChartData, Series};
use crate::exec::{execute_with, QueryError};
use crate::sema::{self, Clause, Code, Diagnostic};
use deepeye_data::{DataType, Table};

/// A chart with several named series over a shared x-scale.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiSeriesChart {
    pub chart: ChartType,
    pub x_label: String,
    pub y_label: String,
    /// `(series name, keyed values)` — every series shares the key universe
    /// but may omit keys with no data.
    pub series: Vec<(String, Vec<(Key, f64)>)>,
}

impl MultiSeriesChart {
    /// Total number of plotted marks across series.
    pub fn mark_count(&self) -> usize {
        self.series.iter().map(|(_, pts)| pts.len()).sum()
    }

    /// Collapse to a single-series [`ChartData`] by summing across series
    /// (used by ranking, which scores the overall shape).
    pub fn flattened(&self) -> ChartData {
        let mut buckets = Bucketizer::new();
        let mut totals: Vec<f64> = Vec::new();
        for (_, pts) in &self.series {
            for (k, v) in pts {
                let idx = buckets.index_of(k.clone());
                if idx == totals.len() {
                    totals.push(0.0);
                }
                totals[idx] += v;
            }
        }
        let pairs = buckets
            .into_keys()
            .into_iter()
            .zip(totals)
            .collect::<Vec<_>>();
        ChartData {
            chart: self.chart,
            x_label: self.x_label.clone(),
            y_label: self.y_label.clone(),
            series: Series::Keyed(pairs),
        }
    }
}

/// Case (i): one x-column, multiple y-columns, shared transform/aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiYQuery {
    pub chart: ChartType,
    pub x: String,
    pub ys: Vec<String>,
    pub transform: Transform,
    pub aggregate: Aggregate,
    pub order: SortOrder,
}

/// Case (ii): series from X, x-axis from Y (grouped or binned), aggregate
/// over Z.
#[derive(Debug, Clone, PartialEq)]
pub struct XyzQuery {
    pub chart: ChartType,
    /// Series / color column (grouped by exact value).
    pub series_column: String,
    /// x-axis column with its transform.
    pub x: String,
    pub x_transform: Transform,
    /// Aggregated value column.
    pub z: String,
    pub aggregate: Aggregate,
}

/// Statically analyze a multi-Y query: the arity rule (at least two y
/// columns, E0014) plus the union of single-query diagnostics over each
/// `(x, y_i)` decomposition. Diagnostics shared by every decomposition
/// (e.g. a bad x transform) are reported once.
pub fn analyze_multi_y(table: &Table, query: &MultiYQuery, udfs: &UdfRegistry) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if query.ys.len() < 2 {
        out.push(
            Diagnostic::new(
                Code::MultiYNeedsTwoColumns,
                Clause::Select,
                format!(
                    "multi-Y queries need at least two y columns, got {}",
                    query.ys.len()
                ),
            )
            .with_suggestion("add more y columns, or use a plain single-y query"),
        );
    }
    for y in &query.ys {
        let single = VisQuery {
            chart: query.chart,
            x: query.x.clone(),
            y: Some(y.clone()),
            transform: query.transform.clone(),
            aggregate: query.aggregate,
            order: query.order,
        };
        for d in sema::analyze(table, &single, udfs) {
            if !out.contains(&d) {
                out.push(d);
            }
        }
    }
    out
}

/// Statically analyze an XYZ query, in the same order [`execute_xyz`]
/// discovers failures: column lookups, missing aggregate, z-type
/// compatibility, then the x transform (must be GROUP/BIN, with the usual
/// bin/type rules).
pub fn analyze_xyz(table: &Table, query: &XyzQuery, udfs: &UdfRegistry) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (role, name) in [
        ("series", &query.series_column),
        ("x", &query.x),
        ("z", &query.z),
    ] {
        if table.column_by_name(name).is_none() {
            let code = if role == "z" {
                Code::UnknownYColumn
            } else {
                Code::UnknownXColumn
            };
            out.push(Diagnostic::new(
                code,
                Clause::Select,
                format!(
                    "no {role} column named {name:?} in table {:?}",
                    table.name()
                ),
            ));
        }
    }
    if query.aggregate == Aggregate::Raw {
        out.push(
            Diagnostic::new(
                Code::TransformWithoutAggregate,
                Clause::Select,
                "XYZ queries aggregate z per (series, x') cell and need SUM, AVG, or CNT",
            )
            .with_suggestion(format!("e.g. SUM({})", query.z)),
        );
    } else if query.aggregate != Aggregate::Cnt {
        if let Some(z_col) = table.column_by_name(&query.z) {
            if z_col.data_type() != DataType::Numerical {
                out.push(
                    Diagnostic::new(
                        Code::AggregateNeedsNumericY,
                        Clause::Select,
                        format!(
                            "{} requires a numerical z column, {:?} is {}",
                            query.aggregate.name(),
                            query.z,
                            z_col.data_type()
                        ),
                    )
                    .with_suggestion(format!("count instead: CNT({})", query.z)),
                );
            }
        }
    }
    match &query.x_transform {
        Transform::None => {
            out.push(
                Diagnostic::new(
                    Code::XyzNeedsTransform,
                    Clause::Transform,
                    "XYZ queries require the x column to be grouped or binned",
                )
                .with_suggestion(format!("add `GROUP BY {0}` or `BIN {0}`", query.x)),
            );
        }
        x_transform => {
            // Reuse the single-query analyzer for bin/type compatibility of
            // the x transform (errors only; the §V-A chart rules do not
            // extend to multi-series charts).
            let single = VisQuery {
                chart: query.chart,
                x: query.x.clone(),
                y: None,
                transform: x_transform.clone(),
                aggregate: Aggregate::Cnt,
                order: SortOrder::None,
            };
            out.extend(
                sema::analyze(table, &single, udfs)
                    .into_iter()
                    .filter(|d| d.is_error() && d.clause == Clause::Transform),
            );
        }
    }
    out
}

/// Execute a multi-Y query: each y-column becomes one series.
pub fn execute_multi_y(
    table: &Table,
    query: &MultiYQuery,
    udfs: &UdfRegistry,
) -> Result<MultiSeriesChart, QueryError> {
    if query.ys.len() < 2 {
        return Err(QueryError::Invalid(
            "multi-Y queries need at least two y columns".to_owned(),
        ));
    }
    let mut series = Vec::with_capacity(query.ys.len());
    let mut y_label = String::new();
    for y in &query.ys {
        let single = VisQuery {
            chart: query.chart,
            x: query.x.clone(),
            y: Some(y.clone()),
            transform: query.transform.clone(),
            aggregate: query.aggregate,
            order: query.order,
        };
        let chart = execute_with(table, &single, udfs)?;
        if y_label.is_empty() {
            y_label = chart.y_label.replace(y.as_str(), "*");
        }
        match chart.series {
            Series::Keyed(pairs) => series.push((y.clone(), pairs)),
            Series::Points(pts) => series.push((
                y.clone(),
                pts.into_iter().map(|(x, v)| (Key::Number(x), v)).collect(),
            )),
        }
    }
    Ok(MultiSeriesChart {
        chart: query.chart,
        x_label: query.x.clone(),
        y_label,
        series,
    })
}

/// Execute an XYZ query: group rows by the series column, then aggregate Z
/// over the transformed x-axis within each group.
pub fn execute_xyz(
    table: &Table,
    query: &XyzQuery,
    udfs: &UdfRegistry,
) -> Result<MultiSeriesChart, QueryError> {
    let series_col = table
        .column_by_name(&query.series_column)
        .ok_or_else(|| QueryError::NoSuchColumn(query.series_column.clone()))?;
    let x_col = table
        .column_by_name(&query.x)
        .ok_or_else(|| QueryError::NoSuchColumn(query.x.clone()))?;
    let z_col = table
        .column_by_name(&query.z)
        .ok_or_else(|| QueryError::NoSuchColumn(query.z.clone()))?;
    if query.aggregate == Aggregate::Raw {
        return Err(QueryError::Invalid(
            "XYZ queries require an aggregate".to_owned(),
        ));
    }
    let z_vals: Vec<Option<f64>> = match z_col.data() {
        deepeye_data::ColumnData::Numeric(v) => v.clone(),
        _ if query.aggregate == Aggregate::Cnt => vec![Some(1.0); table.row_count()],
        _ => {
            return Err(QueryError::Invalid(format!(
                "{} requires a numerical z column",
                query.aggregate.name()
            )));
        }
    };

    let series_keys = group_keys(series_col);
    let x_keys = match &query.x_transform {
        Transform::Group => group_keys(x_col),
        Transform::Bin(strategy) => bin_keys(x_col, strategy, udfs)?,
        Transform::None => {
            return Err(QueryError::Invalid(
                "XYZ queries require the x column to be grouped or binned".to_owned(),
            ));
        }
    };

    // (series index, x index) → accumulator.
    let mut series_buckets = Bucketizer::new();
    let mut x_buckets = Bucketizer::new();
    let mut cells: std::collections::HashMap<(usize, usize), (f64, u64)> =
        std::collections::HashMap::new();
    for row in 0..table.row_count() {
        let (Some(sk), Some(xk)) = (series_keys[row].clone(), x_keys[row].clone()) else {
            continue;
        };
        let si = series_buckets.index_of(sk);
        let xi = x_buckets.index_of(xk);
        let entry = cells.entry((si, xi)).or_insert((0.0, 0));
        match query.aggregate {
            Aggregate::Cnt => entry.1 += 1,
            Aggregate::Sum | Aggregate::Avg => {
                if let Some(z) = z_vals[row] {
                    entry.0 += z;
                    entry.1 += 1;
                }
            }
            Aggregate::Raw => unreachable!(),
        }
    }
    if series_buckets.is_empty() {
        return Err(QueryError::EmptyResult);
    }
    let series_names = series_buckets.into_keys();
    let x_keys_dense = x_buckets.into_keys();
    let mut series = Vec::with_capacity(series_names.len());
    for (si, name) in series_names.iter().enumerate() {
        let mut pts: Vec<(Key, f64)> = Vec::new();
        for (xi, xk) in x_keys_dense.iter().enumerate() {
            if let Some((sum, cnt)) = cells.get(&(si, xi)) {
                let v = match query.aggregate {
                    Aggregate::Cnt => *cnt as f64,
                    Aggregate::Sum => *sum,
                    Aggregate::Avg => {
                        if *cnt == 0 {
                            continue;
                        } else {
                            sum / *cnt as f64
                        }
                    }
                    Aggregate::Raw => unreachable!(),
                };
                pts.push((xk.clone(), v));
            }
        }
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        series.push((name.to_string(), pts));
    }
    series.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(MultiSeriesChart {
        chart: query.chart,
        x_label: query.x.clone(),
        y_label: format!("{}({})", query.aggregate.name(), query.z),
        series,
    })
}

/// Size of the paper's XYZ search space: `704·m³` (§II-B).
pub fn xyz_space_size(m: usize) -> usize {
    704 * m * m * m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::BinStrategy;
    use deepeye_data::{parse_timestamp, Column, TableBuilder, TimeUnit};

    fn flights() -> Table {
        let times: Vec<_> = [
            "2015-01-05",
            "2015-01-20",
            "2015-02-10",
            "2015-02-15",
            "2015-02-28",
        ]
        .iter()
        .map(|s| parse_timestamp(s).unwrap())
        .collect();
        TableBuilder::new("flights")
            .column(Column::temporal("scheduled", times))
            .text("destination", ["NYC", "LA", "NYC", "LA", "NYC"])
            .numeric("passengers", [100.0, 200.0, 150.0, 50.0, 80.0])
            .numeric("delay", [5.0, -1.0, 8.0, 2.0, 0.0])
            .build()
            .unwrap()
    }

    #[test]
    fn xyz_stacked_bar_like_figure_1b() {
        // Figure 1(b): x = scheduled binned by month, stacked by
        // destination, y = SUM(passengers).
        let q = XyzQuery {
            chart: ChartType::Bar,
            series_column: "destination".into(),
            x: "scheduled".into(),
            x_transform: Transform::Bin(BinStrategy::Unit(TimeUnit::Month)),
            z: "passengers".into(),
            aggregate: Aggregate::Sum,
        };
        let chart = execute_xyz(&flights(), &q, &UdfRegistry::default()).unwrap();
        assert_eq!(chart.series.len(), 2);
        let la = &chart.series[0];
        let nyc = &chart.series[1];
        assert_eq!(la.0, "LA");
        assert_eq!(nyc.0, "NYC");
        // LA: Jan 200, Feb 50. NYC: Jan 100, Feb 230.
        assert_eq!(
            la.1.iter().map(|(_, v)| *v).collect::<Vec<_>>(),
            vec![200.0, 50.0]
        );
        assert_eq!(
            nyc.1.iter().map(|(_, v)| *v).collect::<Vec<_>>(),
            vec![100.0, 230.0]
        );
        // Flattened totals conserve the grand total.
        let flat = chart.flattened();
        let total: f64 = flat.series.y_values().iter().sum();
        assert_eq!(total, 580.0);
    }

    #[test]
    fn multi_y_compares_columns() {
        let q = MultiYQuery {
            chart: ChartType::Line,
            x: "destination".into(),
            ys: vec!["passengers".into(), "delay".into()],
            transform: Transform::Group,
            aggregate: Aggregate::Avg,
            order: SortOrder::ByX,
        };
        let chart = execute_multi_y(&flights(), &q, &UdfRegistry::default()).unwrap();
        assert_eq!(chart.series.len(), 2);
        assert_eq!(chart.series[0].0, "passengers");
        assert_eq!(chart.y_label, "AVG(*)");
        assert_eq!(chart.mark_count(), 4);
    }

    #[test]
    fn multi_y_requires_two_columns() {
        let q = MultiYQuery {
            chart: ChartType::Line,
            x: "destination".into(),
            ys: vec!["passengers".into()],
            transform: Transform::Group,
            aggregate: Aggregate::Avg,
            order: SortOrder::None,
        };
        assert!(matches!(
            execute_multi_y(&flights(), &q, &UdfRegistry::default()),
            Err(QueryError::Invalid(_))
        ));
    }

    #[test]
    fn xyz_requires_transform_and_aggregate() {
        let base = XyzQuery {
            chart: ChartType::Bar,
            series_column: "destination".into(),
            x: "scheduled".into(),
            x_transform: Transform::None,
            z: "passengers".into(),
            aggregate: Aggregate::Sum,
        };
        assert!(matches!(
            execute_xyz(&flights(), &base, &UdfRegistry::default()),
            Err(QueryError::Invalid(_))
        ));
        let raw = XyzQuery {
            aggregate: Aggregate::Raw,
            ..base
        };
        assert!(matches!(
            execute_xyz(&flights(), &raw, &UdfRegistry::default()),
            Err(QueryError::Invalid(_))
        ));
    }

    #[test]
    fn xyz_cnt_on_categorical_z() {
        let q = XyzQuery {
            chart: ChartType::Bar,
            series_column: "destination".into(),
            x: "scheduled".into(),
            x_transform: Transform::Bin(BinStrategy::Unit(TimeUnit::Month)),
            z: "destination".into(),
            aggregate: Aggregate::Cnt,
        };
        let chart = execute_xyz(&flights(), &q, &UdfRegistry::default()).unwrap();
        let total: f64 = chart
            .series
            .iter()
            .flat_map(|(_, pts)| pts.iter().map(|(_, v)| *v))
            .sum();
        assert_eq!(total, 5.0);
    }

    #[test]
    fn space_size_formula() {
        assert_eq!(xyz_space_size(2), 704 * 8);
    }

    #[test]
    fn analyze_multi_y_agrees_with_execution() {
        let t = flights();
        let udfs = UdfRegistry::default();
        let columns = ["scheduled", "destination", "passengers", "delay"];
        for x in columns {
            for transform in [
                Transform::Group,
                Transform::Bin(BinStrategy::Unit(TimeUnit::Month)),
                Transform::Bin(BinStrategy::Default),
            ] {
                for ys in [
                    vec!["passengers".to_owned(), "delay".to_owned()],
                    vec!["passengers".to_owned()],
                    vec!["passengers".to_owned(), "nope".to_owned()],
                ] {
                    let q = MultiYQuery {
                        chart: ChartType::Line,
                        x: x.into(),
                        ys,
                        transform: transform.clone(),
                        aggregate: Aggregate::Avg,
                        order: SortOrder::ByX,
                    };
                    let fatal = analyze_multi_y(&t, &q, &udfs).iter().any(|d| d.is_error());
                    let ran = execute_multi_y(&t, &q, &udfs);
                    match ran {
                        Ok(_) | Err(QueryError::EmptyResult) => {
                            assert!(!fatal, "executed but sema found an error: {q:?}")
                        }
                        Err(e) => assert!(fatal, "sema clean but execution failed: {q:?} → {e}"),
                    }
                }
            }
        }
    }

    #[test]
    fn analyze_xyz_agrees_with_execution() {
        let t = flights();
        let udfs = UdfRegistry::default();
        let transforms = [
            Transform::None,
            Transform::Group,
            Transform::Bin(BinStrategy::Unit(TimeUnit::Month)),
            Transform::Bin(BinStrategy::Default),
            Transform::Bin(BinStrategy::Udf("missing".into())),
        ];
        let columns = ["scheduled", "destination", "passengers", "nope"];
        for series_column in columns {
            for x in columns {
                for z in columns {
                    for x_transform in &transforms {
                        for aggregate in Aggregate::ALL {
                            let q = XyzQuery {
                                chart: ChartType::Bar,
                                series_column: series_column.into(),
                                x: x.into(),
                                x_transform: x_transform.clone(),
                                z: z.into(),
                                aggregate,
                            };
                            let fatal = analyze_xyz(&t, &q, &udfs).iter().any(|d| d.is_error());
                            match execute_xyz(&t, &q, &udfs) {
                                Ok(_) | Err(QueryError::EmptyResult) => {
                                    assert!(!fatal, "executed but sema errored: {q:?}")
                                }
                                Err(e) => {
                                    assert!(fatal, "sema clean but failed: {q:?} → {e}")
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}
