//! The visualization language of §II-B (Figure 2).
//!
//! A query has three mandatory clauses (`VISUALIZE`, `SELECT`, `FROM`) and
//! two optional ones (`TRANSFORM` — grouping or binning — and `ORDER BY`).
//! Executing a query over a table produces a chart.

use deepeye_data::TimeUnit;
use std::fmt;

/// The four chart types DeepEye studies (§II-A): per the survey it cites,
/// bar, line, and pie charts cover ~70% of real usage, with scatter added
/// for correlation stories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ChartType {
    Bar,
    Line,
    Pie,
    Scatter,
}

impl ChartType {
    pub const ALL: [ChartType; 4] = [
        ChartType::Bar,
        ChartType::Line,
        ChartType::Pie,
        ChartType::Scatter,
    ];

    pub fn name(self) -> &'static str {
        match self {
            ChartType::Bar => "bar",
            ChartType::Line => "line",
            ChartType::Pie => "pie",
            ChartType::Scatter => "scatter",
        }
    }

    pub fn from_name(s: &str) -> Option<Self> {
        Self::ALL
            .into_iter()
            .find(|c| c.name().eq_ignore_ascii_case(s.trim()))
    }
}

impl fmt::Display for ChartType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Number of equi-width buckets used by `BIN X` when no target count is
/// given (the paper's "default buckets" case).
pub const DEFAULT_BUCKETS: usize = 10;

/// How an x-column is binned. The paper counts nine bin cases: the seven
/// calendar units, default buckets, and a user-defined function.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BinStrategy {
    /// `BIN X BY {MINUTE … YEAR}` — calendar truncation of temporal values.
    Unit(TimeUnit),
    /// `BIN X` — [`DEFAULT_BUCKETS`] equi-width numeric buckets.
    Default,
    /// `BIN X INTO N` — N equi-width numeric buckets.
    IntoBuckets(usize),
    /// `BIN X BY UDF(name)` — named user-defined bucketing function,
    /// resolved against a [`crate::bins::UdfRegistry`] at execution time.
    Udf(String),
}

impl BinStrategy {
    /// The paper's nine enumerable bin cases (the UDF slot uses the built-in
    /// `sign` splitter, "e.g., splitting X by given values (e.g., 0)").
    pub fn enumerable() -> [BinStrategy; 9] {
        [
            BinStrategy::Unit(TimeUnit::Minute),
            BinStrategy::Unit(TimeUnit::Hour),
            BinStrategy::Unit(TimeUnit::Day),
            BinStrategy::Unit(TimeUnit::Week),
            BinStrategy::Unit(TimeUnit::Month),
            BinStrategy::Unit(TimeUnit::Quarter),
            BinStrategy::Unit(TimeUnit::Year),
            BinStrategy::Default,
            BinStrategy::Udf("sign".to_owned()),
        ]
    }
}

impl fmt::Display for BinStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinStrategy::Unit(u) => write!(f, "BY {u}"),
            BinStrategy::Default => Ok(()),
            BinStrategy::IntoBuckets(n) => write!(f, "INTO {n}"),
            BinStrategy::Udf(name) => write!(f, "BY UDF({name})"),
        }
    }
}

/// The optional TRANSFORM clause: nothing, `GROUP BY X`, or `BIN X …`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Transform {
    None,
    Group,
    Bin(BinStrategy),
}

impl Transform {
    pub fn is_none(&self) -> bool {
        matches!(self, Transform::None)
    }

    /// The paper's 11 transform cases for a column: identity + group + 9 bins.
    pub fn enumerable() -> Vec<Transform> {
        let mut v = Vec::with_capacity(11);
        v.push(Transform::None);
        v.push(Transform::Group);
        v.extend(BinStrategy::enumerable().into_iter().map(Transform::Bin));
        v
    }
}

/// Aggregate applied to Y after grouping/binning X. `Raw` means Y is kept
/// as-is (only valid without a transform); the paper's AGG set is
/// {SUM, AVG, CNT}, giving 4 aggregate cases per transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Aggregate {
    Raw,
    Sum,
    Avg,
    Cnt,
}

impl Aggregate {
    pub const ALL: [Aggregate; 4] = [
        Aggregate::Raw,
        Aggregate::Sum,
        Aggregate::Avg,
        Aggregate::Cnt,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Aggregate::Raw => "",
            Aggregate::Sum => "SUM",
            Aggregate::Avg => "AVG",
            Aggregate::Cnt => "CNT",
        }
    }

    pub fn from_name(s: &str) -> Option<Self> {
        match s.trim().to_ascii_uppercase().as_str() {
            "SUM" => Some(Aggregate::Sum),
            "AVG" => Some(Aggregate::Avg),
            "CNT" | "COUNT" => Some(Aggregate::Cnt),
            _ => None,
        }
    }
}

/// The optional ORDER BY clause: sort the transformed x-column ascending,
/// or the (aggregated) y-column descending. The paper notes both columns
/// cannot be sorted at once, giving three possibilities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SortOrder {
    None,
    /// Sort by X' ascending (natural reading order for scales).
    ByX,
    /// Sort by Y' descending (largest bars/slices first).
    ByY,
}

impl SortOrder {
    pub const ALL: [SortOrder; 3] = [SortOrder::None, SortOrder::ByX, SortOrder::ByY];
}

/// A complete visualization query (Figure 2 of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VisQuery {
    pub chart: ChartType,
    /// x-axis column name.
    pub x: String,
    /// y-axis column name; `None` for one-column queries, whose y-axis is
    /// the CNT of rows per group/bin.
    pub y: Option<String>,
    pub transform: Transform,
    pub aggregate: Aggregate,
    pub order: SortOrder,
}

impl VisQuery {
    /// A raw two-column query with no transform.
    pub fn raw(chart: ChartType, x: impl Into<String>, y: impl Into<String>) -> Self {
        VisQuery {
            chart,
            x: x.into(),
            y: Some(y.into()),
            transform: Transform::None,
            aggregate: Aggregate::Raw,
            order: SortOrder::None,
        }
    }

    pub fn with_transform(mut self, t: Transform) -> Self {
        self.transform = t;
        self
    }

    pub fn with_aggregate(mut self, a: Aggregate) -> Self {
        self.aggregate = a;
        self
    }

    pub fn with_order(mut self, o: SortOrder) -> Self {
        self.order = o;
        self
    }

    /// Render back into the paper's textual language (inverse of the
    /// parser, up to whitespace).
    pub fn to_language(&self, from: &str) -> String {
        let mut s = format!("VISUALIZE {}\nSELECT {}", self.chart, self.x);
        match (&self.y, self.aggregate) {
            (Some(y), Aggregate::Raw) => s.push_str(&format!(", {y}")),
            (Some(y), agg) => s.push_str(&format!(", {}({})", agg.name(), y)),
            (None, Aggregate::Cnt) => s.push_str(&format!(", CNT({})", self.x)),
            (None, _) => {}
        }
        s.push_str(&format!("\nFROM {from}"));
        match &self.transform {
            Transform::None => {}
            Transform::Group => s.push_str(&format!("\nGROUP BY {}", self.x)),
            Transform::Bin(b) => {
                let suffix = b.to_string();
                if suffix.is_empty() {
                    s.push_str(&format!("\nBIN {}", self.x));
                } else {
                    s.push_str(&format!("\nBIN {} {suffix}", self.x));
                }
            }
        }
        match self.order {
            SortOrder::None => {}
            SortOrder::ByX => s.push_str(&format!("\nORDER BY {}", self.x)),
            SortOrder::ByY => match (&self.y, self.aggregate) {
                (Some(y), Aggregate::Raw) => s.push_str(&format!("\nORDER BY {y}")),
                (Some(y), agg) => s.push_str(&format!("\nORDER BY {}({})", agg.name(), y)),
                (None, _) => s.push_str(&format!("\nORDER BY CNT({})", self.x)),
            },
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_type_round_trip() {
        for c in ChartType::ALL {
            assert_eq!(ChartType::from_name(c.name()), Some(c));
        }
        assert_eq!(ChartType::from_name("BAR"), Some(ChartType::Bar));
        assert_eq!(ChartType::from_name("donut"), None);
    }

    #[test]
    fn transform_enumerable_has_eleven_cases() {
        // 1 identity + 1 group + 9 bins, matching §II-B's (1+9+1).
        assert_eq!(Transform::enumerable().len(), 11);
        assert_eq!(BinStrategy::enumerable().len(), 9);
    }

    #[test]
    fn aggregate_names() {
        assert_eq!(Aggregate::from_name("avg"), Some(Aggregate::Avg));
        assert_eq!(Aggregate::from_name("COUNT"), Some(Aggregate::Cnt));
        assert_eq!(Aggregate::from_name("median"), None);
    }

    #[test]
    fn query_language_rendering_matches_paper_q1() {
        // Q1 from Example 2 of the paper.
        let q = VisQuery {
            chart: ChartType::Line,
            x: "scheduled".into(),
            y: Some("departure delay".into()),
            transform: Transform::Bin(BinStrategy::Unit(deepeye_data::TimeUnit::Hour)),
            aggregate: Aggregate::Avg,
            order: SortOrder::ByX,
        };
        let rendered = q.to_language("flights");
        assert_eq!(
            rendered,
            "VISUALIZE line\nSELECT scheduled, AVG(departure delay)\nFROM flights\n\
             BIN scheduled BY HOUR\nORDER BY scheduled"
        );
    }

    #[test]
    fn one_column_rendering() {
        let q = VisQuery {
            chart: ChartType::Pie,
            x: "carrier".into(),
            y: None,
            transform: Transform::Group,
            aggregate: Aggregate::Cnt,
            order: SortOrder::None,
        };
        assert_eq!(
            q.to_language("t"),
            "VISUALIZE pie\nSELECT carrier, CNT(carrier)\nFROM t\nGROUP BY carrier"
        );
    }

    #[test]
    fn builder_methods() {
        let q = VisQuery::raw(ChartType::Bar, "a", "b")
            .with_transform(Transform::Group)
            .with_aggregate(Aggregate::Sum)
            .with_order(SortOrder::ByY);
        assert_eq!(q.transform, Transform::Group);
        assert_eq!(q.aggregate, Aggregate::Sum);
        assert_eq!(q.order, SortOrder::ByY);
    }
}
