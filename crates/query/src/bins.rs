//! Binning and grouping keys.
//!
//! Binning "partitions the numerical or temporal values into different
//! buckets" (§II-A). A bin produces a [`Key`] per row; rows sharing a key
//! land in the same bucket and are then aggregated.

use crate::ast::{BinStrategy, DEFAULT_BUCKETS};
use deepeye_data::{Column, ColumnData, TimeUnit, Timestamp, Value};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// The key of a group or bucket on the x-axis.
#[derive(Debug, Clone, PartialEq)]
pub enum Key {
    /// Category label (GROUP BY on categorical data).
    Text(String),
    /// Exact numeric value (GROUP BY on numeric data / raw key).
    Number(f64),
    /// Numeric interval `[lo, hi)` produced by `BIN INTO N` / UDF bins.
    Interval { lo: f64, hi: f64 },
    /// Exact timestamp (GROUP BY on temporal data).
    Time(Timestamp),
    /// Periodic temporal bucket, e.g. hour-of-day 14 or month-of-year 3
    /// (the paper's `BIN X BY HOUR` semantics — Table II shows |X\'| = 24
    /// for a year of data binned by hour).
    Period { unit: TimeUnit, index: i64 },
}

impl Key {
    /// Natural scale position used for ORDER BY X and correlation of the
    /// transformed columns: interval midpoint, timestamp seconds, number, or
    /// `None` for text keys (which sort lexicographically).
    pub fn scale_position(&self) -> Option<f64> {
        match self {
            Key::Text(_) => None,
            Key::Number(x) => Some(*x),
            Key::Interval { lo, hi } => Some((lo + hi) / 2.0),
            Key::Time(t) => Some(t.unix_seconds() as f64),
            Key::Period { index, .. } => Some(*index as f64),
        }
    }

    /// Total ordering for sorting the x-scale.
    pub fn total_cmp(&self, other: &Key) -> Ordering {
        match (self.scale_position(), other.scale_position()) {
            (Some(a), Some(b)) => a.total_cmp(&b),
            (None, None) => match (self, other) {
                (Key::Text(a), Key::Text(b)) => a.cmp(b),
                _ => Ordering::Equal,
            },
            (None, Some(_)) => Ordering::Less,
            (Some(_), None) => Ordering::Greater,
        }
    }

    /// Hashable identity (bit-exact for floats) for bucket maps.
    fn identity(&self) -> KeyId {
        match self {
            Key::Text(s) => KeyId::Text(s.clone()),
            Key::Number(x) => KeyId::Bits(x.to_bits()),
            Key::Interval { lo, hi } => KeyId::Pair(lo.to_bits(), hi.to_bits()),
            Key::Time(t) => KeyId::Time(t.unix_seconds()),
            Key::Period { unit, index } => KeyId::Period(*unit, *index),
        }
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Key::Text(s) => f.write_str(s),
            Key::Number(x) => write!(f, "{}", Value::Number(*x)),
            Key::Interval { lo, hi } => write!(f, "[{lo:.4}, {hi:.4})"),
            Key::Time(t) => write!(f, "{t}"),
            Key::Period { unit, index } => f.write_str(&Timestamp::period_label(*unit, *index)),
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum KeyId {
    Text(String),
    Bits(u64),
    Pair(u64, u64),
    Time(i64),
    Period(TimeUnit, i64),
}

/// A user-defined binning function: maps a numeric value to a bucket key.
pub type UdfBin = Arc<dyn Fn(f64) -> Key + Send + Sync>;

/// Registry of named UDF bins (`BIN X BY UDF(name)`).
#[derive(Clone)]
pub struct UdfRegistry {
    fns: HashMap<String, UdfBin>,
}

impl fmt::Debug for UdfRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: Vec<&str> = self.fns.keys().map(String::as_str).collect();
        names.sort_unstable();
        f.debug_struct("UdfRegistry")
            .field("names", &names)
            .finish()
    }
}

impl Default for UdfRegistry {
    /// Ships with the paper's example UDF: `sign`, "splitting X by given
    /// values (e.g., 0)" — negative vs non-negative.
    fn default() -> Self {
        let mut reg = UdfRegistry {
            fns: HashMap::new(),
        };
        reg.register("sign", |x| {
            Key::Text(if x < 0.0 {
                "< 0".to_owned()
            } else {
                ">= 0".to_owned()
            })
        });
        reg
    }
}

impl UdfRegistry {
    pub fn register(
        &mut self,
        name: impl Into<String>,
        f: impl Fn(f64) -> Key + Send + Sync + 'static,
    ) {
        self.fns.insert(name.into(), Arc::new(f));
    }

    pub fn get(&self, name: &str) -> Option<&UdfBin> {
        self.fns.get(name)
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.fns.keys().map(String::as_str)
    }
}

/// Why a binning could not be applied to a column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinError {
    /// Calendar units require a temporal column.
    NotTemporal,
    /// Bucket/UDF bins require a numeric column.
    NotNumeric,
    /// Unknown UDF name.
    UnknownUdf(String),
    /// Zero buckets requested.
    ZeroBuckets,
}

impl fmt::Display for BinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinError::NotTemporal => f.write_str("calendar binning requires a temporal column"),
            BinError::NotNumeric => f.write_str("bucket binning requires a numeric column"),
            BinError::UnknownUdf(n) => write!(f, "unknown UDF bin {n:?}"),
            BinError::ZeroBuckets => f.write_str("cannot bin into zero buckets"),
        }
    }
}

impl std::error::Error for BinError {}

/// Compute the bin key per row of `column` (None for null cells), according
/// to `strategy`.
pub fn bin_keys(
    column: &Column,
    strategy: &BinStrategy,
    udfs: &UdfRegistry,
) -> Result<Vec<Option<Key>>, BinError> {
    match strategy {
        BinStrategy::Unit(unit) => match column.data() {
            ColumnData::Temporal(vals) => Ok(vals
                .iter()
                .map(|v| {
                    v.map(|t| Key::Period {
                        unit: *unit,
                        index: t.period_index(*unit),
                    })
                })
                .collect()),
            _ => Err(BinError::NotTemporal),
        },
        BinStrategy::Default => equi_width(column, DEFAULT_BUCKETS),
        BinStrategy::IntoBuckets(n) => {
            if *n == 0 {
                return Err(BinError::ZeroBuckets);
            }
            equi_width(column, *n)
        }
        BinStrategy::Udf(name) => {
            let f = udfs
                .get(name)
                .ok_or_else(|| BinError::UnknownUdf(name.clone()))?;
            match column.data() {
                ColumnData::Numeric(vals) => Ok(vals.iter().map(|v| v.map(|x| f(x))).collect()),
                _ => Err(BinError::NotNumeric),
            }
        }
    }
}

/// Equi-width numeric binning into `n` buckets spanning [min, max].
fn equi_width(column: &Column, n: usize) -> Result<Vec<Option<Key>>, BinError> {
    let vals = match column.data() {
        ColumnData::Numeric(v) => v,
        _ => return Err(BinError::NotNumeric),
    };
    let (lo, hi) = match (column.min_scalar(), column.max_scalar()) {
        (Some(lo), Some(hi)) => (lo, hi),
        _ => return Ok(vals.iter().map(|_| None).collect()),
    };
    let width = if hi > lo { (hi - lo) / n as f64 } else { 1.0 };
    Ok(vals
        .iter()
        .map(|v| {
            v.map(|x| {
                // The max value falls in the last bucket, not a phantom one.
                let idx = (((x - lo) / width) as usize).min(n - 1);
                Key::Interval {
                    lo: lo + idx as f64 * width,
                    hi: lo + (idx + 1) as f64 * width,
                }
            })
        })
        .collect())
}

/// Grouping keys: one key per row, from the cell's exact value.
/// Works for every column type (the paper groups categorical and temporal
/// columns; grouping a numeric column by exact value is used by the raw
/// enumeration and then filtered by rules/classifier).
pub fn group_keys(column: &Column) -> Vec<Option<Key>> {
    match column.data() {
        ColumnData::Text(vals) => vals
            .iter()
            .map(|v| v.as_ref().map(|s| Key::Text(s.clone())))
            .collect(),
        ColumnData::Numeric(vals) => vals.iter().map(|v| v.map(Key::Number)).collect(),
        ColumnData::Temporal(vals) => vals.iter().map(|v| v.map(Key::Time)).collect(),
    }
}

/// Stable bucket accumulator: assigns each distinct key a dense index in
/// first-seen order and remembers the key.
#[derive(Debug, Default)]
pub struct Bucketizer {
    ids: HashMap<KeyId, usize>,
    keys: Vec<Key>,
}

impl Bucketizer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Dense index for `key`, inserting it on first sight.
    pub fn index_of(&mut self, key: Key) -> usize {
        let id = key.identity();
        if let Some(&i) = self.ids.get(&id) {
            return i;
        }
        let i = self.keys.len();
        self.ids.insert(id, i);
        self.keys.push(key);
        i
    }

    pub fn len(&self) -> usize {
        self.keys.len()
    }

    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    pub fn into_keys(self) -> Vec<Key> {
        self.keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepeye_data::parse_timestamp;

    #[test]
    fn equi_width_covers_all_rows() {
        let c = Column::numeric("x", (0..100).map(f64::from));
        let keys = bin_keys(&c, &BinStrategy::IntoBuckets(10), &UdfRegistry::default()).unwrap();
        assert!(keys.iter().all(Option::is_some));
        // Max value must land in the last bucket, not overflow.
        let last = keys.last().unwrap().clone().unwrap();
        match last {
            Key::Interval { lo, hi } => {
                assert!(lo <= 99.0 && 99.0 <= hi);
            }
            other => panic!("unexpected key {other:?}"),
        }
    }

    #[test]
    fn equi_width_distinct_buckets_bounded() {
        let c = Column::numeric("x", (0..1000).map(|i| f64::from(i % 500)));
        let keys = bin_keys(&c, &BinStrategy::Default, &UdfRegistry::default()).unwrap();
        let mut b = Bucketizer::new();
        for k in keys.into_iter().flatten() {
            b.index_of(k);
        }
        assert_eq!(b.len(), DEFAULT_BUCKETS);
    }

    #[test]
    fn constant_column_bins_to_one_bucket() {
        let c = Column::numeric("x", [5.0, 5.0, 5.0]);
        let keys = bin_keys(&c, &BinStrategy::IntoBuckets(4), &UdfRegistry::default()).unwrap();
        let mut b = Bucketizer::new();
        for k in keys.into_iter().flatten() {
            b.index_of(k);
        }
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn temporal_bins_by_unit_are_periodic() {
        // Hours of day pool across days: 08:05 on Jan 1 and 08:30 on Feb 2
        // land in the same hour-of-day bucket (the paper's Table II
        // semantics, |X'| = 24 for a year of data).
        let ts: Vec<_> = ["2015-01-01 08:05", "2015-02-02 08:30", "2015-01-01 09:10"]
            .iter()
            .map(|s| parse_timestamp(s).unwrap())
            .collect();
        let c = Column::temporal("t", ts);
        let keys = bin_keys(
            &c,
            &BinStrategy::Unit(TimeUnit::Hour),
            &UdfRegistry::default(),
        )
        .unwrap();
        let mut b = Bucketizer::new();
        for k in keys.into_iter().flatten() {
            b.index_of(k);
        }
        assert_eq!(b.len(), 2); // 08:00 and 09:00 of day
                                // Month bins likewise pool by month-of-year.
        let keys = bin_keys(
            &c,
            &BinStrategy::Unit(TimeUnit::Month),
            &UdfRegistry::default(),
        )
        .unwrap();
        let labels: Vec<String> = keys.into_iter().flatten().map(|k| k.to_string()).collect();
        assert_eq!(labels, vec!["Jan", "Feb", "Jan"]);
    }

    #[test]
    fn calendar_bin_on_numeric_rejected() {
        let c = Column::numeric("x", [1.0]);
        assert_eq!(
            bin_keys(
                &c,
                &BinStrategy::Unit(TimeUnit::Day),
                &UdfRegistry::default()
            ),
            Err(BinError::NotTemporal)
        );
    }

    #[test]
    fn bucket_bin_on_text_rejected() {
        let c = Column::text("x", ["a"]);
        assert_eq!(
            bin_keys(&c, &BinStrategy::Default, &UdfRegistry::default()),
            Err(BinError::NotNumeric)
        );
    }

    #[test]
    fn sign_udf_splits_at_zero() {
        let c = Column::numeric("x", [-5.0, -0.1, 0.0, 3.0]);
        let keys = bin_keys(
            &c,
            &BinStrategy::Udf("sign".into()),
            &UdfRegistry::default(),
        )
        .unwrap();
        let labels: Vec<String> = keys.into_iter().flatten().map(|k| k.to_string()).collect();
        assert_eq!(labels, vec!["< 0", "< 0", ">= 0", ">= 0"]);
    }

    #[test]
    fn unknown_udf_rejected() {
        let c = Column::numeric("x", [1.0]);
        assert_eq!(
            bin_keys(
                &c,
                &BinStrategy::Udf("nope".into()),
                &UdfRegistry::default()
            ),
            Err(BinError::UnknownUdf("nope".into()))
        );
    }

    #[test]
    fn custom_udf_registration() {
        let mut reg = UdfRegistry::default();
        reg.register("decade", |x| Key::Number((x / 10.0).floor() * 10.0));
        let c = Column::numeric("x", [1995.0, 1999.0, 2003.0]);
        let keys = bin_keys(&c, &BinStrategy::Udf("decade".into()), &reg).unwrap();
        let mut b = Bucketizer::new();
        for k in keys.into_iter().flatten() {
            b.index_of(k);
        }
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn group_keys_per_type() {
        assert!(matches!(
            group_keys(&Column::text("c", ["a"]))[0],
            Some(Key::Text(_))
        ));
        assert!(matches!(
            group_keys(&Column::numeric("n", [1.0]))[0],
            Some(Key::Number(_))
        ));
        let t = parse_timestamp("2015-01-01").unwrap();
        assert!(matches!(
            group_keys(&Column::temporal("t", [t]))[0],
            Some(Key::Time(_))
        ));
    }

    #[test]
    fn key_ordering_and_display() {
        let a = Key::Number(1.0);
        let b = Key::Number(2.0);
        assert_eq!(a.total_cmp(&b), Ordering::Less);
        let t = Key::Text("z".into());
        // Text sorts before numbers by convention (scale-less first).
        assert_eq!(t.total_cmp(&a), Ordering::Less);
        assert_eq!(
            Key::Interval { lo: 0.0, hi: 10.0 }.scale_position(),
            Some(5.0)
        );
        assert_eq!(format!("{}", Key::Number(2.0)), "2");
    }

    #[test]
    fn bucketizer_dense_and_stable() {
        let mut b = Bucketizer::new();
        assert_eq!(b.index_of(Key::Text("x".into())), 0);
        assert_eq!(b.index_of(Key::Text("y".into())), 1);
        assert_eq!(b.index_of(Key::Text("x".into())), 0);
        assert_eq!(b.into_keys().len(), 2);
    }

    #[test]
    fn zero_buckets_rejected() {
        let c = Column::numeric("x", [1.0]);
        assert_eq!(
            bin_keys(&c, &BinStrategy::IntoBuckets(0), &UdfRegistry::default()),
            Err(BinError::ZeroBuckets)
        );
    }
}
