//! Query execution: `Q(D)` → chart (§II-B).
//!
//! The executor applies the TRANSFORM clause (group or bin the x-column),
//! aggregates the y-column per bucket (SUM / AVG / CNT), applies ORDER BY,
//! and assembles a [`ChartData`].

use crate::ast::{Aggregate, SortOrder, Transform, VisQuery};
use crate::bins::{bin_keys, group_keys, BinError, Bucketizer, Key, UdfRegistry};
use crate::chart::{ChartData, Series};
use deepeye_data::{Column, ColumnData, DataType, Table};
use deepeye_obs::{CostAcc, NoCost, Op, OpCosts};
use std::fmt;

/// Errors raised while executing a visualization query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    NoSuchColumn(String),
    /// The (transform, aggregate, column types) combination is undefined,
    /// e.g. AVG over a categorical y, or a raw query with an aggregate.
    Invalid(String),
    Bin(BinError),
    /// Every row was null after filtering.
    EmptyResult,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::NoSuchColumn(c) => write!(f, "no such column {c:?}"),
            QueryError::Invalid(msg) => write!(f, "invalid query: {msg}"),
            QueryError::Bin(e) => write!(f, "bin error: {e}"),
            QueryError::EmptyResult => f.write_str("query produced no rows"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<BinError> for QueryError {
    fn from(e: BinError) -> Self {
        QueryError::Bin(e)
    }
}

/// Execute `query` against `table` with the default UDF registry.
pub fn execute(table: &Table, query: &VisQuery) -> Result<ChartData, QueryError> {
    execute_with(table, query, &UdfRegistry::default())
}

/// [`execute_with`], recording observability signals: the per-query wall
/// latency into the `exec.query_ns` histogram, the `exec.ok` / `exec.err`
/// outcome counters, and the produced chart's approximate heap footprint
/// into the allocation channel. Free when the observer is disabled.
pub fn execute_observed(
    table: &Table,
    query: &VisQuery,
    udfs: &UdfRegistry,
    obs: &deepeye_obs::Observer,
) -> Result<ChartData, QueryError> {
    let timer = obs.timer("exec.query_ns");
    let out = execute_with(table, query, udfs);
    drop(timer);
    obs.incr(if out.is_ok() { "exec.ok" } else { "exec.err" }, 1);
    if obs.is_enabled() {
        if let Ok(chart) = &out {
            // Arena point: the chart is the executor's output allocation;
            // charge its footprint to this query.
            obs.alloc_many(1, chart.approx_heap_bytes());
        }
    }
    out
}

/// Execute `query` against `table`, resolving UDF bins in `udfs`.
///
/// Runs [`crate::sema::check_executable`] first: every statically-detectable
/// failure (unknown columns, invalid transform/aggregate combinations,
/// bin/type mismatches) is rejected up front with the same [`QueryError`]
/// the execution path itself would produce. Only data-dependent failures
/// ([`QueryError::EmptyResult`]) surface during execution proper.
pub fn execute_with(
    table: &Table,
    query: &VisQuery,
    udfs: &UdfRegistry,
) -> Result<ChartData, QueryError> {
    // NoCost monomorphizes every counter away: this is the bare executor.
    execute_impl(table, query, udfs, &mut NoCost)
}

/// [`execute_with`], also returning the executor's per-operator work
/// counts (rows scanned, group-hash probes/inserts, bin computations,
/// aggregate updates, sort comparisons, output rows). Costs are
/// deterministic counts of work performed — identical across repeated
/// runs on the same inputs — and are reported even when the query fails
/// partway (the work done up to the failure is real).
pub fn execute_costed(
    table: &Table,
    query: &VisQuery,
    udfs: &UdfRegistry,
) -> (Result<ChartData, QueryError>, OpCosts) {
    let mut costs = OpCosts::default();
    let out = execute_impl(table, query, udfs, &mut costs);
    (out, costs)
}

/// The executor body, generic over the cost accumulator so the
/// uninstrumented path pays nothing. `pub(crate)` for the batch
/// executor's fallback path, which threads its own accumulators.
pub(crate) fn execute_impl<C: CostAcc>(
    table: &Table,
    query: &VisQuery,
    udfs: &UdfRegistry,
    cost: &mut C,
) -> Result<ChartData, QueryError> {
    if let Err(diagnostic) = crate::sema::check_executable(table, query, udfs) {
        return Err(diagnostic.into_query_error(query));
    }
    let x_col = table
        .column_by_name(&query.x)
        .ok_or_else(|| QueryError::NoSuchColumn(query.x.clone()))?;
    let y_col = match &query.y {
        Some(name) => Some(
            table
                .column_by_name(name)
                .ok_or_else(|| QueryError::NoSuchColumn(name.clone()))?,
        ),
        None => None,
    };

    let mut chart = match (&query.transform, query.aggregate) {
        (Transform::None, Aggregate::Raw) => raw_chart(query, x_col, y_col, cost)?,
        (Transform::None, agg) => {
            return Err(QueryError::Invalid(format!(
                "{} requires a GROUP or BIN transform",
                agg.name()
            )));
        }
        (Transform::Group, Aggregate::Raw) | (Transform::Bin(_), Aggregate::Raw) => {
            return Err(QueryError::Invalid(
                "a transform requires an aggregate (SUM, AVG, or CNT)".to_owned(),
            ));
        }
        (transform, agg) => {
            let keys = match transform {
                Transform::Group => group_keys(x_col),
                Transform::Bin(strategy) => {
                    let keys = bin_keys(x_col, strategy, udfs)?;
                    // One bin-key computation per source row.
                    cost.add(Op::BinComputations, keys.len() as u64);
                    keys
                }
                Transform::None => unreachable!("handled above"),
            };
            cost.add(Op::RowsScanned, keys.len() as u64);
            aggregated_chart(query, keys, y_col, agg, cost)?
        }
    };

    apply_order(&mut chart.series, query.order, cost);
    cost.add(Op::OutputRows, chart.series.len() as u64);
    Ok(chart)
}

/// Raw (untransformed) chart: pairs of cell values per row.
fn raw_chart<C: CostAcc>(
    query: &VisQuery,
    x_col: &Column,
    y_col: Option<&Column>,
    cost: &mut C,
) -> Result<ChartData, QueryError> {
    let y_col = y_col
        .ok_or_else(|| QueryError::Invalid("a raw query needs an explicit y column".to_owned()))?;
    let y_nums = numeric_view(y_col).ok_or_else(|| {
        QueryError::Invalid(format!("y column {:?} is not numeric", y_col.name()))
    })?;
    cost.add(Op::RowsScanned, x_col.len() as u64);
    let series = match numeric_scale(x_col) {
        // Both sides numeric-ish: continuous points.
        Some(xs) => {
            let pts: Vec<(f64, f64)> = xs
                .iter()
                .zip(y_nums.iter())
                .filter_map(|(x, y)| Some(((*x)?, (*y)?)))
                .collect();
            if pts.is_empty() {
                return Err(QueryError::EmptyResult);
            }
            Series::Points(pts)
        }
        // Categorical x: keyed rows.
        None => {
            let keys = group_keys(x_col);
            let pairs: Vec<(Key, f64)> = keys
                .into_iter()
                .zip(y_nums.iter())
                .filter_map(|(k, y)| Some((k?, (*y)?)))
                .collect();
            if pairs.is_empty() {
                return Err(QueryError::EmptyResult);
            }
            Series::Keyed(pairs)
        }
    };
    Ok(ChartData {
        chart: query.chart,
        x_label: query.x.clone(),
        y_label: y_col.name().to_owned(),
        series,
    })
}

/// Grouped/binned chart with SUM / AVG / CNT per bucket.
fn aggregated_chart<C: CostAcc>(
    query: &VisQuery,
    keys: Vec<Option<Key>>,
    y_col: Option<&Column>,
    agg: Aggregate,
    cost: &mut C,
) -> Result<ChartData, QueryError> {
    let y_label = match (y_col, agg) {
        (_, Aggregate::Raw) => unreachable!("caller rejects Raw"),
        (None, Aggregate::Cnt) => format!("CNT({})", query.x),
        (None, other) => {
            return Err(QueryError::Invalid(format!(
                "one-column queries support CNT only, got {}",
                other.name()
            )));
        }
        (Some(y), Aggregate::Cnt) => format!("CNT({})", y.name()),
        (Some(y), other) => {
            if y.data_type() != DataType::Numerical {
                return Err(QueryError::Invalid(format!(
                    "{} requires a numerical y column, {:?} is {}",
                    other.name(),
                    y.name(),
                    y.data_type()
                )));
            }
            format!("{}({})", other.name(), y.name())
        }
    };

    let y_nums: Option<Vec<Option<f64>>> = y_col.and_then(numeric_view);
    let mut buckets = Bucketizer::new();
    let mut sums: Vec<f64> = Vec::new();
    let mut counts: Vec<u64> = Vec::new();
    for (row, key) in keys.into_iter().enumerate() {
        let Some(key) = key else { continue };
        cost.add(Op::GroupProbes, 1);
        let idx = buckets.index_of(key);
        if idx == sums.len() {
            cost.add(Op::GroupInserts, 1);
            sums.push(0.0);
            counts.push(0);
        }
        match agg {
            Aggregate::Cnt => {
                cost.add(Op::AggUpdates, 1);
                counts[idx] += 1;
            }
            Aggregate::Sum | Aggregate::Avg => {
                if let Some(Some(y)) = y_nums.as_ref().map(|v| v[row]) {
                    cost.add(Op::AggUpdates, 1);
                    sums[idx] += y;
                    counts[idx] += 1;
                }
            }
            Aggregate::Raw => unreachable!(),
        }
    }
    if buckets.is_empty() {
        return Err(QueryError::EmptyResult);
    }
    let pairs: Vec<(Key, f64)> = buckets
        .into_keys()
        .into_iter()
        .enumerate()
        .map(|(i, k)| {
            let v = match agg {
                Aggregate::Cnt => counts[i] as f64,
                Aggregate::Sum => sums[i],
                Aggregate::Avg => {
                    if counts[i] == 0 {
                        0.0
                    } else {
                        sums[i] / counts[i] as f64
                    }
                }
                Aggregate::Raw => unreachable!(),
            };
            (k, v)
        })
        .collect();
    Ok(ChartData {
        chart: query.chart,
        x_label: query.x.clone(),
        y_label,
        series: Series::Keyed(pairs),
    })
}

/// Apply the ORDER BY clause in place: X' ascending or Y' descending.
/// Comparator invocations are counted (`sort_comparisons`) — the sort's
/// data-dependent work — then flushed to `cost` in one add.
fn apply_order<C: CostAcc>(series: &mut Series, order: SortOrder, cost: &mut C) {
    let mut cmps = 0u64;
    if let Series::Keyed(pairs) = series {
        match order {
            SortOrder::None => {}
            SortOrder::ByX => pairs.sort_by(|a, b| {
                cmps += 1;
                a.0.total_cmp(&b.0)
            }),
            SortOrder::ByY => pairs.sort_by(|a, b| {
                cmps += 1;
                b.1.total_cmp(&a.1)
            }),
        }
    } else if let Series::Points(pts) = series {
        match order {
            SortOrder::None => {}
            SortOrder::ByX => pts.sort_by(|a, b| {
                cmps += 1;
                a.0.total_cmp(&b.0)
            }),
            SortOrder::ByY => pts.sort_by(|a, b| {
                cmps += 1;
                b.1.total_cmp(&a.1)
            }),
        }
    }
    cost.add(Op::SortComparisons, cmps);
}

/// Numeric view of a column: numbers as-is; temporal as Unix seconds;
/// `None` for categorical.
fn numeric_scale(col: &Column) -> Option<Vec<Option<f64>>> {
    match col.data() {
        ColumnData::Numeric(v) => Some(v.clone()),
        ColumnData::Temporal(v) => Some(
            v.iter()
                .map(|t| t.map(|t| t.unix_seconds() as f64))
                .collect(),
        ),
        ColumnData::Text(_) => None,
    }
}

/// Numeric values of a numerical column only (used for y aggregation).
fn numeric_view(col: &Column) -> Option<Vec<Option<f64>>> {
    match col.data() {
        ColumnData::Numeric(v) => Some(v.clone()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinStrategy, ChartType};
    use deepeye_data::{parse_timestamp, TableBuilder, TimeUnit};

    fn flights() -> Table {
        let times: Vec<_> = [
            "2015-01-01 08:05",
            "2015-01-01 08:40",
            "2015-01-01 09:10",
            "2015-01-01 09:30",
            "2015-01-02 08:15",
        ]
        .iter()
        .map(|s| parse_timestamp(s).unwrap())
        .collect();
        TableBuilder::new("flights")
            .column(Column::temporal("scheduled", times))
            .text("carrier", ["UA", "AA", "UA", "MQ", "UA"])
            .numeric("delay", [4.0, 10.0, -2.0, 8.0, 0.0])
            .numeric("passengers", [100.0, 200.0, 150.0, 50.0, 120.0])
            .build()
            .unwrap()
    }

    fn q(chart: ChartType, x: &str, y: Option<&str>, t: Transform, a: Aggregate) -> VisQuery {
        VisQuery {
            chart,
            x: x.into(),
            y: y.map(Into::into),
            transform: t,
            aggregate: a,
            order: SortOrder::None,
        }
    }

    #[test]
    fn group_avg_matches_hand_computation() {
        let chart = execute(
            &flights(),
            &q(
                ChartType::Bar,
                "carrier",
                Some("delay"),
                Transform::Group,
                Aggregate::Avg,
            ),
        )
        .unwrap();
        let Series::Keyed(pairs) = &chart.series else {
            panic!()
        };
        let get = |name: &str| {
            pairs
                .iter()
                .find(|(k, _)| k.to_string() == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert!((get("UA") - (4.0 - 2.0 + 0.0) / 3.0).abs() < 1e-12);
        assert_eq!(get("AA"), 10.0);
        assert_eq!(get("MQ"), 8.0);
        assert_eq!(chart.y_label, "AVG(delay)");
    }

    #[test]
    fn group_sum_and_cnt() {
        let t = flights();
        let sum = execute(
            &t,
            &q(
                ChartType::Bar,
                "carrier",
                Some("passengers"),
                Transform::Group,
                Aggregate::Sum,
            ),
        )
        .unwrap();
        let Series::Keyed(pairs) = &sum.series else {
            panic!()
        };
        let total: f64 = pairs.iter().map(|(_, v)| v).sum();
        assert_eq!(total, 620.0); // SUM conservation

        let cnt = execute(
            &t,
            &q(
                ChartType::Pie,
                "carrier",
                None,
                Transform::Group,
                Aggregate::Cnt,
            ),
        )
        .unwrap();
        let Series::Keyed(pairs) = &cnt.series else {
            panic!()
        };
        let total: f64 = pairs.iter().map(|(_, v)| v).sum();
        assert_eq!(total, 5.0);
        assert_eq!(cnt.y_label, "CNT(carrier)");
    }

    #[test]
    fn bin_by_hour_like_paper_q1() {
        // Example 2's Q1: line chart of AVG(delay) binned by hour.
        let query = q(
            ChartType::Line,
            "scheduled",
            Some("delay"),
            Transform::Bin(BinStrategy::Unit(TimeUnit::Hour)),
            Aggregate::Avg,
        )
        .with_order(SortOrder::ByX);
        let chart = execute(&flights(), &query).unwrap();
        let Series::Keyed(pairs) = &chart.series else {
            panic!()
        };
        // Periodic hour-of-day buckets (Table II semantics):
        // 08:00 ← {4, 10, 0} across both days; 09:00 ← {-2, 8}.
        assert_eq!(pairs.len(), 2);
        assert!((pairs[0].1 - 14.0 / 3.0).abs() < 1e-12);
        assert_eq!(pairs[1].1, 3.0);
        // ORDER BY X gives hour-of-day order.
        let labels: Vec<String> = pairs.iter().map(|(k, _)| k.to_string()).collect();
        assert_eq!(labels, vec!["08:00", "09:00"]);
    }

    #[test]
    fn raw_scatter_points() {
        let chart = execute(
            &flights(),
            &q(
                ChartType::Scatter,
                "delay",
                Some("passengers"),
                Transform::None,
                Aggregate::Raw,
            ),
        )
        .unwrap();
        let Series::Points(pts) = &chart.series else {
            panic!()
        };
        assert_eq!(pts.len(), 5);
    }

    #[test]
    fn raw_keyed_for_categorical_x() {
        let chart = execute(
            &flights(),
            &q(
                ChartType::Bar,
                "carrier",
                Some("delay"),
                Transform::None,
                Aggregate::Raw,
            ),
        )
        .unwrap();
        assert!(matches!(chart.series, Series::Keyed(_)));
        assert_eq!(chart.series.len(), 5);
    }

    #[test]
    fn order_by_y_descends() {
        let query = q(
            ChartType::Bar,
            "carrier",
            Some("passengers"),
            Transform::Group,
            Aggregate::Sum,
        )
        .with_order(SortOrder::ByY);
        let chart = execute(&flights(), &query).unwrap();
        let ys = chart.series.y_values();
        assert!(
            ys.windows(2).all(|w| w[0] >= w[1]),
            "not descending: {ys:?}"
        );
    }

    #[test]
    fn invalid_combinations_rejected() {
        let t = flights();
        // Aggregate without transform.
        assert!(matches!(
            execute(
                &t,
                &q(
                    ChartType::Bar,
                    "carrier",
                    Some("delay"),
                    Transform::None,
                    Aggregate::Avg
                )
            ),
            Err(QueryError::Invalid(_))
        ));
        // Transform without aggregate.
        assert!(matches!(
            execute(
                &t,
                &q(
                    ChartType::Bar,
                    "carrier",
                    Some("delay"),
                    Transform::Group,
                    Aggregate::Raw
                )
            ),
            Err(QueryError::Invalid(_))
        ));
        // AVG over categorical y.
        assert!(matches!(
            execute(
                &t,
                &q(
                    ChartType::Bar,
                    "delay",
                    Some("carrier"),
                    Transform::Bin(BinStrategy::Default),
                    Aggregate::Avg
                )
            ),
            Err(QueryError::Invalid(_))
        ));
        // Unknown column.
        assert!(matches!(
            execute(
                &t,
                &q(
                    ChartType::Bar,
                    "nope",
                    Some("delay"),
                    Transform::Group,
                    Aggregate::Avg
                )
            ),
            Err(QueryError::NoSuchColumn(_))
        ));
        // One-column with SUM.
        assert!(matches!(
            execute(
                &t,
                &q(
                    ChartType::Bar,
                    "carrier",
                    None,
                    Transform::Group,
                    Aggregate::Sum
                )
            ),
            Err(QueryError::Invalid(_))
        ));
    }

    #[test]
    fn cnt_with_explicit_y_counts_rows() {
        let chart = execute(
            &flights(),
            &q(
                ChartType::Bar,
                "carrier",
                Some("delay"),
                Transform::Group,
                Aggregate::Cnt,
            ),
        )
        .unwrap();
        let Series::Keyed(pairs) = &chart.series else {
            panic!()
        };
        let total: f64 = pairs.iter().map(|(_, v)| v).sum();
        assert_eq!(total, 5.0);
        assert_eq!(chart.y_label, "CNT(delay)");
    }

    #[test]
    fn nulls_are_skipped() {
        let t = TableBuilder::new("t")
            .column(Column::new(
                "g",
                ColumnData::Text(vec![Some("a".into()), None, Some("a".into())]),
            ))
            .column(Column::new(
                "v",
                ColumnData::Numeric(vec![Some(1.0), Some(2.0), None]),
            ))
            .build()
            .unwrap();
        let chart = execute(
            &t,
            &q(
                ChartType::Bar,
                "g",
                Some("v"),
                Transform::Group,
                Aggregate::Avg,
            ),
        )
        .unwrap();
        let Series::Keyed(pairs) = &chart.series else {
            panic!()
        };
        // Only the first row contributes a value; third row's y is null.
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].1, 1.0);
    }

    #[test]
    fn empty_result_detected() {
        let t = TableBuilder::new("t")
            .column(Column::new("g", ColumnData::Text(vec![None, None])))
            .column(Column::new(
                "v",
                ColumnData::Numeric(vec![Some(1.0), Some(2.0)]),
            ))
            .build()
            .unwrap();
        assert_eq!(
            execute(
                &t,
                &q(
                    ChartType::Bar,
                    "g",
                    Some("v"),
                    Transform::Group,
                    Aggregate::Avg
                )
            ),
            Err(QueryError::EmptyResult)
        );
    }

    #[test]
    fn costed_execution_matches_and_counts_group_work() {
        let t = flights();
        let query = q(
            ChartType::Bar,
            "carrier",
            Some("delay"),
            Transform::Group,
            Aggregate::Avg,
        )
        .with_order(SortOrder::ByY);
        let plain = execute(&t, &query).unwrap();
        let (costed, costs) = execute_costed(&t, &query, &UdfRegistry::default());
        assert_eq!(costed.unwrap(), plain);
        // 5 rows, all keys non-null → 5 probes; 3 distinct carriers →
        // 3 inserts; every row has a delay → 5 aggregate updates; the
        // output is the 3 buckets; no bins on a GROUP transform.
        assert_eq!(costs.get(Op::RowsScanned), 5);
        assert_eq!(costs.get(Op::GroupProbes), 5);
        assert_eq!(costs.get(Op::GroupInserts), 3);
        assert_eq!(costs.get(Op::AggUpdates), 5);
        assert_eq!(costs.get(Op::OutputRows), 3);
        assert_eq!(costs.get(Op::BinComputations), 0);
        // Sorting 3 pairs takes at least 2 comparisons.
        assert!(costs.get(Op::SortComparisons) >= 2);
    }

    #[test]
    fn costed_bin_counts_bin_computations() {
        let query = q(
            ChartType::Line,
            "scheduled",
            Some("delay"),
            Transform::Bin(BinStrategy::Unit(TimeUnit::Hour)),
            Aggregate::Avg,
        );
        let (out, costs) = execute_costed(&flights(), &query, &UdfRegistry::default());
        assert!(out.is_ok());
        assert_eq!(costs.get(Op::BinComputations), 5);
        assert_eq!(costs.get(Op::RowsScanned), 5);
        assert_eq!(costs.get(Op::GroupInserts), 2); // 08:00 and 09:00
        assert_eq!(costs.get(Op::OutputRows), 2);
    }

    #[test]
    fn costed_raw_counts_rows_and_output() {
        let query = q(
            ChartType::Scatter,
            "delay",
            Some("passengers"),
            Transform::None,
            Aggregate::Raw,
        );
        let (out, costs) = execute_costed(&flights(), &query, &UdfRegistry::default());
        assert!(out.is_ok());
        assert_eq!(costs.get(Op::RowsScanned), 5);
        assert_eq!(costs.get(Op::OutputRows), 5);
        assert_eq!(costs.get(Op::GroupProbes), 0);
        assert_eq!(costs.get(Op::AggUpdates), 0);
    }

    #[test]
    fn costed_failure_reports_no_phantom_work() {
        // Rejected by sema before any scan: all counters stay zero.
        let query = q(
            ChartType::Bar,
            "carrier",
            Some("delay"),
            Transform::None,
            Aggregate::Avg,
        );
        let (out, costs) = execute_costed(&flights(), &query, &UdfRegistry::default());
        assert!(out.is_err());
        assert!(costs.is_zero());
    }

    #[test]
    fn temporal_x_raw_points_use_seconds() {
        let chart = execute(
            &flights(),
            &q(
                ChartType::Line,
                "scheduled",
                Some("delay"),
                Transform::None,
                Aggregate::Raw,
            ),
        )
        .unwrap();
        let Series::Points(pts) = &chart.series else {
            panic!()
        };
        assert_eq!(pts.len(), 5);
        assert!(pts.iter().all(|(x, _)| *x > 1.4e9)); // 2015 in Unix seconds
    }
}
