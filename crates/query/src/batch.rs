//! Batch execution with shared scans (§V-B optimization 1, as a public
//! API): "for each column X, when grouping and binning the column, we
//! compute the AGG values on other columns together and avoid
//! binning/grouping multiple times."
//!
//! Queries are grouped by `(x column, transform)`; each group performs one
//! pass over the table computing CNT plus SUM for every referenced
//! y-column, then materializes every requested chart from the shared
//! accumulators. Raw (untransformed) queries fall back to the one-shot
//! executor. Results are position-aligned with the input and identical to
//! calling [`crate::execute_with`] per query.

use crate::ast::{Aggregate, SortOrder, Transform, VisQuery};
use crate::bins::{bin_keys, group_keys, Bucketizer, Key, UdfRegistry};
use crate::chart::{ChartData, Series};
use crate::exec::{execute_with, QueryError};
use deepeye_data::{ColumnData, Table};
use std::collections::HashMap;

/// Execute many queries with shared scans. `results[i]` corresponds to
/// `queries[i]`.
pub fn execute_batch(
    table: &Table,
    queries: &[VisQuery],
    udfs: &UdfRegistry,
) -> Vec<Result<ChartData, QueryError>> {
    let mut results: Vec<Option<Result<ChartData, QueryError>>> = vec![None; queries.len()];

    // Group aggregated queries by (x, transform); run everything else
    // through the scalar path.
    let mut groups: HashMap<(String, String), Vec<usize>> = HashMap::new();
    for (i, q) in queries.iter().enumerate() {
        let shareable = !matches!(q.transform, Transform::None) && q.aggregate != Aggregate::Raw;
        if shareable {
            groups
                .entry((q.x.clone(), format!("{:?}", q.transform)))
                .or_default()
                .push(i);
        } else {
            results[i] = Some(execute_with(table, q, udfs));
        }
    }

    for ((x_name, _), indices) in groups {
        let outcome = scan_group(table, &x_name, queries, &indices, udfs);
        match outcome {
            Ok(mut produced) => {
                for i in indices {
                    let r = produced.remove(&i);
                    debug_assert!(r.is_some(), "scan produced one result per query");
                    results[i] = Some(r.unwrap_or_else(|| {
                        Err(QueryError::Invalid(
                            "internal: shared scan dropped a query".to_owned(),
                        ))
                    }));
                }
            }
            Err(e) => {
                for i in indices {
                    results[i] = Some(Err(e.clone()));
                }
            }
        }
    }

    results
        .into_iter()
        .map(|r| {
            debug_assert!(r.is_some(), "every query handled");
            r.unwrap_or_else(|| {
                Err(QueryError::Invalid(
                    "internal: query skipped by batch dispatch".to_owned(),
                ))
            })
        })
        .collect()
}

/// One shared scan for a set of same-(x, transform) query indices.
#[allow(clippy::type_complexity)]
fn scan_group(
    table: &Table,
    x_name: &str,
    queries: &[VisQuery],
    indices: &[usize],
    udfs: &UdfRegistry,
) -> Result<HashMap<usize, Result<ChartData, QueryError>>, QueryError> {
    let x_col = table
        .column_by_name(x_name)
        .ok_or_else(|| QueryError::NoSuchColumn(x_name.to_owned()))?;
    let transform = &queries[indices[0]].transform;
    let keys = match transform {
        Transform::Group => group_keys(x_col),
        Transform::Bin(strategy) => bin_keys(x_col, strategy, udfs)?,
        Transform::None => unreachable!("caller filters raw queries"),
    };

    // The numeric y-columns any query needs SUM/AVG over.
    let mut y_names: Vec<&str> = Vec::new();
    for &i in indices {
        if let (Some(y), Aggregate::Sum | Aggregate::Avg) = (&queries[i].y, queries[i].aggregate) {
            if !y_names.contains(&y.as_str()) {
                y_names.push(y);
            }
        }
    }
    let y_values: Vec<Option<&Vec<Option<f64>>>> = y_names
        .iter()
        .map(|name| {
            table.column_by_name(name).and_then(|c| match c.data() {
                ColumnData::Numeric(v) => Some(v),
                _ => None,
            })
        })
        .collect();
    // SUM/AVG require a *numeric* y; remember which resolved.
    let y_numeric: Vec<bool> = y_values.iter().map(Option::is_some).collect();

    let mut buckets = Bucketizer::new();
    let mut counts: Vec<u64> = Vec::new();
    let mut sums: Vec<Vec<f64>> = vec![Vec::new(); y_names.len()];
    let mut y_counts: Vec<Vec<u64>> = vec![Vec::new(); y_names.len()];
    for (row, key) in keys.into_iter().enumerate() {
        let Some(key) = key else { continue };
        let idx = buckets.index_of(key);
        if idx == counts.len() {
            counts.push(0);
            for s in &mut sums {
                s.push(0.0);
            }
            for c in &mut y_counts {
                c.push(0);
            }
        }
        counts[idx] += 1;
        for (yi, vals) in y_values.iter().enumerate() {
            if let Some(Some(v)) = vals.map(|v| v[row]) {
                sums[yi][idx] += v;
                y_counts[yi][idx] += 1;
            }
        }
    }
    let keys_dense: Vec<Key> = buckets.into_keys();

    let mut out = HashMap::with_capacity(indices.len());
    for &i in indices {
        let q = &queries[i];
        if keys_dense.is_empty() {
            out.insert(i, Err(QueryError::EmptyResult));
            continue;
        }
        let result = materialize(
            q,
            &keys_dense,
            &counts,
            &sums,
            &y_counts,
            &y_names,
            &y_numeric,
        );
        out.insert(i, result);
    }
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn materialize(
    q: &VisQuery,
    keys: &[Key],
    counts: &[u64],
    sums: &[Vec<f64>],
    y_counts: &[Vec<u64>],
    y_names: &[&str],
    y_numeric: &[bool],
) -> Result<ChartData, QueryError> {
    let (pairs, y_label): (Vec<(Key, f64)>, String) = match (&q.y, q.aggregate) {
        (None, Aggregate::Cnt) => (
            keys.iter()
                .cloned()
                .zip(counts.iter().map(|&c| c as f64))
                .collect(),
            format!("CNT({})", q.x),
        ),
        (None, other) => {
            return Err(QueryError::Invalid(format!(
                "one-column queries support CNT only, got {}",
                other.name()
            )));
        }
        (Some(y), Aggregate::Cnt) => (
            keys.iter()
                .cloned()
                .zip(counts.iter().map(|&c| c as f64))
                .collect(),
            format!("CNT({y})"),
        ),
        (Some(y), agg @ (Aggregate::Sum | Aggregate::Avg)) => {
            let yi = y_names.iter().position(|n| n == y).ok_or_else(|| {
                QueryError::Invalid(format!(
                    "{} requires a numerical y column, {y:?} is not",
                    agg.name()
                ))
            })?;
            if !y_numeric[yi] {
                return Err(QueryError::Invalid(format!(
                    "{} requires a numerical y column, {y:?} is not",
                    agg.name()
                )));
            }
            let values: Vec<f64> = match agg {
                Aggregate::Sum => sums[yi].clone(),
                Aggregate::Avg => sums[yi]
                    .iter()
                    .zip(&y_counts[yi])
                    .map(|(&s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
                    .collect(),
                _ => unreachable!(),
            };
            (
                keys.iter().cloned().zip(values).collect(),
                format!("{}({y})", agg.name()),
            )
        }
        (_, Aggregate::Raw) => unreachable!("caller filters raw queries"),
    };
    let mut series = Series::Keyed(pairs);
    if let Series::Keyed(pairs) = &mut series {
        match q.order {
            SortOrder::None => {}
            SortOrder::ByX => pairs.sort_by(|a, b| a.0.total_cmp(&b.0)),
            SortOrder::ByY => pairs.sort_by(|a, b| b.1.total_cmp(&a.1)),
        }
    }
    Ok(ChartData {
        chart: q.chart,
        x_label: q.x.clone(),
        y_label,
        series,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinStrategy, ChartType};
    use deepeye_data::{parse_timestamp, Column, TableBuilder};

    fn table() -> Table {
        let n = 60;
        let ts: Vec<_> = (0..n)
            .map(|i| {
                parse_timestamp(&format!(
                    "2015-{:02}-{:02} {:02}:30",
                    i % 12 + 1,
                    i % 28 + 1,
                    i % 24
                ))
                .unwrap()
            })
            .collect();
        TableBuilder::new("t")
            .column(Column::temporal("when", ts))
            .text("cat", (0..n).map(|i| ["a", "b", "c"][i % 3]))
            .numeric("v", (0..n).map(|i| (i % 13) as f64 - 4.0))
            .numeric("w", (0..n).map(|i| i as f64 * 0.5))
            .build()
            .unwrap()
    }

    /// Sample a diverse query set spanning shareable and raw paths.
    fn queries() -> Vec<VisQuery> {
        let mut out = Vec::new();
        for x in ["cat", "when", "v"] {
            for t in crate::enumerate::all_queries(&table())
                .filter(|q| q.x == x)
                .take(40)
            {
                out.push(t);
            }
        }
        out
    }

    #[test]
    fn batch_matches_scalar_execution() {
        let t = table();
        let udfs = UdfRegistry::default();
        let qs = queries();
        let batch = execute_batch(&t, &qs, &udfs);
        assert_eq!(batch.len(), qs.len());
        for (q, batch_result) in qs.iter().zip(&batch) {
            let scalar = execute_with(&t, q, &udfs);
            match (batch_result, &scalar) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "mismatch for {q:?}"),
                (Err(_), Err(_)) => {}
                other => panic!("outcome mismatch for {q:?}: {other:?}"),
            }
        }
    }

    #[test]
    fn shared_group_results_consistent() {
        // All three aggregates of the same (x, transform) from one scan.
        let t = table();
        let udfs = UdfRegistry::default();
        let base = VisQuery {
            chart: ChartType::Bar,
            x: "cat".into(),
            y: Some("w".into()),
            transform: Transform::Group,
            aggregate: Aggregate::Sum,
            order: SortOrder::ByX,
        };
        let qs = vec![
            base.clone(),
            VisQuery {
                aggregate: Aggregate::Avg,
                ..base.clone()
            },
            VisQuery {
                aggregate: Aggregate::Cnt,
                ..base.clone()
            },
        ];
        let results = execute_batch(&t, &qs, &udfs);
        let sum = results[0].as_ref().unwrap().series.y_values();
        let avg = results[1].as_ref().unwrap().series.y_values();
        let cnt = results[2].as_ref().unwrap().series.y_values();
        for ((s, a), c) in sum.iter().zip(&avg).zip(&cnt) {
            assert!((s / c - a).abs() < 1e-9, "sum/cnt must equal avg");
        }
    }

    #[test]
    fn invalid_queries_fail_identically() {
        let t = table();
        let udfs = UdfRegistry::default();
        let bad = VisQuery {
            chart: ChartType::Bar,
            x: "cat".into(),
            y: Some("cat".into()),
            transform: Transform::Group,
            aggregate: Aggregate::Avg, // AVG over categorical y
            order: SortOrder::None,
        };
        let results = execute_batch(&t, std::slice::from_ref(&bad), &udfs);
        assert!(results[0].is_err());
        assert!(execute_with(&t, &bad, &udfs).is_err());
    }

    #[test]
    fn temporal_bins_share_scans() {
        let t = table();
        let udfs = UdfRegistry::default();
        let qs: Vec<VisQuery> = [Aggregate::Sum, Aggregate::Avg, Aggregate::Cnt]
            .into_iter()
            .map(|aggregate| VisQuery {
                chart: ChartType::Line,
                x: "when".into(),
                y: Some("v".into()),
                transform: Transform::Bin(BinStrategy::Unit(deepeye_data::TimeUnit::Month)),
                aggregate,
                order: SortOrder::ByX,
            })
            .collect();
        for (q, r) in qs.iter().zip(execute_batch(&t, &qs, &udfs)) {
            assert_eq!(r.unwrap(), execute_with(&t, q, &udfs).unwrap());
        }
    }

    #[test]
    fn empty_input() {
        assert!(execute_batch(&table(), &[], &UdfRegistry::default()).is_empty());
    }
}
