//! Batch execution with shared scans (§V-B optimization 1, as a public
//! API): "for each column X, when grouping and binning the column, we
//! compute the AGG values on other columns together and avoid
//! binning/grouping multiple times."
//!
//! Queries are grouped by `(x column, transform)`; each group performs one
//! pass over the table computing CNT plus SUM for every referenced
//! y-column, then materializes every requested chart from the shared
//! accumulators. Raw (untransformed) queries fall back to the one-shot
//! executor. Results are position-aligned with the input and identical to
//! calling [`crate::execute_with`] per query.

use crate::ast::{Aggregate, SortOrder, Transform, VisQuery};
use crate::bins::{bin_keys, group_keys, Bucketizer, Key, UdfRegistry};
use crate::chart::{ChartData, Series};
use crate::exec::{execute_impl, QueryError};
use deepeye_data::{ColumnData, Table};
use deepeye_obs::{CostAcc, NoCost, Op, OpCosts};
use std::collections::HashMap;

/// Execute many queries with shared scans. `results[i]` corresponds to
/// `queries[i]`.
pub fn execute_batch(
    table: &Table,
    queries: &[VisQuery],
    udfs: &UdfRegistry,
) -> Vec<Result<ChartData, QueryError>> {
    // NoCost is zero-sized: the per-query vector allocates nothing and
    // every counter monomorphizes away.
    let mut per_query = vec![NoCost; queries.len()];
    execute_batch_impl(table, queries, udfs, &mut NoCost, &mut per_query)
}

/// The executor cost breakdown of one batch: work that ran once per
/// shared scan versus work attributable to a single query.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchCosts {
    /// Scan-phase work (rows scanned, bin computations, group-hash
    /// probes/inserts, aggregate updates) performed once per
    /// `(x, transform)` group and amortized over its queries.
    pub shared: OpCosts,
    /// Per-query work, aligned with the input: materialization (output
    /// rows, sort comparisons) for shareable queries, the full operator
    /// vector for queries that fell back to the scalar executor.
    pub per_query: Vec<OpCosts>,
}

impl BatchCosts {
    /// Shared plus per-query work — comparable against the sum of
    /// [`crate::execute_costed`] totals to measure shared-scan savings.
    pub fn total(&self) -> OpCosts {
        let mut out = self.shared;
        for q in &self.per_query {
            out.merge(q);
        }
        out
    }
}

/// [`execute_batch`], also returning the per-operator cost breakdown.
pub fn execute_batch_costed(
    table: &Table,
    queries: &[VisQuery],
    udfs: &UdfRegistry,
) -> (Vec<Result<ChartData, QueryError>>, BatchCosts) {
    let mut shared = OpCosts::default();
    let mut per_query = vec![OpCosts::default(); queries.len()];
    let results = execute_batch_impl(table, queries, udfs, &mut shared, &mut per_query);
    (results, BatchCosts { shared, per_query })
}

/// The batch body, generic over the cost accumulator. `per_query` is
/// aligned with `queries`.
fn execute_batch_impl<C: CostAcc>(
    table: &Table,
    queries: &[VisQuery],
    udfs: &UdfRegistry,
    shared: &mut C,
    per_query: &mut [C],
) -> Vec<Result<ChartData, QueryError>> {
    let mut results: Vec<Option<Result<ChartData, QueryError>>> = vec![None; queries.len()];

    // Group aggregated queries by (x, transform); run everything else
    // through the scalar path.
    let mut groups: HashMap<(String, String), Vec<usize>> = HashMap::new();
    for (i, q) in queries.iter().enumerate() {
        let shareable = !matches!(q.transform, Transform::None) && q.aggregate != Aggregate::Raw;
        if shareable {
            groups
                .entry((q.x.clone(), format!("{:?}", q.transform)))
                .or_default()
                .push(i);
        } else {
            results[i] = Some(execute_impl(table, q, udfs, &mut per_query[i]));
        }
    }

    for ((x_name, _), indices) in groups {
        let outcome = scan_group(table, &x_name, queries, &indices, udfs, shared, per_query);
        match outcome {
            Ok(mut produced) => {
                for i in indices {
                    let r = produced.remove(&i);
                    debug_assert!(r.is_some(), "scan produced one result per query");
                    results[i] = Some(r.unwrap_or_else(|| {
                        Err(QueryError::Invalid(
                            "internal: shared scan dropped a query".to_owned(),
                        ))
                    }));
                }
            }
            Err(e) => {
                for i in indices {
                    results[i] = Some(Err(e.clone()));
                }
            }
        }
    }

    results
        .into_iter()
        .map(|r| {
            debug_assert!(r.is_some(), "every query handled");
            r.unwrap_or_else(|| {
                Err(QueryError::Invalid(
                    "internal: query skipped by batch dispatch".to_owned(),
                ))
            })
        })
        .collect()
}

/// One shared scan for a set of same-(x, transform) query indices.
/// Scan-phase work is charged to `shared` (it runs once regardless of
/// how many queries ride the scan); materialization work is charged to
/// each query's own accumulator in `per_query`.
#[allow(clippy::type_complexity, clippy::too_many_arguments)]
fn scan_group<C: CostAcc>(
    table: &Table,
    x_name: &str,
    queries: &[VisQuery],
    indices: &[usize],
    udfs: &UdfRegistry,
    shared: &mut C,
    per_query: &mut [C],
) -> Result<HashMap<usize, Result<ChartData, QueryError>>, QueryError> {
    let x_col = table
        .column_by_name(x_name)
        .ok_or_else(|| QueryError::NoSuchColumn(x_name.to_owned()))?;
    let transform = &queries[indices[0]].transform;
    let keys = match transform {
        Transform::Group => group_keys(x_col),
        Transform::Bin(strategy) => {
            let keys = bin_keys(x_col, strategy, udfs)?;
            shared.add(Op::BinComputations, keys.len() as u64);
            keys
        }
        Transform::None => unreachable!("caller filters raw queries"),
    };
    shared.add(Op::RowsScanned, keys.len() as u64);

    // The numeric y-columns any query needs SUM/AVG over.
    let mut y_names: Vec<&str> = Vec::new();
    for &i in indices {
        if let (Some(y), Aggregate::Sum | Aggregate::Avg) = (&queries[i].y, queries[i].aggregate) {
            if !y_names.contains(&y.as_str()) {
                y_names.push(y);
            }
        }
    }
    let y_values: Vec<Option<&Vec<Option<f64>>>> = y_names
        .iter()
        .map(|name| {
            table.column_by_name(name).and_then(|c| match c.data() {
                ColumnData::Numeric(v) => Some(v),
                _ => None,
            })
        })
        .collect();
    // SUM/AVG require a *numeric* y; remember which resolved.
    let y_numeric: Vec<bool> = y_values.iter().map(Option::is_some).collect();

    let mut buckets = Bucketizer::new();
    let mut counts: Vec<u64> = Vec::new();
    let mut sums: Vec<Vec<f64>> = vec![Vec::new(); y_names.len()];
    let mut y_counts: Vec<Vec<u64>> = vec![Vec::new(); y_names.len()];
    for (row, key) in keys.into_iter().enumerate() {
        let Some(key) = key else { continue };
        shared.add(Op::GroupProbes, 1);
        let idx = buckets.index_of(key);
        if idx == counts.len() {
            shared.add(Op::GroupInserts, 1);
            counts.push(0);
            for s in &mut sums {
                s.push(0.0);
            }
            for c in &mut y_counts {
                c.push(0);
            }
        }
        shared.add(Op::AggUpdates, 1);
        counts[idx] += 1;
        for (yi, vals) in y_values.iter().enumerate() {
            if let Some(Some(v)) = vals.map(|v| v[row]) {
                shared.add(Op::AggUpdates, 1);
                sums[yi][idx] += v;
                y_counts[yi][idx] += 1;
            }
        }
    }
    let keys_dense: Vec<Key> = buckets.into_keys();

    let mut out = HashMap::with_capacity(indices.len());
    for &i in indices {
        let q = &queries[i];
        if keys_dense.is_empty() {
            out.insert(i, Err(QueryError::EmptyResult));
            continue;
        }
        let result = materialize(
            q,
            &keys_dense,
            &counts,
            &sums,
            &y_counts,
            &y_names,
            &y_numeric,
            &mut per_query[i],
        );
        out.insert(i, result);
    }
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn materialize<C: CostAcc>(
    q: &VisQuery,
    keys: &[Key],
    counts: &[u64],
    sums: &[Vec<f64>],
    y_counts: &[Vec<u64>],
    y_names: &[&str],
    y_numeric: &[bool],
    cost: &mut C,
) -> Result<ChartData, QueryError> {
    let (pairs, y_label): (Vec<(Key, f64)>, String) = match (&q.y, q.aggregate) {
        (None, Aggregate::Cnt) => (
            keys.iter()
                .cloned()
                .zip(counts.iter().map(|&c| c as f64))
                .collect(),
            format!("CNT({})", q.x),
        ),
        (None, other) => {
            return Err(QueryError::Invalid(format!(
                "one-column queries support CNT only, got {}",
                other.name()
            )));
        }
        (Some(y), Aggregate::Cnt) => (
            keys.iter()
                .cloned()
                .zip(counts.iter().map(|&c| c as f64))
                .collect(),
            format!("CNT({y})"),
        ),
        (Some(y), agg @ (Aggregate::Sum | Aggregate::Avg)) => {
            let yi = y_names.iter().position(|n| n == y).ok_or_else(|| {
                QueryError::Invalid(format!(
                    "{} requires a numerical y column, {y:?} is not",
                    agg.name()
                ))
            })?;
            if !y_numeric[yi] {
                return Err(QueryError::Invalid(format!(
                    "{} requires a numerical y column, {y:?} is not",
                    agg.name()
                )));
            }
            let values: Vec<f64> = match agg {
                Aggregate::Sum => sums[yi].clone(),
                Aggregate::Avg => sums[yi]
                    .iter()
                    .zip(&y_counts[yi])
                    .map(|(&s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
                    .collect(),
                _ => unreachable!(),
            };
            (
                keys.iter().cloned().zip(values).collect(),
                format!("{}({y})", agg.name()),
            )
        }
        (_, Aggregate::Raw) => unreachable!("caller filters raw queries"),
    };
    let mut series = Series::Keyed(pairs);
    if let Series::Keyed(pairs) = &mut series {
        let mut cmps = 0u64;
        match q.order {
            SortOrder::None => {}
            SortOrder::ByX => pairs.sort_by(|a, b| {
                cmps += 1;
                a.0.total_cmp(&b.0)
            }),
            SortOrder::ByY => pairs.sort_by(|a, b| {
                cmps += 1;
                b.1.total_cmp(&a.1)
            }),
        }
        cost.add(Op::SortComparisons, cmps);
    }
    cost.add(Op::OutputRows, series.len() as u64);
    Ok(ChartData {
        chart: q.chart,
        x_label: q.x.clone(),
        y_label,
        series,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinStrategy, ChartType};
    use crate::exec::{execute_costed, execute_with};
    use deepeye_data::{parse_timestamp, Column, TableBuilder};

    fn table() -> Table {
        let n = 60;
        let ts: Vec<_> = (0..n)
            .map(|i| {
                parse_timestamp(&format!(
                    "2015-{:02}-{:02} {:02}:30",
                    i % 12 + 1,
                    i % 28 + 1,
                    i % 24
                ))
                .unwrap()
            })
            .collect();
        TableBuilder::new("t")
            .column(Column::temporal("when", ts))
            .text("cat", (0..n).map(|i| ["a", "b", "c"][i % 3]))
            .numeric("v", (0..n).map(|i| (i % 13) as f64 - 4.0))
            .numeric("w", (0..n).map(|i| i as f64 * 0.5))
            .build()
            .unwrap()
    }

    /// Sample a diverse query set spanning shareable and raw paths.
    fn queries() -> Vec<VisQuery> {
        let mut out = Vec::new();
        for x in ["cat", "when", "v"] {
            for t in crate::enumerate::all_queries(&table())
                .filter(|q| q.x == x)
                .take(40)
            {
                out.push(t);
            }
        }
        out
    }

    #[test]
    fn batch_matches_scalar_execution() {
        let t = table();
        let udfs = UdfRegistry::default();
        let qs = queries();
        let batch = execute_batch(&t, &qs, &udfs);
        assert_eq!(batch.len(), qs.len());
        for (q, batch_result) in qs.iter().zip(&batch) {
            let scalar = execute_with(&t, q, &udfs);
            match (batch_result, &scalar) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "mismatch for {q:?}"),
                (Err(_), Err(_)) => {}
                other => panic!("outcome mismatch for {q:?}: {other:?}"),
            }
        }
    }

    #[test]
    fn shared_group_results_consistent() {
        // All three aggregates of the same (x, transform) from one scan.
        let t = table();
        let udfs = UdfRegistry::default();
        let base = VisQuery {
            chart: ChartType::Bar,
            x: "cat".into(),
            y: Some("w".into()),
            transform: Transform::Group,
            aggregate: Aggregate::Sum,
            order: SortOrder::ByX,
        };
        let qs = vec![
            base.clone(),
            VisQuery {
                aggregate: Aggregate::Avg,
                ..base.clone()
            },
            VisQuery {
                aggregate: Aggregate::Cnt,
                ..base.clone()
            },
        ];
        let results = execute_batch(&t, &qs, &udfs);
        let sum = results[0].as_ref().unwrap().series.y_values();
        let avg = results[1].as_ref().unwrap().series.y_values();
        let cnt = results[2].as_ref().unwrap().series.y_values();
        for ((s, a), c) in sum.iter().zip(&avg).zip(&cnt) {
            assert!((s / c - a).abs() < 1e-9, "sum/cnt must equal avg");
        }
    }

    #[test]
    fn invalid_queries_fail_identically() {
        let t = table();
        let udfs = UdfRegistry::default();
        let bad = VisQuery {
            chart: ChartType::Bar,
            x: "cat".into(),
            y: Some("cat".into()),
            transform: Transform::Group,
            aggregate: Aggregate::Avg, // AVG over categorical y
            order: SortOrder::None,
        };
        let results = execute_batch(&t, std::slice::from_ref(&bad), &udfs);
        assert!(results[0].is_err());
        assert!(execute_with(&t, &bad, &udfs).is_err());
    }

    #[test]
    fn temporal_bins_share_scans() {
        let t = table();
        let udfs = UdfRegistry::default();
        let qs: Vec<VisQuery> = [Aggregate::Sum, Aggregate::Avg, Aggregate::Cnt]
            .into_iter()
            .map(|aggregate| VisQuery {
                chart: ChartType::Line,
                x: "when".into(),
                y: Some("v".into()),
                transform: Transform::Bin(BinStrategy::Unit(deepeye_data::TimeUnit::Month)),
                aggregate,
                order: SortOrder::ByX,
            })
            .collect();
        for (q, r) in qs.iter().zip(execute_batch(&t, &qs, &udfs)) {
            assert_eq!(r.unwrap(), execute_with(&t, q, &udfs).unwrap());
        }
    }

    #[test]
    fn empty_input() {
        assert!(execute_batch(&table(), &[], &UdfRegistry::default()).is_empty());
        let (results, costs) = execute_batch_costed(&table(), &[], &UdfRegistry::default());
        assert!(results.is_empty());
        assert!(costs.total().is_zero());
    }

    #[test]
    fn costed_batch_matches_plain_batch() {
        let t = table();
        let udfs = UdfRegistry::default();
        let qs = queries();
        let plain = execute_batch(&t, &qs, &udfs);
        let (costed, costs) = execute_batch_costed(&t, &qs, &udfs);
        assert_eq!(costs.per_query.len(), qs.len());
        for (i, (a, b)) in plain.iter().zip(&costed).enumerate() {
            match (a, b) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "mismatch for {:?}", qs[i]),
                (Err(_), Err(_)) => {}
                other => panic!("outcome mismatch for {:?}: {other:?}", qs[i]),
            }
        }
        assert!(!costs.total().is_zero());
    }

    #[test]
    fn shared_scan_saves_work_versus_scalar() {
        // Three aggregates over the same (x, transform) share one scan:
        // the batch's total work must be strictly below three scalar
        // executions, and scan-phase operators must sit in `shared`.
        let t = table();
        let udfs = UdfRegistry::default();
        let base = VisQuery {
            chart: ChartType::Bar,
            x: "cat".into(),
            y: Some("w".into()),
            transform: Transform::Group,
            aggregate: Aggregate::Sum,
            order: SortOrder::ByX,
        };
        let qs = vec![
            base.clone(),
            VisQuery {
                aggregate: Aggregate::Avg,
                ..base.clone()
            },
            VisQuery {
                aggregate: Aggregate::Cnt,
                ..base.clone()
            },
        ];
        let (results, costs) = execute_batch_costed(&t, &qs, &udfs);
        assert!(results.iter().all(Result::is_ok));
        let mut scalar_total = OpCosts::default();
        for q in &qs {
            let (out, c) = execute_costed(&t, q, &udfs);
            assert!(out.is_ok());
            scalar_total.merge(&c);
        }
        let batch_total = costs.total();
        // One scan instead of three.
        assert_eq!(batch_total.get(Op::RowsScanned), 60);
        assert_eq!(scalar_total.get(Op::RowsScanned), 180);
        assert!(batch_total.get(Op::GroupProbes) < scalar_total.get(Op::GroupProbes));
        assert!(batch_total.total() < scalar_total.total());
        // Scan work is shared; materialization is per-query.
        assert_eq!(costs.shared.get(Op::RowsScanned), 60);
        for per in &costs.per_query {
            assert_eq!(per.get(Op::RowsScanned), 0);
            assert_eq!(per.get(Op::OutputRows), 3); // a, b, c
        }
        // Output cardinality matches the materialized charts exactly.
        for (r, per) in results.iter().zip(&costs.per_query) {
            let chart = r.as_ref().unwrap();
            assert_eq!(per.get(Op::OutputRows), chart.series.len() as u64);
        }
    }

    #[test]
    fn raw_fallback_costs_land_on_the_query() {
        let t = table();
        let udfs = UdfRegistry::default();
        let raw = VisQuery {
            chart: ChartType::Scatter,
            x: "v".into(),
            y: Some("w".into()),
            transform: Transform::None,
            aggregate: Aggregate::Raw,
            order: SortOrder::None,
        };
        let (results, costs) = execute_batch_costed(&t, std::slice::from_ref(&raw), &udfs);
        assert!(results[0].is_ok());
        assert!(costs.shared.is_zero());
        let (_, scalar) = execute_costed(&t, &raw, &udfs);
        assert_eq!(costs.per_query[0], scalar);
    }
}
