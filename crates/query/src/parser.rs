//! Parser for the textual visualization language (Figure 2).
//!
//! ```text
//! VISUALIZE line
//! SELECT scheduled, AVG(departure delay)
//! FROM flights
//! BIN scheduled BY HOUR
//! ORDER BY scheduled
//! ```
//!
//! Clauses appear one per line; `VISUALIZE`, `SELECT`, and `FROM` are
//! mandatory, `GROUP BY` / `BIN` and `ORDER BY` optional, matching the
//! grammar in the paper.

use crate::ast::{Aggregate, BinStrategy, ChartType, SortOrder, Transform, VisQuery};
use crate::sema::Clause;
use deepeye_data::TimeUnit;
use std::fmt;

/// Byte range of one clause in the query source (for diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// 1-based source line the clause starts on.
    pub line: usize,
    /// Byte offset of the clause's first character.
    pub start: usize,
    /// Byte offset one past the clause's last character.
    pub end: usize,
}

/// Where each clause of a parsed query sits in the source text, so
/// [`crate::sema::Diagnostic::render`] can point at the offending clause.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClauseSpans {
    visualize: Option<Span>,
    select: Option<Span>,
    from: Option<Span>,
    transform: Option<Span>,
    order_by: Option<Span>,
}

impl ClauseSpans {
    pub fn get(&self, clause: Clause) -> Option<Span> {
        match clause {
            Clause::Visualize => self.visualize,
            Clause::Select => self.select,
            Clause::From => self.from,
            Clause::Transform => self.transform,
            Clause::OrderBy => self.order_by,
        }
    }

    fn set(&mut self, clause: Clause, span: Span) {
        match clause {
            Clause::Visualize => self.visualize = Some(span),
            Clause::Select => self.select = Some(span),
            Clause::From => self.from = Some(span),
            Clause::Transform => self.transform = Some(span),
            Clause::OrderBy => self.order_by = Some(span),
        }
    }

    /// The clause's source text, if it was present and the span is valid
    /// for `source`.
    pub fn snippet<'s>(&self, clause: Clause, source: &'s str) -> Option<&'s str> {
        let span = self.get(clause)?;
        source.get(span.start..span.end)
    }
}

/// A parsed query plus the FROM table name and per-clause source spans.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedQuery {
    pub query: VisQuery,
    pub from: String,
    /// Source location of each clause (byte offsets into the parsed text).
    pub spans: ClauseSpans,
}

/// Parse errors with a human-readable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
}

impl ParseError {
    fn new(message: impl Into<String>) -> Self {
        ParseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

/// `AGG(col)` → `(aggregate, col)`; plain `col` → `(Raw, col)`.
fn parse_select_item(item: &str) -> Result<(Aggregate, String), ParseError> {
    let item = item.trim();
    if let Some(open) = item.find('(') {
        let close = item
            .rfind(')')
            .ok_or_else(|| ParseError::new(format!("unclosed '(' in {item:?}")))?;
        if close < open {
            return Err(ParseError::new(format!(
                "mismatched parentheses in {item:?}"
            )));
        }
        let func = &item[..open];
        let col = item[open + 1..close].trim();
        let agg = Aggregate::from_name(func)
            .ok_or_else(|| ParseError::new(format!("unknown aggregate {func:?}")))?;
        if col.is_empty() {
            return Err(ParseError::new("empty aggregate argument"));
        }
        Ok((agg, col.to_owned()))
    } else {
        if item.is_empty() {
            return Err(ParseError::new("empty SELECT item"));
        }
        Ok((Aggregate::Raw, item.to_owned()))
    }
}

/// Parse the full query text.
pub fn parse_query(text: &str) -> Result<ParsedQuery, ParseError> {
    let mut chart: Option<ChartType> = None;
    let mut select: Option<Vec<(Aggregate, String)>> = None;
    let mut from: Option<String> = None;
    let mut transform = Transform::None;
    let mut transform_col: Option<String> = None;
    let mut order_target: Option<String> = None;
    let mut spans = ClauseSpans::default();

    let mut offset = 0usize;
    for (line_idx, raw_line) in text.split('\n').enumerate() {
        let line_start = offset;
        offset += raw_line.len() + 1;
        let raw_line = raw_line.strip_suffix('\r').unwrap_or(raw_line);
        let line = raw_line.trim();
        if line.is_empty() {
            continue;
        }
        let start = line_start + (raw_line.len() - raw_line.trim_start().len());
        let span = Span {
            line: line_idx + 1,
            start,
            end: start + line.len(),
        };
        let upper = line.to_ascii_uppercase();
        if let Some(rest) = strip_keyword(line, &upper, "VISUALIZE") {
            chart = Some(
                ChartType::from_name(rest)
                    .ok_or_else(|| ParseError::new(format!("unknown chart type {rest:?}")))?,
            );
            spans.set(Clause::Visualize, span);
        } else if let Some(rest) = strip_keyword(line, &upper, "SELECT") {
            let items: Result<Vec<_>, _> = split_top_level_commas(rest)
                .into_iter()
                .map(|i| parse_select_item(&i))
                .collect();
            select = Some(items?);
            spans.set(Clause::Select, span);
        } else if let Some(rest) = strip_keyword(line, &upper, "FROM") {
            from = Some(rest.trim().to_owned());
            spans.set(Clause::From, span);
        } else if let Some(rest) = strip_keyword(line, &upper, "GROUP BY") {
            transform = Transform::Group;
            transform_col = Some(rest.trim().to_owned());
            spans.set(Clause::Transform, span);
        } else if let Some(rest) = strip_keyword(line, &upper, "ORDER BY") {
            order_target = Some(rest.trim().to_owned());
            spans.set(Clause::OrderBy, span);
        } else if let Some(rest) = strip_keyword(line, &upper, "BIN") {
            let (col, strategy) = parse_bin_clause(rest)?;
            transform = Transform::Bin(strategy);
            transform_col = Some(col);
            spans.set(Clause::Transform, span);
        } else {
            return Err(ParseError::new(format!("unrecognized clause: {line:?}")));
        }
    }

    let chart = chart.ok_or_else(|| ParseError::new("missing VISUALIZE clause"))?;
    let select = select.ok_or_else(|| ParseError::new("missing SELECT clause"))?;
    let from = from.ok_or_else(|| ParseError::new("missing FROM clause"))?;

    let (x, y, aggregate) = match select.as_slice() {
        [(Aggregate::Raw, x)] => (x.clone(), None, Aggregate::Cnt),
        [(Aggregate::Raw, x), (agg, y)] => {
            // One-column form `SELECT c, CNT(c)`.
            if *agg == Aggregate::Cnt && y == x {
                (x.clone(), None, Aggregate::Cnt)
            } else {
                (x.clone(), Some(y.clone()), *agg)
            }
        }
        [(first_agg, _), ..] if *first_agg != Aggregate::Raw => {
            return Err(ParseError::new(
                "the first SELECT item (x-axis) cannot be aggregated",
            ));
        }
        _ => {
            return Err(ParseError::new(format!(
                "SELECT takes one or two items, got {}",
                select.len()
            )));
        }
    };

    if let Some(tc) = &transform_col {
        if *tc != x {
            return Err(ParseError::new(format!(
                "transform column {tc:?} must match the SELECT x column {x:?}"
            )));
        }
    }

    let order = match order_target {
        None => SortOrder::None,
        Some(target) => {
            // Allow either the bare column or the aggregate expression.
            let (t_agg, t_col) = parse_select_item(&target)?;
            if t_col == x && t_agg == Aggregate::Raw {
                SortOrder::ByX
            } else if Some(&t_col) == y.as_ref()
                || (y.is_none() && t_col == x && t_agg != Aggregate::Raw)
            {
                SortOrder::ByY
            } else {
                return Err(ParseError::new(format!(
                    "ORDER BY target {target:?} is not a selected column"
                )));
            }
        }
    };

    Ok(ParsedQuery {
        query: VisQuery {
            chart,
            x,
            y,
            transform,
            aggregate,
            order,
        },
        from,
        spans,
    })
}

/// Strip a leading keyword (case-insensitive) and return the remainder.
fn strip_keyword<'a>(line: &'a str, upper: &str, keyword: &str) -> Option<&'a str> {
    if upper == keyword {
        return Some("");
    }
    upper
        .strip_prefix(keyword)
        .filter(|rest| rest.starts_with(' '))
        .map(|rest| line[line.len() - rest.len()..].trim())
}

/// Split on commas that are not inside parentheses.
fn split_top_level_commas(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    for c in s.chars() {
        match c {
            '(' => {
                depth += 1;
                current.push(c);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                current.push(c);
            }
            ',' if depth == 0 => parts.push(std::mem::take(&mut current)),
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        parts.push(current);
    }
    parts
}

/// `X BY HOUR` | `X INTO 10` | `X BY UDF(name)` | `X` (default buckets).
fn parse_bin_clause(rest: &str) -> Result<(String, BinStrategy), ParseError> {
    let upper = rest.to_ascii_uppercase();
    if let Some(pos) = upper.find(" BY ") {
        let col = rest[..pos].trim().to_owned();
        let spec = rest[pos + 4..].trim();
        let spec_upper = spec.to_ascii_uppercase();
        if let Some(unit) = TimeUnit::from_keyword(&spec_upper) {
            return Ok((col, BinStrategy::Unit(unit)));
        }
        if let Some(inner) = spec_upper.strip_prefix("UDF(") {
            let name_len = inner
                .find(')')
                .ok_or_else(|| ParseError::new("unclosed UDF("))?;
            let name = spec[4..4 + name_len].trim().to_owned();
            return Ok((col, BinStrategy::Udf(name)));
        }
        return Err(ParseError::new(format!("unknown bin spec {spec:?}")));
    }
    if let Some(pos) = upper.find(" INTO ") {
        let col = rest[..pos].trim().to_owned();
        let n: usize = rest[pos + 6..]
            .trim()
            .parse()
            .map_err(|_| ParseError::new("INTO expects a bucket count"))?;
        return Ok((col, BinStrategy::IntoBuckets(n)));
    }
    Ok((rest.trim().to_owned(), BinStrategy::Default))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_q1() {
        let text = "VISUALIZE line\nSELECT scheduled, AVG(departure delay)\nFROM flights\n\
                    BIN scheduled BY HOUR\nORDER BY scheduled";
        let parsed = parse_query(text).unwrap();
        assert_eq!(parsed.from, "flights");
        let q = parsed.query;
        assert_eq!(q.chart, ChartType::Line);
        assert_eq!(q.x, "scheduled");
        assert_eq!(q.y.as_deref(), Some("departure delay"));
        assert_eq!(
            q.transform,
            Transform::Bin(BinStrategy::Unit(TimeUnit::Hour))
        );
        assert_eq!(q.aggregate, Aggregate::Avg);
        assert_eq!(q.order, SortOrder::ByX);
    }

    #[test]
    fn round_trips_through_to_language() {
        let text = "VISUALIZE line\nSELECT scheduled, AVG(departure delay)\nFROM flights\n\
                    BIN scheduled BY HOUR\nORDER BY scheduled";
        let parsed = parse_query(text).unwrap();
        let rendered = parsed.query.to_language(&parsed.from);
        let reparsed = parse_query(&rendered).unwrap();
        // Spans are a property of the concrete source text, so compare the
        // semantic fields.
        assert_eq!(reparsed.query, parsed.query);
        assert_eq!(reparsed.from, parsed.from);
    }

    #[test]
    fn spans_point_at_clause_source() {
        let text = "VISUALIZE line\n  SELECT scheduled, AVG(delay)\nFROM flights\n\
                    BIN scheduled BY HOUR\nORDER BY scheduled";
        let parsed = parse_query(text).unwrap();
        let spans = parsed.spans;
        assert_eq!(
            spans.snippet(Clause::Visualize, text),
            Some("VISUALIZE line")
        );
        // Leading indentation is excluded from the span.
        assert_eq!(
            spans.snippet(Clause::Select, text),
            Some("SELECT scheduled, AVG(delay)")
        );
        assert_eq!(spans.get(Clause::Select).unwrap().line, 2);
        assert_eq!(
            spans.snippet(Clause::Transform, text),
            Some("BIN scheduled BY HOUR")
        );
        assert_eq!(spans.get(Clause::Transform).unwrap().line, 4);
        assert_eq!(
            spans.snippet(Clause::OrderBy, text),
            Some("ORDER BY scheduled")
        );
        // Absent clauses have no span.
        let short = parse_query("VISUALIZE bar\nSELECT a, b\nFROM t").unwrap();
        assert_eq!(short.spans.get(Clause::Transform), None);
        assert_eq!(short.spans.get(Clause::OrderBy), None);
    }

    #[test]
    fn parses_group_by_and_order_by_y() {
        let text = "VISUALIZE bar\nSELECT carrier, SUM(passengers)\nFROM t\n\
                    GROUP BY carrier\nORDER BY SUM(passengers)";
        let q = parse_query(text).unwrap().query;
        assert_eq!(q.transform, Transform::Group);
        assert_eq!(q.order, SortOrder::ByY);
        // Bare column name also works for ORDER BY y.
        let text2 = "VISUALIZE bar\nSELECT carrier, SUM(passengers)\nFROM t\n\
                     GROUP BY carrier\nORDER BY passengers";
        assert_eq!(parse_query(text2).unwrap().query.order, SortOrder::ByY);
    }

    #[test]
    fn parses_bin_into_and_default() {
        let q = parse_query("VISUALIZE bar\nSELECT d, CNT(d)\nFROM t\nBIN d INTO 5")
            .unwrap()
            .query;
        assert_eq!(q.transform, Transform::Bin(BinStrategy::IntoBuckets(5)));
        let q = parse_query("VISUALIZE bar\nSELECT d, AVG(v)\nFROM t\nBIN d")
            .unwrap()
            .query;
        assert_eq!(q.transform, Transform::Bin(BinStrategy::Default));
    }

    #[test]
    fn parses_udf_bin() {
        let q = parse_query("VISUALIZE pie\nSELECT d, CNT(d)\nFROM t\nBIN d BY UDF(sign)")
            .unwrap()
            .query;
        assert_eq!(q.transform, Transform::Bin(BinStrategy::Udf("sign".into())));
    }

    #[test]
    fn one_column_select_cnt() {
        let q =
            parse_query("VISUALIZE pie\nSELECT carrier, CNT(carrier)\nFROM t\nGROUP BY carrier")
                .unwrap()
                .query;
        assert_eq!(q.y, None);
        assert_eq!(q.aggregate, Aggregate::Cnt);
        // Bare single column defaults to CNT.
        let q = parse_query("VISUALIZE pie\nSELECT carrier\nFROM t\nGROUP BY carrier")
            .unwrap()
            .query;
        assert_eq!(q.y, None);
        assert_eq!(q.aggregate, Aggregate::Cnt);
    }

    #[test]
    fn missing_clauses_rejected() {
        assert!(parse_query("SELECT a, b\nFROM t").is_err());
        assert!(parse_query("VISUALIZE bar\nFROM t").is_err());
        assert!(parse_query("VISUALIZE bar\nSELECT a, b").is_err());
    }

    #[test]
    fn bad_inputs_rejected() {
        assert!(parse_query("VISUALIZE donut\nSELECT a, b\nFROM t").is_err());
        assert!(parse_query("VISUALIZE bar\nSELECT MEDIAN(a), b\nFROM t").is_err());
        assert!(parse_query("VISUALIZE bar\nSELECT AVG(a), b\nFROM t").is_err());
        assert!(parse_query("VISUALIZE bar\nSELECT a, b\nFROM t\nORDER BY c").is_err());
        assert!(parse_query("VISUALIZE bar\nSELECT a, b\nFROM t\nGROUP BY b").is_err());
        assert!(parse_query("VISUALIZE bar\nSELECT a, b\nFROM t\nWOBBLE").is_err());
        assert!(parse_query("VISUALIZE bar\nSELECT a, b\nFROM t\nBIN a BY FORTNIGHT").is_err());
    }

    #[test]
    fn case_insensitive_keywords() {
        let q = parse_query("visualize BAR\nselect carrier, avg(delay)\nfrom t\ngroup by carrier")
            .unwrap()
            .query;
        assert_eq!(q.chart, ChartType::Bar);
        assert_eq!(q.aggregate, Aggregate::Avg);
    }
}
