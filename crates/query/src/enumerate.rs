//! Search-space enumeration (§II-B, Figure 3).
//!
//! For two columns the space is every ordered column pair × 11 transforms
//! (identity, group, 9 bins) × 4 aggregates × 3 orderings × 4 chart types —
//! `528·m(m−1)` visualizations for an m-column table. One-column queries
//! add `264·m` more. These iterators generate that space lazily so the
//! progressive selector (§V-B) never has to materialize it.

use crate::ast::{Aggregate, ChartType, SortOrder, Transform, VisQuery};
use crate::bins::UdfRegistry;
use crate::sema;
use deepeye_data::Table;

/// Number of candidate two-column visualizations for `m` columns:
/// `m(m-1) × 44 × 4 × 3 = 528·m(m−1)`.
pub fn two_column_space_size(m: usize) -> usize {
    if m < 2 {
        return 0;
    }
    m * (m - 1) * 11 * 4 * 4 * 3
}

/// Number of candidate one-column visualizations for `m` columns:
/// `m × 22 × 4 × 3 = 264·m` (transform cases pair with {identity, CNT}).
pub fn one_column_space_size(m: usize) -> usize {
    m * 11 * 2 * 4 * 3
}

/// Lazily enumerate the full (unfiltered) two-column query space of a table.
///
/// This is the paper's raw search space: many of these queries are
/// ill-typed (e.g. binning a categorical column) and will fail execution or
/// be pruned by the rules of §V-A; the exhaustive enumeration mode of the
/// efficiency experiment needs them generated regardless.
pub fn two_column_queries(table: &Table) -> impl Iterator<Item = VisQuery> + '_ {
    let names: Vec<String> = table
        .columns()
        .iter()
        .map(|c| c.name().to_owned())
        .collect();
    ordered_pairs(names).flat_map(|(x, y)| {
        Transform::enumerable().into_iter().flat_map(move |t| {
            let (x, y) = (x.clone(), y.clone());
            Aggregate::ALL.into_iter().flat_map(move |agg| {
                let (x, y, t) = (x.clone(), y.clone(), t.clone());
                SortOrder::ALL.into_iter().flat_map(move |order| {
                    let (x, y, t) = (x.clone(), y.clone(), t.clone());
                    ChartType::ALL.into_iter().map(move |chart| VisQuery {
                        chart,
                        x: x.clone(),
                        y: Some(y.clone()),
                        transform: t.clone(),
                        aggregate: agg,
                        order,
                    })
                })
            })
        })
    })
}

/// Lazily enumerate the one-column query space of a table.
pub fn one_column_queries(table: &Table) -> impl Iterator<Item = VisQuery> + '_ {
    let names: Vec<String> = table
        .columns()
        .iter()
        .map(|c| c.name().to_owned())
        .collect();
    names.into_iter().flat_map(|x| {
        Transform::enumerable().into_iter().flat_map(move |t| {
            let x = x.clone();
            [Aggregate::Raw, Aggregate::Cnt]
                .into_iter()
                .flat_map(move |agg| {
                    let (x, t) = (x.clone(), t.clone());
                    SortOrder::ALL.into_iter().flat_map(move |order| {
                        let (x, t) = (x.clone(), t.clone());
                        ChartType::ALL.into_iter().map(move |chart| VisQuery {
                            chart,
                            x: x.clone(),
                            y: None,
                            transform: t.clone(),
                            aggregate: agg,
                            order,
                        })
                    })
                })
        })
    })
}

/// The complete raw space: one-column plus two-column queries.
pub fn all_queries(table: &Table) -> impl Iterator<Item = VisQuery> + '_ {
    one_column_queries(table).chain(two_column_queries(table))
}

/// The executable subset of the raw space: [`all_queries`] filtered through
/// [`sema::check_executable`], so every yielded query is guaranteed to run
/// (it may still produce [`crate::QueryError::EmptyResult`] on all-null
/// data, the one failure sema cannot see statically).
///
/// Exhaustive-enumeration consumers should prefer this over `all_queries`:
/// it skips the statically ill-typed bulk of the space without executing
/// (and erroring on) each candidate.
pub fn valid_queries<'a>(
    table: &'a Table,
    udfs: &'a UdfRegistry,
) -> impl Iterator<Item = VisQuery> + 'a {
    filtered_queries(table, udfs, None)
}

/// [`valid_queries`] with observability: counts the raw space walked
/// (`enumerate.raw`), the candidates admitted (`enumerate.candidates`),
/// and the statically ill-typed queries sema rejects (`sema.rejected`).
pub fn valid_queries_observed<'a>(
    table: &'a Table,
    udfs: &'a UdfRegistry,
    obs: &'a deepeye_obs::Observer,
) -> impl Iterator<Item = VisQuery> + 'a {
    filtered_queries(table, udfs, Some(obs))
}

/// [`all_queries`] with each candidate's sema verdict attached: `None`
/// for statically executable queries, `Some(diagnostic)` (the first
/// fatal diagnostic, exactly what [`sema::check_executable`] reports)
/// for rejected ones. The provenance layer walks this instead of
/// [`valid_queries`] so it can record *why* each candidate was admitted
/// or rejected while keeping identical admit/reject counts.
pub fn queries_with_verdict<'a>(
    table: &'a Table,
    udfs: &'a UdfRegistry,
) -> impl Iterator<Item = (VisQuery, Option<sema::Diagnostic>)> + 'a {
    all_queries(table).map(move |q| {
        let verdict = sema::check_executable(table, &q, udfs).err();
        (q, verdict)
    })
}

fn filtered_queries<'a>(
    table: &'a Table,
    udfs: &'a UdfRegistry,
    obs: Option<&'a deepeye_obs::Observer>,
) -> impl Iterator<Item = VisQuery> + 'a {
    all_queries(table).filter(move |q| {
        let executable = sema::check_executable(table, q, udfs).is_ok();
        debug_assert!(
            !executable || !sema::analyze(table, q, udfs).iter().any(|d| d.is_error()),
            "sema invariant violated: check_executable passed a query that analyze rejects: {q:?}"
        );
        if let Some(obs) = obs {
            obs.incr("enumerate.raw", 1);
            obs.incr(
                if executable {
                    "enumerate.candidates"
                } else {
                    "sema.rejected"
                },
                1,
            );
        }
        executable
    })
}

/// All ordered pairs (x ≠ y) of the given names.
fn ordered_pairs(names: Vec<String>) -> impl Iterator<Item = (String, String)> {
    let n = names.len();
    (0..n).flat_map(move |i| {
        let names = names.clone();
        (0..n)
            .filter(move |&j| j != i)
            .map(move |j| (names[i].clone(), names[j].clone()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepeye_data::TableBuilder;

    fn table(m: usize) -> Table {
        let mut b = TableBuilder::new("t");
        for i in 0..m {
            b = b.numeric(format!("c{i}"), [1.0, 2.0, 3.0]);
        }
        b.build().unwrap()
    }

    #[test]
    fn two_column_count_matches_paper_formula() {
        // 528·m(m−1) from §II-B.
        for m in [2usize, 3, 5] {
            let t = table(m);
            let count = two_column_queries(&t).count();
            assert_eq!(count, 528 * m * (m - 1));
            assert_eq!(count, two_column_space_size(m));
        }
    }

    #[test]
    fn one_column_count_matches_paper_formula() {
        // 264·m from §II-B.
        for m in [1usize, 2, 4] {
            let t = table(m);
            let count = one_column_queries(&t).count();
            assert_eq!(count, 264 * m);
            assert_eq!(count, one_column_space_size(m));
        }
    }

    #[test]
    fn degenerate_tables() {
        assert_eq!(two_column_space_size(0), 0);
        assert_eq!(two_column_space_size(1), 0);
        let t = table(1);
        assert_eq!(two_column_queries(&t).count(), 0);
        assert_eq!(one_column_queries(&t).count(), 264);
    }

    #[test]
    fn all_queries_is_union() {
        let t = table(3);
        assert_eq!(
            all_queries(&t).count(),
            two_column_space_size(3) + one_column_space_size(3)
        );
    }

    #[test]
    fn queries_are_distinct() {
        let t = table(2);
        let qs: Vec<VisQuery> = two_column_queries(&t).collect();
        let mut seen = std::collections::HashSet::new();
        for q in &qs {
            assert!(seen.insert(format!("{q:?}")), "duplicate query {q:?}");
        }
    }

    #[test]
    fn valid_queries_all_execute() {
        // Every sema-approved query must actually run; every rejected one
        // must actually fail. This pins check_executable to the executor.
        let t = table(2);
        let udfs = UdfRegistry::default();
        let valid: std::collections::HashSet<String> =
            valid_queries(&t, &udfs).map(|q| format!("{q:?}")).collect();
        for q in all_queries(&t) {
            let ran = crate::exec::execute_with(&t, &q, &udfs);
            let approved = valid.contains(&format!("{q:?}"));
            match ran {
                Ok(_) => assert!(approved, "executed fine but sema rejected: {q:?}"),
                Err(crate::exec::QueryError::EmptyResult) => {
                    assert!(
                        approved,
                        "EmptyResult is data-dependent, sema must pass: {q:?}"
                    );
                }
                Err(e) => assert!(!approved, "sema approved a failing query: {q:?} → {e}"),
            }
        }
        assert!(!valid.is_empty());
        assert!(valid.len() < all_queries(&t).count());
    }

    #[test]
    fn pairs_are_ordered_and_irreflexive() {
        let t = table(3);
        let qs: Vec<VisQuery> = two_column_queries(&t).collect();
        assert!(qs.iter().all(|q| Some(&q.x) != q.y.as_ref()));
        // Both (c0, c1) and (c1, c0) appear: XY and YX are different.
        assert!(qs
            .iter()
            .any(|q| q.x == "c0" && q.y.as_deref() == Some("c1")));
        assert!(qs
            .iter()
            .any(|q| q.x == "c1" && q.y.as_deref() == Some("c0")));
    }
}
