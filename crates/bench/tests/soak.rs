//! Acceptance tests for the flight recorder: a real-pipeline soak under
//! a bounded recorder must keep raw retention within capacity while
//! every aggregate surface stays *exactly* what an unbounded record-all
//! observer would report, the per-iteration telemetry stream must pass
//! its validator, and a truncated trace must carry (and satisfy) its
//! accounting marker.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use deepeye_bench::perf::stall_budgets;
use deepeye_core::{DeepEye, DeepEyeConfig};
use deepeye_datagen::flight_table;
use deepeye_obs::{
    validate_chrome_trace, validate_telemetry_jsonl, Observer, RecorderConfig, TelemetryCursor,
};

/// Counter names the recorder itself owns — the only ones allowed to
/// differ between a bounded observer and the record-all reference.
fn recorder_metric(name: &str) -> bool {
    name.starts_with("obs.") || name.starts_with("telemetry.")
}

/// The ISSUE acceptance bar: 100 soak iterations of the real pipeline
/// at capacity 4096 (with filler spans forcing the ring over capacity)
/// hold `retained ≤ capacity`, keep counters and histogram counts
/// identical to a record-all reference, and produce a tick stream and a
/// truncated trace that both validate.
#[test]
fn soak_keeps_aggregates_exact_under_bounded_retention() {
    const ITERS: usize = 100;
    const CAPACITY: usize = 4096;
    // Enough filler spans that `ITERS` iterations must overflow the
    // ring no matter how many spans the pipeline itself opens.
    const FILLER_PER_ITER: usize = 64;

    let bounded =
        Observer::with_recorder(RecorderConfig::bounded(CAPACITY).with_budgets(stall_budgets()));
    let reference = Observer::enabled();
    let table = flight_table(5, 120);

    let mut cursor = TelemetryCursor::default();
    let mut stream = String::new();
    for iter in 0..ITERS {
        for obs in [&bounded, &reference] {
            let eye = DeepEye::new(DeepEyeConfig {
                observer: obs.clone(),
                ..Default::default()
            });
            assert!(!eye.recommend(&table, 3).is_empty());
            for _ in 0..FILLER_PER_ITER {
                let _unit = obs.span("soak.unit");
            }
        }
        let line = bounded
            .telemetry_tick(&mut cursor)
            .expect("enabled recorder always ticks");
        stream.push_str(&line);
        let retention = bounded.retention();
        assert!(
            retention.retained <= CAPACITY,
            "iteration {iter}: retained {} exceeds capacity {CAPACITY}",
            retention.retained
        );
        assert_eq!(
            retention.retained as u64 + retention.dropped,
            retention.finished,
            "iteration {iter}: accounting broke"
        );
    }

    // The ring really overflowed — otherwise this test proves nothing.
    let retention = bounded.retention();
    assert!(
        retention.dropped > 0,
        "soak never overflowed the ring (finished {})",
        retention.finished
    );
    assert_eq!(retention.capacity, CAPACITY);
    assert_eq!(reference.retention().dropped, 0);

    // Counters match the record-all reference exactly (modulo the
    // recorder's own bookkeeping, which only the bounded side records).
    let b = bounded.snapshot();
    let r = reference.snapshot();
    let pipeline_counters = |snap: &deepeye_obs::Snapshot| -> Vec<(String, u64)> {
        snap.counters
            .iter()
            .filter(|(name, _)| !recorder_metric(name))
            .cloned()
            .collect()
    };
    assert_eq!(pipeline_counters(&b), pipeline_counters(&r));
    assert_eq!(b.counter("obs.spans_dropped"), retention.dropped);

    // Histogram and stage-aggregate *counts* match exactly (durations
    // are wall-clock and differ run to run; the populations may not).
    let hist_counts = |snap: &deepeye_obs::Snapshot| -> Vec<(String, u64)> {
        snap.hists
            .iter()
            .map(|(name, h)| (name.clone(), h.count))
            .collect()
    };
    assert_eq!(hist_counts(&b), hist_counts(&r));
    let stage_counts = |snap: &deepeye_obs::Snapshot| -> Vec<(String, u64)> {
        snap.stages
            .iter()
            .map(|s| (s.path.clone(), s.count))
            .collect()
    };
    assert_eq!(stage_counts(&b), stage_counts(&r));
    // Allocation attribution is exact too — charges happen at span
    // close, before sampling.
    let allocs = |snap: &deepeye_obs::Snapshot| -> Vec<(String, u64, u64)> {
        snap.stages
            .iter()
            .map(|s| (s.path.clone(), s.alloc_count, s.alloc_bytes))
            .collect()
    };
    assert_eq!(allocs(&b), allocs(&r));

    // The tick stream passes the same validator `trace_check
    // --telemetry` runs, with one tick per iteration and no stalls
    // (the budget table is generous).
    let summary = validate_telemetry_jsonl(&stream).expect("soak stream validates");
    assert_eq!(summary.ticks, ITERS);
    assert_eq!(summary.stalls, 0);
    assert!(summary.max_retained as usize <= CAPACITY);
    assert_eq!(summary.dropped, retention.dropped);

    // The truncated trace declares its loss and still validates; the
    // reference trace validates without any marker.
    let trace = bounded.chrome_trace_json();
    assert!(trace.contains("span_accounting"));
    assert!(trace.contains("\"truncated\":true"));
    let trace_summary = validate_chrome_trace(&trace).expect("truncated trace validates");
    assert!(trace_summary.truncated);
    assert_eq!(trace_summary.dropped, retention.dropped);
    assert_eq!(trace_summary.spans as usize, retention.retained);
    validate_chrome_trace(&reference.chrome_trace_json()).expect("reference trace validates");
}

/// Lockstep dual drive with fully deterministic operations: when the
/// recorded *values* (not just populations) are identical, a tightly
/// bounded recorder and a record-all observer agree on every exported
/// aggregate — counters, full histogram summaries, stage counts, and
/// allocation totals.
#[test]
fn lockstep_drive_agrees_on_every_aggregate_surface() {
    let bounded = Observer::with_recorder(RecorderConfig::bounded(32));
    let reference = Observer::enabled();
    for i in 0..500u64 {
        for obs in [&bounded, &reference] {
            let _outer = obs.span("soak.outer");
            {
                let _inner = obs.span("soak.inner");
                obs.incr("exec.ok", 1 + i % 3);
                obs.record_ns("exec.query_ns", 10_000 + i * 37);
                obs.alloc_many(1 + i % 2, 100 + i);
            }
        }
    }

    let b = bounded.snapshot();
    let r = reference.snapshot();
    assert_eq!(b.counter("exec.ok"), r.counter("exec.ok"));
    assert_eq!(b.hist("exec.query_ns"), r.hist("exec.query_ns"));
    for (bs, rs) in b.stages.iter().zip(&r.stages) {
        assert_eq!(bs.path, rs.path);
        assert_eq!(bs.count, rs.count, "stage {} count", bs.path);
        assert_eq!(bs.alloc_count, rs.alloc_count, "stage {} allocs", bs.path);
        assert_eq!(bs.alloc_bytes, rs.alloc_bytes, "stage {} bytes", bs.path);
        assert_eq!(bs.alloc_peak, rs.alloc_peak, "stage {} peak", bs.path);
    }
    assert_eq!(b.stages.len(), r.stages.len());

    // Only raw retention differs.
    assert_eq!(bounded.retention().retained, 32);
    assert_eq!(bounded.retention().dropped, 2 * 500 - 32);
    assert_eq!(reference.retention().retained, 1000);
}
