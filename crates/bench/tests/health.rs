//! Acceptance tests for the health engine over soak-shaped telemetry:
//! a 100-tick stream with a 3× execute-stage slowdown injected partway
//! through must produce a `deepeye-health/v1` document whose firing
//! detector names the stage and the metric, while the same stream
//! without the injection reports all-healthy — and both documents pass
//! the validator `trace_check --health` applies.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use deepeye_bench::perf::health_objectives;
use deepeye_obs::{validate_health_json, HealthConfig, HealthEngine};

const TICKS: u64 = 100;
const BASELINE_P50_NS: u64 = 10_000_000;
const INJECT_AT: u64 = 60;

/// One soak-shaped telemetry tick. The execute stage carries `p50`;
/// everything else is steady-state: a flat RSS (no leak), balanced span
/// accounting, and a small counter delta.
fn tick_line(seq: u64, p50: u64) -> String {
    format!(
        concat!(
            "{{\"schema\":\"deepeye-telemetry/v1\",\"seq\":{seq},\"t_ns\":{t},",
            "\"interval_ns\":10000000,\"counters\":{{\"exec.ok\":{ok}}},\"hists\":{{}},",
            "\"stages\":{{\"harness.execute\":{{\"count\":1,\"total_ns\":{p50},",
            "\"p50_ns\":{p50},\"p95_ns\":{p95},\"p99_ns\":{p99}}},",
            "\"harness.enumerate\":{{\"count\":1,\"total_ns\":200000,",
            "\"p50_ns\":200000,\"p95_ns\":220000,\"p99_ns\":240000}}}},",
            "\"alloc\":{{\"count\":10,\"bytes\":4096}},",
            "\"spans\":{{\"finished\":{seq},\"retained\":1,\"dropped\":0,\"capacity\":256}},",
            "\"proc\":{{\"rss_bytes\":52428800,\"cpu_user_ticks\":{seq},\"cpu_sys_ticks\":1}},",
            "\"stalls\":[]}}",
        ),
        seq = seq,
        t = seq * 10_000_000,
        ok = 30 + seq % 5,
        p50 = p50,
        p95 = p50 + p50 / 10,
        p99 = p50 + p50 / 5,
    )
}

/// Deterministic baseline jitter: a few percent around the nominal p50
/// so the window is realistic (nonzero MAD) but far from any firing
/// threshold.
fn baseline_p50(seq: u64) -> u64 {
    BASELINE_P50_NS + (seq % 7) * 100_000
}

fn run_engine(inject: bool) -> (HealthEngine, String) {
    let mut engine =
        HealthEngine::new(HealthConfig::default().with_objectives(health_objectives()));
    for seq in 1..=TICKS {
        let p50 = if inject && seq >= INJECT_AT {
            baseline_p50(seq) * 3
        } else {
            baseline_p50(seq)
        };
        engine
            .ingest_line(&tick_line(seq, p50))
            .expect("synthetic soak tick ingests");
    }
    let doc = engine.report_json();
    (engine, doc)
}

#[test]
fn injected_slowdown_fires_and_names_the_stage_and_metric() {
    let (engine, doc) = run_engine(true);
    assert_eq!(engine.ticks(), TICKS);

    let firing: Vec<_> = engine.verdicts().into_iter().filter(|v| v.firing).collect();
    assert!(
        !firing.is_empty(),
        "a 3x execute slowdown must fire at least one detector"
    );
    // The drift detector latches the excursion on the slowed stage, and
    // the verdict names both the metric (series) and the detector.
    let drift = firing
        .iter()
        .find(|v| v.detector == "ewma_drift")
        .expect("EWMA drift detector fires on a 3x step");
    assert_eq!(drift.metric, "stage.harness.execute.p50_ns");
    assert!(
        drift.detail.contains("first fired at tick"),
        "latched verdict records when it fired: {}",
        drift.detail
    );
    // No other stage is implicated.
    assert!(
        firing.iter().all(|v| v.metric.contains("harness.execute")),
        "only the slowed stage may fire: {firing:?}"
    );

    // The document validates and records the firing verdict with the
    // stage-series name intact.
    let summary = validate_health_json(&doc).expect("injected document validates");
    assert_eq!(summary.ticks, TICKS);
    assert!(summary.firing > 0);
    assert_ne!(summary.status, "ok");
    assert!(doc.contains("stage.harness.execute.p50_ns"));
    assert!(doc.contains("ewma_drift"));
}

#[test]
fn clean_run_reports_all_healthy() {
    let (engine, doc) = run_engine(false);
    assert_eq!(engine.ticks(), TICKS);
    let firing: Vec<_> = engine.verdicts().into_iter().filter(|v| v.firing).collect();
    assert!(firing.is_empty(), "clean run must not fire: {firing:?}");

    let summary = validate_health_json(&doc).expect("clean document validates");
    assert_eq!(summary.ticks, TICKS);
    assert_eq!(summary.firing, 0);
    assert_eq!(summary.status, "ok");
    // The derived objectives are still listed (non-firing), so a green
    // document names what it was checked against.
    assert_eq!(summary.objectives, health_objectives().len());
    assert!(doc.contains("perf::BUDGETS"));
}

#[test]
fn injection_is_within_slo_but_latched_as_drift() {
    // The execute budget (60s median) dwarfs a 30ms p50, so the SLO
    // verdicts stay quiet even under injection — the drift detector is
    // what catches a relative regression long before the absolute
    // ceiling is threatened.
    let (engine, _) = run_engine(true);
    assert!(
        engine
            .verdicts()
            .iter()
            .filter(|v| v.detector == "slo")
            .all(|v| !v.firing),
        "injected p50 stays far below the absolute stage budgets"
    );
}
