//! Acceptance tests for the continuous-performance layer: a miniature
//! in-process harness run drives the real pipeline stages, and the
//! resulting artifacts must satisfy the layer's contract — gate
//! self-consistency, regression naming, folded-stack coverage, alloc
//! columns in the metrics document, and schema/doc sync.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use deepeye_bench::diff::diff_runs;
use deepeye_bench::perf::{
    check_budgets, perf_gate, record_stage_samples, results_json, validate_bench_json, GateConfig,
    RobustTiming, ScenarioRun, Stage, BUDGETS, SCHEMA_FIELDS,
};
use deepeye_core::{
    build_nodes_parallel_costed, build_nodes_parallel_observed, ProgressiveSelector,
};
use deepeye_datagen::flight_table;
use deepeye_obs::{validate_cost_json, CostAcc, CostCollector, Observer, Op, Stopwatch};
use deepeye_query::UdfRegistry;

/// A scaled-down harness pass over one small table: every stage timed
/// under its span for `reps` repetitions, samples recorded into the
/// `bench.*` histograms, robust summaries into the document.
fn mini_harness(obs: &Observer, reps: usize) -> String {
    mini_harness_with(obs, reps, &CostCollector::disabled())
}

/// [`mini_harness`] with cost profiling: the execute stage runs through
/// the costed parallel builder, so `costs` (when enabled) collects
/// per-candidate operator counts and flushes the `cost.*` counters.
fn mini_harness_with(obs: &Observer, reps: usize, costs: &CostCollector) -> String {
    let table = flight_table(7, 250);
    let udfs = UdfRegistry::default();
    let queries = deepeye_core::rules::rule_based_queries(&table);
    let nodes = build_nodes_parallel_observed(&table, queries.clone(), &udfs, false, obs, None);
    let mut stages: Vec<(Stage, RobustTiming)> = Vec::new();
    for stage in Stage::PIPELINE {
        let mut samples = Vec::with_capacity(reps);
        for _ in 0..reps {
            let span = obs.span(stage.span_name());
            let clock = Stopwatch::start();
            match stage {
                Stage::Enumerate => {
                    std::hint::black_box(deepeye_core::rules::rule_based_queries(&table));
                }
                Stage::Execute => {
                    std::hint::black_box(build_nodes_parallel_costed(
                        &table,
                        queries.clone(),
                        &udfs,
                        true,
                        obs,
                        span.id(),
                        costs,
                    ));
                }
                Stage::Recognize => {
                    std::hint::black_box(nodes.iter().filter(|n| n.source_rows() > 0).count());
                }
                Stage::Rank => {
                    std::hint::black_box(deepeye_core::compute_factors(&nodes));
                }
                Stage::TopK => {
                    std::hint::black_box(
                        ProgressiveSelector::new(&table, &udfs).top_k_observed(5, obs),
                    );
                }
                Stage::Analyze => unreachable!("analyze is not a per-table pipeline stage"),
            }
            samples.push(clock.elapsed_ns());
        }
        record_stage_samples(obs, stage, &samples);
        stages.push((stage, RobustTiming::from_samples(&samples)));
    }
    let runs = vec![ScenarioRun {
        name: "mini-250x5".into(),
        rows: table.row_count(),
        columns: table.column_count(),
        stages,
    }];
    results_json(&runs, &obs.snapshot())
}

#[test]
fn two_harness_runs_pass_the_gate() {
    let doc_a = mini_harness(&Observer::enabled(), 3);
    let doc_b = mini_harness(&Observer::enabled(), 3);
    for doc in [&doc_a, &doc_b] {
        let summary = validate_bench_json(doc).expect("document validates");
        assert_eq!(summary.experiment, "harness");
        assert_eq!(summary.stage_rows, 5);
    }
    // Debug-build timings are noisy; the CI gate's generous smoke
    // thresholds are what we model here.
    let cfg = GateConfig {
        rel: 5.0,
        iqr_mult: 5.0,
        floor_ns: 200_000_000,
    };
    let report = perf_gate(&doc_a, &doc_b, &cfg).expect("gate runs");
    assert_eq!(report.compared, 5);
    assert!(
        report.regressions.is_empty(),
        "two back-to-back runs pass: {:?}",
        report.regressions
    );
    assert_eq!(check_budgets(&doc_a).expect("valid"), Vec::<String>::new());
}

#[test]
fn synthetic_slowdown_names_stage_and_metric() {
    let obs = Observer::enabled();
    let baseline = mini_harness(&obs, 3);
    // Rebuild the same document with one stage's median doubled — the
    // shape of a real 2x regression in `recognize`.
    let doc = deepeye_obs::parse_json(&baseline).expect("valid");
    let row = doc
        .get("scenarios")
        .and_then(deepeye_obs::Json::as_array)
        .unwrap()[0]
        .get("stages")
        .and_then(deepeye_obs::Json::as_array)
        .unwrap()
        .iter()
        .find(|r| r.get("stage").and_then(deepeye_obs::Json::as_str) == Some("recognize"))
        .expect("recognize row");
    let median = row
        .get("median_ns")
        .and_then(deepeye_obs::Json::as_f64)
        .unwrap() as u64;
    let max = row
        .get("max_ns")
        .and_then(deepeye_obs::Json::as_f64)
        .unwrap() as u64;
    let slowed_median = (median * 2).max(median + 1_000_000_000);
    let current = baseline
        .replacen(
            &format!("\"median_ns\": {median}, \"iqr_ns\""),
            &format!("\"median_ns\": {slowed_median}, \"iqr_ns\""),
            1,
        )
        .replacen(
            &format!("\"max_ns\": {max}"),
            &format!("\"max_ns\": {}", slowed_median.max(max)),
            1,
        );
    assert_ne!(baseline, current, "substitution must hit");
    let report = perf_gate(&baseline, &current, &GateConfig::default()).expect("gate runs");
    assert_eq!(report.regressions.len(), 1, "exactly the slowed stage");
    let r = &report.regressions[0];
    assert_eq!(r.stage, "recognize");
    assert_eq!(r.metric, "bench.recognize_ns");
    assert_eq!(r.scenario, "mini-250x5");
}

#[test]
fn folded_stacks_cover_root_span_time() {
    let obs = Observer::enabled();
    let _doc = mini_harness(&obs, 2);
    let folded = obs.folded_stacks();
    assert!(!folded.is_empty(), "non-empty folded-stack export");
    // Sum of self-times per root frame vs total root inclusive time.
    let mut per_root: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
    for line in folded.lines() {
        let (path, ns) = line.rsplit_once(' ').expect("folded line shape");
        let root = path.split(';').next().expect("non-empty path");
        *per_root.entry(root).or_default() += ns.parse::<u64>().expect("ns");
    }
    let total_folded: u64 = per_root.values().sum();
    let total_roots: u64 = obs
        .finished_spans()
        .iter()
        .filter(|s| s.parent.is_none())
        .map(|s| s.dur_ns)
        .sum();
    assert!(total_roots > 0);
    assert!(
        total_folded * 100 >= total_roots * 95,
        "folded stacks account for >= 95% of root span time \
         (folded {total_folded} vs roots {total_roots})"
    );
}

#[test]
fn metrics_document_carries_alloc_columns_per_stage() {
    let obs = Observer::enabled();
    let _doc = mini_harness(&obs, 2);
    let snapshot = obs.snapshot();
    let metrics = snapshot.metrics_json();
    deepeye_obs::validate_metrics_json(&metrics).expect("metrics validate with alloc fields");
    for field in ["alloc_count", "alloc_bytes", "alloc_peak"] {
        assert!(metrics.contains(field), "{field} present in metrics JSON");
    }
    // The execute stage materializes nodes, so its inclusive aggregate
    // must carry attributed bytes.
    let execute = snapshot.stage("harness.execute").expect("execute stage");
    assert!(execute.alloc_bytes > 0, "execute attributed bytes");
    assert!(execute.alloc_count > 0, "execute attributed count");
    assert!(execute.alloc_peak <= execute.alloc_bytes);
    // The human report shows the columns too.
    let report = snapshot.stage_report();
    assert!(report.contains("alloc"), "stage report has alloc columns");
}

#[test]
fn schema_fields_match_design_doc() {
    let design = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../DESIGN.md"))
        .expect("DESIGN.md readable");
    let start = design
        .find("## 9. Performance observability")
        .expect("DESIGN.md has section 9 on performance observability");
    let end = design[start..]
        .find("\n## 10.")
        .map(|i| start + i)
        .unwrap_or(design.len());
    let section = &design[start..end];
    let doc = mini_harness(&Observer::enabled(), 1);
    for field in SCHEMA_FIELDS {
        assert!(
            section.contains(&format!("`{field}`")),
            "DESIGN.md section 9 must document schema field {field:?}"
        );
        assert!(
            doc.contains(&format!("\"{field}\"")),
            "generated document must carry schema field {field:?}"
        );
    }
}

/// Double one stage's median in a harness document, keeping everything
/// else byte-identical — the shape of a clean synthetic regression.
fn double_stage_median(doc: &str, stage: &str) -> String {
    let parsed = deepeye_obs::parse_json(doc).expect("valid");
    let row = parsed
        .get("scenarios")
        .and_then(deepeye_obs::Json::as_array)
        .unwrap()[0]
        .get("stages")
        .and_then(deepeye_obs::Json::as_array)
        .unwrap()
        .iter()
        .find(|r| r.get("stage").and_then(deepeye_obs::Json::as_str) == Some(stage))
        .unwrap_or_else(|| panic!("{stage} row"));
    let median = row
        .get("median_ns")
        .and_then(deepeye_obs::Json::as_f64)
        .unwrap() as u64;
    let max = row
        .get("max_ns")
        .and_then(deepeye_obs::Json::as_f64)
        .unwrap() as u64;
    let slowed = (median * 2).max(median + 1_000_000_000);
    let current = doc
        .replacen(
            &format!("\"median_ns\": {median}, \"iqr_ns\""),
            &format!("\"median_ns\": {slowed}, \"iqr_ns\""),
            1,
        )
        .replacen(
            &format!("\"max_ns\": {max}"),
            &format!("\"max_ns\": {}", slowed.max(max)),
            1,
        );
    assert_ne!(doc, current, "substitution must hit");
    current
}

#[test]
fn costed_run_validates_and_matches_worker_counters() {
    let obs = Observer::enabled();
    let costs = CostCollector::enabled();
    let _doc = mini_harness_with(&obs, 2, &costs);
    let report = costs.report();
    assert!(!report.candidates.is_empty(), "candidates collected");
    let summary = validate_cost_json(&report.to_json()).expect("cost document validates");
    assert!(summary.total_ops > 0);
    assert_eq!(summary.candidates, report.candidates.len());
    // The exactness invariant across surfaces: collector totals equal
    // the `cost.*` counters the workers flushed under their
    // `execute.worker` spans — no operation lost or double-counted.
    let snapshot = obs.snapshot();
    for op in Op::ALL {
        assert_eq!(
            report.totals.get(op),
            snapshot.counter(op.metric()),
            "collector total vs worker counter for {}",
            op.metric()
        );
    }
}

#[test]
fn perfdiff_attributes_synthetic_execute_slowdown() {
    // Acceptance shape: a 2x execute slowdown plus an inflated
    // group-probe count must make perfdiff name the execute stage and
    // the probe bucket as the top attribution.
    let costs = CostCollector::enabled();
    let baseline = mini_harness_with(&Observer::enabled(), 2, &costs);
    let base_report = costs.report();
    assert!(!base_report.candidates.is_empty());
    let current = double_stage_median(&baseline, "execute");

    // A "current" cost document with 8x the group-hash probes, rebuilt
    // through a collector so the exactness invariant still holds.
    let cur_costs = CostCollector::enabled();
    let inflated: Vec<deepeye_obs::CandidateCost> = base_report
        .candidates
        .iter()
        .cloned()
        .map(|mut c| {
            c.costs
                .add(Op::GroupProbes, c.costs.get(Op::GroupProbes) * 7 + 1);
            c
        })
        .collect();
    cur_costs.record_worker(inflated);
    let base_cost_doc = base_report.to_json();
    let cur_cost_doc = cur_costs.report().to_json();

    let report = diff_runs(
        &baseline,
        &current,
        None,
        Some((&base_cost_doc, &cur_cost_doc)),
        &GateConfig::default(),
    )
    .expect("diff runs");
    let top = report.top_regression().expect("execute regressed");
    assert_eq!(top.stage, "execute");
    assert!(top.significant);
    let headline = report.attribution().expect("causal headline");
    assert!(headline.starts_with("execute regressed"), "{headline}");
    assert!(
        headline.contains("attributed to group_probes on"),
        "{headline}"
    );
    let bucket = &report.buckets[0];
    assert_eq!(bucket.op, "group_probes", "inflated bucket ranks first");
    assert!(bucket.delta > 0);
    // Growth spreads across rollup groups, but every growing bucket is
    // a probe bucket — probes own all of the attributed growth (shares
    // are per-bucket integer percentages, so their sum truncates low).
    assert!(
        report
            .buckets
            .iter()
            .filter(|b| b.delta > 0)
            .all(|b| b.op == "group_probes"),
        "only probe buckets grew"
    );
    let probe_share: u64 = report
        .buckets
        .iter()
        .filter(|b| b.op == "group_probes")
        .map(|b| b.share_pct)
        .sum();
    assert!(
        probe_share >= 80,
        "probes dominate the growth: {probe_share}%"
    );
    // The GitHub rendering survives the workflow-command quoting rules.
    for notice in report.github_notices(3) {
        assert!(notice.starts_with("::notice title=perfdiff"), "{notice}");
        assert!(!notice.contains('\n'), "{notice}");
    }
}

#[test]
fn budget_table_covers_every_stage() {
    for stage in Stage::ALL {
        let budget = BUDGETS
            .iter()
            .find(|b| b.stage == stage)
            .expect("every stage has a budget");
        assert!(budget.max_median_ns > 0);
        assert!(deepeye_obs::metrics::is_histogram(budget.metric()));
    }
}
