//! Cross-run performance diffing: compare two harness runs and say not
//! just *that* a stage moved but *why*. [`diff_runs`] takes two
//! `deepeye-bench/v1` documents and, optionally, two folded-stack files
//! and two `deepeye-cost/v1` documents, and produces a [`DiffReport`]
//! with three delta layers ranked by absolute contribution:
//!
//! - **stages** — per (scenario, stage) median deltas, flagged
//!   significant with the same [`GateConfig`] allowance `perfgate` uses,
//!   so the differ and the gate never disagree about what counts;
//! - **paths** — per span-path wall-time deltas, from folded-stack files
//!   when given, else from the documents' `"stages"` aggregate tails;
//! - **buckets** — per (chart/transform/signature × operator) executor
//!   work-count deltas from the cost documents, each carrying its share
//!   of the total count growth.
//!
//! The headline ties the layers together: *"execute regressed 1.9 ms;
//! 87% attributed to group_probes on categorical*temporal pairs"*.

use crate::perf::{stage_medians, GateConfig};
use deepeye_obs::json::Json;
use deepeye_obs::{fmt_duration, parse_json, validate_cost_json, Op};
use std::collections::BTreeMap;

/// One (scenario, stage) median delta between two harness runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageDelta {
    pub scenario: String,
    pub stage: String,
    /// Registry metric name (`bench.execute_ns`, …).
    pub metric: String,
    pub baseline_ns: u64,
    pub current_ns: u64,
    /// `current - baseline`; positive means slower.
    pub delta_ns: i64,
    /// True when the delta crosses the [`GateConfig`] allowance — the
    /// exact line `perfgate` would fail on (in either direction).
    pub significant: bool,
}

impl StageDelta {
    /// `+1.90 ms` / `-300.00 µs` style signed delta.
    pub fn delta_str(&self) -> String {
        signed_duration(self.delta_ns)
    }
}

/// One span-path wall-time delta (from folded stacks or the documents'
/// `"stages"` tails).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathDelta {
    pub path: String,
    pub baseline_ns: u64,
    pub current_ns: u64,
    pub delta_ns: i64,
}

/// One (rollup group × operator) executor work-count delta between two
/// cost documents.
#[derive(Debug, Clone, PartialEq)]
pub struct BucketDelta {
    /// `chart/transform/signature` rollup label.
    pub group: String,
    /// The column-pair type signature alone (`categorical*temporal`).
    pub signature: String,
    /// Stable operator name (`group_probes`, …).
    pub op: &'static str,
    pub baseline: u64,
    pub current: u64,
    /// `current - baseline` operator count; positive means more work.
    pub delta: i64,
    /// This bucket's percentage of the total op-count *growth* across
    /// all buckets (0 when the bucket shrank or nothing grew).
    pub share_pct: u64,
}

/// The assembled cross-run diff. Every vector is sorted by descending
/// absolute delta — index 0 is the biggest mover.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    pub stages: Vec<StageDelta>,
    pub paths: Vec<PathDelta>,
    pub buckets: Vec<BucketDelta>,
    /// (scenario, stage) pairs the baseline covers but the current run
    /// dropped — lost coverage must not read as "no delta".
    pub lost: Vec<String>,
    /// (scenario, stage) pairs new in the current run.
    pub gained: Vec<String>,
}

/// Format a signed nanosecond delta with an explicit sign.
fn signed_duration(ns: i64) -> String {
    let magnitude = fmt_duration(ns.unsigned_abs());
    if ns < 0 {
        format!("-{magnitude}")
    } else {
        format!("+{magnitude}")
    }
}

/// `diff_stages` output: the stage deltas plus the `scenario / stage`
/// pairs present only in the baseline (lost) or only in the current
/// document (gained).
pub type StageDiff = (Vec<StageDelta>, Vec<String>, Vec<String>);

/// Diff the per-scenario stage medians of two harness documents, using
/// the gate allowance to mark significance. Unlike [`crate::perf::perf_gate`]
/// this never fails on lost coverage — a differ is a diagnostic tool —
/// but it records dropped and gained pairs so the report can say so.
pub fn diff_stages(baseline: &str, current: &str, cfg: &GateConfig) -> Result<StageDiff, String> {
    let base_rows = stage_medians(baseline, "baseline")?;
    let cur_rows = stage_medians(current, "current")?;
    let mut stages = Vec::new();
    let mut lost = Vec::new();
    for (scenario, stage, metric, base_median, base_iqr) in &base_rows {
        let Some((_, _, _, cur_median, cur_iqr)) = cur_rows
            .iter()
            .find(|(s, st, ..)| s == scenario && st == stage)
        else {
            lost.push(format!("{scenario} / {stage}"));
            continue;
        };
        let rel_slack = (cfg.rel * *base_median as f64) as u64;
        let noise_slack = ((*base_iqr).max(*cur_iqr) as f64 * cfg.iqr_mult) as u64;
        let allowance = rel_slack.max(noise_slack).max(cfg.floor_ns);
        let delta_ns = *cur_median as i64 - *base_median as i64;
        stages.push(StageDelta {
            scenario: scenario.clone(),
            stage: stage.clone(),
            metric: metric.clone(),
            baseline_ns: *base_median,
            current_ns: *cur_median,
            delta_ns,
            significant: delta_ns.unsigned_abs() > allowance,
        });
    }
    let gained = cur_rows
        .iter()
        .filter(|(s, st, ..)| !base_rows.iter().any(|(bs, bst, ..)| bs == s && bst == st))
        .map(|(s, st, ..)| format!("{s} / {st}"))
        .collect();
    stages.sort_by_key(|d| std::cmp::Reverse(d.delta_ns.unsigned_abs()));
    Ok((stages, lost, gained))
}

/// Parse folded-stack text (`path;to;frame <self_ns>` lines) into a
/// path → total map. Duplicate paths sum; malformed lines error.
fn folded_map(text: &str, which: &str) -> Result<BTreeMap<String, u64>, String> {
    let mut out = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let (path, ns) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("{which}: line {} is not `path ns`", i + 1))?;
        let ns: u64 = ns
            .trim()
            .parse()
            .map_err(|e| format!("{which}: line {}: {e}", i + 1))?;
        *out.entry(path.to_owned()).or_insert(0) += ns;
    }
    Ok(out)
}

/// Parse the `"stages"` aggregate tail of a bench document into a span
/// path → `total_ns` map. Documents written before the tail existed
/// yield an empty map.
fn doc_path_map(text: &str, which: &str) -> Result<BTreeMap<String, u64>, String> {
    let doc = parse_json(text).map_err(|e| format!("{which}: {e}"))?;
    let mut out = BTreeMap::new();
    let Some(stages) = doc.get("stages").and_then(Json::as_object) else {
        return Ok(out);
    };
    for (path, agg) in stages {
        let total = agg
            .get("total_ns")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{which}: stage path {path:?} missing total_ns"))?;
        out.insert(path.clone(), total.max(0.0) as u64);
    }
    Ok(out)
}

/// Diff two path → ns maps, dropping sub-`floor_ns` deltas (scheduler
/// noise no matter the ratio) and ranking by absolute delta.
fn diff_path_maps(
    base: BTreeMap<String, u64>,
    cur: BTreeMap<String, u64>,
    floor_ns: u64,
) -> Vec<PathDelta> {
    let mut keys: Vec<&String> = base.keys().chain(cur.keys()).collect();
    keys.sort();
    keys.dedup();
    let mut out: Vec<PathDelta> = keys
        .into_iter()
        .map(|path| {
            let b = base.get(path).copied().unwrap_or(0);
            let c = cur.get(path).copied().unwrap_or(0);
            PathDelta {
                path: path.clone(),
                baseline_ns: b,
                current_ns: c,
                delta_ns: c as i64 - b as i64,
            }
        })
        .filter(|d| d.delta_ns.unsigned_abs() >= floor_ns)
        .collect();
    out.sort_by_key(|d| std::cmp::Reverse(d.delta_ns.unsigned_abs()));
    out
}

/// Parse a validated cost document's rollup groups into
/// (label, signature) → per-operator counts.
type GroupCounts = BTreeMap<(String, String), BTreeMap<&'static str, u64>>;

fn cost_group_map(text: &str, which: &str) -> Result<GroupCounts, String> {
    validate_cost_json(text).map_err(|e| format!("{which}: {e}"))?;
    let doc = parse_json(text).map_err(|e| format!("{which}: {e}"))?;
    let mut out: GroupCounts = BTreeMap::new();
    let groups = doc
        .get("groups")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{which}: missing groups"))?;
    for g in groups {
        let field = |key: &str| {
            g.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("{which}: group missing {key:?}"))
        };
        let label = format!(
            "{}/{}/{}",
            field("chart")?,
            field("transform")?,
            field("signature")?
        );
        let signature = field("signature")?;
        let costs = g
            .get("costs")
            .ok_or_else(|| format!("{which}: group {label} missing costs"))?;
        let mut counts = BTreeMap::new();
        for op in Op::ALL {
            let n = costs
                .get(op.name())
                .and_then(Json::as_f64)
                .unwrap_or(0.0)
                .max(0.0) as u64;
            counts.insert(op.name(), n);
        }
        out.insert((label, signature), counts);
    }
    Ok(out)
}

/// Diff two cost documents per (rollup group × operator), attributing
/// to each growing bucket its share of the total op-count growth.
pub fn diff_cost(baseline: &str, current: &str) -> Result<Vec<BucketDelta>, String> {
    let base = cost_group_map(baseline, "baseline cost doc")?;
    let cur = cost_group_map(current, "current cost doc")?;
    let mut keys: Vec<&(String, String)> = base.keys().chain(cur.keys()).collect();
    keys.sort();
    keys.dedup();
    let empty = BTreeMap::new();
    let mut buckets = Vec::new();
    for key in keys {
        let b = base.get(key).unwrap_or(&empty);
        let c = cur.get(key).unwrap_or(&empty);
        for op in Op::ALL {
            let bn = b.get(op.name()).copied().unwrap_or(0);
            let cn = c.get(op.name()).copied().unwrap_or(0);
            if bn == cn {
                continue;
            }
            buckets.push(BucketDelta {
                group: key.0.clone(),
                signature: key.1.clone(),
                op: op.name(),
                baseline: bn,
                current: cn,
                delta: cn as i64 - bn as i64,
                share_pct: 0,
            });
        }
    }
    let grown: u64 = buckets
        .iter()
        .filter(|b| b.delta > 0)
        .map(|b| b.delta.unsigned_abs())
        .sum();
    for b in &mut buckets {
        if b.delta > 0 {
            if let Some(share) = (100 * b.delta.unsigned_abs()).checked_div(grown) {
                b.share_pct = share;
            }
        }
    }
    buckets.sort_by_key(|b| std::cmp::Reverse(b.delta.unsigned_abs()));
    Ok(buckets)
}

/// Assemble the full cross-run diff. `stacks` and `costs` are optional
/// `(baseline, current)` text pairs; when `stacks` is absent the span
/// paths come from the documents' `"stages"` tails.
pub fn diff_runs(
    baseline: &str,
    current: &str,
    stacks: Option<(&str, &str)>,
    costs: Option<(&str, &str)>,
    cfg: &GateConfig,
) -> Result<DiffReport, String> {
    let (stages, lost, gained) = diff_stages(baseline, current, cfg)?;
    let paths = match stacks {
        Some((b, c)) => diff_path_maps(
            folded_map(b, "baseline stacks")?,
            folded_map(c, "current stacks")?,
            cfg.floor_ns,
        ),
        None => diff_path_maps(
            doc_path_map(baseline, "baseline")?,
            doc_path_map(current, "current")?,
            cfg.floor_ns,
        ),
    };
    let buckets = match costs {
        Some((b, c)) => diff_cost(b, c)?,
        None => Vec::new(),
    };
    Ok(DiffReport {
        stages,
        paths,
        buckets,
        lost,
        gained,
    })
}

impl DiffReport {
    /// The biggest significant regression, if any stage crossed the
    /// gate allowance in the slow direction.
    pub fn top_regression(&self) -> Option<&StageDelta> {
        self.stages.iter().find(|d| d.significant && d.delta_ns > 0)
    }

    /// The one-line causal headline: the top significant stage
    /// regression, attributed to the top growing operator bucket when
    /// cost documents were supplied — e.g. *"execute regressed 1.90 ms;
    /// 87% attributed to group_probes on categorical*temporal pairs"*.
    /// `None` when nothing significant regressed.
    pub fn attribution(&self) -> Option<String> {
        let top = self.top_regression()?;
        let mut line = format!(
            "{} regressed {} ({} -> {})",
            top.stage,
            fmt_duration(top.delta_ns.unsigned_abs()),
            fmt_duration(top.baseline_ns),
            fmt_duration(top.current_ns)
        );
        if let Some(bucket) = self.buckets.iter().find(|b| b.delta > 0) {
            line.push_str(&format!(
                "; {}% attributed to {} on {} pairs",
                bucket.share_pct, bucket.op, bucket.signature
            ));
        }
        Some(line)
    }

    /// Human-readable multi-section report, each section capped at
    /// `top` rows (ranked by absolute delta).
    pub fn render(&self, top: usize) -> String {
        let mut out = String::new();
        if let Some(headline) = self.attribution() {
            out.push_str(&format!("perfdiff: {headline}\n"));
        } else {
            out.push_str("perfdiff: no significant stage regression\n");
        }
        out.push_str(&format!(
            "\nstage medians ({} compared, {} significant):\n",
            self.stages.len(),
            self.stages.iter().filter(|d| d.significant).count()
        ));
        for d in self.stages.iter().take(top) {
            out.push_str(&format!(
                "  {:<4} {:<24} {:<10} {:>12} -> {:<12} {}\n",
                if d.significant { "SIG" } else { "" },
                format!("{} / {}", d.scenario, d.stage),
                d.delta_str(),
                fmt_duration(d.baseline_ns),
                fmt_duration(d.current_ns),
                d.metric
            ));
        }
        if !self.paths.is_empty() {
            out.push_str(&format!("\nspan paths (top {top} by |delta|):\n"));
            for p in self.paths.iter().take(top) {
                out.push_str(&format!(
                    "  {:<10} {:<52} {:>12} -> {}\n",
                    signed_duration(p.delta_ns),
                    p.path,
                    fmt_duration(p.baseline_ns),
                    fmt_duration(p.current_ns)
                ));
            }
        }
        if !self.buckets.is_empty() {
            out.push_str(&format!("\noperator buckets (top {top} by |delta|):\n"));
            for b in self.buckets.iter().take(top) {
                out.push_str(&format!(
                    "  {:>+14} {:<18} {:<44} {:>3}% of growth\n",
                    b.delta, b.op, b.group, b.share_pct
                ));
            }
        }
        for (what, list) in [("lost", &self.lost), ("gained", &self.gained)] {
            if !list.is_empty() {
                out.push_str(&format!("\ncoverage {what}: {}\n", list.join(", ")));
            }
        }
        out
    }

    /// GitHub Actions `::notice` workflow commands for the top movers —
    /// the headline first, then one notice per significant stage delta.
    /// Newlines are `%0A`-escaped per the workflow-command quoting
    /// rules (and `%` itself first), matching `analyze --github`.
    pub fn github_notices(&self, top: usize) -> Vec<String> {
        let escape = |s: &str| {
            s.replace('%', "%25")
                .replace('\r', "%0D")
                .replace('\n', "%0A")
        };
        let mut out = Vec::new();
        if let Some(headline) = self.attribution() {
            out.push(format!("::notice title=perfdiff::{}", escape(&headline)));
        }
        for d in self.stages.iter().filter(|d| d.significant).take(top) {
            let mut message = format!(
                "{} / {} ({}): median {} -> {} ({})",
                d.scenario,
                d.stage,
                d.metric,
                d.baseline_ns,
                d.current_ns,
                d.delta_str()
            );
            if let Some(bucket) = self.buckets.iter().find(|b| b.delta > 0) {
                message.push_str(&format!(
                    "\ntop operator bucket: {} on {} ({:+}, {}% of growth)",
                    bucket.op, bucket.group, bucket.delta, bucket.share_pct
                ));
            }
            out.push(format!(
                "::notice title=perfdiff {} / {}::{}",
                d.scenario,
                d.stage,
                escape(&message)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::{results_json, RobustTiming, ScenarioRun, Stage};
    use deepeye_obs::{CandidateCost, CostAcc, CostCollector, Observer, Op as CostOp, OpCosts};

    fn doc_with(execute_ns: u64) -> String {
        let runs = vec![ScenarioRun {
            name: "s-300x5".into(),
            rows: 300,
            columns: 5,
            stages: Stage::PIPELINE
                .into_iter()
                .map(|st| {
                    let ns = if st == Stage::Execute {
                        execute_ns
                    } else {
                        1_000_000
                    };
                    (st, RobustTiming::from_samples(&[ns, ns, ns]))
                })
                .collect(),
        }];
        results_json(&runs, &Observer::enabled().snapshot())
    }

    fn cost_doc(probes: u64) -> String {
        let costs = CostCollector::enabled();
        let mut oc = OpCosts::default();
        oc.add(CostOp::RowsScanned, 300);
        oc.add(CostOp::GroupProbes, probes);
        oc.add(CostOp::OutputRows, 5);
        costs.record_worker(vec![CandidateCost {
            id: "q1".into(),
            chart: "bar".into(),
            transform: "group".into(),
            signature: "categorical*temporal".into(),
            builds: 1,
            costs: oc,
        }]);
        costs.report().to_json()
    }

    #[test]
    fn identical_runs_diff_clean() {
        let doc = doc_with(10_000_000);
        let report = diff_runs(&doc, &doc, None, None, &GateConfig::default()).unwrap();
        assert!(report.top_regression().is_none());
        assert!(report.attribution().is_none());
        assert_eq!(report.stages.len(), Stage::PIPELINE.len());
        assert!(report.stages.iter().all(|d| !d.significant));
        assert!(report.lost.is_empty() && report.gained.is_empty());
        assert!(report.render(5).contains("no significant stage regression"));
    }

    #[test]
    fn doubled_execute_names_stage_and_bucket() {
        let base = doc_with(10_000_000);
        let cur = doc_with(20_000_000);
        let report = diff_runs(
            &base,
            &cur,
            None,
            Some((&cost_doc(1_000), &cost_doc(9_000))),
            &GateConfig::default(),
        )
        .unwrap();
        let top = report.top_regression().expect("execute regressed");
        assert_eq!(top.stage, "execute");
        assert_eq!(top.delta_ns, 10_000_000);
        let headline = report.attribution().expect("headline");
        assert!(headline.starts_with("execute regressed"), "{headline}");
        assert!(
            headline.contains("attributed to group_probes on categorical*temporal pairs"),
            "{headline}"
        );
        // The probe bucket explains 100% of the growth.
        let bucket = &report.buckets[0];
        assert_eq!(bucket.op, "group_probes");
        assert_eq!(bucket.delta, 8_000);
        assert_eq!(bucket.share_pct, 100);
        let rendered = report.render(5);
        assert!(rendered.contains("SIG"), "{rendered}");
        assert!(rendered.contains("operator buckets"), "{rendered}");
    }

    #[test]
    fn improvements_are_significant_but_not_regressions() {
        let base = doc_with(20_000_000);
        let cur = doc_with(10_000_000);
        let report = diff_runs(&base, &cur, None, None, &GateConfig::default()).unwrap();
        let exec = report.stages.iter().find(|d| d.stage == "execute").unwrap();
        assert!(exec.significant);
        assert!(exec.delta_ns < 0);
        assert!(report.top_regression().is_none());
    }

    #[test]
    fn folded_stacks_rank_span_paths() {
        let base = "pipeline.recommend;pipeline.execute 10000000\npipeline.recommend 500\n";
        let cur = "pipeline.recommend;pipeline.execute 25000000\npipeline.recommend 600\n";
        let doc = doc_with(10_000_000);
        let report =
            diff_runs(&doc, &doc, Some((base, cur)), None, &GateConfig::default()).unwrap();
        // The 100-ns path is under the floor; only the execute path stays.
        assert_eq!(report.paths.len(), 1);
        assert_eq!(report.paths[0].path, "pipeline.recommend;pipeline.execute");
        assert_eq!(report.paths[0].delta_ns, 15_000_000);
    }

    #[test]
    fn github_notices_escape_newlines() {
        let base = doc_with(10_000_000);
        let cur = doc_with(20_000_000);
        let report = diff_runs(
            &base,
            &cur,
            None,
            Some((&cost_doc(1_000), &cost_doc(9_000))),
            &GateConfig::default(),
        )
        .unwrap();
        let notices = report.github_notices(3);
        assert!(notices.len() >= 2, "{notices:?}");
        assert!(notices[0].starts_with("::notice title=perfdiff::"));
        for n in &notices {
            assert!(!n.contains('\n'), "one line per workflow command: {n}");
        }
        assert!(
            notices[1].contains("%0Atop operator bucket: group_probes"),
            "{:?}",
            notices[1]
        );
    }

    #[test]
    fn lost_and_gained_coverage_is_reported() {
        let base = doc_with(10_000_000);
        let cur = base.replace("s-300x5", "s-600x5");
        let report = diff_runs(&base, &cur, None, None, &GateConfig::default()).unwrap();
        assert_eq!(report.stages.len(), 0);
        assert_eq!(report.lost.len(), Stage::PIPELINE.len());
        assert_eq!(report.gained.len(), Stage::PIPELINE.len());
        assert!(report.render(5).contains("coverage lost"));
    }

    #[test]
    fn cost_diff_rejects_invalid_documents() {
        let bad = cost_doc(10).replace("deepeye-cost/v1", "deepeye-cost/v0");
        let err = diff_cost(&bad, &cost_doc(10)).unwrap_err();
        assert!(err.contains("baseline cost doc"), "{err}");
    }
}
