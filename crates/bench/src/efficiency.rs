//! The efficiency experiment behind Figure 12: end-to-end time from a
//! dataset to selected visualizations under the four configurations
//! {E, R} × {L, P} — exhaustive vs rule-based enumeration crossed with
//! learning-to-rank vs partial-order selection — with the enumeration /
//! selection percentage split the paper annotates on each bar.

use deepeye_core::{compute_factors, partial_order::raw_match_quality, LtrRanker, VisNode};
use deepeye_datagen::{ranking_examples, training_tables, PerceptionOracle};
use deepeye_obs::Observer;
use deepeye_query::{all_queries, UdfRegistry};
use std::time::Duration;

/// Enumeration mode of a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Enumeration {
    Exhaustive,
    RuleBased,
}

/// Selection mode of a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Selection {
    LearningToRank,
    PartialOrder,
}

/// One of the four bars of Figure 12.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EfficiencyBar {
    pub enumeration: Enumeration,
    pub selection: Selection,
    pub enumerate_time: Duration,
    pub select_time: Duration,
    pub candidates: usize,
}

impl EfficiencyBar {
    pub fn total(&self) -> Duration {
        self.enumerate_time + self.select_time
    }

    /// The paper's bar annotation, e.g. `E20%/L80%`.
    pub fn annotation(&self) -> String {
        let total = self.total().as_secs_f64().max(1e-9);
        let e_pct = 100.0 * self.enumerate_time.as_secs_f64() / total;
        let e = match self.enumeration {
            Enumeration::Exhaustive => "E",
            Enumeration::RuleBased => "R",
        };
        let s = match self.selection {
            Selection::LearningToRank => "L",
            Selection::PartialOrder => "P",
        };
        format!("{e}{:.0}%/{s}{:.0}%", e_pct, 100.0 - e_pct)
    }

    /// Short config label: EL / EP / RL / RP.
    pub fn label(&self) -> &'static str {
        match (self.enumeration, self.selection) {
            (Enumeration::Exhaustive, Selection::LearningToRank) => "EL",
            (Enumeration::Exhaustive, Selection::PartialOrder) => "EP",
            (Enumeration::RuleBased, Selection::LearningToRank) => "RL",
            (Enumeration::RuleBased, Selection::PartialOrder) => "RP",
        }
    }
}

/// Enumerate candidates under a mode. The phase runs under an
/// `enumerate.exhaustive` / `enumerate.rules` span and its wall time is
/// read back from the observer's monotonic clock — the bench no longer
/// keeps its own `Instant` bookkeeping. Nodes are slimmed right after
/// feature extraction to bound memory on exhaustive runs over large
/// tables.
fn enumerate_candidates(
    table: &deepeye_data::Table,
    mode: Enumeration,
    udfs: &UdfRegistry,
    obs: &Observer,
) -> (Vec<VisNode>, Duration) {
    let span = obs.span(match mode {
        Enumeration::Exhaustive => "enumerate.exhaustive",
        Enumeration::RuleBased => "enumerate.rules",
    });
    let id = span.id();
    let queries: Vec<deepeye_query::VisQuery> = match mode {
        Enumeration::Exhaustive => all_queries(table).collect(),
        Enumeration::RuleBased => deepeye_core::rules::rule_based_queries(table),
    };
    let mut seen = std::collections::HashSet::new();
    let mut nodes = Vec::new();
    for q in queries {
        if let Ok(mut node) = VisNode::build(table, q, udfs) {
            if seen.insert(node.id()) {
                node.slim();
                nodes.push(node);
            }
        }
    }
    drop(span);
    let elapsed = id.and_then(|i| obs.span_duration(i)).unwrap_or_default();
    (nodes, elapsed)
}

/// The span name of one configuration's selection phase.
fn select_span_name(enumeration: Enumeration, selection: Selection) -> &'static str {
    match (enumeration, selection) {
        (Enumeration::Exhaustive, Selection::LearningToRank) => "select.EL",
        (Enumeration::Exhaustive, Selection::PartialOrder) => "select.EP",
        (Enumeration::RuleBased, Selection::LearningToRank) => "select.RL",
        (Enumeration::RuleBased, Selection::PartialOrder) => "select.RP",
    }
}

/// Run the four configurations on one table. `ltr` must already be
/// trained (training time is offline in the paper's Figure 4 and excluded
/// from the online measurement).
pub fn run_table(table: &deepeye_data::Table, ltr: &LtrRanker, k: usize) -> Vec<EfficiencyBar> {
    run_table_observed(table, ltr, k, &Observer::enabled())
}

/// [`run_table`] against a caller-provided observer, so a driver can
/// export the full trace (e.g. `fig12_efficiency` honoring
/// `DEEPEYE_TRACE_OUT`). All phase timings come from the observer's span
/// clock, which is also what the exported trace shows — one source of
/// truth for both the table and the timeline.
pub fn run_table_observed(
    table: &deepeye_data::Table,
    ltr: &LtrRanker,
    k: usize,
    obs: &Observer,
) -> Vec<EfficiencyBar> {
    let udfs = UdfRegistry::default();
    let mut bars = Vec::with_capacity(4);
    for enumeration in [Enumeration::Exhaustive, Enumeration::RuleBased] {
        let (nodes, enumerate_time) = enumerate_candidates(table, enumeration, &udfs, obs);
        for selection in [Selection::LearningToRank, Selection::PartialOrder] {
            let span = obs.span(select_span_name(enumeration, selection));
            let id = span.id();
            let order = match selection {
                Selection::LearningToRank => ltr.rank(&nodes),
                // The §V-optimized partial-order top-k the paper's
                // efficiency experiment measures: the composite factor
                // score of §V-B ((M + Q + W)/3, leaf-local) sorted
                // best-first — linear in the candidate count, unlike the
                // full Algorithm-1 graph ranking used for Figure 11's
                // quality numbers.
                Selection::PartialOrder => {
                    let factors = compute_factors(&nodes);
                    let m_raw: Vec<f64> = nodes.iter().map(raw_match_quality).collect();
                    let mut order: Vec<usize> = (0..nodes.len()).collect();
                    order.sort_by(|&a, &b| {
                        let sa = m_raw[a] + factors[a].q + factors[a].w;
                        let sb = m_raw[b] + factors[b].q + factors[b].w;
                        sb.total_cmp(&sa).then(a.cmp(&b))
                    });
                    order
                }
            };
            let _top: Vec<usize> = order.into_iter().take(k).collect();
            drop(span);
            let select_time = id.and_then(|i| obs.span_duration(i)).unwrap_or_default();
            bars.push(EfficiencyBar {
                enumeration,
                selection,
                enumerate_time,
                select_time,
                candidates: nodes.len(),
            });
        }
    }
    bars
}

/// Train the LTR model used by the L configurations (offline phase).
pub fn offline_ltr(scale: f64, oracle: &PerceptionOracle) -> LtrRanker {
    let train = training_tables(scale);
    let groups = ranking_examples(&train, oracle);
    LtrRanker::fit(&groups)
}

/// One dataset's Figure-12 results, for the machine-readable export.
#[derive(Debug, Clone)]
pub struct DatasetRun {
    pub name: String,
    pub rows: usize,
    pub bars: Vec<EfficiencyBar>,
}

/// The machine-readable `BENCH_efficiency.json` document: per-dataset bar
/// timings plus the observer's counters and per-path stage aggregates
/// from the same run (so `progressive.leaves_pruned` et al. land next to
/// the wall-clock numbers they explain). Written by `fig12_efficiency`
/// when `DEEPEYE_BENCH_OUT` is set.
pub fn bench_json(scale: f64, datasets: &[DatasetRun], snapshot: &deepeye_obs::Snapshot) -> String {
    use deepeye_obs::json::escape;
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"schema\": \"{}\",\n",
        crate::perf::BENCH_SCHEMA
    ));
    out.push_str("  \"experiment\": \"fig12_efficiency\",\n");
    out.push_str(&format!("  \"scale\": {scale},\n"));
    out.push_str("  \"datasets\": [");
    for (i, d) in datasets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"rows\": {}, \"bars\": [",
            escape(&d.name),
            d.rows
        ));
        for (j, b) in d.bars.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"config\": \"{}\", \"enumerate_ns\": {}, \"select_ns\": {}, \
                 \"total_ns\": {}, \"candidates\": {}, \"annotation\": \"{}\"}}",
                b.label(),
                b.enumerate_time.as_nanos(),
                b.select_time.as_nanos(),
                b.total().as_nanos(),
                b.candidates,
                escape(&b.annotation())
            ));
        }
        out.push_str("]}");
    }
    if !datasets.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");
    out.push_str(&crate::perf::snapshot_tail(snapshot));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepeye_datagen::flight_table;

    #[test]
    fn figure_12_shape_holds() {
        let oracle = PerceptionOracle::default();
        let ltr = offline_ltr(0.03, &oracle);
        let table = flight_table(5, 1_500);
        let bars = run_table(&table, &ltr, 10);
        assert_eq!(bars.len(), 4);
        let get = |label: &str| {
            bars.iter()
                .find(|b| b.label() == label)
                .copied()
                .expect("all four configs present")
        };
        let (el, ep, rl, rp) = (get("EL"), get("EP"), get("RL"), get("RP"));
        // Finding (1): rules reduce running time — R* faster than E*.
        assert!(
            rl.total() < el.total(),
            "RL {:?} < EL {:?}",
            rl.total(),
            el.total()
        );
        assert!(
            rp.total() < ep.total(),
            "RP {:?} < EP {:?}",
            rp.total(),
            ep.total()
        );
        // Rule-based enumeration also yields far fewer candidates.
        assert!(rl.candidates * 2 < el.candidates);
        // Annotations render.
        assert!(el.annotation().starts_with('E'));
        assert!(rp.annotation().contains('P'));
    }

    #[test]
    fn selection_times_are_measured() {
        let oracle = PerceptionOracle::default();
        let ltr = offline_ltr(0.03, &oracle);
        let table = flight_table(6, 400);
        for bar in run_table(&table, &ltr, 5) {
            assert!(bar.total() > Duration::ZERO);
            assert!(bar.candidates > 0);
        }
    }

    #[test]
    fn bench_json_is_valid_and_carries_counters() {
        let oracle = PerceptionOracle::default();
        let ltr = offline_ltr(0.03, &oracle);
        let table = flight_table(4, 200);
        let obs = Observer::enabled();
        let bars = run_table_observed(&table, &ltr, 5, &obs);
        // The progressive tournament (run separately by the driver) feeds
        // the pruning counters the export carries.
        let udfs = UdfRegistry::default();
        deepeye_core::ProgressiveSelector::new(&table, &udfs).top_k_observed(5, &obs);
        let runs = vec![DatasetRun {
            name: "X1".into(),
            rows: table.row_count(),
            bars,
        }];
        let text = bench_json(0.03, &runs, &obs.snapshot());
        let summary = crate::perf::validate_bench_json(&text).expect("versioned schema validates");
        assert_eq!(summary.experiment, "fig12_efficiency");
        assert_eq!(summary.scenarios, 1);
        let doc = deepeye_obs::parse_json(&text).expect("valid JSON");
        let datasets = doc
            .get("datasets")
            .and_then(deepeye_obs::Json::as_array)
            .expect("datasets");
        assert_eq!(datasets.len(), 1);
        let bars = datasets[0]
            .get("bars")
            .and_then(deepeye_obs::Json::as_array)
            .expect("bars");
        assert_eq!(bars.len(), 4);
        assert_eq!(
            bars[0].get("config").and_then(deepeye_obs::Json::as_str),
            Some("EL")
        );
        let counters = doc.get("counters").expect("counters");
        assert!(counters
            .get("progressive.leaves_total")
            .and_then(deepeye_obs::Json::as_f64)
            .is_some_and(|v| v >= 1.0));
    }

    #[test]
    fn observed_run_exports_balanced_trace() {
        // The bench phases are spans on the shared observer clock: the
        // durations in the bars and the exported Chrome trace agree, and
        // the trace validates (balanced B/E pairs).
        let oracle = PerceptionOracle::default();
        let ltr = offline_ltr(0.03, &oracle);
        let table = flight_table(4, 200);
        let obs = Observer::enabled();
        let bars = run_table_observed(&table, &ltr, 5, &obs);
        assert_eq!(bars.len(), 4);
        // Two enumerate spans + four select spans.
        let spans = obs.finished_spans();
        assert_eq!(spans.len(), 6);
        let trace = obs.chrome_trace_json();
        let summary = deepeye_obs::validate_chrome_trace(&trace).expect("trace validates");
        assert_eq!(summary.spans, 6);
        // Bar timings come from those spans, so stage totals must match.
        let enum_total: Duration = bars.iter().map(|b| b.enumerate_time).sum::<Duration>();
        // Each enumerate span is shared by two bars: the distinct span sum
        // is half the per-bar sum.
        let span_total =
            obs.stage_duration("enumerate.exhaustive") + obs.stage_duration("enumerate.rules");
        assert_eq!(enum_total, span_total + span_total);
    }
}
