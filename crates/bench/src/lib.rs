//! # deepeye-bench
//!
//! Experiment harnesses reproducing every table and figure in the paper's
//! evaluation (§VI). Each binary prints rows in the shape of the paper's
//! artifact; `EXPERIMENTS.md` at the repository root records paper-vs-
//! measured for all of them.
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table3_corpus_stats` | Table III — dataset statistics |
//! | `table4_test_datasets` | Table IV — 10 testing datasets |
//! | `table6_coverage` | Table VI — coverage of real use cases |
//! | `fig10_recognition` | Figure 10 — avg precision/recall/F-measure |
//! | `table7_by_chart_type` | Table VII — effectiveness per chart type |
//! | `table8_per_dataset` | Table VIII — F-measure per dataset |
//! | `fig11_ndcg` | Figure 11(a–e) — selection NDCG |
//! | `fig12_efficiency` | Figure 12 — end-to-end runtime |
//! | `ablations` | beyond-paper design-choice ablations |
//!
//! Every binary accepts a `DEEPEYE_SCALE` environment variable scaling
//! dataset row counts (default 1.0 = paper scale; e.g. `DEEPEYE_SCALE=0.1`
//! for a quick pass).

#![forbid(unsafe_code)]

pub mod diff;
pub mod efficiency;
pub mod fmt;
pub mod perf;
pub mod ranking;
pub mod recognition;

/// Read the dataset scale from `DEEPEYE_SCALE` (default 1.0).
pub fn scale_from_env() -> f64 {
    std::env::var("DEEPEYE_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|s: &f64| *s > 0.0 && *s <= 1.0)
        .unwrap_or(1.0)
}
