//! Diagnostics harness: per-dataset breakdown of the Figure 11 rankers
//! against the oracle, including the factor-sum ablation and the
//! oracle-sort upper bound. Not a paper artifact — a debugging aid for the
//! reproduction itself (which ranking signal explains how much).

// Experiment drivers are report scripts: aborting on a broken
// invariant is the right behavior, so the workspace unwrap/panic
// lints are relaxed here.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use deepeye_bench::scale_from_env;
use deepeye_core::*;
use deepeye_datagen::*;
use deepeye_ml::ndcg;

fn main() {
    let scale = (scale_from_env() * 0.25).clamp(0.01, 1.0);
    println!("== ranking diagnostics (effective scale {scale:.3}) ==\n");
    let oracle = PerceptionOracle::default();
    let train = training_tables(scale);
    let recognizer = Recognizer::train(
        ClassifierKind::DecisionTree,
        &combo_recognition_examples(&train, &oracle),
    );
    let ltr = LtrRanker::fit(&combo_crowd_ranking_examples(&train, &oracle));

    println!("dataset: n | PO | factor-sum | LTR | oracle-sort (upper bound)");
    for (i, spec) in test_specs().iter().enumerate() {
        let table = build_table(&spec.scaled(scale));
        let all = candidate_nodes(&table);
        let mut combo_feat = vec![Vec::new(); all.len()];
        for combo in combos_of(&table, &all) {
            for &j in &combo.node_indices {
                combo_feat[j] = combo.features.clone();
            }
        }
        let keep: Vec<usize> = (0..all.len())
            .filter(|&j| recognizer.predict(&combo_feat[j]))
            .collect();
        let (nodes, feats): (Vec<_>, Vec<_>) = if keep.len() >= 2 {
            (
                keep.iter().map(|&j| all[j].clone()).collect(),
                keep.iter().map(|&j| combo_feat[j].clone()).collect(),
            )
        } else {
            (all.clone(), combo_feat)
        };
        let rel = dense_relevance(&nodes, &oracle);
        let eval = |order: &[usize]| ndcg(&order.iter().map(|&j| rel[j]).collect::<Vec<_>>());

        let po = rank_by_partial_order(&nodes);
        let lt = ltr.rank_features(&feats);
        let factors = compute_factors(&nodes);
        let mut fs: Vec<usize> = (0..nodes.len()).collect();
        fs.sort_by(|&a, &b| {
            let sa = factors[a].m + factors[a].q + factors[a].w;
            let sb = factors[b].m + factors[b].q + factors[b].w;
            sb.total_cmp(&sa)
        });
        let scores: Vec<f64> = nodes.iter().map(|n| oracle.score(n)).collect();
        let mut os: Vec<usize> = (0..nodes.len()).collect();
        os.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
        println!(
            "X{}: n={} PO={:.3} factor-sum={:.3} LTR={:.3} oracle-sort={:.3}",
            i + 1,
            nodes.len(),
            eval(&po),
            eval(&fs),
            eval(&lt),
            eval(&os)
        );
    }
}
