//! Table VIII: F-measure (%) per test dataset × chart type × classifier
//! (X1–X10 rows; Bar/Line/Pie/Scatter column groups; Bayes/SVM/DT within
//! each group).

// Experiment drivers are report scripts: aborting on a broken
// invariant is the right behavior, so the workspace unwrap/panic
// lints are relaxed here.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use deepeye_bench::fmt::{pct, TextTable};
use deepeye_bench::{recognition, scale_from_env};
use deepeye_core::ClassifierKind;
use deepeye_datagen::PerceptionOracle;

fn main() {
    let scale = scale_from_env();
    println!("== Table VIII: F-measure per dataset and chart type (scale {scale}) ==\n");
    let exp = recognition::run(scale, &PerceptionOracle::default());
    let mut header = vec!["No.".to_owned()];
    for chart in ["Bar", "Line", "Pie", "Scatter"] {
        for model in ["Bayes", "SVM", "DT"] {
            header.push(format!("{chart} {model}"));
        }
    }
    let mut t = TextTable::new(header);
    for (di, name) in exp.dataset_names.iter().enumerate() {
        let mut row = vec![format!("X{} ({name})", di + 1)];
        for ci in 0..4 {
            for kind in [
                ClassifierKind::NaiveBayes,
                ClassifierKind::Svm,
                ClassifierKind::DecisionTree,
            ] {
                let f = exp.result(kind).per_dataset_chart[di].1[ci].1;
                row.push(pct(f));
            }
        }
        t.row(row);
    }
    t.print();
    println!("\nPaper: individual cases confirm the aggregate — DT works best throughout.");
}
