//! Table VII: average effectiveness (%) per chart type — B(bar), L(line),
//! P(pie), S(scatter) — for Bayes / SVM / DT, over the 10 test datasets.

// Experiment drivers are report scripts: aborting on a broken
// invariant is the right behavior, so the workspace unwrap/panic
// lints are relaxed here.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use deepeye_bench::fmt::{pct, TextTable};
use deepeye_bench::{recognition, scale_from_env};
use deepeye_core::ClassifierKind;
use deepeye_datagen::PerceptionOracle;
use deepeye_query::ChartType;

fn main() {
    let scale = scale_from_env();
    println!("== Table VII: effectiveness per chart type (scale {scale}) ==\n");
    let exp = recognition::run(scale, &PerceptionOracle::default());
    let mut t = TextTable::new([
        "chart", "P Bayes", "P SVM", "P DT", "R Bayes", "R SVM", "R DT", "F Bayes", "F SVM", "F DT",
    ]);
    for (ci, chart) in ChartType::ALL.into_iter().enumerate() {
        let label = ["B", "L", "P", "S"][ci];
        let get = |k: ClassifierKind| exp.result(k).per_chart[ci].1;
        assert_eq!(
            exp.result(ClassifierKind::DecisionTree).per_chart[ci].0,
            chart
        );
        let (b, s, d) = (
            get(ClassifierKind::NaiveBayes),
            get(ClassifierKind::Svm),
            get(ClassifierKind::DecisionTree),
        );
        t.row([
            label.to_owned(),
            pct(b.precision),
            pct(s.precision),
            pct(d.precision),
            pct(b.recall),
            pct(s.recall),
            pct(d.recall),
            pct(b.f_measure),
            pct(s.f_measure),
            pct(d.f_measure),
        ]);
    }
    t.print();
    println!("\nPaper: the consistent story — DT best, Bayes worst, on every chart type.");
}
