//! Figure 10: average precision / recall / F-measure of the three
//! recognition classifiers (Bayes, SVM, decision tree) over the 10 test
//! datasets. Paper shape: DT ≫ SVM > Bayes, DT ≈ 95% F-measure.

// Experiment drivers are report scripts: aborting on a broken
// invariant is the right behavior, so the workspace unwrap/panic
// lints are relaxed here.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use deepeye_bench::fmt::{pct, TextTable};
use deepeye_bench::{recognition, scale_from_env};
use deepeye_core::ClassifierKind;
use deepeye_datagen::PerceptionOracle;

fn main() {
    let scale = scale_from_env();
    println!("== Figure 10: visualization recognition (scale {scale}) ==\n");
    let exp = recognition::run(scale, &PerceptionOracle::default());
    println!(
        "trained on {} labeled examples; evaluated on {} test candidates\n",
        exp.train_examples, exp.test_candidates
    );
    let mut t = TextTable::new(["metric", "Bayes", "SVM", "DT"]);
    let get = |k: ClassifierKind| exp.result(k).overall;
    let (b, s, d) = (
        get(ClassifierKind::NaiveBayes),
        get(ClassifierKind::Svm),
        get(ClassifierKind::DecisionTree),
    );
    t.row([
        "precision (%)",
        &pct(b.precision),
        &pct(s.precision),
        &pct(d.precision),
    ]);
    t.row(["recall (%)", &pct(b.recall), &pct(s.recall), &pct(d.recall)]);
    t.row([
        "F-measure (%)",
        &pct(b.f_measure),
        &pct(s.f_measure),
        &pct(d.f_measure),
    ]);
    t.print();
    println!(
        "\nPaper: DT ~95% F-measure, clearly above SVM, with Bayes worst —\n\
         \"visualization recognition should follow the rules [of §V-A] and\n\
         decision tree could capture these rules well.\""
    );
}
