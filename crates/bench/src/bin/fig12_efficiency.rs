//! Figure 12: end-to-end running time per test dataset under the four
//! configurations {E, R} × {L, P}, with the enumeration/selection split
//! annotated per bar.
//!
//! Paper findings to reproduce (shape, not absolute times — different
//! hardware): (1) R* always beats E*; (2) *P always beats *L; (3) whole
//! pipelines finish in seconds for reasonably sized data.

// Experiment drivers are report scripts: aborting on a broken
// invariant is the right behavior, so the workspace unwrap/panic
// lints are relaxed here.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use deepeye_bench::efficiency::DatasetRun;
use deepeye_bench::fmt::{ms, TextTable};
use deepeye_bench::{efficiency, scale_from_env};
use deepeye_core::ProgressiveSelector;
use deepeye_datagen::{build_table, test_specs, PerceptionOracle};
use deepeye_obs::Observer;
use deepeye_query::UdfRegistry;
use std::process::ExitCode;

fn main() -> ExitCode {
    let scale = scale_from_env();
    println!("== Figure 12: efficiency (scale {scale}) ==\n");
    let oracle = PerceptionOracle::default();
    eprintln!("(offline) training learning-to-rank model …");
    let ltr = efficiency::offline_ltr(scale.min(0.1), &oracle);
    let obs = Observer::enabled();
    let udfs = UdfRegistry::default();
    let mut runs: Vec<DatasetRun> = Vec::new();
    let mut findings_inverted = 0usize;

    let mut t = TextTable::new([
        "dataset",
        "config",
        "total",
        "enumerate",
        "select",
        "split",
        "#-candidates",
    ]);
    for (i, spec) in test_specs().iter().enumerate() {
        let table = build_table(&spec.scaled(scale));
        eprintln!(
            "running X{} ({}) — {} rows …",
            i + 1,
            spec.name,
            table.row_count()
        );
        let bars = efficiency::run_table_observed(&table, &ltr, 10, &obs);
        // The §V-B tournament on the same table, so the export's
        // progressive.* counters (leaves pruned/materialized) describe
        // this run's datasets.
        ProgressiveSelector::new(&table, &udfs).top_k_observed(10, &obs);
        runs.push(DatasetRun {
            name: format!("X{}", i + 1),
            rows: table.row_count(),
            bars: bars.clone(),
        });
        for bar in &bars {
            t.row([
                format!("X{}", i + 1),
                bar.label().to_owned(),
                ms(bar.total()),
                ms(bar.enumerate_time),
                ms(bar.select_time),
                bar.annotation(),
                bar.candidates.to_string(),
            ]);
        }
        // Assert the paper's relative findings as we go.
        let get = |l: &str| {
            bars.iter()
                .find(|b| b.label() == l)
                .expect("present")
                .total()
        };
        if get("RL") > get("EL") || get("RP") > get("EP") {
            eprintln!("  note: rules did not speed up X{} at this scale", i + 1);
            findings_inverted += 1;
        }
    }
    t.print();
    println!(
        "\nPaper: RL/RP always faster than EL/EP (rules prune bad candidates);\n\
         EP/RP faster than EL/RL (partial order prunes, LTR scores everything);\n\
         seconds-scale end to end."
    );
    // DEEPEYE_TRACE_OUT=<path> exports the whole run as a Chrome trace
    // (load in Perfetto / chrome://tracing to see the phase timeline).
    if let Ok(path) = std::env::var("DEEPEYE_TRACE_OUT") {
        if !path.is_empty() {
            std::fs::write(&path, obs.chrome_trace_json()).expect("write trace file");
            eprintln!("wrote Chrome trace to {path}");
        }
    }
    // DEEPEYE_BENCH_OUT=<path> exports the machine-readable results:
    // per-dataset bar timings plus the observer counters (including the
    // progressive tournament's leaves_pruned) and stage aggregates.
    if let Ok(path) = std::env::var("DEEPEYE_BENCH_OUT") {
        if !path.is_empty() {
            let json = efficiency::bench_json(scale, &runs, &obs.snapshot());
            std::fs::write(&path, json).expect("write bench file");
            eprintln!("wrote machine-readable results to {path}");
        }
    }
    // Tiny scales are dominated by constant costs, so an inverted finding
    // there is noise; at report scale it is a real failure and the run
    // must say so in its exit status.
    if scale >= 0.5 && findings_inverted > 0 {
        eprintln!("fig12: {findings_inverted} dataset(s) inverted the paper's R-vs-E finding");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
