//! Table IV: the 10 testing datasets X1–X10 — name, #-tuples, #-columns,
//! and #-charts: the number of *good* charts at the paper's annotation
//! granularity (column-pair × chart-type combos), labeled here by the
//! perception oracle where the paper used its student annotations.

// Experiment drivers are report scripts: aborting on a broken
// invariant is the right behavior, so the workspace unwrap/panic
// lints are relaxed here.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use deepeye_bench::fmt::TextTable;
use deepeye_bench::scale_from_env;
use deepeye_datagen::{build_table, combo_evaluation_nodes, test_specs, PerceptionOracle};

/// The paper's #-charts column for X1–X10, for side-by-side comparison.
const PAPER_CHARTS: [usize; 10] = [48, 10, 275, 123, 36, 209, 42, 17, 103, 44];

fn main() {
    let scale = scale_from_env();
    let oracle = PerceptionOracle::default();
    println!("== Table IV: 10 testing datasets (scale {scale}) ==\n");
    let mut t = TextTable::new(["No.", "name", "#-tuples", "#-columns", "#-charts", "paper"]);
    for (i, spec) in test_specs().iter().enumerate() {
        let scaled = spec.scaled(scale);
        let table = build_table(&scaled);
        // #-charts at the paper's annotation granularity: good
        // (column-pair × chart-type) combos.
        let good = combo_evaluation_nodes(&table, &oracle)
            .iter()
            .filter(|c| c.good)
            .count();
        t.row([
            format!("X{}", i + 1),
            spec.name.clone(),
            table.row_count().to_string(),
            table.column_count().to_string(),
            good.to_string(),
            PAPER_CHARTS[i].to_string(),
        ]);
    }
    t.print();
}
