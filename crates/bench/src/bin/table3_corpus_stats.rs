//! Table III: statistics of the (synthetic) 42-dataset corpus.
//!
//! Paper row: #-tuples 3–99,527 (avg 3,381); #-columns 2–25; plus the
//! per-type column counts. Our corpus matches the extrema exactly; the
//! average is bounded below by Table IV's own test sets (≈3,984), so it
//! lands slightly above the paper's figure.

// Experiment drivers are report scripts: aborting on a broken
// invariant is the right behavior, so the workspace unwrap/panic
// lints are relaxed here.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use deepeye_bench::fmt::TextTable;
use deepeye_bench::scale_from_env;
use deepeye_datagen::{corpus_stats, test_tables, training_tables};

fn main() {
    let scale = scale_from_env();
    println!("== Table III: dataset statistics (scale {scale}) ==\n");
    let mut tables = training_tables(scale);
    tables.extend(test_tables(scale));
    let s = corpus_stats(&tables);
    let mut t = TextTable::new(["statistic", "value", "paper"]);
    t.row(["datasets", &s.datasets.to_string(), "42"]);
    t.row(["min #-tuples", &s.min_tuples.to_string(), "3"]);
    t.row(["max #-tuples", &s.max_tuples.to_string(), "99527"]);
    t.row(["avg #-tuples", &format!("{:.0}", s.avg_tuples), "3381"]);
    t.row(["min #-columns", &s.min_columns.to_string(), "2"]);
    t.row(["max #-columns", &s.max_columns.to_string(), "25"]);
    t.row(["temporal columns", &s.temporal_columns.to_string(), "(mix)"]);
    t.row([
        "categorical columns",
        &s.categorical_columns.to_string(),
        "(mix)",
    ]);
    t.row([
        "numerical columns",
        &s.numerical_columns.to_string(),
        "(mix)",
    ]);
    t.print();
}
