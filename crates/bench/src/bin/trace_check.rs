//! Validate a Chrome trace-event file produced by the observability layer
//! (`--trace-out`, `DEEPEYE_TRACE_OUT`): well-formed JSON, known phase
//! types, balanced name-matched B/E pairs, monotone per-lane timestamps.
//!
//! Usage: `trace_check <trace.json> [<trace.json> ...]`
//!
//! Exits nonzero (via `ExitCode`, so the workspace `clippy::exit` lint
//! stays intact) if any file fails validation — CI runs this against the
//! quickstart example's trace.

use deepeye_obs::validate_chrome_trace;
use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: trace_check <trace.json> [<trace.json> ...]");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        match validate_chrome_trace(&text) {
            Ok(summary) => {
                println!(
                    "{path}: ok — {} events, {} spans, depth {}, {} thread lane(s)",
                    summary.events, summary.spans, summary.max_depth, summary.threads
                );
                if summary.spans == 0 {
                    eprintln!("{path}: no spans recorded — was the observer enabled?");
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("{path}: INVALID — {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
