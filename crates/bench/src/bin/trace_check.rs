//! Validate the JSON artifacts the observability and provenance layers
//! export:
//!
//! - Chrome trace-event files (`--trace-out`, `DEEPEYE_TRACE_OUT`):
//!   well-formed JSON, known phase types, balanced name-matched B/E
//!   pairs, monotone per-lane timestamps.
//! - Metrics files (`--metrics-out`, `DEEPEYE_METRICS_OUT`): schema,
//!   non-negative integer counters, internally consistent histogram
//!   summaries (`min ≤ p50 ≤ p95 ≤ p99 ≤ max`).
//! - Provenance files (`--provenance-out`): schema, known outcomes, the
//!   tournament leaf invariant, and hybrid scores that recompute from
//!   their recorded parts.
//! - Lint reports (`--lint-report`, from `analyze --workspace --json`):
//!   schema, codes drawn from the rule catalog, and the stable
//!   (file, line, code) diagnostic ordering.
//! - Bench results (`--bench`, from `harness` or `fig12_efficiency`'s
//!   `DEEPEYE_BENCH_OUT`): versioned schema, registered metric names,
//!   internally consistent robust timings.
//! - Stage budgets (`--budgets`): a harness document's per-stage medians
//!   against the declarative budget table (`deepeye_bench::perf::BUDGETS`).
//! - Telemetry streams (`--telemetry`, from `harness --soak
//!   --telemetry-out`): `deepeye-telemetry/v1` JSON lines — schema,
//!   strictly increasing sequence, monotone accounting, ordered
//!   quantiles, bounded retention. A stream with zero ticks or any
//!   recorded stall fails.
//! - Executor cost reports (`--cost`, from `harness --cost-out` or the
//!   CLI `--cost-out`): `deepeye-cost/v1` schema, the operator
//!   taxonomy, and the exactness invariant — per-candidate costs sum
//!   to the worker flush totals, the rollup groups, and the grand
//!   totals, per operator.
//! - Health documents (`--health`, from `harness --soak --health-out`
//!   or the CLI `--health-out`): `deepeye-health/v1` schema,
//!   well-formed series stats and verdicts, and a status consistent
//!   with the firing verdicts. A *firing* document still validates —
//!   CI checks both the green and the deliberately-paging soak
//!   documents with this flag; failing the run on a verdict is the
//!   harness's job, not the validator's.
//!
//! Usage: `trace_check [<trace.json> ...] [--metrics <metrics.json>]...
//! [--provenance <prov.json>]... [--lint-report <report.json>]...
//! [--bench <bench.json>]... [--budgets <bench.json>]...
//! [--telemetry <ticks.jsonl>]... [--cost <cost.json>]...
//! [--health <health.json>]...`
//!
//! Exits nonzero (via `ExitCode`, so the workspace `clippy::exit` lint
//! stays intact) if any file fails validation — CI runs this against the
//! quickstart example's exports.

use deepeye_analyze::validate_lint_report;
use deepeye_bench::perf::{check_budgets, validate_bench_json};
use deepeye_core::validate_provenance_json;
use deepeye_obs::{
    validate_chrome_trace, validate_cost_json, validate_health_json, validate_metrics_json,
    validate_telemetry_jsonl,
};
use std::process::ExitCode;

enum Kind {
    Trace,
    Metrics,
    Provenance,
    LintReport,
    Bench,
    Budgets,
    Telemetry,
    Cost,
    Health,
}

fn main() -> ExitCode {
    let mut jobs: Vec<(Kind, String)> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--metrics" => match args.next() {
                Some(path) => jobs.push((Kind::Metrics, path)),
                None => return usage(),
            },
            "--provenance" => match args.next() {
                Some(path) => jobs.push((Kind::Provenance, path)),
                None => return usage(),
            },
            "--lint-report" => match args.next() {
                Some(path) => jobs.push((Kind::LintReport, path)),
                None => return usage(),
            },
            "--bench" => match args.next() {
                Some(path) => jobs.push((Kind::Bench, path)),
                None => return usage(),
            },
            "--budgets" => match args.next() {
                Some(path) => jobs.push((Kind::Budgets, path)),
                None => return usage(),
            },
            "--telemetry" => match args.next() {
                Some(path) => jobs.push((Kind::Telemetry, path)),
                None => return usage(),
            },
            "--cost" => match args.next() {
                Some(path) => jobs.push((Kind::Cost, path)),
                None => return usage(),
            },
            "--health" => match args.next() {
                Some(path) => jobs.push((Kind::Health, path)),
                None => return usage(),
            },
            _ => jobs.push((Kind::Trace, arg)),
        }
    }
    if jobs.is_empty() {
        return usage();
    }
    let mut failed = false;
    for (kind, path) in &jobs {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        match kind {
            Kind::Trace => match validate_chrome_trace(&text) {
                Ok(summary) => {
                    println!(
                        "{path}: ok — {} events, {} spans, depth {}, {} thread lane(s)",
                        summary.events, summary.spans, summary.max_depth, summary.threads
                    );
                    if summary.spans == 0 {
                        eprintln!("{path}: no spans recorded — was the observer enabled?");
                        failed = true;
                    }
                }
                Err(e) => {
                    eprintln!("{path}: INVALID — {e}");
                    failed = true;
                }
            },
            Kind::Metrics => match validate_metrics_json(&text) {
                Ok(summary) => {
                    println!(
                        "{path}: ok — {} counters, {} histograms, {} stages",
                        summary.counters, summary.histograms, summary.stages
                    );
                    if summary.stages == 0 {
                        eprintln!("{path}: no stages recorded — was the observer enabled?");
                        failed = true;
                    }
                }
                Err(e) => {
                    eprintln!("{path}: INVALID — {e}");
                    failed = true;
                }
            },
            Kind::Provenance => match validate_provenance_json(&text) {
                Ok(summary) => {
                    println!(
                        "{path}: ok — {} records ({} ranked, {} rejected/pruned)",
                        summary.records, summary.ranked, summary.rejected
                    );
                    if summary.records == 0 {
                        eprintln!("{path}: no records — was provenance enabled?");
                        failed = true;
                    }
                }
                Err(e) => {
                    eprintln!("{path}: INVALID — {e}");
                    failed = true;
                }
            },
            Kind::Bench => match validate_bench_json(&text) {
                Ok(summary) => {
                    println!(
                        "{path}: ok — {} with {} scenario(s), {} stage row(s)",
                        summary.experiment, summary.scenarios, summary.stage_rows
                    );
                }
                Err(e) => {
                    eprintln!("{path}: INVALID — {e}");
                    failed = true;
                }
            },
            Kind::Budgets => match check_budgets(&text) {
                Ok(violations) if violations.is_empty() => {
                    println!("{path}: ok — all stage medians within budget");
                }
                Ok(violations) => {
                    for v in &violations {
                        eprintln!("{path}: {v}");
                    }
                    failed = true;
                }
                Err(e) => {
                    eprintln!("{path}: INVALID — {e}");
                    failed = true;
                }
            },
            Kind::Telemetry => match validate_telemetry_jsonl(&text) {
                Ok(summary) => {
                    println!(
                        "{path}: ok — {} tick(s), {} stall(s), max retained {}, \
                         {} dropped (capacity {})",
                        summary.ticks,
                        summary.stalls,
                        summary.max_retained,
                        summary.dropped,
                        summary.capacity
                    );
                    // An empty stream is already a validator error; a
                    // stall in a gated run is a budget violation the
                    // watchdog caught live.
                    if summary.stalls > 0 {
                        eprintln!("{path}: stream records {} stall(s)", summary.stalls);
                        failed = true;
                    }
                }
                Err(e) => {
                    eprintln!("{path}: INVALID — {e}");
                    failed = true;
                }
            },
            Kind::Cost => match validate_cost_json(&text) {
                Ok(summary) => {
                    println!(
                        "{path}: ok — {} candidate(s), {} worker flush(es), {} group(s), \
                         {} total op(s)",
                        summary.candidates, summary.workers, summary.groups, summary.total_ops
                    );
                    if summary.candidates == 0 {
                        eprintln!("{path}: no candidates recorded — was cost profiling enabled?");
                        failed = true;
                    }
                }
                Err(e) => {
                    eprintln!("{path}: INVALID — {e}");
                    failed = true;
                }
            },
            Kind::Health => match validate_health_json(&text) {
                Ok(summary) => {
                    println!(
                        "{path}: ok — status {} over {} tick(s): {} series, \
                         {} objective(s), {} verdict(s) ({} firing)",
                        summary.status,
                        summary.ticks,
                        summary.series,
                        summary.objectives,
                        summary.verdicts,
                        summary.firing
                    );
                    if summary.ticks == 0 {
                        eprintln!("{path}: document covers zero ticks — was soak mode on?");
                        failed = true;
                    }
                }
                Err(e) => {
                    eprintln!("{path}: INVALID — {e}");
                    failed = true;
                }
            },
            Kind::LintReport => match validate_lint_report(&text) {
                Ok(summary) => {
                    println!(
                        "{path}: ok — {} rules over {} files: {} violation(s), {} suppressed; \
                         call graph: {}/{} calls resolved across {} functions; \
                         effects: {}/{} theorem-scoped functions pure when disabled",
                        summary.rules,
                        summary.files_scanned,
                        summary.diagnostics,
                        summary.suppressed,
                        summary.resolved,
                        summary.calls,
                        summary.functions,
                        summary.pure_when_disabled,
                        summary.effect_rows
                    );
                    if summary.diagnostics > 0 {
                        eprintln!("{path}: report records unsuppressed violations");
                        failed = true;
                    }
                }
                Err(e) => {
                    eprintln!("{path}: INVALID — {e}");
                    failed = true;
                }
            },
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: trace_check [<trace.json> ...] [--metrics <metrics.json>]... \
         [--provenance <prov.json>]... [--lint-report <report.json>]... \
         [--bench <bench.json>]... [--budgets <bench.json>]... \
         [--telemetry <ticks.jsonl>]... [--cost <cost.json>]... \
         [--health <health.json>]..."
    );
    ExitCode::FAILURE
}
