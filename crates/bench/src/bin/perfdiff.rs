//! Cross-run performance differ: compare two `harness` result documents
//! and explain *why* the numbers moved, not just that they did. Stage
//! medians are diffed with the same noise-aware allowance `perfgate`
//! enforces (so the two tools never disagree about significance), span
//! paths from folded-stack files (or the documents' `"stages"` tails)
//! rank where the wall time went, and two `deepeye-cost/v1` documents
//! attribute the delta to executor operator buckets — e.g. "execute
//! regressed 1.9 ms; 87% attributed to group_probes on
//! categorical*temporal pairs".
//!
//! Usage: `perfdiff <baseline.json> <current.json>
//! [--stacks-base F --stacks-cur F] [--cost-base F --cost-cur F]
//! [--rel FRAC] [--iqr-mult X] [--floor-ns N] [--top N] [--github]`
//!
//! Exit status: 0 on a successful diff (even one full of regressions —
//! `perfdiff` diagnoses, `perfgate` gates), nonzero on unreadable or
//! invalid inputs.

// Experiment drivers are report scripts: aborting on a broken
// invariant is the right behavior, so the workspace unwrap/panic
// lints are relaxed here.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use deepeye_bench::diff::diff_runs;
use deepeye_bench::perf::GateConfig;
use std::process::ExitCode;

#[derive(Default)]
struct Args {
    baseline: Option<String>,
    current: Option<String>,
    stacks_base: Option<String>,
    stacks_cur: Option<String>,
    cost_base: Option<String>,
    cost_cur: Option<String>,
    top: usize,
    github: bool,
}

fn main() -> ExitCode {
    let mut cfg = GateConfig::default();
    let mut parsed = Args {
        top: 10,
        ..Args::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| match args.next() {
            Some(v) => Ok(v),
            None => Err(format!("{flag} needs a value")),
        };
        let result = match arg.as_str() {
            "--stacks-base" => value("--stacks-base").map(|v| parsed.stacks_base = Some(v)),
            "--stacks-cur" => value("--stacks-cur").map(|v| parsed.stacks_cur = Some(v)),
            "--cost-base" => value("--cost-base").map(|v| parsed.cost_base = Some(v)),
            "--cost-cur" => value("--cost-cur").map(|v| parsed.cost_cur = Some(v)),
            "--top" => value("--top").and_then(|v| {
                v.parse()
                    .map(|n| parsed.top = n)
                    .map_err(|e| format!("--top: {e}"))
            }),
            "--rel" => value("--rel").and_then(|v| {
                v.parse()
                    .map(|r| cfg.rel = r)
                    .map_err(|e| format!("--rel: {e}"))
            }),
            "--iqr-mult" => value("--iqr-mult").and_then(|v| {
                v.parse()
                    .map(|m| cfg.iqr_mult = m)
                    .map_err(|e| format!("--iqr-mult: {e}"))
            }),
            "--floor-ns" => value("--floor-ns").and_then(|v| {
                v.parse()
                    .map(|f| cfg.floor_ns = f)
                    .map_err(|e| format!("--floor-ns: {e}"))
            }),
            "--github" => {
                parsed.github = true;
                Ok(())
            }
            _ if parsed.baseline.is_none() => {
                parsed.baseline = Some(arg);
                Ok(())
            }
            _ if parsed.current.is_none() => {
                parsed.current = Some(arg);
                Ok(())
            }
            other => Err(format!("unexpected argument {other:?}")),
        };
        if let Err(e) = result {
            eprintln!("perfdiff: {e}");
            return usage();
        }
    }
    let (Some(baseline_path), Some(current_path)) = (&parsed.baseline, &parsed.current) else {
        return usage();
    };
    // Both sides of each optional pair or neither — a one-sided diff
    // would silently compare against nothing.
    for (a, b, what) in [
        (
            &parsed.stacks_base,
            &parsed.stacks_cur,
            "--stacks-base/--stacks-cur",
        ),
        (
            &parsed.cost_base,
            &parsed.cost_cur,
            "--cost-base/--cost-cur",
        ),
    ] {
        if a.is_some() != b.is_some() {
            eprintln!("perfdiff: {what} must be given together");
            return usage();
        }
    }
    match run(&parsed, baseline_path, current_path, &cfg) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("perfdiff: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(
    parsed: &Args,
    baseline_path: &str,
    current_path: &str,
    cfg: &GateConfig,
) -> Result<(), String> {
    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let baseline = read(baseline_path)?;
    let current = read(current_path)?;
    let stacks = match (&parsed.stacks_base, &parsed.stacks_cur) {
        (Some(b), Some(c)) => Some((read(b)?, read(c)?)),
        _ => None,
    };
    let costs = match (&parsed.cost_base, &parsed.cost_cur) {
        (Some(b), Some(c)) => Some((read(b)?, read(c)?)),
        _ => None,
    };
    let report = diff_runs(
        &baseline,
        &current,
        stacks.as_ref().map(|(b, c)| (b.as_str(), c.as_str())),
        costs.as_ref().map(|(b, c)| (b.as_str(), c.as_str())),
        cfg,
    )?;
    print!("{}", report.render(parsed.top));
    if parsed.github {
        for notice in report.github_notices(parsed.top.min(3)) {
            println!("{notice}");
        }
    }
    Ok(())
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: perfdiff <baseline.json> <current.json> \
         [--stacks-base F --stacks-cur F] [--cost-base F --cost-cur F] \
         [--rel FRAC] [--iqr-mult X] [--floor-ns N] [--top N] [--github]"
    );
    ExitCode::FAILURE
}
