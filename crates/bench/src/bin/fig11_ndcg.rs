//! Figure 11: visualization-selection quality (NDCG) of partial order vs
//! learning-to-rank vs HybridRank on X1–X10 — (a) overall, then (b)–(e)
//! split by bar / line / pie / scatter charts.
//!
//! Paper shape: partial order always beats learning-to-rank (max 0.97 /
//! min 0.81 vs 0.85 / 0.52); HybridRank outperforms both on average.

// Experiment drivers are report scripts: aborting on a broken
// invariant is the right behavior, so the workspace unwrap/panic
// lints are relaxed here.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use deepeye_bench::fmt::{f2, TextTable};
use deepeye_bench::{ranking, scale_from_env};
use deepeye_datagen::PerceptionOracle;

fn main() {
    let scale = scale_from_env();
    println!("== Figure 11: visualization selection NDCG (scale {scale}) ==\n");
    let exp = ranking::run(scale, &PerceptionOracle::default());
    println!("learned hybrid preference weight α = {:.2}\n", exp.alpha);

    println!("-- Figure 11(a): overall --");
    let mut t = TextTable::new(["dataset", "partial order", "learning-to-rank", "hybrid"]);
    for (i, row) in exp.overall.iter().enumerate() {
        t.row([
            format!("X{}", i + 1),
            f2(row.partial_order),
            f2(row.learning_to_rank),
            f2(row.hybrid),
        ]);
    }
    t.row([
        "mean".to_owned(),
        f2(exp.mean(|r| r.partial_order)),
        f2(exp.mean(|r| r.learning_to_rank)),
        f2(exp.mean(|r| r.hybrid)),
    ]);
    t.print();

    for (ci, chart) in ["bar", "line", "pie", "scatter"].iter().enumerate() {
        println!(
            "\n-- Figure 11({}): {chart} charts --",
            ["b", "c", "d", "e"][ci]
        );
        let mut t = TextTable::new(["dataset", "partial order", "learning-to-rank", "hybrid"]);
        for (i, by_type) in exp.per_chart.iter().enumerate() {
            match &by_type[ci] {
                Some(row) => t.row([
                    format!("X{}", i + 1),
                    f2(row.partial_order),
                    f2(row.learning_to_rank),
                    f2(row.hybrid),
                ]),
                None => t.row([format!("X{}", i + 1), "-".into(), "-".into(), "-".into()]),
            };
        }
        t.print();
    }

    println!(
        "\nPaper: PO ∈ [0.81, 0.97] beats LTR ∈ [0.52, 0.85] on every dataset;\n\
         Hybrid averages 0.94, +32.4% over LTR and +6.8% over PO."
    );
}
