//! Table VI: coverage of the real use cases D1–D9 — how deep into
//! DeepEye's ranking you must go (top-k) to cover every chart the use
//! case's "website" published. The paper's takeaway: all real charts are
//! found, sometimes needing k a few times larger than the #-real charts
//! (e.g. D1's 5 charts covered by top-23).

// Experiment drivers are report scripts: aborting on a broken
// invariant is the right behavior, so the workspace unwrap/panic
// lints are relaxed here.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use deepeye_bench::fmt::TextTable;
use deepeye_bench::scale_from_env;
use deepeye_core::DeepEye;
use deepeye_datagen::use_cases;
use deepeye_query::VisQuery;

/// Chart identity at the granularity users browse: one entry per
/// (chart type, x, y) — the ranked list shows the best rendition of each.
fn combo_key(q: &VisQuery) -> String {
    format!("{}|{}|{}", q.chart, q.x, q.y.as_deref().unwrap_or(""))
}

fn main() {
    let scale = scale_from_env();
    println!("== Table VI: coverage in real use cases (scale {scale}) ==\n");
    let eye = DeepEye::with_defaults();
    let mut t = TextTable::new(["No.", "use case", "#-real", "top-k to cover"]);
    for (i, case) in use_cases(scale).iter().enumerate() {
        let recs = eye.recommend(&case.table, usize::MAX);
        // Deduplicate to one entry per combo, best-ranked first.
        let mut seen = std::collections::HashSet::new();
        let list: Vec<String> = recs
            .iter()
            .map(|r| combo_key(&r.node.query))
            .filter(|k| seen.insert(k.clone()))
            .collect();
        let mut worst = Some(0usize);
        for p in &case.published {
            let key = combo_key(p);
            match list.iter().position(|k| *k == key) {
                Some(pos) => {
                    worst = worst.map(|w| w.max(pos + 1));
                }
                None => worst = None,
            }
            if worst.is_none() {
                break;
            }
        }
        let k = worst
            .map(|k| k.to_string())
            .unwrap_or_else(|| "not covered".to_owned());
        t.row([
            format!("D{}", i + 1),
            case.name.clone(),
            case.published.len().to_string(),
            k,
        ]);
    }
    t.print();
    println!(
        "\nFinding (paper §VI-A): every published chart is discovered; k can\n\
         exceed #-real because users browse a few pages of good charts."
    );
}
