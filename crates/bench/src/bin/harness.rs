//! The continuous-performance harness: runs the fixed scenario matrix
//! (table shapes × the five pipeline stages) plus an `analyze-workspace`
//! scenario timing the static-analysis pass over the repository source,
//! times each stage over warmup + repeated runs on the span clock, and
//! writes the versioned `BENCH_results.json` document that `perfgate`
//! diffs and `trace_check --bench --budgets` validates.
//!
//! Usage: `harness [--smoke] [--out <path>] [--warmup N] [--reps N]
//! [--stacks <path>] [--flame <path>] [--cost-out <path>]
//! [--soak N [--capacity C] [--telemetry-out <path>]
//! [--health-out <path>] [--slo metric=max]...]`
//!
//! `--cost-out` runs the execute stage with per-candidate cost profiling
//! and writes the `deepeye-cost/v1` operator-attribution document (after
//! asserting the per-candidate totals equal the `cost.*` counters the
//! workers flushed, and running it through the validator).
//!
//! `--smoke` keeps only the smallest scenario (CI mode). `--stacks` /
//! `--flame` additionally export the run's span tree as a folded-stack
//! file / self-contained flame SVG.
//!
//! `--soak N` switches to flight-recorder mode: the pipeline runs N
//! times under a bounded recorder (`--capacity`, default 4096) with the
//! stage budgets armed as stall watchdog ceilings, one telemetry tick
//! per iteration (streamed to `--telemetry-out` when given, validated
//! in-process always), asserting `retained ≤ capacity` throughout, and
//! the steady-state stage medians land in the same bench document.
//!
//! Soak mode also drives the **health engine** on every tick: each
//! telemetry line feeds per-metric ring timeseries scored by the drift,
//! robust-z, and growth detectors, with the `perf::BUDGETS` ceilings
//! armed as SLO objectives (plus any `--slo metric=max` overrides,
//! repeatable — CI uses a deliberately tight one as a negative test).
//! The final `deepeye-health/v1` document goes to `--health-out` when
//! given, and a verdict firing at page severity fails the run — after
//! the telemetry stream and health document are written, so a failed
//! soak still leaves an inspectable pair on disk.

// Experiment drivers are report scripts: aborting on a broken
// invariant is the right behavior, so the workspace unwrap/panic
// lints are relaxed here.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use deepeye_bench::perf::{
    health_objectives, record_stage_samples, results_json, scenario_matrix, stall_budgets,
    RobustTiming, ScenarioRun, Stage,
};
use deepeye_core::{
    build_nodes_parallel_costed, build_nodes_parallel_observed, ClassifierKind,
    ProgressiveSelector, Recognizer,
};
use deepeye_datagen::{build_table, recognition_examples, training_tables, PerceptionOracle};
use deepeye_obs::{
    validate_cost_json, validate_health_json, validate_telemetry_jsonl, CostCollector,
    HealthConfig, Observer, Op, RecorderConfig, Severity, SloObjective, Stopwatch, TelemetryCursor,
};
use deepeye_query::UdfRegistry;
use std::process::ExitCode;

struct Args {
    smoke: bool,
    out: String,
    warmup: usize,
    reps: usize,
    stacks: Option<String>,
    flame: Option<String>,
    soak: Option<usize>,
    capacity: usize,
    telemetry_out: Option<String>,
    health_out: Option<String>,
    slo: Vec<(String, f64)>,
    cost_out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        smoke: false,
        out: "BENCH_results.json".to_owned(),
        warmup: 1,
        reps: 5,
        stacks: None,
        flame: None,
        soak: None,
        capacity: 4096,
        telemetry_out: None,
        health_out: None,
        slo: Vec::new(),
        cost_out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--smoke" => parsed.smoke = true,
            "--out" => parsed.out = value("--out")?,
            "--warmup" => {
                parsed.warmup = value("--warmup")?
                    .parse()
                    .map_err(|e| format!("--warmup: {e}"))?;
            }
            "--reps" => {
                let reps: usize = value("--reps")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?;
                if reps == 0 {
                    return Err("--reps must be at least 1".into());
                }
                parsed.reps = reps;
            }
            "--stacks" => parsed.stacks = Some(value("--stacks")?),
            "--flame" => parsed.flame = Some(value("--flame")?),
            "--soak" => {
                let iters: usize = value("--soak")?
                    .parse()
                    .map_err(|e| format!("--soak: {e}"))?;
                if iters == 0 {
                    return Err("--soak must be at least 1".into());
                }
                parsed.soak = Some(iters);
            }
            "--capacity" => {
                let capacity: usize = value("--capacity")?
                    .parse()
                    .map_err(|e| format!("--capacity: {e}"))?;
                if capacity == 0 {
                    return Err("--capacity must be at least 1 (0 would be unbounded)".into());
                }
                parsed.capacity = capacity;
            }
            "--telemetry-out" => parsed.telemetry_out = Some(value("--telemetry-out")?),
            "--health-out" => parsed.health_out = Some(value("--health-out")?),
            "--slo" => {
                let spec = value("--slo")?;
                let (metric, max) = spec
                    .split_once('=')
                    .ok_or(format!("--slo wants metric=max, got {spec:?}"))?;
                let max: f64 = max.parse().map_err(|e| format!("--slo {metric}: {e}"))?;
                if !(max.is_finite() && max > 0.0) {
                    return Err(format!("--slo {metric}: ceiling must be positive"));
                }
                parsed.slo.push((metric.to_owned(), max));
            }
            "--cost-out" => parsed.cost_out = Some(value("--cost-out")?),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(parsed)
}

/// Time one stage: warmup runs (discarded), then `reps` timed runs on the
/// span clock, each under the stage's span so the trace, flame view, and
/// `alloc.*` aggregates attribute the work. The closure receives the
/// stage span's id so cross-thread work (the parallel executor's worker
/// spans) parents under the stage being measured. Returns the raw
/// samples.
fn time_stage<T>(
    obs: &Observer,
    stage: Stage,
    warmup: usize,
    reps: usize,
    mut run: impl FnMut(Option<deepeye_obs::SpanId>) -> T,
) -> Vec<u64> {
    for _ in 0..warmup {
        let span = obs.span(stage.span_name());
        std::hint::black_box(run(span.id()));
    }
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let span = obs.span(stage.span_name());
        let clock = Stopwatch::start();
        std::hint::black_box(run(span.id()));
        samples.push(clock.elapsed_ns());
    }
    samples
}

/// Write the executor cost report, first checking the exactness
/// invariant — the collector's per-candidate totals must equal the
/// registry's `cost.*` counters, which are flushed inside the
/// `execute.worker` spans (so a mismatch means a worker's work escaped
/// attribution) — then the document's own validator. Also prints the
/// per-group rollup table to stderr.
fn write_cost_report(path: &str, costs: &CostCollector, obs: &Observer) -> Result<(), String> {
    let report = costs.report();
    let snap = obs.snapshot();
    for op in Op::ALL {
        let counter = snap.counter(op.metric());
        let total = report.totals.get(op);
        if total != counter {
            return Err(format!(
                "cost invariant broke: collector total {total} for {} != worker counter {counter}",
                op.metric()
            ));
        }
    }
    let doc = report.to_json();
    validate_cost_json(&doc).map_err(|e| format!("cost document invalid: {e}"))?;
    std::fs::write(path, &doc).map_err(|e| format!("cannot write {path}: {e}"))?;
    eprintln!("harness: wrote executor cost report to {path}");
    eprint!("{}", report.cost_table());
    Ok(())
}

/// Write the telemetry stream and health document to their `--*-out`
/// paths (when given). Called on success *and* on early error paths —
/// a failed soak must still leave an inspectable stream and verdict on
/// disk.
fn flush_soak_outputs(args: &Args, stream: &str, obs: &Observer) -> Result<(), String> {
    if let Some(path) = &args.telemetry_out {
        std::fs::write(path, stream).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("harness: wrote telemetry to {path}");
    }
    if let Some(path) = &args.health_out {
        let doc = obs
            .health_report()
            .ok_or("health engine missing on soak observer")?;
        validate_health_json(&doc).map_err(|e| format!("health document invalid: {e}"))?;
        std::fs::write(path, &doc).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("harness: wrote health document to {path}");
    }
    Ok(())
}

/// Soak mode: drive the full online pipeline `iters` times under a
/// bounded flight recorder with the stage budgets armed, emitting one
/// telemetry tick per iteration (each also feeding the health engine)
/// and checking the retention invariant throughout. A broken invariant
/// stops the run but still flushes a final tick plus the telemetry and
/// health documents before exiting nonzero. The steady-state per-stage
/// timings land in the usual bench document so `perfgate` /
/// `trace_check --bench` read soak runs unchanged; a health verdict
/// firing at page severity fails the run after everything is written.
fn soak_main(args: &Args, iters: usize) -> ExitCode {
    eprintln!(
        "harness: soak — {iters} iterations, recorder capacity {}",
        args.capacity
    );

    // Offline phase (untimed), as in matrix mode.
    let oracle = PerceptionOracle::default();
    let train = training_tables(0.03);
    let recognizer = Recognizer::train(
        ClassifierKind::DecisionTree,
        &recognition_examples(&train, &oracle),
    );
    let ltr = deepeye_bench::efficiency::offline_ltr(0.03, &oracle);

    // Budgets become runtime SLOs; `--slo` overrides ride along (CI's
    // negative test arms a deliberately unreachable ceiling).
    let mut objectives = health_objectives();
    objectives.extend(args.slo.iter().map(|(metric, max)| SloObjective {
        metric: metric.clone(),
        max_value: *max,
        source: "--slo".to_owned(),
    }));
    let obs = Observer::with_health(
        RecorderConfig::bounded(args.capacity).with_budgets(stall_budgets()),
        HealthConfig::default().with_objectives(objectives),
    );
    let costs = if args.cost_out.is_some() {
        CostCollector::enabled()
    } else {
        CostCollector::disabled()
    };
    let udfs = UdfRegistry::default();
    let spec = scenario_matrix(true)
        .into_iter()
        .next()
        .expect("smoke matrix is non-empty");
    let table = build_table(&spec.corpus_spec());
    eprintln!(
        "  table {} — {} rows x {} columns",
        spec.name,
        table.row_count(),
        table.column_count()
    );

    let mut cursor = TelemetryCursor::default();
    let mut stream = String::new();
    let mut samples: [Vec<u64>; 5] = Default::default();
    let mut soak_err: Option<String> = None;
    for iter in 0..iters {
        let mut iter_ns = [0u64; 5];
        let queries = {
            let _span = obs.span(Stage::Enumerate.span_name());
            let clock = Stopwatch::start();
            let q = deepeye_core::rules::rule_based_queries(&table);
            iter_ns[0] = clock.elapsed_ns();
            q
        };
        let nodes = {
            let span = obs.span(Stage::Execute.span_name());
            let clock = Stopwatch::start();
            let n =
                build_nodes_parallel_costed(&table, queries, &udfs, true, &obs, span.id(), &costs);
            iter_ns[1] = clock.elapsed_ns();
            n
        };
        {
            let _span = obs.span(Stage::Recognize.span_name());
            let clock = Stopwatch::start();
            std::hint::black_box(nodes.iter().filter(|n| recognizer.is_good(n)).count());
            iter_ns[2] = clock.elapsed_ns();
        }
        {
            let _span = obs.span(Stage::Rank.span_name());
            let clock = Stopwatch::start();
            std::hint::black_box(ltr.rank(&nodes));
            iter_ns[3] = clock.elapsed_ns();
        }
        {
            let _span = obs.span(Stage::TopK.span_name());
            let clock = Stopwatch::start();
            std::hint::black_box(ProgressiveSelector::new(&table, &udfs).top_k_observed(10, &obs));
            iter_ns[4] = clock.elapsed_ns();
        }
        for ((stage, &ns), all) in Stage::PIPELINE.iter().zip(&iter_ns).zip(&mut samples) {
            record_stage_samples(&obs, *stage, &[ns]);
            all.push(ns);
        }

        // One tick per iteration: interval deltas, retention, stalls —
        // and one health-engine ingest riding the same line.
        if let Some(line) = obs.telemetry_tick(&mut cursor) {
            stream.push_str(&line);
        }
        let retention = obs.retention();
        if retention.retained > args.capacity {
            soak_err = Some(format!(
                "iteration {iter}: retained {} exceeds capacity {}",
                retention.retained, args.capacity
            ));
            break;
        }
        if retention.retained as u64 + retention.dropped != retention.finished {
            soak_err = Some(format!("iteration {iter}: retention accounting broke"));
            break;
        }
    }

    // Flush one final tick regardless of how the loop ended, so the
    // stream's tail (and the health engine) reflect the state at exit.
    if let Some(line) = obs.telemetry_tick(&mut cursor) {
        stream.push_str(&line);
    }

    if let Some(e) = soak_err {
        eprintln!("harness: soak failed: {e}");
        if let Err(e) = flush_soak_outputs(args, &stream, &obs) {
            eprintln!("harness: {e}");
        }
        return ExitCode::FAILURE;
    }

    let retention = obs.retention();
    eprintln!(
        "  spans: finished {}, retained {}, dropped {}",
        retention.finished, retention.retained, retention.dropped
    );

    // The tick stream must satisfy its own validator before anything is
    // written — a soak that produces an invalid stream is a failed soak
    // (but still an inspectable one: the outputs are flushed first).
    let summary = match validate_telemetry_jsonl(&stream) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("harness: telemetry stream invalid: {e}");
            if let Err(e) = flush_soak_outputs(args, &stream, &obs) {
                eprintln!("harness: {e}");
            }
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "  telemetry: {} ticks, {} stalls, max retained {}",
        summary.ticks, summary.stalls, summary.max_retained
    );
    if let Err(e) = flush_soak_outputs(args, &stream, &obs) {
        eprintln!("harness: {e}");
        return ExitCode::FAILURE;
    }

    let run = ScenarioRun {
        name: format!("soak-{}x{}", table.row_count(), table.column_count()),
        rows: table.row_count(),
        columns: table.column_count(),
        stages: Stage::PIPELINE
            .into_iter()
            .zip(&samples)
            .map(|(stage, all)| (stage, RobustTiming::from_samples(all)))
            .collect(),
    };
    let json = results_json(&[run], &obs.snapshot());
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("harness: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    eprintln!("harness: wrote {}", args.out);
    if let Some(path) = &args.cost_out {
        if let Err(e) = write_cost_report(path, &costs, &obs) {
            eprintln!("harness: {e}");
            return ExitCode::FAILURE;
        }
    }

    // Health rollup last: warns are reported and survivable, a firing
    // page verdict fails the run (every document is already on disk).
    let mut paging = false;
    for v in obs.health_verdicts().iter().filter(|v| v.firing) {
        eprintln!(
            "harness: health {} [{}] {}: {}",
            v.severity.as_str(),
            v.detector,
            v.metric,
            v.detail
        );
        if v.severity == Severity::Page {
            paging = true;
        }
    }
    if paging {
        eprintln!("harness: health verdict firing at page severity");
        return ExitCode::FAILURE;
    }

    println!("{}", obs.snapshot().stage_report());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("harness: {e}");
            eprintln!(
                "usage: harness [--smoke] [--out <path>] [--warmup N] [--reps N] \
                 [--stacks <path>] [--flame <path>] [--cost-out <path>] \
                 [--soak N [--capacity C] [--telemetry-out <path>] \
                 [--health-out <path>] [--slo metric=max]...]"
            );
            return ExitCode::FAILURE;
        }
    };
    if let Some(iters) = args.soak {
        return soak_main(&args, iters);
    }
    eprintln!(
        "harness: {} matrix, warmup {}, reps {}",
        if args.smoke { "smoke" } else { "full" },
        args.warmup,
        args.reps
    );

    // Offline phase (untimed): train the recognizer and the LTR ranker
    // once; the matrix measures the online pipeline only.
    let oracle = PerceptionOracle::default();
    let train = training_tables(0.03);
    let recognizer = Recognizer::train(
        ClassifierKind::DecisionTree,
        &recognition_examples(&train, &oracle),
    );
    let ltr = deepeye_bench::efficiency::offline_ltr(0.03, &oracle);

    let obs = Observer::enabled();
    let costs = if args.cost_out.is_some() {
        CostCollector::enabled()
    } else {
        CostCollector::disabled()
    };
    let udfs = UdfRegistry::default();
    let mut runs: Vec<ScenarioRun> = Vec::new();
    for spec in scenario_matrix(args.smoke) {
        let table = build_table(&spec.corpus_spec());
        eprintln!(
            "  scenario {} — {} rows x {} columns",
            spec.name,
            table.row_count(),
            table.column_count()
        );
        let mut stages: Vec<(Stage, RobustTiming)> = Vec::new();
        let queries = deepeye_core::rules::rule_based_queries(&table);
        let nodes =
            build_nodes_parallel_observed(&table, queries.clone(), &udfs, false, &obs, None);
        for stage in Stage::PIPELINE {
            let samples = match stage {
                Stage::Enumerate => time_stage(&obs, stage, args.warmup, args.reps, |_| {
                    deepeye_core::rules::rule_based_queries(&table)
                }),
                Stage::Execute => time_stage(&obs, stage, args.warmup, args.reps, |parent| {
                    build_nodes_parallel_costed(
                        &table,
                        queries.clone(),
                        &udfs,
                        true,
                        &obs,
                        parent,
                        &costs,
                    )
                }),
                Stage::Recognize => time_stage(&obs, stage, args.warmup, args.reps, |_| {
                    nodes.iter().filter(|n| recognizer.is_good(n)).count()
                }),
                Stage::Rank => {
                    time_stage(&obs, stage, args.warmup, args.reps, |_| ltr.rank(&nodes))
                }
                Stage::TopK => time_stage(&obs, stage, args.warmup, args.reps, |_| {
                    ProgressiveSelector::new(&table, &udfs).top_k_observed(10, &obs)
                }),
                Stage::Analyze => unreachable!("analyze runs in its own scenario"),
            };
            record_stage_samples(&obs, stage, &samples);
            stages.push((stage, RobustTiming::from_samples(&samples)));
        }
        runs.push(ScenarioRun {
            name: spec.name.to_owned(),
            rows: table.row_count(),
            columns: table.column_count(),
            stages,
        });
    }

    // The static-analysis pass gets its own scenario: it measures the
    // workspace source (lex + call graph + interprocedural rules), not a
    // scenario table, so `rows`/`columns` report files scanned and rule
    // count instead of a table shape.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("workspace root exists");
    let files_scanned = deepeye_analyze::Workspace::load(root)
        .expect("workspace loads")
        .files
        .len();
    eprintln!(
        "  scenario analyze-workspace — {} files x {} rules",
        files_scanned,
        deepeye_analyze::rules::RULES.len()
    );
    let samples = time_stage(&obs, Stage::Analyze, args.warmup, args.reps, |_| {
        let ws = deepeye_analyze::Workspace::load(root).expect("workspace loads");
        deepeye_analyze::lint::run(&ws, &deepeye_analyze::Baseline::default())
    });
    record_stage_samples(&obs, Stage::Analyze, &samples);
    runs.push(ScenarioRun {
        name: "analyze-workspace".to_owned(),
        rows: files_scanned,
        columns: deepeye_analyze::rules::RULES.len(),
        stages: vec![(Stage::Analyze, RobustTiming::from_samples(&samples))],
    });

    let json = results_json(&runs, &obs.snapshot());
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("harness: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    eprintln!("harness: wrote {}", args.out);
    if let Some(path) = &args.stacks {
        if let Err(e) = std::fs::write(path, obs.folded_stacks()) {
            eprintln!("harness: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("harness: wrote folded stacks to {path}");
    }
    if let Some(path) = &args.flame {
        if let Err(e) = std::fs::write(path, obs.flame_svg()) {
            eprintln!("harness: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("harness: wrote flame SVG to {path}");
    }
    if let Some(path) = &args.cost_out {
        if let Err(e) = write_cost_report(path, &costs, &obs) {
            eprintln!("harness: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!("{}", obs.snapshot().stage_report());
    ExitCode::SUCCESS
}
