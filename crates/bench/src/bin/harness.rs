//! The continuous-performance harness: runs the fixed scenario matrix
//! (table shapes × the five pipeline stages) plus an `analyze-workspace`
//! scenario timing the static-analysis pass over the repository source,
//! times each stage over warmup + repeated runs on the span clock, and
//! writes the versioned `BENCH_results.json` document that `perfgate`
//! diffs and `trace_check --bench --budgets` validates.
//!
//! Usage: `harness [--smoke] [--out <path>] [--warmup N] [--reps N]
//! [--stacks <path>] [--flame <path>]`
//!
//! `--smoke` keeps only the smallest scenario (CI mode). `--stacks` /
//! `--flame` additionally export the run's span tree as a folded-stack
//! file / self-contained flame SVG.

// Experiment drivers are report scripts: aborting on a broken
// invariant is the right behavior, so the workspace unwrap/panic
// lints are relaxed here.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use deepeye_bench::perf::{
    record_stage_samples, results_json, scenario_matrix, RobustTiming, ScenarioRun, Stage,
};
use deepeye_core::{
    build_nodes_parallel_observed, ClassifierKind, ProgressiveSelector, Recognizer,
};
use deepeye_datagen::{build_table, recognition_examples, training_tables, PerceptionOracle};
use deepeye_obs::{Observer, Stopwatch};
use deepeye_query::UdfRegistry;
use std::process::ExitCode;

struct Args {
    smoke: bool,
    out: String,
    warmup: usize,
    reps: usize,
    stacks: Option<String>,
    flame: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        smoke: false,
        out: "BENCH_results.json".to_owned(),
        warmup: 1,
        reps: 5,
        stacks: None,
        flame: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--smoke" => parsed.smoke = true,
            "--out" => parsed.out = value("--out")?,
            "--warmup" => {
                parsed.warmup = value("--warmup")?
                    .parse()
                    .map_err(|e| format!("--warmup: {e}"))?;
            }
            "--reps" => {
                let reps: usize = value("--reps")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?;
                if reps == 0 {
                    return Err("--reps must be at least 1".into());
                }
                parsed.reps = reps;
            }
            "--stacks" => parsed.stacks = Some(value("--stacks")?),
            "--flame" => parsed.flame = Some(value("--flame")?),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(parsed)
}

/// Time one stage: warmup runs (discarded), then `reps` timed runs on the
/// span clock, each under the stage's span so the trace, flame view, and
/// `alloc.*` aggregates attribute the work. The closure receives the
/// stage span's id so cross-thread work (the parallel executor's worker
/// spans) parents under the stage being measured. Returns the raw
/// samples.
fn time_stage<T>(
    obs: &Observer,
    stage: Stage,
    warmup: usize,
    reps: usize,
    mut run: impl FnMut(Option<deepeye_obs::SpanId>) -> T,
) -> Vec<u64> {
    for _ in 0..warmup {
        let span = obs.span(stage.span_name());
        std::hint::black_box(run(span.id()));
    }
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let span = obs.span(stage.span_name());
        let clock = Stopwatch::start();
        std::hint::black_box(run(span.id()));
        samples.push(clock.elapsed_ns());
    }
    samples
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("harness: {e}");
            eprintln!(
                "usage: harness [--smoke] [--out <path>] [--warmup N] [--reps N] \
                 [--stacks <path>] [--flame <path>]"
            );
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "harness: {} matrix, warmup {}, reps {}",
        if args.smoke { "smoke" } else { "full" },
        args.warmup,
        args.reps
    );

    // Offline phase (untimed): train the recognizer and the LTR ranker
    // once; the matrix measures the online pipeline only.
    let oracle = PerceptionOracle::default();
    let train = training_tables(0.03);
    let recognizer = Recognizer::train(
        ClassifierKind::DecisionTree,
        &recognition_examples(&train, &oracle),
    );
    let ltr = deepeye_bench::efficiency::offline_ltr(0.03, &oracle);

    let obs = Observer::enabled();
    let udfs = UdfRegistry::default();
    let mut runs: Vec<ScenarioRun> = Vec::new();
    for spec in scenario_matrix(args.smoke) {
        let table = build_table(&spec.corpus_spec());
        eprintln!(
            "  scenario {} — {} rows x {} columns",
            spec.name,
            table.row_count(),
            table.column_count()
        );
        let mut stages: Vec<(Stage, RobustTiming)> = Vec::new();
        let queries = deepeye_core::rules::rule_based_queries(&table);
        let nodes =
            build_nodes_parallel_observed(&table, queries.clone(), &udfs, false, &obs, None);
        for stage in Stage::PIPELINE {
            let samples = match stage {
                Stage::Enumerate => time_stage(&obs, stage, args.warmup, args.reps, |_| {
                    deepeye_core::rules::rule_based_queries(&table)
                }),
                Stage::Execute => time_stage(&obs, stage, args.warmup, args.reps, |parent| {
                    build_nodes_parallel_observed(
                        &table,
                        queries.clone(),
                        &udfs,
                        true,
                        &obs,
                        parent,
                    )
                }),
                Stage::Recognize => time_stage(&obs, stage, args.warmup, args.reps, |_| {
                    nodes.iter().filter(|n| recognizer.is_good(n)).count()
                }),
                Stage::Rank => {
                    time_stage(&obs, stage, args.warmup, args.reps, |_| ltr.rank(&nodes))
                }
                Stage::TopK => time_stage(&obs, stage, args.warmup, args.reps, |_| {
                    ProgressiveSelector::new(&table, &udfs).top_k_observed(10, &obs)
                }),
                Stage::Analyze => unreachable!("analyze runs in its own scenario"),
            };
            record_stage_samples(&obs, stage, &samples);
            stages.push((stage, RobustTiming::from_samples(&samples)));
        }
        runs.push(ScenarioRun {
            name: spec.name.to_owned(),
            rows: table.row_count(),
            columns: table.column_count(),
            stages,
        });
    }

    // The static-analysis pass gets its own scenario: it measures the
    // workspace source (lex + call graph + interprocedural rules), not a
    // scenario table, so `rows`/`columns` report files scanned and rule
    // count instead of a table shape.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("workspace root exists");
    let files_scanned = deepeye_analyze::Workspace::load(root)
        .expect("workspace loads")
        .files
        .len();
    eprintln!(
        "  scenario analyze-workspace — {} files x {} rules",
        files_scanned,
        deepeye_analyze::rules::RULES.len()
    );
    let samples = time_stage(&obs, Stage::Analyze, args.warmup, args.reps, |_| {
        let ws = deepeye_analyze::Workspace::load(root).expect("workspace loads");
        deepeye_analyze::lint::run(&ws, &deepeye_analyze::Baseline::default())
    });
    record_stage_samples(&obs, Stage::Analyze, &samples);
    runs.push(ScenarioRun {
        name: "analyze-workspace".to_owned(),
        rows: files_scanned,
        columns: deepeye_analyze::rules::RULES.len(),
        stages: vec![(Stage::Analyze, RobustTiming::from_samples(&samples))],
    });

    let json = results_json(&runs, &obs.snapshot());
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("harness: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    eprintln!("harness: wrote {}", args.out);
    if let Some(path) = &args.stacks {
        if let Err(e) = std::fs::write(path, obs.folded_stacks()) {
            eprintln!("harness: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("harness: wrote folded stacks to {path}");
    }
    if let Some(path) = &args.flame {
        if let Err(e) = std::fs::write(path, obs.flame_svg()) {
            eprintln!("harness: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("harness: wrote flame SVG to {path}");
    }
    println!("{}", obs.snapshot().stage_report());
    ExitCode::SUCCESS
}
