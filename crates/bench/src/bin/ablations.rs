//! Ablations beyond the paper: validate the design choices DESIGN.md calls
//! out.
//!
//! 1. Quick-sort partition pruning vs naive O(n²) dominance-graph build
//!    (§IV-C) — comparisons saved and identical output.
//! 2. Progressive tournament vs exhaustive scoring (§V-B) — leaves
//!    skipped, scans shared, identical top-k.
//! 3. Hybrid α sweep — NDCG as a function of the preference weight.
//! 4. Ranking lenses — DeepEye's perception-based partial order vs a
//!    SeeDB-style deviation ranker on the same perception ground truth
//!    (the paper's §I argument for angle 3 over angle 1).

// Experiment drivers are report scripts: aborting on a broken
// invariant is the right behavior, so the workspace unwrap/panic
// lints are relaxed here.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use deepeye_bench::fmt::{f2, TextTable};
use deepeye_bench::ranking::{node_combo_features, train_rankers, valid_nodes};
use deepeye_bench::scale_from_env;
use deepeye_core::{
    compute_factors, exhaustive_top_k, rank_by_deviation, rank_by_partial_order, DeviationMetric,
    DominanceGraph, HybridRanker, ProgressiveSelector,
};
use deepeye_datagen::{
    build_table, candidate_nodes, dense_relevance, test_specs, PerceptionOracle,
};
use deepeye_ml::ndcg;
use deepeye_obs::Stopwatch;
use deepeye_query::UdfRegistry;

fn main() {
    let scale = scale_from_env();
    let oracle = PerceptionOracle::default();
    println!("== Ablations (scale {scale}) ==");

    // ----- 1. Graph construction pruning -----
    println!("\n-- 1. dominance-graph build: naive vs quick-sort pruning --");
    let mut t = TextTable::new([
        "dataset",
        "nodes",
        "naive cmp",
        "pruned cmp",
        "saved %",
        "naive",
        "pruned",
        "same edges/top-10",
    ]);
    for (i, spec) in test_specs().iter().enumerate().take(6) {
        let table = build_table(&spec.scaled(scale * 0.5));
        let nodes = candidate_nodes(&table);
        let factors = compute_factors(&nodes);
        let t0 = Stopwatch::start();
        let naive = DominanceGraph::build_naive(&factors);
        let naive_time = t0.elapsed();
        let t1 = Stopwatch::start();
        let pruned = DominanceGraph::build_pruned(&factors);
        let pruned_time = t1.elapsed();
        // Edge sets are identical by construction (property-tested); the
        // full ranking can differ at exact ties because log-sum-exp folds
        // edges in a different order, so compare edges and top-10.
        let same_edges = naive.edge_count() == pruned.edge_count();
        let same_top10 = naive.top_k(10) == pruned.top_k(10);
        let saved = 100.0 * (1.0 - pruned.comparisons() as f64 / naive.comparisons().max(1) as f64);
        t.row([
            format!("X{}", i + 1),
            factors.len().to_string(),
            naive.comparisons().to_string(),
            pruned.comparisons().to_string(),
            format!("{saved:.0}"),
            format!("{}us", naive_time.as_micros()),
            format!("{}us", pruned_time.as_micros()),
            format!("{same_edges}/{same_top10}"),
        ]);
    }
    t.print();

    // ----- 2. Progressive vs exhaustive selection -----
    println!("\n-- 2. progressive tournament vs exhaustive scoring (k = 5) --");
    let udfs = UdfRegistry::default();
    let mut t = TextTable::new([
        "dataset",
        "leaves used/total",
        "nodes generated (prog)",
        "nodes generated (exh)",
        "shared scans",
        "same top-k",
    ]);
    for (i, spec) in test_specs().iter().enumerate().take(6) {
        let table = build_table(&spec.scaled(scale * 0.5));
        let selector = ProgressiveSelector::new(&table, &udfs);
        let (prog, ps) = selector.top_k(5);
        let (exh, es) = exhaustive_top_k(&table, &udfs, 5);
        let same = prog
            .iter()
            .zip(&exh)
            .all(|(a, b)| (a.score - b.score).abs() < 1e-12);
        t.row([
            format!("X{}", i + 1),
            format!("{}/{}", ps.leaves_materialized, ps.leaves_total),
            ps.nodes_generated.to_string(),
            es.nodes_generated.to_string(),
            ps.shared_scans.to_string(),
            same.to_string(),
        ]);
    }
    t.print();

    // ----- 3. Hybrid α sweep (same pipeline as Figure 11) -----
    println!("\n-- 3. hybrid α sweep (mean NDCG over X1–X6) --");
    let trained = train_rankers((scale * 0.3).max(0.01), &oracle);
    let eval: Vec<(Vec<usize>, Vec<usize>, Vec<f64>)> = test_specs()
        .iter()
        .take(6)
        .map(|spec| {
            let table = build_table(&spec.scaled(scale * 0.5));
            let nodes = valid_nodes(&table, &trained.recognizer);
            let feats = node_combo_features(&table, &nodes);
            let rel = dense_relevance(&nodes, &oracle);
            (
                trained.ltr.rank_features(&feats),
                rank_by_partial_order(&nodes),
                rel,
            )
        })
        .collect();
    let mut t = TextTable::new(["alpha", "mean NDCG"]);
    for alpha in [0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 1e6] {
        let h = HybridRanker::new(alpha);
        let mean: f64 = eval
            .iter()
            .map(|(l, p, rel)| {
                let combined = h.combine(l, p);
                ndcg(&combined.iter().map(|&i| rel[i]).collect::<Vec<_>>())
            })
            .sum::<f64>()
            / eval.len() as f64;
        let label = if alpha >= 1e6 {
            "inf (pure PO)".to_owned()
        } else {
            format!("{alpha}")
        };
        t.row([label, f2(mean)]);
    }
    t.print();

    // ----- 4. Ranking lenses: perception vs deviation -----
    println!("\n-- 4. ranking lenses: DeepEye partial order vs SeeDB-style deviation --");
    let mut t = TextTable::new([
        "dataset",
        "PO (valid)",
        "deviation (valid)",
        "PO (raw)",
        "deviation (raw)",
    ]);
    for (i, spec) in test_specs().iter().enumerate().take(6) {
        let table = build_table(&spec.scaled(scale * 0.5));
        // Condition A: after DeepEye's recognition filter.
        let valid = valid_nodes(&table, &trained.recognizer);
        let rel_valid = dense_relevance(&valid, &oracle);
        let eval_valid =
            |order: &[usize]| ndcg(&order.iter().map(|&j| rel_valid[j]).collect::<Vec<_>>());
        // Condition B: standalone, over the raw rule-based candidates.
        let raw = candidate_nodes(&table);
        let rel_raw = dense_relevance(&raw, &oracle);
        let eval_raw =
            |order: &[usize]| ndcg(&order.iter().map(|&j| rel_raw[j]).collect::<Vec<_>>());
        t.row([
            format!("X{}", i + 1),
            f2(eval_valid(&rank_by_partial_order(&valid))),
            f2(eval_valid(&rank_by_deviation(
                &valid,
                DeviationMetric::EarthMover,
            ))),
            f2(eval_raw(&rank_by_partial_order(&raw))),
            f2(eval_raw(&rank_by_deviation(
                &raw,
                DeviationMetric::EarthMover,
            ))),
        ]);
    }
    t.print();
    println!(
        "\nFinding (reproduction, not the paper): on this perception oracle,\n\
         deviation-from-uniform is a surprisingly strong single-signal\n\
         heuristic — skew correlates with the oracle's spread / diversity /\n\
         trend components — and it stays competitive even without the\n\
         recognition filter. What it cannot do is make the good/bad\n\
         decision itself (it has no notion of chart/data fit, and scores\n\
         raw scatter clouds not at all), rank within equal-skew groups, or\n\
         explain a choice the way the M/Q/W factors can. The comparison is\n\
         a genuine limitation of perception-oracle evaluation worth noting."
    );
}
