//! The perf-regression gate: compare two `harness` result documents
//! (baseline vs current) with noise-aware thresholds and exit nonzero
//! when any (scenario, stage) median regressed past its allowance —
//! naming the scenario, stage, and registry metric in the verdict.
//!
//! Usage: `perfgate <baseline.json> <current.json>
//! [--rel FRAC] [--iqr-mult X] [--floor-ns N]`
//!
//! A stage regresses when `current_median > baseline_median +
//! max(rel × baseline_median, iqr_mult × max(IQRs), floor_ns)` — see
//! `deepeye_bench::perf::GateConfig` for the rationale behind each term.

// Experiment drivers are report scripts: aborting on a broken
// invariant is the right behavior, so the workspace unwrap/panic
// lints are relaxed here.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use deepeye_bench::perf::{perf_gate, GateConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut cfg = GateConfig::default();
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| match args.next() {
            Some(v) => Ok(v),
            None => Err(format!("{flag} needs a value")),
        };
        let parsed = match arg.as_str() {
            "--rel" => value("--rel").and_then(|v| {
                v.parse()
                    .map(|r| cfg.rel = r)
                    .map_err(|e| format!("--rel: {e}"))
            }),
            "--iqr-mult" => value("--iqr-mult").and_then(|v| {
                v.parse()
                    .map(|m| cfg.iqr_mult = m)
                    .map_err(|e| format!("--iqr-mult: {e}"))
            }),
            "--floor-ns" => value("--floor-ns").and_then(|v| {
                v.parse()
                    .map(|f| cfg.floor_ns = f)
                    .map_err(|e| format!("--floor-ns: {e}"))
            }),
            _ => {
                paths.push(arg);
                Ok(())
            }
        };
        if let Err(e) = parsed {
            eprintln!("perfgate: {e}");
            return usage();
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        return usage();
    };
    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let report = read(baseline_path)
        .and_then(|baseline| read(current_path).map(|current| (baseline, current)))
        .and_then(|(baseline, current)| perf_gate(&baseline, &current, &cfg));
    match report {
        Ok(report) => {
            println!(
                "perfgate: compared {} stage(s) (rel {}, iqr-mult {}, floor {} ns)",
                report.compared, cfg.rel, cfg.iqr_mult, cfg.floor_ns
            );
            if report.regressions.is_empty() {
                println!("perfgate: OK — no regressions");
                ExitCode::SUCCESS
            } else {
                for r in &report.regressions {
                    eprintln!("perfgate: {}", r.describe());
                }
                eprintln!("perfgate: {} regression(s)", report.regressions.len());
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("perfgate: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: perfgate <baseline.json> <current.json> \
         [--rel FRAC] [--iqr-mult X] [--floor-ns N]"
    );
    ExitCode::FAILURE
}
