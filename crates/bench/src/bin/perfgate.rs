//! The perf-regression gate: compare two `harness` result documents
//! (baseline vs current) with noise-aware thresholds and exit nonzero
//! when any (scenario, stage) median regressed past its allowance —
//! naming the scenario, stage, and registry metric in the verdict.
//!
//! Usage: `perfgate <baseline.json> <current.json>
//! [--scenarios a,b] [--cost-base F --cost-cur F]
//! [--rel FRAC] [--iqr-mult X] [--floor-ns N]`
//!
//! A stage regresses when `current_median > baseline_median +
//! max(rel × baseline_median, iqr_mult × max(IQRs), floor_ns)` — see
//! `deepeye_bench::perf::GateConfig` for the rationale behind each term.
//!
//! `--scenarios` restricts the gate to a baseline subset, so a smoke
//! run can gate against a full-matrix baseline without tripping the
//! lost-coverage error. `--cost-base`/`--cost-cur` hand the gate two
//! `deepeye-cost/v1` documents; every failure then names a cause — the
//! executor operator bucket whose work count grew the most.

// Experiment drivers are report scripts: aborting on a broken
// invariant is the right behavior, so the workspace unwrap/panic
// lints are relaxed here.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use deepeye_bench::diff::diff_cost;
use deepeye_bench::perf::{perf_gate_scoped, GateConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut cfg = GateConfig::default();
    let mut paths: Vec<String> = Vec::new();
    let mut scenarios: Option<Vec<String>> = None;
    let mut cost_base: Option<String> = None;
    let mut cost_cur: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| match args.next() {
            Some(v) => Ok(v),
            None => Err(format!("{flag} needs a value")),
        };
        let parsed = match arg.as_str() {
            "--scenarios" => value("--scenarios").map(|v| {
                scenarios = Some(
                    v.split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(str::to_owned)
                        .collect(),
                );
            }),
            "--cost-base" => value("--cost-base").map(|v| cost_base = Some(v)),
            "--cost-cur" => value("--cost-cur").map(|v| cost_cur = Some(v)),
            "--rel" => value("--rel").and_then(|v| {
                v.parse()
                    .map(|r| cfg.rel = r)
                    .map_err(|e| format!("--rel: {e}"))
            }),
            "--iqr-mult" => value("--iqr-mult").and_then(|v| {
                v.parse()
                    .map(|m| cfg.iqr_mult = m)
                    .map_err(|e| format!("--iqr-mult: {e}"))
            }),
            "--floor-ns" => value("--floor-ns").and_then(|v| {
                v.parse()
                    .map(|f| cfg.floor_ns = f)
                    .map_err(|e| format!("--floor-ns: {e}"))
            }),
            _ => {
                paths.push(arg);
                Ok(())
            }
        };
        if let Err(e) = parsed {
            eprintln!("perfgate: {e}");
            return usage();
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        return usage();
    };
    if cost_base.is_some() != cost_cur.is_some() {
        eprintln!("perfgate: --cost-base/--cost-cur must be given together");
        return usage();
    }
    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let report = read(baseline_path)
        .and_then(|baseline| read(current_path).map(|current| (baseline, current)))
        .and_then(|(baseline, current)| {
            perf_gate_scoped(&baseline, &current, &cfg, scenarios.as_deref())
        });
    // The causal lens: with cost documents, name the operator bucket
    // whose work count grew the most alongside every regression.
    let cause = match (&cost_base, &cost_cur) {
        (Some(b), Some(c)) => {
            let buckets = read(b)
                .and_then(|base| read(c).map(|cur| (base, cur)))
                .and_then(|(base, cur)| diff_cost(&base, &cur));
            match buckets {
                Ok(buckets) => buckets.into_iter().find(|b| b.delta > 0).map(|b| {
                    format!(
                        "top operator bucket: {} on {} ({:+}, {}% of growth)",
                        b.op, b.group, b.delta, b.share_pct
                    )
                }),
                Err(e) => {
                    eprintln!("perfgate: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        _ => None,
    };
    match report {
        Ok(report) => {
            println!(
                "perfgate: compared {} stage(s) (rel {}, iqr-mult {}, floor {} ns)",
                report.compared, cfg.rel, cfg.iqr_mult, cfg.floor_ns
            );
            if report.regressions.is_empty() {
                println!("perfgate: OK — no regressions");
                ExitCode::SUCCESS
            } else {
                for r in &report.regressions {
                    eprintln!("perfgate: {}", r.describe());
                    if let Some(cause) = &cause {
                        eprintln!("perfgate:   {cause}");
                    }
                }
                eprintln!("perfgate: {} regression(s)", report.regressions.len());
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("perfgate: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: perfgate <baseline.json> <current.json> \
         [--scenarios a,b] [--cost-base F --cost-cur F] \
         [--rel FRAC] [--iqr-mult X] [--floor-ns N]"
    );
    ExitCode::FAILURE
}
