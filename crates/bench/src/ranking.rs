//! The visualization-selection experiment behind Figure 11: NDCG of the
//! partial-order ranking vs learning-to-rank vs HybridRank on the test
//! datasets, overall and split by chart type.

use deepeye_core::{
    rank_by_partial_order, ClassifierKind, HybridRanker, LtrRanker, Recognizer, VisNode,
};
use deepeye_datagen::{
    candidate_nodes, combo_crowd_ranking_examples, combo_recognition_examples, combos_of,
    dense_relevance, test_specs, test_tables, training_tables, PerceptionOracle,
};
use deepeye_ml::ndcg;
use deepeye_query::ChartType;

/// NDCG of the three methods on one dataset.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NdcgRow {
    pub partial_order: f64,
    pub learning_to_rank: f64,
    pub hybrid: f64,
}

/// Full experiment output.
#[derive(Debug, Clone)]
pub struct RankingExperiment {
    pub dataset_names: Vec<String>,
    /// Figure 11(a): overall NDCG per dataset.
    pub overall: Vec<NdcgRow>,
    /// Figures 11(b–e): per-chart-type NDCG per dataset (bar, line, pie,
    /// scatter order). `None` when the dataset has no charts of that type.
    pub per_chart: Vec<Vec<Option<NdcgRow>>>,
    /// The learned hybrid preference weight α.
    pub alpha: f64,
}

fn ndcg_of_order(order: &[usize], relevance: &[f64]) -> f64 {
    let ranked: Vec<f64> = order.iter().map(|&i| relevance[i]).collect();
    ndcg(&ranked)
}

/// Evaluate the three rankers over a node set. LTR scores each node by its
/// combo's original-column features (the paper's 14 features are
/// transform-blind; see §III and DESIGN.md).
fn evaluate_nodes(
    nodes: &[VisNode],
    combo_features: &[Vec<f64>],
    relevance: &[f64],
    ltr: &LtrRanker,
    hybrid: &HybridRanker,
) -> NdcgRow {
    let po_order = rank_by_partial_order(nodes);
    let ltr_order = ltr.rank_features(combo_features);
    let hy_order = hybrid.combine(&ltr_order, &po_order);
    NdcgRow {
        partial_order: ndcg_of_order(&po_order, relevance),
        learning_to_rank: ndcg_of_order(&ltr_order, relevance),
        hybrid: ndcg_of_order(&hy_order, relevance),
    }
}

/// The per-node combo feature vectors of a node set.
pub fn node_combo_features(table: &deepeye_data::Table, nodes: &[VisNode]) -> Vec<Vec<f64>> {
    let combos = combos_of(table, nodes);
    let mut per_node: Vec<Vec<f64>> = vec![vec![0.0; deepeye_core::FEATURE_DIM]; nodes.len()];
    for combo in &combos {
        for &i in &combo.node_indices {
            per_node[i] = combo.features.clone();
        }
    }
    per_node
}

/// Filter a candidate set down to classifier-validated charts — §IV-C:
/// the selection experiments rank the "valid" charts, not the raw
/// candidate pool (validity judged at combo granularity, like the paper's
/// recognizer). Falls back to the unfiltered set if the recognizer rejects
/// (nearly) everything on a tiny table.
pub fn valid_nodes(table: &deepeye_data::Table, recognizer: &Recognizer) -> Vec<VisNode> {
    let nodes = candidate_nodes(table);
    let features = node_combo_features(table, &nodes);
    let kept: Vec<VisNode> = nodes
        .iter()
        .zip(&features)
        .filter(|(_, f)| recognizer.predict(f))
        .map(|(n, _)| n.clone())
        .collect();
    if kept.len() >= 2 {
        kept
    } else {
        nodes
    }
}

/// The trained offline artifacts shared by the selection experiments.
pub struct TrainedRankers {
    pub recognizer: Recognizer,
    pub ltr: LtrRanker,
}

/// Offline phase: train the recognizer (valid-chart filter) and LambdaMART
/// on the training corpus (crowd comparisons of good combos, over the
/// paper's transform-blind features).
pub fn train_rankers(scale: f64, oracle: &PerceptionOracle) -> TrainedRankers {
    let train = training_tables(scale);
    let recognizer = Recognizer::train(
        ClassifierKind::DecisionTree,
        &combo_recognition_examples(&train, oracle),
    );
    let groups = combo_crowd_ranking_examples(&train, oracle);
    TrainedRankers {
        recognizer,
        ltr: LtrRanker::fit(&groups),
    }
}

/// Run the experiment at the given dataset scale.
pub fn run(scale: f64, oracle: &PerceptionOracle) -> RankingExperiment {
    let train = training_tables(scale);
    let TrainedRankers { recognizer, ltr } = train_rankers(scale, oracle);

    // Learn α on the training corpus (§IV-D: from labeled data).
    let alpha_groups: Vec<(Vec<usize>, Vec<usize>, Vec<f64>)> = train
        .iter()
        .map(|table| {
            let nodes = valid_nodes(table, &recognizer);
            let features = node_combo_features(table, &nodes);
            let relevance = dense_relevance(&nodes, oracle);
            (
                ltr.rank_features(&features),
                rank_by_partial_order(&nodes),
                relevance,
            )
        })
        .collect();
    let hybrid = HybridRanker::learn_alpha(&alpha_groups);

    // Evaluate on the held-out test corpus.
    let test = test_tables(scale);
    let dataset_names: Vec<String> = test_specs().into_iter().map(|s| s.name).collect();
    let mut overall = Vec::with_capacity(test.len());
    let mut per_chart = Vec::with_capacity(test.len());
    for table in &test {
        let nodes = valid_nodes(table, &recognizer);
        let features = node_combo_features(table, &nodes);
        // Evaluate against the merged total order (dense, tie-free).
        let relevance = dense_relevance(&nodes, oracle);
        overall.push(evaluate_nodes(&nodes, &features, &relevance, &ltr, &hybrid));

        let by_type: Vec<Option<NdcgRow>> = ChartType::ALL
            .into_iter()
            .map(|chart| {
                let idx: Vec<usize> = (0..nodes.len())
                    .filter(|&i| nodes[i].chart_type() == chart)
                    .collect();
                if idx.len() < 2 {
                    return None;
                }
                let sub_nodes: Vec<VisNode> = idx.iter().map(|&i| nodes[i].clone()).collect();
                let sub_feat: Vec<Vec<f64>> = idx.iter().map(|&i| features[i].clone()).collect();
                let sub_rel: Vec<f64> = idx.iter().map(|&i| relevance[i]).collect();
                Some(evaluate_nodes(
                    &sub_nodes, &sub_feat, &sub_rel, &ltr, &hybrid,
                ))
            })
            .collect();
        per_chart.push(by_type);
    }

    RankingExperiment {
        dataset_names,
        overall,
        per_chart,
        alpha: hybrid.alpha,
    }
}

impl RankingExperiment {
    /// Mean over datasets of a column selector.
    pub fn mean(&self, f: impl Fn(&NdcgRow) -> f64) -> f64 {
        if self.overall.is_empty() {
            return 0.0;
        }
        self.overall.iter().map(&f).sum::<f64>() / self.overall.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_order_beats_ltr_and_hybrid_is_competitive() {
        // The Figure 11(a) shape: PO > LTR on average; Hybrid ≥ both
        // (paper: Hybrid beats LTR by 32.4% and PO by 6.8%).
        let exp = run(0.06, &PerceptionOracle::default());
        let po = exp.mean(|r| r.partial_order);
        let ltr = exp.mean(|r| r.learning_to_rank);
        let hybrid = exp.mean(|r| r.hybrid);
        assert!(po > ltr, "partial order {po:.3} should beat LTR {ltr:.3}");
        assert!(
            hybrid + 0.02 >= po,
            "hybrid {hybrid:.3} should be at least competitive with PO {po:.3}"
        );
        assert!(po > 0.6, "PO NDCG should be strong, got {po:.3}");
        // All values bounded.
        for r in &exp.overall {
            for v in [r.partial_order, r.learning_to_rank, r.hybrid] {
                assert!((0.0..=1.0).contains(&v));
            }
        }
        assert_eq!(exp.overall.len(), 10);
        assert_eq!(exp.per_chart.len(), 10);
    }
}
