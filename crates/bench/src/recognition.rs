//! The recognition experiment behind Figure 10, Table VII, and Table VIII:
//! train Bayes / SVM / decision-tree recognizers on the 32 training
//! datasets' oracle labels, evaluate precision / recall / F-measure on the
//! 10 held-out test datasets, overall and per chart type.

use deepeye_core::{ClassifierKind, Recognizer};
use deepeye_datagen::{
    combo_evaluation_nodes, combo_recognition_examples, test_specs, test_tables, training_tables,
    EvalNode, PerceptionOracle,
};
use deepeye_ml::Confusion;
use deepeye_query::ChartType;

/// Precision / recall / F-measure triple.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Prf {
    pub precision: f64,
    pub recall: f64,
    pub f_measure: f64,
}

impl From<Confusion> for Prf {
    fn from(c: Confusion) -> Self {
        Prf {
            precision: c.precision(),
            recall: c.recall(),
            f_measure: c.f_measure(),
        }
    }
}

/// Results of one classifier over the test corpus.
#[derive(Debug, Clone)]
pub struct ClassifierResult {
    pub kind: ClassifierKind,
    /// Micro-averaged P/R/F over all test candidates (Figure 10).
    pub overall: Prf,
    /// P/R/F per chart type over all test candidates (Table VII).
    pub per_chart: Vec<(ChartType, Prf)>,
    /// F-measure per (dataset, chart type) (Table VIII).
    pub per_dataset_chart: Vec<(String, Vec<(ChartType, f64)>)>,
}

/// The full experiment output.
#[derive(Debug, Clone)]
pub struct RecognitionExperiment {
    pub results: Vec<ClassifierResult>,
    pub dataset_names: Vec<String>,
    pub train_examples: usize,
    pub test_candidates: usize,
}

fn confusion_of(recognizer: &Recognizer, nodes: &[&EvalNode]) -> Confusion {
    let preds: Vec<bool> = nodes
        .iter()
        .map(|n| recognizer.predict(&n.features))
        .collect();
    let gold: Vec<bool> = nodes.iter().map(|n| n.good).collect();
    Confusion::from_predictions(&preds, &gold)
}

/// Run the experiment at the given dataset scale (1.0 = paper scale).
pub fn run(scale: f64, oracle: &PerceptionOracle) -> RecognitionExperiment {
    // Combo granularity (column pair × chart type), like the paper's
    // ~800 annotated charts per dataset.
    let train = training_tables(scale);
    let examples = combo_recognition_examples(&train, oracle);

    let test = test_tables(scale);
    let dataset_names: Vec<String> = test_specs().into_iter().map(|s| s.name).collect();
    let eval: Vec<Vec<EvalNode>> = test
        .iter()
        .map(|t| combo_evaluation_nodes(t, oracle))
        .collect();
    let test_candidates = eval.iter().map(Vec::len).sum();

    let results = ClassifierKind::ALL
        .into_iter()
        .map(|kind| {
            let recognizer = Recognizer::train(kind, &examples);
            let all: Vec<&EvalNode> = eval.iter().flatten().collect();
            let overall = Prf::from(confusion_of(&recognizer, &all));

            let per_chart = ChartType::ALL
                .into_iter()
                .map(|chart| {
                    let subset: Vec<&EvalNode> =
                        all.iter().copied().filter(|n| n.chart == chart).collect();
                    (chart, Prf::from(confusion_of(&recognizer, &subset)))
                })
                .collect();

            let per_dataset_chart = dataset_names
                .iter()
                .zip(&eval)
                .map(|(name, nodes)| {
                    let per = ChartType::ALL
                        .into_iter()
                        .map(|chart| {
                            let subset: Vec<&EvalNode> =
                                nodes.iter().filter(|n| n.chart == chart).collect();
                            (
                                chart,
                                Prf::from(confusion_of(&recognizer, &subset)).f_measure,
                            )
                        })
                        .collect();
                    (name.clone(), per)
                })
                .collect();

            ClassifierResult {
                kind,
                overall,
                per_chart,
                per_dataset_chart,
            }
        })
        .collect();

    RecognitionExperiment {
        results,
        dataset_names,
        train_examples: examples.len(),
        test_candidates,
    }
}

impl RecognitionExperiment {
    pub fn result(&self, kind: ClassifierKind) -> &ClassifierResult {
        // The experiment runner evaluates every `ClassifierKind`, so the
        // lookup cannot fail on values it returns.
        #[allow(clippy::expect_used)]
        let found = self
            .results
            .iter()
            .find(|r| r.kind == kind)
            .expect("all kinds evaluated");
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_reproduces_dt_beats_svm_beats_bayes() {
        // Small scale keeps the test fast; the ordering (the paper's
        // Figure 10 shape) must already hold.
        let exp = run(0.08, &PerceptionOracle::default());
        let dt = exp.result(ClassifierKind::DecisionTree).overall.f_measure;
        let svm = exp.result(ClassifierKind::Svm).overall.f_measure;
        let bayes = exp.result(ClassifierKind::NaiveBayes).overall.f_measure;
        assert!(dt > svm, "DT {dt:.3} should beat SVM {svm:.3}");
        assert!(dt > bayes, "DT {dt:.3} should beat Bayes {bayes:.3}");
        assert!(dt > 0.8, "DT F-measure should be high, got {dt:.3}");
        assert_eq!(exp.dataset_names.len(), 10);
        assert!(exp.train_examples > 500);
        assert!(exp.test_candidates > 200);
    }

    #[test]
    fn per_chart_and_per_dataset_breakdowns_complete() {
        let exp = run(0.05, &PerceptionOracle::default());
        for r in &exp.results {
            assert_eq!(r.per_chart.len(), 4);
            assert_eq!(r.per_dataset_chart.len(), 10);
            for (_, per) in &r.per_dataset_chart {
                assert_eq!(per.len(), 4);
                for (_, f) in per {
                    assert!((0.0..=1.0).contains(f));
                }
            }
        }
    }
}
