//! Plain-text table formatting for the experiment harnesses: every binary
//! prints rows in the shape of the corresponding paper table/figure.

/// A simple aligned text table.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells);
        self
    }

    /// Render with column alignment and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        if cols == 0 {
            return String::new();
        }
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                let pad = widths[i] - cell.chars().count();
                // Right-align numeric-looking cells, left-align the rest.
                let numeric = cell
                    .chars()
                    .all(|c| c.is_ascii_digit() || ".%-+ms".contains(c));
                if numeric && !cell.is_empty() {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(cell);
                } else {
                    line.push_str(cell);
                    line.push_str(&" ".repeat(pad));
                }
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

/// Fixed two-decimal number.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Milliseconds with no decimals.
pub fn ms(d: std::time::Duration) -> String {
    format!("{}ms", d.as_millis())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["alpha", "1.0"]);
        t.row(["b", "22.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        // Numeric cells right-aligned to the same column end.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_panics() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn empty_header_renders_empty() {
        let t = TextTable::new(Vec::<String>::new());
        assert_eq!(t.render(), "");
    }

    #[test]
    fn helpers() {
        assert_eq!(pct(0.934), "93.4");
        assert_eq!(f2(1.0 / 3.0), "0.33");
        assert_eq!(ms(std::time::Duration::from_millis(1500)), "1500ms");
    }
}
