//! Continuous performance observability: the scenario matrix behind the
//! `harness` binary, robust (median/IQR) timing summaries, the versioned
//! `BENCH_results.json` schema shared with `fig12_efficiency`'s
//! `DEEPEYE_BENCH_OUT` export, the noise-aware regression gate behind
//! `perfgate`, and the declarative per-stage latency budgets checked by
//! `trace_check --budgets`.
//!
//! One schema, three consumers: `harness` writes it, `perfgate` diffs two
//! of them, `trace_check --bench` validates any of them. Every stage row
//! names the registry histogram (`bench.*_ns`) its samples were recorded
//! into, so the JSON artifact, the metrics export, and the central metric
//! registry ([`deepeye_obs::metrics`]) stay three views of one
//! measurement — `deepeye-analyze` rule `A0007` fails the build when the
//! three drift.

use deepeye_datagen::CorpusSpec;
use deepeye_obs::json::escape;
use deepeye_obs::{Json, Observer, Snapshot};

/// Version tag every bench JSON document carries. Bump when a field is
/// added, removed, or changes meaning; `perfgate` refuses to compare
/// documents whose schemas differ.
pub const BENCH_SCHEMA: &str = "deepeye-bench/v1";

/// The JSON field names of the `harness` document, in document order.
/// DESIGN.md §9 documents each one; a doc-sync test walks this list
/// against both the prose and a generated document, so renaming a field
/// here without updating the docs (or vice versa) fails the build.
pub const SCHEMA_FIELDS: &[&str] = &[
    "schema",
    "experiment",
    "scenarios",
    "name",
    "rows",
    "columns",
    "stages",
    "stage",
    "metric",
    "reps",
    "median_ns",
    "iqr_ns",
    "min_ns",
    "max_ns",
    "counters",
    "p50_ns",
    "p95_ns",
    "p99_ns",
];

/// The stages the harness times: the five online pipeline stages
/// ([`Stage::PIPELINE`], run per data scenario) plus the static-analysis
/// pass (`Analyze`, run once over the workspace source in its own
/// scenario).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    Enumerate,
    Execute,
    Recognize,
    Rank,
    TopK,
    Analyze,
}

impl Stage {
    /// All stages, pipeline order first, then the analyze pass.
    pub const ALL: [Stage; 6] = [
        Stage::Enumerate,
        Stage::Execute,
        Stage::Recognize,
        Stage::Rank,
        Stage::TopK,
        Stage::Analyze,
    ];

    /// The five online pipeline stages, in pipeline order — what each
    /// data scenario times. `Analyze` is deliberately excluded: it runs
    /// over the workspace source, not over a scenario's table.
    pub const PIPELINE: [Stage; 5] = [
        Stage::Enumerate,
        Stage::Execute,
        Stage::Recognize,
        Stage::Rank,
        Stage::TopK,
    ];

    /// Stable lowercase name used in the JSON artifact and gate output.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Enumerate => "enumerate",
            Stage::Execute => "execute",
            Stage::Recognize => "recognize",
            Stage::Rank => "rank",
            Stage::TopK => "topk",
            Stage::Analyze => "analyze",
        }
    }

    /// The registry histogram this stage's samples land in.
    pub fn metric(self) -> &'static str {
        match self {
            Stage::Enumerate => "bench.enumerate_ns",
            Stage::Execute => "bench.execute_ns",
            Stage::Recognize => "bench.recognize_ns",
            Stage::Rank => "bench.rank_ns",
            Stage::TopK => "bench.topk_ns",
            Stage::Analyze => "bench.analyze_ns",
        }
    }

    /// Span name the harness opens around each timed repetition, so the
    /// trace, the flame view, and the per-stage `alloc.*` aggregates
    /// attribute to the stage being measured.
    pub fn span_name(self) -> &'static str {
        match self {
            Stage::Enumerate => "harness.enumerate",
            Stage::Execute => "harness.execute",
            Stage::Recognize => "harness.recognize",
            Stage::Rank => "harness.rank",
            Stage::TopK => "harness.topk",
            Stage::Analyze => "harness.analyze",
        }
    }

    /// Parse the stable name back (gate input validation).
    pub fn from_name(name: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|s| s.name() == name)
    }
}

/// Record one stage's raw samples into its registry histogram. Spelled as
/// one literal call per arm — not `record_many_ns(stage.metric(), ..)` —
/// so the metric-registry lint (A0005/A0007) sees each `bench.*_ns` name
/// used at a real call site.
pub fn record_stage_samples(obs: &Observer, stage: Stage, samples: &[u64]) {
    match stage {
        Stage::Enumerate => obs.record_many_ns("bench.enumerate_ns", samples),
        Stage::Execute => obs.record_many_ns("bench.execute_ns", samples),
        Stage::Recognize => obs.record_many_ns("bench.recognize_ns", samples),
        Stage::Rank => obs.record_many_ns("bench.rank_ns", samples),
        Stage::TopK => obs.record_many_ns("bench.topk_ns", samples),
        Stage::Analyze => obs.record_many_ns("bench.analyze_ns", samples),
    }
}

/// One cell of the scenario matrix: a seeded synthetic table shape.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    pub name: &'static str,
    pub rows: usize,
    pub columns: usize,
    pub seed: u64,
}

impl ScenarioSpec {
    /// The corpus generator's spec for this scenario.
    pub fn corpus_spec(&self) -> CorpusSpec {
        CorpusSpec {
            name: self.name.to_owned(),
            rows: self.rows,
            cols: self.columns,
            seed: self.seed,
        }
    }
}

/// The fixed scenario matrix (rows × columns). `smoke` keeps only the
/// smallest shape so CI finishes in seconds; the full matrix spans the
/// row and column ranges of the paper's Table III corpus.
pub fn scenario_matrix(smoke: bool) -> Vec<ScenarioSpec> {
    let full = vec![
        ScenarioSpec {
            name: "s-300x5",
            rows: 300,
            columns: 5,
            seed: 9_001,
        },
        ScenarioSpec {
            name: "m-1500x8",
            rows: 1_500,
            columns: 8,
            seed: 9_002,
        },
        ScenarioSpec {
            name: "m-1500x16",
            rows: 1_500,
            columns: 16,
            seed: 9_003,
        },
        ScenarioSpec {
            name: "l-6000x8",
            rows: 6_000,
            columns: 8,
            seed: 9_004,
        },
    ];
    if smoke {
        full.into_iter().take(1).collect()
    } else {
        full
    }
}

/// Robust summary of one stage's repetition samples: median and
/// interquartile range instead of mean/stddev, so a single descheduled
/// repetition does not move the number the gate compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RobustTiming {
    pub reps: usize,
    pub median_ns: u64,
    pub iqr_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
}

impl RobustTiming {
    /// Summarize raw nanosecond samples. Empty input yields all zeros.
    pub fn from_samples(samples: &[u64]) -> RobustTiming {
        if samples.is_empty() {
            return RobustTiming {
                reps: 0,
                median_ns: 0,
                iqr_ns: 0,
                min_ns: 0,
                max_ns: 0,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let n = sorted.len();
        let at = |q_num: usize, q_den: usize| sorted[(n - 1) * q_num / q_den];
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2
        };
        RobustTiming {
            reps: n,
            median_ns: median,
            iqr_ns: at(3, 4).saturating_sub(at(1, 4)),
            min_ns: sorted[0],
            max_ns: sorted[n - 1],
        }
    }
}

/// One scenario's timed stages.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    pub name: String,
    pub rows: usize,
    pub columns: usize,
    pub stages: Vec<(Stage, RobustTiming)>,
}

/// Render the `harness` results document (schema [`BENCH_SCHEMA`],
/// experiment `harness`): per-scenario robust stage timings plus the
/// observer's counters and per-path stage aggregates from the same run.
pub fn results_json(scenarios: &[ScenarioRun], snapshot: &Snapshot) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"schema\": \"{BENCH_SCHEMA}\",\n"));
    out.push_str("  \"experiment\": \"harness\",\n");
    out.push_str("  \"scenarios\": [");
    for (i, s) in scenarios.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"rows\": {}, \"columns\": {}, \"stages\": [",
            escape(&s.name),
            s.rows,
            s.columns
        ));
        for (j, (stage, t)) in s.stages.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "\n      {{\"stage\": \"{}\", \"metric\": \"{}\", \"reps\": {}, \
                 \"median_ns\": {}, \"iqr_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}",
                stage.name(),
                stage.metric(),
                t.reps,
                t.median_ns,
                t.iqr_ns,
                t.min_ns,
                t.max_ns
            ));
        }
        out.push_str("\n    ]}");
    }
    if !scenarios.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");
    out.push_str(&snapshot_tail(snapshot));
    out
}

/// The shared `counters` / `stages` tail of every bench document, read
/// from a metrics snapshot (same numbers `metrics_json` exports).
pub fn snapshot_tail(snapshot: &Snapshot) -> String {
    let mut out = String::from("  \"counters\": {");
    for (i, (name, value)) in snapshot.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{}\": {}", escape(name), value));
    }
    if !snapshot.counters.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n  \"stages\": {");
    for (i, s) in snapshot.stages.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    \"{}\": {{\"count\": {}, \"total_ns\": {}, \"p50_ns\": {}, \
             \"p95_ns\": {}, \"p99_ns\": {}, \"alloc_count\": {}, \
             \"alloc_bytes\": {}, \"alloc_peak\": {}}}",
            escape(&s.path),
            s.count,
            s.total_ns,
            s.p50_ns,
            s.p95_ns,
            s.p99_ns,
            s.alloc_count,
            s.alloc_bytes,
            s.alloc_peak
        ));
    }
    if !snapshot.stages.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("}\n}\n");
    out
}

/// What [`validate_bench_json`] found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchSummary {
    pub experiment: String,
    /// Scenario (or dataset, for `fig12_efficiency`) count.
    pub scenarios: usize,
    /// Total stage (or bar) rows across scenarios.
    pub stage_rows: usize,
}

fn non_negative(value: Option<&Json>, what: &str) -> Result<f64, String> {
    let v = value
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{what} must be a number"))?;
    if v < 0.0 {
        return Err(format!("{what} is negative"));
    }
    Ok(v)
}

fn str_field<'a>(obj: &'a Json, key: &str, what: &str) -> Result<&'a str, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{what} missing string field {key:?}"))
}

/// Validate a versioned bench document: schema tag, experiment kind,
/// per-scenario stage rows whose metric names are registered histograms
/// and whose summaries are internally consistent (`min ≤ median ≤ max`),
/// and non-negative counters.
pub fn validate_bench_json(text: &str) -> Result<BenchSummary, String> {
    let doc = deepeye_obs::parse_json(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let schema = str_field(&doc, "schema", "document")?;
    if schema != BENCH_SCHEMA {
        return Err(format!(
            "unknown schema {schema:?} (this build reads {BENCH_SCHEMA:?})"
        ));
    }
    let experiment = str_field(&doc, "experiment", "document")?;
    let mut stage_rows = 0usize;
    let scenarios = match experiment {
        "harness" => {
            let scenarios = doc
                .get("scenarios")
                .and_then(Json::as_array)
                .ok_or("harness document missing scenarios array")?;
            if scenarios.is_empty() {
                return Err("harness document has no scenarios".into());
            }
            for s in scenarios {
                let name = str_field(s, "name", "scenario")?;
                non_negative(s.get("rows"), &format!("scenario {name:?} rows"))?;
                non_negative(s.get("columns"), &format!("scenario {name:?} columns"))?;
                let stages = s
                    .get("stages")
                    .and_then(Json::as_array)
                    .ok_or_else(|| format!("scenario {name:?} missing stages array"))?;
                if stages.is_empty() {
                    return Err(format!("scenario {name:?} has no stage rows"));
                }
                for row in stages {
                    stage_rows += 1;
                    let stage_name = str_field(row, "stage", "stage row")?;
                    let stage = Stage::from_name(stage_name).ok_or_else(|| {
                        format!("scenario {name:?}: unknown stage {stage_name:?}")
                    })?;
                    let metric = str_field(row, "metric", "stage row")?;
                    if !deepeye_obs::metrics::is_histogram(metric) {
                        return Err(format!(
                            "stage {stage_name:?} metric {metric:?} is not a registered histogram"
                        ));
                    }
                    if metric != stage.metric() {
                        return Err(format!(
                            "stage {stage_name:?} metric {metric:?} should be {:?}",
                            stage.metric()
                        ));
                    }
                    let what = format!("scenario {name:?} stage {stage_name:?}");
                    let reps = non_negative(row.get("reps"), &format!("{what} reps"))?;
                    if reps < 1.0 {
                        return Err(format!("{what} has zero repetitions"));
                    }
                    let median = non_negative(row.get("median_ns"), &format!("{what} median_ns"))?;
                    non_negative(row.get("iqr_ns"), &format!("{what} iqr_ns"))?;
                    let min = non_negative(row.get("min_ns"), &format!("{what} min_ns"))?;
                    let max = non_negative(row.get("max_ns"), &format!("{what} max_ns"))?;
                    if !(min <= median && median <= max) {
                        return Err(format!(
                            "{what}: min/median/max out of order ({min} / {median} / {max})"
                        ));
                    }
                }
            }
            scenarios.len()
        }
        "fig12_efficiency" => {
            let datasets = doc
                .get("datasets")
                .and_then(Json::as_array)
                .ok_or("fig12_efficiency document missing datasets array")?;
            if datasets.is_empty() {
                return Err("fig12_efficiency document has no datasets".into());
            }
            for d in datasets {
                let name = str_field(d, "name", "dataset")?;
                non_negative(d.get("rows"), &format!("dataset {name:?} rows"))?;
                let bars = d
                    .get("bars")
                    .and_then(Json::as_array)
                    .ok_or_else(|| format!("dataset {name:?} missing bars array"))?;
                for bar in bars {
                    stage_rows += 1;
                    let config = str_field(bar, "config", "bar")?;
                    let what = format!("dataset {name:?} bar {config:?}");
                    let e = non_negative(bar.get("enumerate_ns"), &format!("{what} enumerate_ns"))?;
                    let s = non_negative(bar.get("select_ns"), &format!("{what} select_ns"))?;
                    let total = non_negative(bar.get("total_ns"), &format!("{what} total_ns"))?;
                    if total + 0.5 < e.max(s) {
                        return Err(format!("{what}: total_ns below its parts"));
                    }
                }
            }
            datasets.len()
        }
        other => return Err(format!("unknown experiment {other:?}")),
    };
    let counters = doc
        .get("counters")
        .and_then(Json::as_object)
        .ok_or("document missing counters object")?;
    for (name, value) in counters {
        non_negative(Some(value), &format!("counter {name:?}"))?;
    }
    Ok(BenchSummary {
        experiment: experiment.to_owned(),
        scenarios,
        stage_rows,
    })
}

/// Gate thresholds. A stage regresses when its current median exceeds the
/// baseline median by more than the *largest* of three allowances:
/// relative slack (`rel` × baseline), noise slack (`iqr_mult` × the wider
/// of the two runs' IQRs), and an absolute floor (`floor_ns`) under which
/// deltas are scheduler noise no matter the ratio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateConfig {
    pub rel: f64,
    pub iqr_mult: f64,
    pub floor_ns: u64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            rel: 0.30,
            iqr_mult: 3.0,
            floor_ns: 500_000,
        }
    }
}

/// One gate failure: the stage, the numbers, and the line it crossed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Regression {
    pub scenario: String,
    pub stage: String,
    pub metric: String,
    pub baseline_ns: u64,
    pub current_ns: u64,
    pub allowed_ns: u64,
}

impl Regression {
    /// The one-line verdict `perfgate` prints.
    pub fn describe(&self) -> String {
        format!(
            "REGRESSION {} / {} ({}): median {} -> {} (allowed <= {})",
            self.scenario,
            self.stage,
            self.metric,
            self.baseline_ns,
            self.current_ns,
            self.allowed_ns
        )
    }
}

/// The gate's full verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateReport {
    /// (scenario, stage) pairs compared.
    pub compared: usize,
    pub regressions: Vec<Regression>,
}

/// One comparable gate row: (scenario, stage, metric, median_ns, iqr_ns).
pub(crate) type StageMedianRow = (String, String, String, u64, u64);

/// Parse a harness document's per-scenario stage rows — shared between
/// the gate ([`perf_gate`]), the budget check, and the cross-run differ
/// (`crate::diff`).
pub(crate) fn stage_medians(text: &str, which: &str) -> Result<Vec<StageMedianRow>, String> {
    let summary = validate_bench_json(text).map_err(|e| format!("{which}: {e}"))?;
    if summary.experiment != "harness" {
        return Err(format!(
            "{which}: perfgate compares harness documents, got {:?}",
            summary.experiment
        ));
    }
    let doc = deepeye_obs::parse_json(text).map_err(|e| format!("{which}: {e}"))?;
    let mut rows = Vec::new();
    let scenarios = doc
        .get("scenarios")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{which}: missing scenarios"))?;
    for s in scenarios {
        let name = str_field(s, "name", "scenario")?.to_owned();
        let stages = s
            .get("stages")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("{which}: scenario {name:?} missing stages"))?;
        for row in stages {
            let stage = str_field(row, "stage", "stage row")?.to_owned();
            let metric = str_field(row, "metric", "stage row")?.to_owned();
            let median = non_negative(row.get("median_ns"), "median_ns")? as u64;
            let iqr = non_negative(row.get("iqr_ns"), "iqr_ns")? as u64;
            rows.push((name.clone(), stage, metric, median, iqr));
        }
    }
    Ok(rows)
}

/// Compare two harness documents. Errors on malformed input or when the
/// current run dropped a (scenario, stage) pair the baseline covers —
/// silently losing coverage must not read as "no regression".
pub fn perf_gate(baseline: &str, current: &str, cfg: &GateConfig) -> Result<GateReport, String> {
    perf_gate_scoped(baseline, current, cfg, None)
}

/// [`perf_gate`] restricted to a scenario subset: when `scenarios` is
/// given, only baseline rows for those scenarios are compared, so a
/// smoke run (e.g. CI's `--smoke` matrix) can gate against a baseline
/// regenerated from the full matrix without tripping the lost-coverage
/// error. Requesting a scenario the baseline does not cover is an error
/// — a typo must not read as "nothing to gate".
pub fn perf_gate_scoped(
    baseline: &str,
    current: &str,
    cfg: &GateConfig,
    scenarios: Option<&[String]>,
) -> Result<GateReport, String> {
    let mut base_rows = stage_medians(baseline, "baseline")?;
    let cur_rows = stage_medians(current, "current")?;
    if let Some(only) = scenarios {
        for want in only {
            if !base_rows.iter().any(|(s, ..)| s == want) {
                return Err(format!("baseline has no scenario {want:?}"));
            }
        }
        base_rows.retain(|(s, ..)| only.iter().any(|want| want == s));
    }
    let mut report = GateReport {
        compared: 0,
        regressions: Vec::new(),
    };
    for (scenario, stage, metric, base_median, base_iqr) in &base_rows {
        let cur = cur_rows
            .iter()
            .find(|(s, st, ..)| s == scenario && st == stage)
            .ok_or_else(|| format!("current run is missing baseline stage {scenario} / {stage}"))?;
        let (_, _, _, cur_median, cur_iqr) = cur;
        report.compared += 1;
        let rel_slack = (cfg.rel * *base_median as f64) as u64;
        let noise_slack = ((*base_iqr).max(*cur_iqr) as f64 * cfg.iqr_mult) as u64;
        let allowed = base_median + rel_slack.max(noise_slack).max(cfg.floor_ns);
        if *cur_median > allowed {
            report.regressions.push(Regression {
                scenario: scenario.clone(),
                stage: stage.clone(),
                metric: metric.clone(),
                baseline_ns: *base_median,
                current_ns: *cur_median,
                allowed_ns: allowed,
            });
        }
    }
    Ok(report)
}

/// A per-stage latency ceiling: the median of any harness scenario must
/// stay under `max_median_ns`. Ceilings are deliberately generous — they
/// catch order-of-magnitude pathologies (accidental quadratic loops,
/// lost parallelism), not percent-level drift; `perfgate` owns the
/// fine-grained comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageBudget {
    pub stage: Stage,
    pub max_median_ns: u64,
}

impl StageBudget {
    /// The registry histogram this budget constrains.
    pub fn metric(&self) -> &'static str {
        self.stage.metric()
    }
}

/// The budget table, one ceiling per stage, in pipeline order.
pub const BUDGETS: &[StageBudget] = &[
    StageBudget {
        stage: Stage::Enumerate,
        max_median_ns: 2_000_000_000,
    },
    StageBudget {
        stage: Stage::Execute,
        max_median_ns: 60_000_000_000,
    },
    StageBudget {
        stage: Stage::Recognize,
        max_median_ns: 10_000_000_000,
    },
    StageBudget {
        stage: Stage::Rank,
        max_median_ns: 20_000_000_000,
    },
    StageBudget {
        stage: Stage::TopK,
        max_median_ns: 60_000_000_000,
    },
    // The analyze pass lexes every workspace file and runs the
    // interprocedural rules; generous like the rest — the ceiling exists
    // to catch an accidental quadratic fixpoint, not second-level drift.
    StageBudget {
        stage: Stage::Analyze,
        max_median_ns: 30_000_000_000,
    },
];

/// The budget table recast as watchdog stall budgets for the flight
/// recorder: a harness stage span left open past its [`BUDGETS`] median
/// ceiling is a stall worth reporting — the same table powers the
/// offline gate (`trace_check --budgets`) and the online watchdog
/// (`harness --soak`).
pub fn stall_budgets() -> Vec<deepeye_obs::StallBudget> {
    BUDGETS
        .iter()
        .map(|b| deepeye_obs::StallBudget {
            span: b.stage.span_name(),
            max_open_ns: b.max_median_ns,
        })
        .collect()
}

/// The budget table recast once more, as health-engine SLO objectives:
/// each stage's [`BUDGETS`] ceiling becomes a runtime objective on the
/// windowed median of that stage's interval p50 series
/// (`stage.<span>.p50_ns` in health-series naming), so the CI latency
/// budgets and the live soak verdicts are the same numbers. The same
/// table now powers all three consumers: the offline gate
/// (`trace_check --budgets`), the stall watchdog, and the health
/// engine.
pub fn health_objectives() -> Vec<deepeye_obs::SloObjective> {
    BUDGETS
        .iter()
        .map(|b| deepeye_obs::SloObjective {
            metric: format!("stage.{}.p50_ns", b.stage.span_name()),
            max_value: b.max_median_ns as f64,
            source: "perf::BUDGETS".to_owned(),
        })
        .collect()
}

/// Check a harness document against [`BUDGETS`]. Returns the list of
/// violations (empty = within budget); errors on malformed input.
pub fn check_budgets(text: &str) -> Result<Vec<String>, String> {
    let rows = stage_medians(text, "budgets")?;
    let mut violations = Vec::new();
    for (scenario, stage, metric, median, _) in rows {
        let budget = BUDGETS
            .iter()
            .find(|b| b.stage.name() == stage)
            .ok_or_else(|| format!("no budget declared for stage {stage:?}"))?;
        if median > budget.max_median_ns {
            violations.push(format!(
                "BUDGET {scenario} / {stage} ({metric}): median {median} ns exceeds ceiling {} ns",
                budget.max_median_ns
            ));
        }
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_doc() -> String {
        let obs = Observer::enabled();
        {
            let _s = obs.span("harness.enumerate");
            record_stage_samples(&obs, Stage::Enumerate, &[100, 200, 300]);
        }
        let runs = vec![ScenarioRun {
            name: "s-300x5".into(),
            rows: 300,
            columns: 5,
            stages: Stage::PIPELINE
                .into_iter()
                .map(|st| (st, RobustTiming::from_samples(&[900, 1_000, 1_100, 5_000])))
                .collect(),
        }];
        results_json(&runs, &obs.snapshot())
    }

    #[test]
    fn health_objectives_mirror_budgets() {
        let objectives = health_objectives();
        assert_eq!(objectives.len(), BUDGETS.len());
        for (obj, budget) in objectives.iter().zip(BUDGETS) {
            assert_eq!(
                obj.metric,
                format!("stage.{}.p50_ns", budget.stage.span_name())
            );
            assert_eq!(obj.max_value, budget.max_median_ns as f64);
            assert_eq!(obj.source, "perf::BUDGETS");
        }
    }

    #[test]
    fn robust_timing_resists_outliers() {
        let calm = RobustTiming::from_samples(&[100, 101, 99, 100, 102]);
        assert_eq!(calm.median_ns, 100);
        assert!(calm.iqr_ns <= 3);
        // One 100x outlier barely moves the median and never the min.
        let noisy = RobustTiming::from_samples(&[100, 101, 99, 100, 10_000]);
        assert_eq!(noisy.median_ns, 100);
        assert_eq!(noisy.min_ns, 99);
        assert_eq!(noisy.max_ns, 10_000);
        let empty = RobustTiming::from_samples(&[]);
        assert_eq!(empty.reps, 0);
        assert_eq!(empty.median_ns, 0);
    }

    #[test]
    fn stage_names_metrics_and_budgets_line_up() {
        assert_eq!(Stage::ALL.len(), BUDGETS.len());
        for (stage, budget) in Stage::ALL.into_iter().zip(BUDGETS) {
            assert_eq!(stage, budget.stage, "budget table is in pipeline order");
            assert!(deepeye_obs::metrics::is_histogram(stage.metric()));
            assert_eq!(Stage::from_name(stage.name()), Some(stage));
            assert!(stage.span_name().starts_with("harness."));
        }
        assert_eq!(Stage::from_name("compile"), None);
        // PIPELINE is ALL minus the workspace-level analyze pass.
        assert!(!Stage::PIPELINE.contains(&Stage::Analyze));
        assert!(Stage::ALL.contains(&Stage::Analyze));
        assert_eq!(Stage::PIPELINE.len() + 1, Stage::ALL.len());
        // The watchdog view of the budget table covers the same stages
        // with the same ceilings, keyed by the harness span names.
        let stalls = stall_budgets();
        assert_eq!(stalls.len(), BUDGETS.len());
        for (budget, stall) in BUDGETS.iter().zip(&stalls) {
            assert_eq!(stall.span, budget.stage.span_name());
            assert_eq!(stall.max_open_ns, budget.max_median_ns);
        }
    }

    #[test]
    fn analyze_scenario_rows_validate() {
        let obs = Observer::enabled();
        record_stage_samples(&obs, Stage::Analyze, &[1_000, 2_000, 3_000]);
        let runs = vec![ScenarioRun {
            name: "analyze-workspace".into(),
            rows: 0,
            columns: 0,
            stages: vec![(
                Stage::Analyze,
                RobustTiming::from_samples(&[1_000, 2_000, 3_000]),
            )],
        }];
        let text = results_json(&runs, &obs.snapshot());
        let summary = validate_bench_json(&text).expect("valid");
        assert_eq!(summary.stage_rows, 1);
        assert!(text.contains("bench.analyze_ns"));
    }

    #[test]
    fn results_json_validates() {
        let text = sample_doc();
        let summary = validate_bench_json(&text).expect("valid");
        assert_eq!(summary.experiment, "harness");
        assert_eq!(summary.scenarios, 1);
        assert_eq!(summary.stage_rows, 5);
        // Every documented schema field appears in the document.
        for field in SCHEMA_FIELDS {
            assert!(
                text.contains(&format!("\"{field}\"")),
                "field {field:?} missing from generated document"
            );
        }
    }

    #[test]
    fn validator_rejects_broken_documents() {
        let good = sample_doc();
        for (broken, why) in [
            (
                good.replace("deepeye-bench/v1", "deepeye-bench/v0"),
                "schema",
            ),
            (good.replace("\"harness\"", "\"mystery\""), "experiment"),
            (
                good.replace("bench.enumerate_ns", "bench.enumarate_ns"),
                "metric",
            ),
            (
                good.replace("\"stage\": \"rank\"", "\"stage\": \"sort\""),
                "stage",
            ),
            (
                good.replace("\"median_ns\": 1050", "\"median_ns\": 999999"),
                "ordering",
            ),
        ] {
            assert!(
                validate_bench_json(&broken).is_err(),
                "validator should reject broken {why}"
            );
        }
    }

    #[test]
    fn gate_passes_identical_runs_and_names_regressed_stage() {
        let doc = sample_doc();
        let cfg = GateConfig::default();
        let clean = perf_gate(&doc, &doc, &cfg).expect("gate runs");
        assert_eq!(clean.compared, 5);
        assert!(clean.regressions.is_empty(), "run vs itself is clean");

        // A synthetic 2000x slowdown in one stage (well past floor_ns).
        let slow = doc.replacen("\"median_ns\": 1050", "\"median_ns\": 2100000000", 1);
        let slow = slow.replacen("\"max_ns\": 5000", "\"max_ns\": 2100000000", 1);
        let report = perf_gate(&doc, &slow, &cfg).expect("gate runs");
        assert_eq!(report.regressions.len(), 1);
        let r = &report.regressions[0];
        assert_eq!(r.stage, "enumerate", "first stage row is the slowed one");
        assert_eq!(r.metric, "bench.enumerate_ns");
        assert!(r.describe().contains("REGRESSION"));
        assert!(r.describe().contains("bench.enumerate_ns"));
    }

    #[test]
    fn gate_noise_allowance_tolerates_wide_iqr() {
        let doc = sample_doc();
        // Same medians but declare a huge IQR: a delta within iqr_mult×IQR
        // must not trip the gate even when it exceeds the relative slack.
        let base = doc.replace("\"iqr_ns\": 200", "\"iqr_ns\": 3000000000");
        let cur = base.replace("\"median_ns\": 1050", "\"median_ns\": 2000000000");
        let cur = cur.replace("\"max_ns\": 5000", "\"max_ns\": 2000000000");
        let report = perf_gate(&base, &cur, &GateConfig::default()).expect("gate runs");
        assert!(
            report.regressions.is_empty(),
            "delta inside the noise band passes: {:?}",
            report.regressions
        );
    }

    #[test]
    fn gate_rejects_lost_coverage() {
        let doc = sample_doc();
        let obs = Observer::enabled();
        let runs = vec![ScenarioRun {
            name: "s-300x5".into(),
            rows: 300,
            columns: 5,
            stages: vec![(Stage::Enumerate, RobustTiming::from_samples(&[100]))],
        }];
        let reduced = results_json(&runs, &obs.snapshot());
        let err = perf_gate(&doc, &reduced, &GateConfig::default()).unwrap_err();
        assert!(err.contains("missing"), "error names the lost pair: {err}");
    }

    #[test]
    fn budgets_pass_sane_runs_and_flag_pathologies() {
        let doc = sample_doc();
        assert_eq!(
            check_budgets(&doc).expect("valid doc"),
            Vec::<String>::new()
        );
        let slow = doc.replacen("\"median_ns\": 1050", "\"median_ns\": 3000000000", 1);
        let slow = slow.replacen("\"max_ns\": 5000", "\"max_ns\": 3000000000", 1);
        let violations = check_budgets(&slow).expect("valid doc");
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("enumerate"));
        assert!(violations[0].contains("bench.enumerate_ns"));
    }

    #[test]
    fn scenario_matrix_shapes() {
        let smoke = scenario_matrix(true);
        assert_eq!(smoke.len(), 1);
        let full = scenario_matrix(false);
        assert!(full.len() >= 3, "full matrix spans rows and columns");
        let spec = smoke[0].corpus_spec();
        assert_eq!(spec.rows, 300);
        assert_eq!(spec.cols, 5);
        // Distinct seeds: scenarios are independent tables.
        let mut seeds: Vec<u64> = full.iter().map(|s| s.seed).collect();
        seeds.dedup();
        assert_eq!(seeds.len(), full.len());
    }
}
