//! Criterion micro-benchmarks for DeepEye's hot paths: search-space
//! enumeration, candidate execution, dominance-graph construction (naive
//! vs pruned), progressive vs exhaustive selection, correlation, and the
//! rankers.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use deepeye_core::{
    compute_factors, exhaustive_top_k, rank_by_partial_order, DominanceGraph, ProgressiveSelector,
};
use deepeye_datagen::{candidate_nodes, flight_table, PerceptionOracle};
use deepeye_query::{two_column_queries, UdfRegistry};
use std::hint::black_box;

fn bench_enumeration(c: &mut Criterion) {
    let table = flight_table(1, 1_000);
    c.bench_function("enumerate/two_column_space_m6", |b| {
        b.iter(|| black_box(two_column_queries(&table).count()))
    });
    c.bench_function("enumerate/rule_based_m6", |b| {
        b.iter(|| black_box(deepeye_core::rules::rule_based_queries(&table).len()))
    });
}

fn bench_candidates(c: &mut Criterion) {
    let mut group = c.benchmark_group("candidates");
    group.sample_size(10);
    for rows in [500usize, 2_000] {
        let table = flight_table(2, rows);
        group.bench_with_input(BenchmarkId::new("rule_based", rows), &table, |b, t| {
            b.iter(|| black_box(candidate_nodes(t).len()))
        });
    }
    group.finish();
}

fn bench_graph(c: &mut Criterion) {
    let table = flight_table(3, 1_000);
    let nodes = candidate_nodes(&table);
    let factors = compute_factors(&nodes);
    let mut group = c.benchmark_group("graph");
    group.bench_function("build_naive", |b| {
        b.iter(|| black_box(DominanceGraph::build_naive(&factors).edge_count()))
    });
    group.bench_function("build_pruned", |b| {
        b.iter(|| black_box(DominanceGraph::build_pruned(&factors).edge_count()))
    });
    let graph = DominanceGraph::build_pruned(&factors);
    group.bench_function("scores", |b| b.iter(|| black_box(graph.log_scores())));
    group.finish();
}

fn bench_selection(c: &mut Criterion) {
    let table = flight_table(4, 1_500);
    let udfs = UdfRegistry::default();
    let mut group = c.benchmark_group("selection");
    group.sample_size(10);
    group.bench_function("progressive_top5", |b| {
        b.iter(|| black_box(ProgressiveSelector::new(&table, &udfs).top_k(5).0.len()))
    });
    group.bench_function("exhaustive_top5", |b| {
        b.iter(|| black_box(exhaustive_top_k(&table, &udfs, 5).0.len()))
    });
    let nodes = candidate_nodes(&table);
    group.bench_function("partial_order_rank", |b| {
        b.iter(|| black_box(rank_by_partial_order(&nodes).len()))
    });
    group.finish();
}

fn bench_batch_execution(c: &mut Criterion) {
    let table = flight_table(6, 2_000);
    let udfs = UdfRegistry::default();
    let queries: Vec<deepeye_query::VisQuery> = deepeye_core::rules::rule_based_queries(&table);
    let mut group = c.benchmark_group("execute");
    group.sample_size(10);
    group.bench_function("scalar_rule_set", |b| {
        b.iter(|| {
            let ok = queries
                .iter()
                .filter(|q| deepeye_query::execute_with(&table, q, &udfs).is_ok())
                .count();
            black_box(ok)
        })
    });
    group.bench_function("batch_rule_set", |b| {
        b.iter(|| {
            let ok = deepeye_query::execute_batch(&table, &queries, &udfs)
                .into_iter()
                .filter(Result::is_ok)
                .count();
            black_box(ok)
        })
    });
    group.finish();
}

fn bench_oracle_and_correlation(c: &mut Criterion) {
    let table = flight_table(5, 1_000);
    let nodes = candidate_nodes(&table);
    let oracle = PerceptionOracle::default();
    c.bench_function("oracle/score_candidate_set", |b| {
        b.iter(|| {
            let total: f64 = nodes.iter().map(|n| oracle.score(n)).sum();
            black_box(total)
        })
    });
    let xs: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| 2.0 * x.ln().max(0.0) + x * 0.01)
        .collect();
    c.bench_function("correlation/four_models_10k", |b| {
        b.iter(|| black_box(deepeye_data::correlation(&xs, &ys)))
    });
}

criterion_group!(
    benches,
    bench_enumeration,
    bench_candidates,
    bench_graph,
    bench_selection,
    bench_batch_execution,
    bench_oracle_and_correlation
);
criterion_main!(benches);
