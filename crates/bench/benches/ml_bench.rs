//! Criterion micro-benchmarks for the ML substrate: classifier training
//! and prediction, LambdaMART training, and NDCG computation.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use deepeye_ml::{
    ndcg, Dataset, DecisionTree, GaussianNb, LambdaMart, LambdaMartParams, LinearSvm, QueryGroup,
};
use std::hint::black_box;

fn synthetic_dataset(n: usize) -> Dataset {
    let features: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            vec![
                (i % 41) as f64,
                ((i * 13) % 97) as f64 - 48.0,
                (i as f64 * 0.37).sin() * 20.0,
                ((i * 7) % 29) as f64,
            ]
        })
        .collect();
    let labels: Vec<bool> = features.iter().map(|f| f[0] > 20.0 && f[1] < 0.0).collect();
    Dataset::new(features, labels)
}

fn bench_classifier_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("train");
    group.sample_size(10);
    for n in [500usize, 4_000] {
        let data = synthetic_dataset(n);
        group.bench_with_input(BenchmarkId::new("decision_tree", n), &data, |b, d| {
            b.iter(|| black_box(DecisionTree::fit(d).node_count()))
        });
        group.bench_with_input(BenchmarkId::new("naive_bayes", n), &data, |b, d| {
            b.iter(|| {
                let m = GaussianNb::fit(d);
                black_box(m.predict(d.row(0)))
            })
        });
        group.bench_with_input(BenchmarkId::new("linear_svm", n), &data, |b, d| {
            b.iter(|| {
                let m = LinearSvm::fit(d);
                black_box(m.predict(d.row(0)))
            })
        });
    }
    group.finish();
}

fn bench_prediction(c: &mut Criterion) {
    let data = synthetic_dataset(4_000);
    let tree = DecisionTree::fit(&data);
    let nb = GaussianNb::fit(&data);
    let svm = LinearSvm::fit(&data);
    let mut group = c.benchmark_group("predict_4k");
    group.bench_function("decision_tree", |b| {
        b.iter(|| black_box(tree.predict_batch(data.features()).len()))
    });
    group.bench_function("naive_bayes", |b| {
        b.iter(|| black_box(nb.predict_batch(data.features()).len()))
    });
    group.bench_function("linear_svm", |b| {
        b.iter(|| black_box(svm.predict_batch(data.features()).len()))
    });
    group.finish();
}

fn bench_lambdamart(c: &mut Criterion) {
    let groups: Vec<QueryGroup> = (0..8)
        .map(|g| {
            let features: Vec<Vec<f64>> = (0..80)
                .map(|d| vec![((d * 7 + g * 3) % 80) as f64, (d as f64 * 0.2).cos()])
                .collect();
            let relevance: Vec<f64> = features
                .iter()
                .map(|f| (f[0] / 20.0).floor().min(3.0))
                .collect();
            QueryGroup::new(features, relevance)
        })
        .collect();
    let mut bench_group = c.benchmark_group("lambdamart");
    bench_group.sample_size(10);
    bench_group.bench_function("train_8x80_20trees", |b| {
        b.iter(|| {
            let m = LambdaMart::train(
                &groups,
                LambdaMartParams {
                    trees: 20,
                    ..Default::default()
                },
            );
            black_box(m.tree_count())
        })
    });
    let model = LambdaMart::train(
        &groups,
        LambdaMartParams {
            trees: 20,
            ..Default::default()
        },
    );
    bench_group.bench_function("rank_80", |b| {
        b.iter(|| black_box(model.rank(&groups[0].features).len()))
    });
    bench_group.finish();

    let rels: Vec<f64> = (0..1_000).map(|i| ((i * 17) % 4) as f64).collect();
    c.bench_function("ndcg_1000", |b| b.iter(|| black_box(ndcg(&rels))));
}

criterion_group!(
    benches,
    bench_classifier_training,
    bench_prediction,
    bench_lambdamart
);
criterion_main!(benches);
