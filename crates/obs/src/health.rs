//! The health engine: online anomaly detection and SLO verdicts over
//! the telemetry stream, emitted as versioned `deepeye-health/v1`
//! documents.
//!
//! The flight recorder (PR 7) made a long-lived process *record* its
//! own behaviour; nothing consumed those ticks in-process — regressions
//! were only caught offline by `perfgate` against a committed baseline.
//! [`HealthEngine`] closes that loop. Each telemetry line is ingested
//! into per-metric [`RingSeries`] rings (counter deltas as
//! `counter.<name>`, stage interval quantiles as
//! `stage.<path>.p50_ns`/`p95_ns`/`p99_ns`, allocation deltas as
//! `alloc.count`/`alloc.bytes`, span retention as `spans.retained`, and
//! process RSS as `proc.rss_bytes`), then a set of pluggable
//! [`Detector`]s scores the fresh samples:
//!
//! - **EWMA drift** (`ewma_drift`, warn): the newest sample against an
//!   exponentially weighted moving average of the preceding window — a
//!   sudden slowdown fires even before the median moves.
//! - **Robust z-score** (`robust_z`, warn): deviation from the window
//!   median in units of `1.4826 × MAD`, so a single outlier cannot
//!   poison its own baseline the way a mean/stddev score would; a
//!   relative-deviation floor keeps a collapsed MAD from promoting
//!   sub-percent jitter on ultra-stable series.
//! - **Monotonic growth** (`monotonic_growth`, page): a strictly
//!   increasing RSS window with a material relative rise — the leak
//!   signature that quantile detectors are blind to.
//! - **SLO objectives** (`slo`, page): hard ceilings on the windowed
//!   median of a metric. The bench crate derives these from
//!   `perf::BUDGETS`, so the CI latency budgets double as runtime
//!   objectives.
//!
//! Anomaly detectors are evaluated on every ingested tick and *latch*:
//! the first firing occurrence per (metric, detector) pair is kept, so
//! a transient mid-run spike still appears in the final document. SLO
//! verdicts are recomputed from current ring state at report time and
//! are always listed, firing or not — an all-healthy document still
//! names the objectives it was checked against. Detectors recompute
//! statelessly from ring contents, which makes them deterministic under
//! tick-batching (the property tests pin this down).
//!
//! [`validate_health_json`] is the consuming-side mirror, and
//! [`HealthEngine::prometheus_text`] renders current gauges in the
//! Prometheus text exposition format for the future admin endpoint.

use crate::json::{escape, parse_json, Json};
use crate::series::{stats_of, RingSeries};
use crate::telemetry::TELEMETRY_SCHEMA;
use std::collections::BTreeMap;

/// Schema tag stamped on every health document.
pub const HEALTH_SCHEMA: &str = "deepeye-health/v1";

/// Every JSON field name a health document may carry, for the doc-sync
/// and analyze-rule checks (A0020): each must appear in DESIGN.md §13.
pub const HEALTH_FIELDS: &[&str] = &[
    "schema",
    "ticks",
    "status",
    "series",
    "objectives",
    "verdicts",
    "metric",
    "count",
    "last",
    "min",
    "max",
    "mean",
    "median",
    "mad",
    "max_value",
    "source",
    "detector",
    "severity",
    "firing",
    "value",
    "threshold",
    "detail",
];

/// Recent-window width used for SLO median checks and series gauges.
const SLO_WINDOW: usize = 8;

/// Normal-consistency factor turning a MAD into a stddev-comparable
/// scale (1 / Φ⁻¹(3/4)).
const MAD_SCALE: f64 = 1.4826;

/// How loud a verdict is. The soak harness fails a run only on firing
/// `Page` verdicts; `Warn` verdicts are reported but survivable, so the
/// statistical detectors (which can trip on a noisy CI machine) never
/// fail a healthy run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Worth a look; does not fail a soak run.
    Warn,
    /// Actionable now; fails a soak run.
    Page,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Page => "page",
        }
    }
}

/// A hard ceiling on the windowed median of one metric. The bench
/// crate derives one objective per `perf::BUDGETS` row; `--slo`
/// overrides add synthetic ones in CI.
#[derive(Debug, Clone, PartialEq)]
pub struct SloObjective {
    /// Series name, e.g. `stage.harness.execute.p50_ns`.
    pub metric: String,
    /// Maximum acceptable windowed median.
    pub max_value: f64,
    /// Where the ceiling came from, e.g. `perf::BUDGETS` or `--slo`.
    pub source: String,
}

/// One detector's judgement of one metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// Series name the verdict is about.
    pub metric: String,
    /// Detector that produced it (`ewma_drift`, `robust_z`,
    /// `monotonic_growth`, `slo`).
    pub detector: &'static str,
    pub severity: Severity,
    /// Whether the detector considers the condition present.
    pub firing: bool,
    /// The observed statistic the detector scored.
    pub value: f64,
    /// The level `value` was compared against.
    pub threshold: f64,
    /// Human-readable explanation naming the evidence.
    pub detail: String,
}

/// A pluggable anomaly detector. Implementations must be pure functions
/// of the ring contents they are shown — the engine re-evaluates them
/// on every tick and latches the first firing occurrence, and the
/// determinism property tests assume batching N samples into one tick
/// cannot change a verdict.
pub trait Detector: Send + Sync {
    /// Stable identifier used as the verdict's `detector` field.
    fn name(&self) -> &'static str;
    fn severity(&self) -> Severity;
    /// Whether this detector watches `metric` at all.
    fn applies_to(&self, metric: &str) -> bool;
    /// Score the series; `None` when not firing or when the window is
    /// too small to judge (detectors never fire on empty windows).
    fn evaluate(&self, metric: &str, series: &RingSeries) -> Option<Verdict>;
}

/// EWMA drift: the newest sample against an exponentially weighted
/// moving average of everything before it. Fires when
/// `last > (1 + rel_threshold) × ewma`.
#[derive(Debug, Clone)]
pub struct EwmaDrift {
    /// Smoothing factor in (0, 1]; higher tracks faster.
    pub alpha: f64,
    /// Relative excursion over baseline required to fire; the default
    /// 1.5 fires at 2.5× baseline, so a 3× stage slowdown trips it.
    pub rel_threshold: f64,
    /// Samples required before judging (baseline must be warm).
    pub min_samples: usize,
}

impl Default for EwmaDrift {
    fn default() -> Self {
        EwmaDrift {
            alpha: 0.3,
            rel_threshold: 1.5,
            min_samples: 16,
        }
    }
}

impl Detector for EwmaDrift {
    fn name(&self) -> &'static str {
        "ewma_drift"
    }

    fn severity(&self) -> Severity {
        Severity::Warn
    }

    fn applies_to(&self, metric: &str) -> bool {
        metric.starts_with("stage.")
    }

    fn evaluate(&self, metric: &str, series: &RingSeries) -> Option<Verdict> {
        let vals = series.window(0);
        if vals.len() < self.min_samples.max(2) {
            return None;
        }
        let (last, base) = vals.split_last()?;
        let mut ewma = base.first().copied()?;
        for &v in base.iter().skip(1) {
            ewma = self.alpha * v + (1.0 - self.alpha) * ewma;
        }
        if ewma <= 0.0 {
            return None;
        }
        let threshold = (1.0 + self.rel_threshold) * ewma;
        if *last <= threshold {
            return None;
        }
        Some(Verdict {
            metric: metric.to_owned(),
            detector: self.name(),
            severity: self.severity(),
            firing: true,
            value: *last,
            threshold,
            detail: format!(
                "last sample {last:.0} exceeds {threshold:.0} \
                 (EWMA baseline {ewma:.0} + {:.0}% drift allowance)",
                self.rel_threshold * 100.0
            ),
        })
    }
}

/// Robust z-score: deviation of the newest sample from the window
/// median, in units of `1.4826 × MAD`. Fires on `|z| > threshold`;
/// never fires when the MAD is zero (a flat series has no scale), and
/// never fires unless the deviation also clears `min_rel_dev` of the
/// median — a near-flat window collapses the MAD until sub-percent
/// timing jitter scores double-digit z, and a 0.3% excursion is not an
/// anomaly no matter how stable the baseline was.
#[derive(Debug, Clone)]
pub struct RobustZ {
    /// Absolute z-score required to fire.
    pub threshold: f64,
    /// Samples required before judging.
    pub min_samples: usize,
    /// Minimum |x − median| / |median| for a firing verdict, so a
    /// collapsed MAD cannot promote noise (e.g. 0.05 = 5%).
    pub min_rel_dev: f64,
}

impl Default for RobustZ {
    fn default() -> Self {
        RobustZ {
            threshold: 8.0,
            min_samples: 16,
            min_rel_dev: 0.05,
        }
    }
}

impl Detector for RobustZ {
    fn name(&self) -> &'static str {
        "robust_z"
    }

    fn severity(&self) -> Severity {
        Severity::Warn
    }

    fn applies_to(&self, metric: &str) -> bool {
        metric.starts_with("stage.")
    }

    fn evaluate(&self, metric: &str, series: &RingSeries) -> Option<Verdict> {
        let vals = series.window(0);
        if vals.len() < self.min_samples.max(2) {
            return None;
        }
        let (last, base) = vals.split_last()?;
        let stats = stats_of(base)?;
        // MAD is non-negative by construction, so zero is the only
        // degenerate value (flat window) — and a flat window has no
        // meaningful z-score.
        let scale = MAD_SCALE * stats.mad;
        if scale == 0.0 {
            return None;
        }
        let z = (*last - stats.median) / scale;
        if z.abs() <= self.threshold {
            return None;
        }
        // Deviation floor, checked multiplicatively so a zero median
        // degrades to "any deviation clears it" rather than a division.
        if (*last - stats.median).abs() <= self.min_rel_dev * stats.median.abs() {
            return None;
        }
        Some(Verdict {
            metric: metric.to_owned(),
            detector: self.name(),
            severity: self.severity(),
            firing: true,
            value: z,
            threshold: self.threshold,
            detail: format!(
                "robust z {z:.1} beyond ±{:.1} (median {:.0}, scaled MAD {scale:.1})",
                self.threshold, stats.median
            ),
        })
    }
}

/// Monotonic growth: a full window of strictly increasing samples with
/// a material total rise — the leak signature. Watches RSS by default;
/// a healthy allocator plateaus (equal consecutive readings break
/// strictness), so this pages only on genuinely unbounded growth.
#[derive(Debug, Clone)]
pub struct MonotonicGrowth {
    /// Consecutive strictly-rising samples required.
    pub window: usize,
    /// Minimum relative rise across the window, e.g. 0.10 = 10%.
    pub min_rise_rel: f64,
    /// Series this detector watches.
    pub metrics: Vec<String>,
}

impl Default for MonotonicGrowth {
    fn default() -> Self {
        MonotonicGrowth {
            window: 16,
            min_rise_rel: 0.10,
            metrics: vec!["proc.rss_bytes".to_owned()],
        }
    }
}

impl Detector for MonotonicGrowth {
    fn name(&self) -> &'static str {
        "monotonic_growth"
    }

    fn severity(&self) -> Severity {
        Severity::Page
    }

    fn applies_to(&self, metric: &str) -> bool {
        self.metrics.iter().any(|m| m == metric)
    }

    fn evaluate(&self, metric: &str, series: &RingSeries) -> Option<Verdict> {
        let vals = series.window(self.window);
        if vals.len() < self.window.max(2) {
            return None;
        }
        let strictly_rising = vals.windows(2).all(|w| match w {
            [a, b] => a < b,
            _ => false,
        });
        let first = vals.first().copied()?;
        let last = vals.last().copied()?;
        if !strictly_rising {
            return None;
        }
        if first > 0.0 {
            let rise = (last - first) / first;
            if rise <= self.min_rise_rel {
                return None;
            }
            Some(Verdict {
                metric: metric.to_owned(),
                detector: self.name(),
                severity: self.severity(),
                firing: true,
                value: rise,
                threshold: self.min_rise_rel,
                detail: format!(
                    "strictly increasing for {} samples, +{:.1}% ({first:.0} to {last:.0})",
                    vals.len(),
                    rise * 100.0
                ),
            })
        } else {
            None
        }
    }
}

/// The standard detector set: EWMA drift, robust z-score, and RSS
/// monotonic growth, all with default tuning.
pub fn default_detectors() -> Vec<Box<dyn Detector>> {
    vec![
        Box::new(EwmaDrift::default()),
        Box::new(RobustZ::default()),
        Box::new(MonotonicGrowth::default()),
    ]
}

/// Configuration for [`HealthEngine`] (and `Observer::with_health`).
pub struct HealthConfig {
    /// Per-metric ring capacity (samples retained), clamped to ≥ 1.
    pub capacity: usize,
    /// SLO ceilings to check at report time.
    pub objectives: Vec<SloObjective>,
    /// Anomaly detectors evaluated on every tick.
    pub detectors: Vec<Box<dyn Detector>>,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            capacity: 512,
            objectives: Vec::new(),
            detectors: default_detectors(),
        }
    }
}

impl HealthConfig {
    /// Replace the SLO objective list.
    pub fn with_objectives(mut self, objectives: Vec<SloObjective>) -> Self {
        self.objectives = objectives;
        self
    }

    /// Replace the detector set.
    pub fn with_detectors(mut self, detectors: Vec<Box<dyn Detector>>) -> Self {
        self.detectors = detectors;
        self
    }
}

/// The report-time rollup: overall status plus every verdict (latched
/// anomaly firings and current SLO judgements).
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// Telemetry ticks ingested.
    pub ticks: u64,
    /// `"ok"`, `"warn"`, or `"page"` — page iff any firing page
    /// verdict, warn iff anything else fires, ok otherwise.
    pub status: &'static str,
    pub verdicts: Vec<Verdict>,
}

/// In-process health evaluation over the telemetry stream: per-metric
/// ring timeseries, per-tick anomaly detection with first-firing
/// latching, and report-time SLO verdicts.
pub struct HealthEngine {
    capacity: usize,
    objectives: Vec<SloObjective>,
    detectors: Vec<Box<dyn Detector>>,
    series: BTreeMap<String, RingSeries>,
    /// First firing occurrence per (metric, detector).
    latched: BTreeMap<(String, &'static str), Verdict>,
    ticks: u64,
}

impl std::fmt::Debug for HealthEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HealthEngine")
            .field("ticks", &self.ticks)
            .field("series", &self.series.len())
            .field("latched", &self.latched.len())
            .finish()
    }
}

impl HealthEngine {
    pub fn new(config: HealthConfig) -> Self {
        HealthEngine {
            capacity: config.capacity.max(1),
            objectives: config.objectives,
            detectors: config.detectors,
            series: BTreeMap::new(),
            latched: BTreeMap::new(),
            ticks: 0,
        }
    }

    /// Telemetry ticks ingested so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Distinct metric series currently tracked.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    fn push_sample(&mut self, metric: String, value: f64) {
        let cap = self.capacity;
        self.series
            .entry(metric)
            .or_insert_with(|| RingSeries::new(cap))
            .push(value);
    }

    /// Ingest one `deepeye-telemetry/v1` line: push every sample it
    /// carries into the per-metric rings, then run the anomaly
    /// detectors and latch any first-time firings. Errors name the
    /// offending metric so soak failures localize quickly.
    pub fn ingest_line(&mut self, line: &str) -> Result<(), String> {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return Err("empty telemetry line".to_owned());
        }
        let doc = parse_json(trimmed).map_err(|e| format!("telemetry line: {e}"))?;
        match doc.get("schema").and_then(Json::as_str) {
            Some(TELEMETRY_SCHEMA) => {}
            Some(other) => return Err(format!("unexpected telemetry schema {other:?}")),
            None => return Err("telemetry line missing `schema`".to_owned()),
        }
        let counters = doc
            .get("counters")
            .and_then(Json::as_object)
            .ok_or("telemetry line missing `counters` object")?;
        for (name, v) in counters {
            let x = v
                .as_f64()
                .ok_or_else(|| format!("counter `{name}` is not numeric"))?;
            self.push_sample(format!("counter.{name}"), x);
        }
        let stages = doc
            .get("stages")
            .and_then(Json::as_object)
            .ok_or("telemetry line missing `stages` object")?;
        for (path, s) in stages {
            for q in ["p50_ns", "p95_ns", "p99_ns"] {
                let x = s
                    .get(q)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("stage `{path}` missing numeric `{q}`"))?;
                self.push_sample(format!("stage.{path}.{q}"), x);
            }
        }
        let alloc = doc.get("alloc").ok_or("telemetry line missing `alloc`")?;
        for key in ["count", "bytes"] {
            let x = alloc
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("alloc missing numeric `{key}`"))?;
            self.push_sample(format!("alloc.{key}"), x);
        }
        let spans = doc.get("spans").ok_or("telemetry line missing `spans`")?;
        let retained = spans
            .get("retained")
            .and_then(Json::as_f64)
            .ok_or("spans missing numeric `retained`")?;
        self.push_sample("spans.retained".to_owned(), retained);
        let proc = doc.get("proc").ok_or("telemetry line missing `proc`")?;
        let rss = proc
            .get("rss_bytes")
            .and_then(Json::as_f64)
            .ok_or("proc missing numeric `rss_bytes`")?;
        self.push_sample("proc.rss_bytes".to_owned(), rss);

        self.ticks = self.ticks.saturating_add(1);

        // Latch pass: first firing occurrence per (metric, detector).
        for (metric, series) in &self.series {
            for det in &self.detectors {
                if !det.applies_to(metric) {
                    continue;
                }
                let key = (metric.clone(), det.name());
                if self.latched.contains_key(&key) {
                    continue;
                }
                if let Some(mut verdict) = det.evaluate(metric, series) {
                    if verdict.firing {
                        verdict.detail =
                            format!("{} (first fired at tick {})", verdict.detail, self.ticks);
                        self.latched.insert(key, verdict);
                    }
                }
            }
        }
        Ok(())
    }

    /// The current SLO judgement for one objective (always produced,
    /// firing or not, so healthy documents still name their ceilings).
    fn slo_verdict(&self, obj: &SloObjective) -> Verdict {
        match self
            .series
            .get(&obj.metric)
            .and_then(|s| s.window_stats(SLO_WINDOW))
        {
            Some(stats) => {
                let firing = stats.median > obj.max_value;
                Verdict {
                    metric: obj.metric.clone(),
                    detector: "slo",
                    severity: Severity::Page,
                    firing,
                    value: stats.median,
                    threshold: obj.max_value,
                    detail: format!(
                        "windowed median {:.0} vs ceiling {:.0} over last {} samples ({})",
                        stats.median, obj.max_value, stats.count, obj.source
                    ),
                }
            }
            None => Verdict {
                metric: obj.metric.clone(),
                detector: "slo",
                severity: Severity::Page,
                firing: false,
                value: 0.0,
                threshold: obj.max_value,
                detail: format!("no samples yet ({})", obj.source),
            },
        }
    }

    /// All current verdicts: one per SLO objective plus every latched
    /// anomaly firing, pages first, then warns, then quiet objectives.
    pub fn verdicts(&self) -> Vec<Verdict> {
        let mut out: Vec<Verdict> = self
            .objectives
            .iter()
            .map(|obj| self.slo_verdict(obj))
            .collect();
        out.extend(self.latched.values().cloned());
        out.sort_by(|a, b| {
            b.firing
                .cmp(&a.firing)
                .then(b.severity.cmp(&a.severity))
                .then(a.metric.cmp(&b.metric))
                .then(a.detector.cmp(b.detector))
        });
        out
    }

    /// Roll verdicts into an overall status string.
    fn status_of(verdicts: &[Verdict]) -> &'static str {
        let mut firing = false;
        for v in verdicts {
            if !v.firing {
                continue;
            }
            if v.severity == Severity::Page {
                return "page";
            }
            firing = true;
        }
        if firing {
            "warn"
        } else {
            "ok"
        }
    }

    /// The structured report: ticks, rolled-up status, all verdicts.
    pub fn report(&self) -> HealthReport {
        let verdicts = self.verdicts();
        let status = HealthEngine::status_of(&verdicts);
        HealthReport {
            ticks: self.ticks,
            status,
            verdicts,
        }
    }

    /// Render the full `deepeye-health/v1` document (one JSON object,
    /// trailing newline): schema, ticks, status, per-series windowed
    /// stats, objectives, and verdicts.
    pub fn report_json(&self) -> String {
        let report = self.report();
        let mut series_parts: Vec<String> = Vec::new();
        for (metric, ring) in &self.series {
            if let Some(stats) = ring.window_stats(0) {
                let last = ring.last().unwrap_or(0.0);
                series_parts.push(format!(
                    "{{\"metric\":\"{}\",\"count\":{},\"last\":{},\"min\":{},\"max\":{},\
                     \"mean\":{},\"median\":{},\"mad\":{}}}",
                    escape(metric),
                    stats.count,
                    fmt_num(last),
                    fmt_num(stats.min),
                    fmt_num(stats.max),
                    fmt_num(stats.mean),
                    fmt_num(stats.median),
                    fmt_num(stats.mad)
                ));
            }
        }
        let objective_parts: Vec<String> = self
            .objectives
            .iter()
            .map(|o| {
                format!(
                    "{{\"metric\":\"{}\",\"max_value\":{},\"source\":\"{}\"}}",
                    escape(&o.metric),
                    fmt_num(o.max_value),
                    escape(&o.source)
                )
            })
            .collect();
        let verdict_parts: Vec<String> = report
            .verdicts
            .iter()
            .map(|v| {
                format!(
                    "{{\"metric\":\"{}\",\"detector\":\"{}\",\"severity\":\"{}\",\
                     \"firing\":{},\"value\":{},\"threshold\":{},\"detail\":\"{}\"}}",
                    escape(&v.metric),
                    v.detector,
                    v.severity.as_str(),
                    v.firing,
                    fmt_num(v.value),
                    fmt_num(v.threshold),
                    escape(&v.detail)
                )
            })
            .collect();
        format!(
            "{{\"schema\":\"{HEALTH_SCHEMA}\",\"ticks\":{},\"status\":\"{}\",\
             \"series\":[{}],\"objectives\":[{}],\"verdicts\":[{}]}}\n",
            report.ticks,
            report.status,
            series_parts.join(","),
            objective_parts.join(","),
            verdict_parts.join(",")
        )
    }

    /// Current gauges in the Prometheus text exposition format: the
    /// latest sample of every series, the firing-verdict count, and the
    /// tick counter — what the future admin endpoint will serve.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        out.push_str("# HELP deepeye_health_gauge Latest sample per health series.\n");
        out.push_str("# TYPE deepeye_health_gauge gauge\n");
        for (metric, ring) in &self.series {
            if let Some(last) = ring.last() {
                out.push_str(&format!(
                    "deepeye_health_gauge{{metric=\"{}\"}} {}\n",
                    escape(metric),
                    fmt_num(last)
                ));
            }
        }
        let report = self.report();
        let firing = report.verdicts.iter().filter(|v| v.firing).count();
        out.push_str("# HELP deepeye_health_firing Verdicts currently firing.\n");
        out.push_str("# TYPE deepeye_health_firing gauge\n");
        out.push_str(&format!("deepeye_health_firing {firing}\n"));
        out.push_str("# HELP deepeye_health_ticks Telemetry ticks ingested.\n");
        out.push_str("# TYPE deepeye_health_ticks counter\n");
        out.push_str(&format!("deepeye_health_ticks {}\n", self.ticks));
        out
    }
}

/// Format a float for JSON: finite values via the shortest round-trip
/// representation, non-finite clamped to 0 (the document must stay
/// parseable).
fn fmt_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_owned()
    }
}

/// Summary returned by a successful [`validate_health_json`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthSummary {
    /// Telemetry ticks the document covers.
    pub ticks: u64,
    /// Metric series described.
    pub series: usize,
    /// SLO objectives listed.
    pub objectives: usize,
    /// Verdicts listed (firing or not).
    pub verdicts: usize,
    /// Verdicts firing.
    pub firing: usize,
    /// Rolled-up status string.
    pub status: String,
}

fn req_num(obj: &Json, key: &str, what: &str) -> Result<f64, String> {
    let v = obj
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{what} missing numeric `{key}`"))?;
    if !v.is_finite() {
        return Err(format!("{what}.{key} is not finite"));
    }
    Ok(v)
}

fn req_str<'a>(obj: &'a Json, key: &str, what: &str) -> Result<&'a str, String> {
    let s = obj
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{what} missing string `{key}`"))?;
    if s.is_empty() {
        return Err(format!("{what}.{key} is empty"));
    }
    Ok(s)
}

/// Validate a `deepeye-health/v1` document: schema tag, well-formed
/// series stats (`count ≥ 1`, `min ≤ median ≤ max`, `mad ≥ 0`),
/// well-formed objectives and verdicts (known severities, finite
/// numerics), and a `status` consistent with the firing verdicts
/// (`page` iff a page fires, `warn` iff only warns fire, `ok`
/// otherwise).
pub fn validate_health_json(text: &str) -> Result<HealthSummary, String> {
    let doc = parse_json(text.trim()).map_err(|e| format!("health document: {e}"))?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(HEALTH_SCHEMA) => {}
        Some(other) => return Err(format!("unexpected schema {other:?}")),
        None => return Err("missing `schema`".to_owned()),
    }
    let ticks = req_num(&doc, "ticks", "document")?;
    if ticks < 0.0 || ticks.fract() != 0.0 {
        return Err(format!("ticks {ticks} is not a non-negative integer"));
    }
    let status = req_str(&doc, "status", "document")?;
    if !matches!(status, "ok" | "warn" | "page") {
        return Err(format!("unknown status {status:?}"));
    }

    let series = doc
        .get("series")
        .and_then(Json::as_array)
        .ok_or("missing `series` array")?;
    for (i, entry) in series.iter().enumerate() {
        let what = format!("series {i}");
        let metric = req_str(entry, "metric", &what)?;
        let what = format!("series `{metric}`");
        let count = req_num(entry, "count", &what)?;
        if count < 1.0 || count.fract() != 0.0 {
            return Err(format!("{what} count {count} is not a positive integer"));
        }
        req_num(entry, "last", &what)?;
        let min = req_num(entry, "min", &what)?;
        let max = req_num(entry, "max", &what)?;
        req_num(entry, "mean", &what)?;
        let median = req_num(entry, "median", &what)?;
        let mad = req_num(entry, "mad", &what)?;
        if !(min <= median && median <= max) {
            return Err(format!(
                "{what} stats inconsistent: min {min} median {median} max {max}"
            ));
        }
        if mad < 0.0 {
            return Err(format!("{what} mad {mad} is negative"));
        }
    }

    let objectives = doc
        .get("objectives")
        .and_then(Json::as_array)
        .ok_or("missing `objectives` array")?;
    for (i, entry) in objectives.iter().enumerate() {
        let what = format!("objective {i}");
        let metric = req_str(entry, "metric", &what)?;
        let what = format!("objective `{metric}`");
        let max_value = req_num(entry, "max_value", &what)?;
        if max_value <= 0.0 {
            return Err(format!("{what} max_value {max_value} is not positive"));
        }
        req_str(entry, "source", &what)?;
    }

    let verdicts = doc
        .get("verdicts")
        .and_then(Json::as_array)
        .ok_or("missing `verdicts` array")?;
    let mut firing = 0usize;
    let mut page_firing = false;
    let mut warn_firing = false;
    for (i, entry) in verdicts.iter().enumerate() {
        let what = format!("verdict {i}");
        let metric = req_str(entry, "metric", &what)?;
        let what = format!("verdict `{metric}`");
        req_str(entry, "detector", &what)?;
        let severity = req_str(entry, "severity", &what)?;
        if !matches!(severity, "warn" | "page") {
            return Err(format!("{what} has unknown severity {severity:?}"));
        }
        let is_firing = entry
            .get("firing")
            .and_then(Json::as_bool)
            .ok_or_else(|| format!("{what} missing boolean `firing`"))?;
        req_num(entry, "value", &what)?;
        req_num(entry, "threshold", &what)?;
        req_str(entry, "detail", &what)?;
        if is_firing {
            firing += 1;
            if severity == "page" {
                page_firing = true;
            } else {
                warn_firing = true;
            }
        }
    }
    let expected = if page_firing {
        "page"
    } else if warn_firing {
        "warn"
    } else {
        "ok"
    };
    if status != expected {
        return Err(format!(
            "status {status:?} inconsistent with firing verdicts (expected {expected:?})"
        ));
    }
    Ok(HealthSummary {
        ticks: ticks as u64,
        series: series.len(),
        objectives: objectives.len(),
        verdicts: verdicts.len(),
        firing,
        status: status.to_owned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic but fully valid telemetry line: one stage with the
    /// given quantiles, plus steady counters/alloc/spans/proc parts.
    fn tick_line(seq: u64, p50: u64, rss: u64) -> String {
        let t_ns = seq * 1_000_000;
        format!(
            "{{\"schema\":\"{TELEMETRY_SCHEMA}\",\"seq\":{seq},\"t_ns\":{t_ns},\
             \"interval_ns\":1000000,\"counters\":{{\"exec.ok\":5}},\"hists\":{{}},\
             \"stages\":{{\"harness.execute\":{{\"count\":1,\"total_ns\":{p50},\
             \"p50_ns\":{p50},\"p95_ns\":{p50},\"p99_ns\":{p50}}}}},\
             \"alloc\":{{\"count\":2,\"bytes\":64}},\
             \"spans\":{{\"finished\":{seq},\"retained\":{seq},\"dropped\":0,\"capacity\":0}},\
             \"proc\":{{\"rss_bytes\":{rss},\"cpu_user_ticks\":1,\"cpu_sys_ticks\":1}},\
             \"stalls\":[]}}\n"
        )
    }

    fn steady_engine(ticks: u64) -> HealthEngine {
        let mut engine = HealthEngine::new(HealthConfig::default());
        for seq in 1..=ticks {
            // Small deterministic jitter: ±2% around 1ms.
            let jitter = (seq % 5) * 4_000;
            engine
                .ingest_line(&tick_line(seq, 1_000_000 + jitter, 50_000_000))
                .expect("valid line");
        }
        engine
    }

    #[test]
    fn steady_stream_reports_ok() {
        let engine = steady_engine(40);
        let report = engine.report();
        assert_eq!(report.ticks, 40);
        assert_eq!(report.status, "ok");
        assert!(report.verdicts.iter().all(|v| !v.firing));
        let doc = engine.report_json();
        let summary = validate_health_json(&doc).expect("valid document");
        assert_eq!(summary.status, "ok");
        assert_eq!(summary.firing, 0);
        assert!(summary.series > 0);
    }

    #[test]
    fn injected_slowdown_fires_drift_on_the_stage_metric() {
        let mut engine = HealthEngine::new(HealthConfig::default());
        for seq in 1..=60 {
            let p50 = if seq > 40 { 3_000_000 } else { 1_000_000 };
            engine
                .ingest_line(&tick_line(seq, p50, 50_000_000))
                .expect("valid line");
        }
        let report = engine.report();
        assert_eq!(report.status, "warn");
        let fired: Vec<&Verdict> = report.verdicts.iter().filter(|v| v.firing).collect();
        assert!(!fired.is_empty());
        assert!(
            fired
                .iter()
                .any(|v| v.metric.contains("stage.harness.execute") && v.detector == "ewma_drift"),
            "drift verdict names the stage metric: {fired:?}"
        );
        let doc = engine.report_json();
        let summary = validate_health_json(&doc).expect("valid document");
        assert_eq!(summary.status, "warn");
        assert!(summary.firing >= 1);
    }

    #[test]
    fn slo_objective_pages_when_median_exceeds_ceiling() {
        let config = HealthConfig::default().with_objectives(vec![SloObjective {
            metric: "stage.harness.execute.p50_ns".to_owned(),
            max_value: 500_000.0,
            source: "test".to_owned(),
        }]);
        let mut engine = HealthEngine::new(config);
        for seq in 1..=20 {
            engine
                .ingest_line(&tick_line(seq, 1_000_000, 50_000_000))
                .expect("valid line");
        }
        let report = engine.report();
        assert_eq!(report.status, "page");
        let slo = report
            .verdicts
            .iter()
            .find(|v| v.detector == "slo")
            .expect("slo verdict present");
        assert!(slo.firing);
        assert_eq!(slo.severity, Severity::Page);
        assert_eq!(slo.metric, "stage.harness.execute.p50_ns");
        let summary = validate_health_json(&engine.report_json()).expect("valid document");
        assert_eq!(summary.status, "page");
    }

    #[test]
    fn quiet_objective_is_listed_but_not_firing() {
        let config = HealthConfig::default().with_objectives(vec![SloObjective {
            metric: "stage.harness.execute.p50_ns".to_owned(),
            max_value: 60_000_000_000.0,
            source: "perf::BUDGETS".to_owned(),
        }]);
        let mut engine = HealthEngine::new(config);
        for seq in 1..=10 {
            engine
                .ingest_line(&tick_line(seq, 1_000_000, 50_000_000))
                .expect("valid line");
        }
        let report = engine.report();
        assert_eq!(report.status, "ok");
        assert_eq!(report.verdicts.len(), 1, "objective listed even when quiet");
        let summary = validate_health_json(&engine.report_json()).expect("valid document");
        assert_eq!(summary.objectives, 1);
        assert_eq!(summary.verdicts, 1);
        assert_eq!(summary.firing, 0);
    }

    #[test]
    fn monotonic_rss_growth_pages() {
        let mut engine = HealthEngine::new(HealthConfig::default());
        for seq in 1..=24 {
            // RSS grows 2% per tick, strictly — a leak signature.
            let rss = 50_000_000 + seq * 1_000_000;
            engine
                .ingest_line(&tick_line(seq, 1_000_000, rss))
                .expect("valid line");
        }
        let report = engine.report();
        assert_eq!(report.status, "page");
        assert!(report
            .verdicts
            .iter()
            .any(|v| v.firing && v.detector == "monotonic_growth" && v.metric == "proc.rss_bytes"));
    }

    #[test]
    fn detectors_do_not_fire_on_empty_or_tiny_windows() {
        let drift = EwmaDrift::default();
        let z = RobustZ::default();
        let growth = MonotonicGrowth::default();
        let empty = RingSeries::new(8);
        assert!(drift.evaluate("stage.x.p50_ns", &empty).is_none());
        assert!(z.evaluate("stage.x.p50_ns", &empty).is_none());
        assert!(growth.evaluate("proc.rss_bytes", &empty).is_none());
        let mut one = RingSeries::new(8);
        one.push(1_000_000.0);
        assert!(drift.evaluate("stage.x.p50_ns", &one).is_none());
        assert!(z.evaluate("stage.x.p50_ns", &one).is_none());
        assert!(growth.evaluate("proc.rss_bytes", &one).is_none());
    }

    #[test]
    fn flat_series_never_fires_robust_z() {
        let z = RobustZ::default();
        let mut s = RingSeries::new(64);
        for _ in 0..32 {
            s.push(1_000_000.0);
        }
        // MAD is zero: a flat series has no scale, so even a huge jump
        // is judged by drift, not z.
        s.push(50_000_000.0);
        assert!(z.evaluate("stage.x.p50_ns", &s).is_none());
    }

    #[test]
    fn near_flat_series_needs_a_material_deviation_to_fire_z() {
        let z = RobustZ::default();
        // ~10ms series with ±30µs jitter: the MAD collapses to tens of
        // microseconds, so a 0.5% excursion scores a huge z — but it is
        // below the relative floor and must not fire.
        let mut s = RingSeries::new(64);
        for i in 0..32u32 {
            s.push(10_000_000.0 + f64::from(i % 3) * 30_000.0);
        }
        s.push(10_050_000.0);
        assert!(z.evaluate("stage.x.p50_ns", &s).is_none());
        // A 3x excursion clears both the z threshold and the floor.
        let mut s = RingSeries::new(64);
        for i in 0..32u32 {
            s.push(10_000_000.0 + f64::from(i % 3) * 30_000.0);
        }
        s.push(30_000_000.0);
        let v = z.evaluate("stage.x.p50_ns", &s).unwrap();
        assert!(v.firing);
        assert!(v.value > 8.0);
    }

    #[test]
    fn ingest_errors_name_the_offending_metric() {
        let mut engine = HealthEngine::new(HealthConfig::default());
        assert!(engine.ingest_line("").is_err());
        assert!(engine
            .ingest_line("{\"schema\":\"other/v1\"}")
            .unwrap_err()
            .contains("schema"));
        let bad = tick_line(1, 1_000_000, 1).replace("\"exec.ok\":5", "\"exec.ok\":\"x\"");
        assert!(engine.ingest_line(&bad).unwrap_err().contains("exec.ok"));
        let bad = tick_line(1, 1_000_000, 1).replace(",\"p95_ns\":1000000", "");
        let err = engine.ingest_line(&bad).unwrap_err();
        assert!(
            err.contains("harness.execute") && err.contains("p95_ns"),
            "stage errors name path and field: {err}"
        );
    }

    #[test]
    fn prometheus_text_exposes_gauges_and_firing_count() {
        let engine = steady_engine(20);
        let text = engine.prometheus_text();
        assert!(text.contains("# TYPE deepeye_health_gauge gauge"));
        assert!(text.contains("deepeye_health_gauge{metric=\"stage.harness.execute.p50_ns\"}"));
        assert!(text.contains("deepeye_health_firing 0\n"));
        assert!(text.contains("deepeye_health_ticks 20\n"));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_health_json("").is_err());
        assert!(validate_health_json("not json").is_err());
        let engine = steady_engine(20);
        let doc = engine.report_json();
        let bad = doc.replace("deepeye-health/v1", "deepeye-health/v0");
        assert!(validate_health_json(&bad).unwrap_err().contains("schema"));
        let bad = doc.replace("\"status\":\"ok\"", "\"status\":\"page\"");
        assert!(validate_health_json(&bad)
            .unwrap_err()
            .contains("inconsistent"));
        let bad = doc.replace("\"status\":\"ok\"", "\"status\":\"great\"");
        assert!(validate_health_json(&bad).unwrap_err().contains("status"));
    }

    #[test]
    fn latched_verdicts_survive_recovery() {
        let mut engine = HealthEngine::new(HealthConfig::default());
        // 30 steady ticks, a 10-tick spike, then 30 steady again.
        for seq in 1..=70 {
            let p50 = if (31..=40).contains(&seq) {
                5_000_000
            } else {
                1_000_000
            };
            engine
                .ingest_line(&tick_line(seq, p50, 50_000_000))
                .expect("valid line");
        }
        let report = engine.report();
        assert_eq!(report.status, "warn", "mid-run spike stays latched");
        assert!(report
            .verdicts
            .iter()
            .any(|v| v.firing && v.detail.contains("first fired at tick")));
    }
}
