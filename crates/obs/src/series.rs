//! Fixed-capacity per-metric ring timeseries for the health engine.
//!
//! Each telemetry tick contributes one sample per live metric — a
//! counter delta, a stage interval quantile, an allocation total, an
//! RSS reading — and the health detectors (see [`crate::health`]) need
//! a bounded rolling history of those samples to score the newest one
//! against. [`RingSeries`] is that history: a fixed-capacity ring of
//! `f64` samples with O(1) append (the oldest sample is overwritten
//! once the ring is full, mirroring the span ring's bounded-retention
//! design) and windowed min/max/mean/median/MAD queries computed over
//! the most recent `w` samples.
//!
//! Statistics are recomputed from the ring contents on every query
//! rather than maintained incrementally. That costs an O(w log w) sort
//! per query — irrelevant at health-engine cadence (one evaluation per
//! telemetry tick over a few hundred samples) — and buys the property
//! the detector determinism tests lean on: the ring contents alone
//! decide every statistic, so appending N samples in one batch
//! ([`RingSeries::extend`]) is indistinguishable from N single appends.

/// Windowed summary statistics over the most recent samples of a
/// [`RingSeries`]. `median`/`mad` are the robust center/spread pair the
/// z-score detector uses; `mad` is the raw median absolute deviation
/// (unscaled — consumers apply the 1.4826 normal-consistency factor).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowStats {
    /// Samples actually covered (≤ the requested window).
    pub count: usize,
    pub min: f64,
    pub max: f64,
    pub mean: f64,
    pub median: f64,
    /// Median absolute deviation from `median`, unscaled.
    pub mad: f64,
}

/// A fixed-capacity ring of `f64` samples: O(1) append, oldest-first
/// overwrite, windowed statistics over the newest samples.
#[derive(Debug, Clone)]
pub struct RingSeries {
    /// Ring storage; grows up to `cap` then wraps.
    values: Vec<f64>,
    /// Next write position once the ring is full.
    head: usize,
    cap: usize,
    /// Samples ever appended (not capped).
    total: u64,
}

impl RingSeries {
    /// A ring retaining the last `capacity` samples (`capacity` is
    /// clamped to at least 1).
    pub fn new(capacity: usize) -> RingSeries {
        let cap = capacity.max(1);
        RingSeries {
            values: Vec::new(),
            head: 0,
            cap,
            total: 0,
        }
    }

    /// Retention capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Samples currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Samples ever appended, including overwritten ones.
    pub fn total_appended(&self) -> u64 {
        self.total
    }

    /// The most recent sample, if any.
    pub fn last(&self) -> Option<f64> {
        if self.values.len() < self.cap {
            self.values.last().copied()
        } else {
            // `head` is the next write slot, so the newest sample sits
            // just before it (wrapping).
            let idx = if self.head == 0 {
                self.values.len() - 1
            } else {
                self.head - 1
            };
            self.values.get(idx).copied()
        }
    }

    /// Append one sample, overwriting the oldest once full. Non-finite
    /// samples are recorded as 0.0 so the ring never carries NaN/inf
    /// into detector math or JSON output.
    pub fn push(&mut self, value: f64) {
        let v = if value.is_finite() { value } else { 0.0 };
        self.total = self.total.saturating_add(1);
        if self.values.len() < self.cap {
            self.values.push(v);
            return;
        }
        if let Some(slot) = self.values.get_mut(self.head) {
            *slot = v;
        }
        self.head += 1;
        if self.head == self.cap {
            self.head = 0;
        }
    }

    /// Append a batch of samples; exactly equivalent to `push` in a
    /// loop (the determinism property the proptests assert).
    pub fn extend(&mut self, samples: &[f64]) {
        for &v in samples {
            self.push(v);
        }
    }

    /// The most recent `window` samples, oldest first. A window of 0 or
    /// larger than the retained count is clamped to the retained count.
    pub fn window(&self, window: usize) -> Vec<f64> {
        let len = self.values.len();
        let w = if window == 0 { len } else { window.min(len) };
        let mut out = Vec::with_capacity(w);
        // Chronological order: `head` is the oldest sample once the
        // ring has wrapped; before that the vec itself is chronological.
        let start_at = len - w;
        for logical in start_at..len {
            let idx = if len < self.cap {
                logical
            } else {
                let shifted = self.head + logical;
                if shifted >= len {
                    shifted - len
                } else {
                    shifted
                }
            };
            if let Some(&v) = self.values.get(idx) {
                out.push(v);
            }
        }
        out
    }

    /// Windowed min/max/mean/median/MAD over the most recent `window`
    /// samples (`0` = everything retained). `None` when the ring is
    /// empty — detectors must not fire on empty windows.
    pub fn window_stats(&self, window: usize) -> Option<WindowStats> {
        stats_of(&self.window(window))
    }
}

/// Summary statistics of a raw sample slice — the single computation
/// both [`RingSeries::window_stats`] and the health detectors use, so
/// every consumer agrees on the min/max/mean/median/MAD definitions.
/// `None` for an empty slice.
pub fn stats_of(vals: &[f64]) -> Option<WindowStats> {
    if vals.is_empty() {
        return None;
    }
    let count = vals.len();
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0f64;
    for &v in vals {
        if v < min {
            min = v;
        }
        if v > max {
            max = v;
        }
        sum += v;
    }
    let mean = sum / count as f64;
    let median = median_of(vals.to_vec());
    let deviations: Vec<f64> = vals.iter().map(|v| (v - median).abs()).collect();
    let mad = median_of(deviations);
    Some(WindowStats {
        count,
        min,
        max,
        mean,
        median,
        mad,
    })
}

/// Median of a sample set by sorting (the set is small and bounded by
/// the ring capacity). Even-length sets take the mean of the middle
/// pair. Returns 0.0 for an empty set.
fn median_of(mut vals: Vec<f64>) -> f64 {
    if vals.is_empty() {
        return 0.0;
    }
    vals.sort_by(f64::total_cmp);
    let mid = vals.len() / 2;
    if vals.len() % 2 == 1 {
        vals.get(mid).copied().unwrap_or(0.0)
    } else {
        let hi = vals.get(mid).copied().unwrap_or(0.0);
        let lo = vals.get(mid - 1).copied().unwrap_or(0.0);
        (lo + hi) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ring_reports_nothing() {
        let s = RingSeries::new(8);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.last(), None);
        assert_eq!(s.window_stats(4), None);
        assert!(s.window(4).is_empty());
    }

    #[test]
    fn append_is_chronological_before_wrap() {
        let mut s = RingSeries::new(8);
        s.extend(&[1.0, 2.0, 3.0]);
        assert_eq!(s.window(0), vec![1.0, 2.0, 3.0]);
        assert_eq!(s.window(2), vec![2.0, 3.0]);
        assert_eq!(s.last(), Some(3.0));
        assert_eq!(s.total_appended(), 3);
    }

    #[test]
    fn overwrite_keeps_the_newest_samples() {
        let mut s = RingSeries::new(4);
        for v in 1..=10 {
            s.push(v as f64);
        }
        assert_eq!(s.len(), 4);
        assert_eq!(s.window(0), vec![7.0, 8.0, 9.0, 10.0]);
        assert_eq!(s.last(), Some(10.0));
        assert_eq!(s.total_appended(), 10);
    }

    #[test]
    fn window_stats_match_hand_computation() {
        let mut s = RingSeries::new(16);
        s.extend(&[1.0, 2.0, 3.0, 4.0, 100.0]);
        let stats = s.window_stats(0).expect("non-empty");
        assert_eq!(stats.count, 5);
        assert_eq!(stats.min, 1.0);
        assert_eq!(stats.max, 100.0);
        assert_eq!(stats.mean, 22.0);
        assert_eq!(stats.median, 3.0);
        // |1-3| |2-3| |3-3| |4-3| |100-3| → 2 1 0 1 97 → median 1.
        assert_eq!(stats.mad, 1.0);
    }

    #[test]
    fn even_window_takes_middle_pair_mean() {
        let mut s = RingSeries::new(8);
        s.extend(&[1.0, 2.0, 3.0, 4.0]);
        let stats = s.window_stats(0).expect("non-empty");
        assert_eq!(stats.median, 2.5);
    }

    #[test]
    fn single_sample_stats_degenerate_cleanly() {
        let mut s = RingSeries::new(8);
        s.push(7.0);
        let stats = s.window_stats(0).expect("one sample");
        assert_eq!(stats.count, 1);
        assert_eq!(stats.min, 7.0);
        assert_eq!(stats.max, 7.0);
        assert_eq!(stats.mean, 7.0);
        assert_eq!(stats.median, 7.0);
        assert_eq!(stats.mad, 0.0);
    }

    #[test]
    fn non_finite_samples_are_sanitized() {
        let mut s = RingSeries::new(4);
        s.extend(&[f64::NAN, f64::INFINITY, 2.0]);
        assert_eq!(s.window(0), vec![0.0, 0.0, 2.0]);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut s = RingSeries::new(0);
        assert_eq!(s.capacity(), 1);
        s.extend(&[1.0, 2.0]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.last(), Some(2.0));
    }
}
