//! Chrome trace-event export and validation.
//!
//! The exporter emits the [Trace Event Format] consumed by
//! `chrome://tracing` and Perfetto: a `traceEvents` array of `B`/`E`
//! duration events (µs timestamps) plus `M` metadata events naming the
//! process and threads. Events replay the *recorded interleaving* (the
//! begin/end sequence numbers of [`SpanRecord`]), not a timestamp sort —
//! timestamp ties therefore can never unbalance the B/E nesting.
//!
//! [`validate_chrome_trace`] is the consuming side: it checks the JSON
//! shape and that every `B` has a matching, correctly nested `E` per
//! thread. CI runs it against the trace the quickstart example emits.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::json::{escape, parse_json, Json};
use crate::observer::SpanRecord;
use crate::ring::RetentionStats;
use std::collections::BTreeMap;

/// Serialize spans as Chrome trace-event JSON.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    chrome_trace_json_inner(spans, None)
}

/// Serialize spans with an explicit `span_accounting` metadata event, so
/// a trace exported from a bounded flight recorder declares how many
/// spans were sampled away. A trace whose accounting says `dropped > 0`
/// must be marked `truncated` — [`validate_chrome_trace`] rejects
/// drop-without-marker.
pub fn chrome_trace_json_with_accounting(spans: &[SpanRecord], stats: &RetentionStats) -> String {
    chrome_trace_json_inner(spans, Some(stats))
}

fn chrome_trace_json_inner(spans: &[SpanRecord], stats: Option<&RetentionStats>) -> String {
    // One event per begin and per end, replayed in recorded order.
    let mut events: Vec<(u64, String)> = Vec::with_capacity(2 * spans.len() + 4);
    let mut tids: Vec<u64> = Vec::new();
    for span in spans {
        if !tids.contains(&span.tid) {
            tids.push(span.tid);
        }
        let ts_us = span.start_ns as f64 / 1e3;
        let end_us = (span.start_ns + span.dur_ns) as f64 / 1e3;
        events.push((
            span.begin_seq,
            format!(
                "{{\"name\":\"{}\",\"cat\":\"deepeye\",\"ph\":\"B\",\"ts\":{ts_us:.3},\"pid\":1,\"tid\":{}}}",
                escape(span.name),
                span.tid
            ),
        ));
        events.push((
            span.end_seq,
            format!(
                "{{\"name\":\"{}\",\"cat\":\"deepeye\",\"ph\":\"E\",\"ts\":{end_us:.3},\"pid\":1,\"tid\":{}}}",
                escape(span.name),
                span.tid
            ),
        ));
    }
    events.sort_by_key(|(seq, _)| *seq);
    tids.sort_unstable();

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let push = |line: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&line);
    };
    push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"deepeye\"}}"
            .to_owned(),
        &mut out,
        &mut first,
    );
    if let Some(stats) = stats {
        push(
            format!(
                "{{\"name\":\"span_accounting\",\"ph\":\"M\",\"pid\":1,\"args\":{{\
                 \"finished\":{},\"retained\":{},\"dropped\":{},\"truncated\":{}}}}}",
                stats.finished,
                stats.retained,
                stats.dropped,
                stats.dropped > 0
            ),
            &mut out,
            &mut first,
        );
    }
    for tid in tids {
        push(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":\"thread-{tid}\"}}}}"
            ),
            &mut out,
            &mut first,
        );
    }
    for (_, line) in events {
        push(line, &mut out, &mut first);
    }
    out.push_str("\n]}\n");
    out
}

/// Summary returned by a successful [`validate_chrome_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total events, metadata included.
    pub events: usize,
    /// Completed B/E span pairs.
    pub spans: usize,
    /// Maximum nesting depth across threads.
    pub max_depth: usize,
    /// Distinct thread lanes seen on duration events.
    pub threads: usize,
    /// Spans the recorder sampled away per the `span_accounting`
    /// metadata event (0 when absent).
    pub dropped: u64,
    /// Whether the trace declares itself truncated.
    pub truncated: bool,
}

/// Validate a Chrome trace-event document: well-formed JSON (bare array
/// or `{"traceEvents": [...]}`), legal `ph` phases, numeric non-negative
/// `ts`/`dur` where required, timestamps non-decreasing per thread, and
/// balanced, name-matched `B`/`E` nesting per thread. A trace carrying a
/// `span_accounting` metadata event must be internally consistent:
/// `retained + dropped == finished`, the retained count must match the
/// span pairs actually present, and `dropped > 0` requires the
/// `truncated` marker (a sampled trace may never pose as complete).
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    let doc = parse_json(text).map_err(|e| e.to_string())?;
    let events = match &doc {
        Json::Arr(items) => items.as_slice(),
        Json::Obj(_) => doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .ok_or("document has no `traceEvents` array")?,
        _ => return Err("document is neither an event array nor an object".to_owned()),
    };

    let mut stacks: BTreeMap<(u64, u64), Vec<String>> = BTreeMap::new();
    let mut last_ts: BTreeMap<(u64, u64), f64> = BTreeMap::new();
    let mut spans = 0usize;
    let mut max_depth = 0usize;
    let mut accounting: Option<(u64, u64, bool)> = None;
    for (i, event) in events.iter().enumerate() {
        let fail = |msg: String| Err(format!("event {i}: {msg}"));
        if event.as_object().is_none() {
            return fail("not an object".to_owned());
        }
        let Some(ph) = event.get("ph").and_then(Json::as_str) else {
            return fail("missing `ph`".to_owned());
        };
        if !matches!(ph, "B" | "E" | "X" | "M" | "C" | "I" | "i") {
            return fail(format!("unknown phase {ph:?}"));
        }
        if ph == "M" {
            if event.get("name").and_then(Json::as_str) == Some("span_accounting") {
                let args = event
                    .get("args")
                    .ok_or_else(|| format!("event {i}: span_accounting without `args`"))?;
                let field = |key: &str| -> Result<u64, String> {
                    match args.get(key).and_then(Json::as_f64) {
                        Some(v) if v >= 0.0 && v.fract() == 0.0 => Ok(v as u64),
                        _ => Err(format!("event {i}: span_accounting bad `{key}`")),
                    }
                };
                let finished = field("finished")?;
                let retained = field("retained")?;
                let dropped = field("dropped")?;
                let truncated = match args.get("truncated") {
                    Some(Json::Bool(b)) => *b,
                    _ => return fail("span_accounting without boolean `truncated`".to_owned()),
                };
                if retained + dropped != finished {
                    return fail(format!(
                        "span_accounting inconsistent: retained {retained} + dropped {dropped} \
                         != finished {finished}"
                    ));
                }
                if dropped > 0 && !truncated {
                    return fail(format!(
                        "{dropped} spans dropped but trace not marked truncated"
                    ));
                }
                if dropped == 0 && truncated {
                    return fail("trace marked truncated with zero drops".to_owned());
                }
                accounting = Some((retained, dropped, truncated));
            }
            continue;
        }
        let ts = match event.get("ts").and_then(Json::as_f64) {
            Some(ts) if ts >= 0.0 && ts.is_finite() => ts,
            Some(ts) => return fail(format!("bad ts {ts}")),
            None => return fail("missing numeric `ts`".to_owned()),
        };
        let pid = event.get("pid").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        let tid = event.get("tid").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        let lane = (pid, tid);
        if let Some(&prev) = last_ts.get(&lane) {
            if ts + 1e-9 < prev {
                return fail(format!("ts {ts} decreases (lane {lane:?}, prev {prev})"));
            }
        }
        last_ts.insert(lane, ts);
        match ph {
            "B" => {
                let Some(name) = event.get("name").and_then(Json::as_str) else {
                    return fail("B event without a name".to_owned());
                };
                let stack = stacks.entry(lane).or_default();
                stack.push(name.to_owned());
                max_depth = max_depth.max(stack.len());
            }
            "E" => {
                let stack = stacks.entry(lane).or_default();
                let Some(open) = stack.pop() else {
                    return fail(format!("E without matching B on lane {lane:?}"));
                };
                if let Some(name) = event.get("name").and_then(Json::as_str) {
                    if name != open {
                        return fail(format!("E name {name:?} closes B name {open:?}"));
                    }
                }
                spans += 1;
            }
            "X" => {
                match event.get("dur").and_then(Json::as_f64) {
                    Some(dur) if dur >= 0.0 && dur.is_finite() => {}
                    _ => return fail("X event without a non-negative `dur`".to_owned()),
                }
                spans += 1;
            }
            _ => {}
        }
    }
    for (lane, stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!("unclosed span {open:?} on lane {lane:?}"));
        }
    }
    let (dropped, truncated) = match accounting {
        Some((retained, dropped, truncated)) => {
            if retained != spans as u64 {
                return Err(format!(
                    "span_accounting claims {retained} retained spans but the trace holds {spans}"
                ));
            }
            (dropped, truncated)
        }
        None => (0, false),
    };
    let threads = last_ts.len();
    Ok(TraceSummary {
        events: events.len(),
        spans,
        max_depth,
        threads,
        dropped,
        truncated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Observer;

    #[test]
    fn empty_trace_is_valid() {
        let json = chrome_trace_json(&[]);
        let summary = validate_chrome_trace(&json).expect("valid");
        assert_eq!(summary.spans, 0);
    }

    #[test]
    fn exported_trace_round_trips() {
        let obs = Observer::enabled();
        {
            let _a = obs.span("outer");
            {
                let _b = obs.span("inner");
            }
            {
                let _c = obs.span("inner");
            }
        }
        let json = obs.chrome_trace_json();
        let summary = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(summary.spans, 3);
        assert_eq!(summary.max_depth, 2);
    }

    #[test]
    fn multithreaded_trace_stays_balanced() {
        let obs = Observer::enabled();
        let stage = obs.span("stage");
        let stage_id = stage.id();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let obs = obs.clone();
                scope.spawn(move || {
                    let _w = obs.span_under("worker", stage_id);
                    let _inner = obs.span("unit");
                });
            }
        });
        drop(stage);
        let summary = validate_chrome_trace(&obs.chrome_trace_json()).expect("valid");
        assert_eq!(summary.spans, 9);
        assert!(summary.threads >= 2, "workers get their own lanes");
    }

    #[test]
    fn rejects_unbalanced_and_malformed() {
        // E without B.
        let bad = r#"[{"ph":"E","ts":1,"pid":1,"tid":1,"name":"x"}]"#;
        assert!(validate_chrome_trace(bad).is_err());
        // Unclosed B.
        let bad = r#"[{"ph":"B","ts":1,"pid":1,"tid":1,"name":"x"}]"#;
        assert!(validate_chrome_trace(bad).is_err());
        // Name mismatch.
        let bad = r#"[{"ph":"B","ts":1,"pid":1,"tid":1,"name":"x"},
                      {"ph":"E","ts":2,"pid":1,"tid":1,"name":"y"}]"#;
        assert!(validate_chrome_trace(bad).is_err());
        // Decreasing timestamps.
        let bad = r#"[{"ph":"B","ts":5,"pid":1,"tid":1,"name":"x"},
                      {"ph":"E","ts":1,"pid":1,"tid":1,"name":"x"}]"#;
        assert!(validate_chrome_trace(bad).is_err());
        // Unknown phase.
        let bad = r#"[{"ph":"Z","ts":1,"pid":1,"tid":1}]"#;
        assert!(validate_chrome_trace(bad).is_err());
        // Missing ts.
        let bad = r#"[{"ph":"B","pid":1,"tid":1,"name":"x"}]"#;
        assert!(validate_chrome_trace(bad).is_err());
        // Not JSON at all.
        assert!(validate_chrome_trace("not json").is_err());
    }

    #[test]
    fn accepts_bare_arrays_and_x_events() {
        let ok = r#"[{"ph":"X","ts":1,"dur":5,"pid":1,"tid":1,"name":"x"}]"#;
        let summary = validate_chrome_trace(ok).expect("valid");
        assert_eq!(summary.spans, 1);
        let bad = r#"[{"ph":"X","ts":1,"pid":1,"tid":1,"name":"x"}]"#;
        assert!(validate_chrome_trace(bad).is_err(), "X needs dur");
    }

    #[test]
    fn truncated_trace_requires_the_marker() {
        let obs = Observer::with_recorder(crate::observer::RecorderConfig::bounded(2));
        for _ in 0..10 {
            let _s = obs.span("op");
        }
        let json = obs.chrome_trace_json();
        let summary = validate_chrome_trace(&json).expect("valid truncated trace");
        assert_eq!(summary.spans, 2);
        assert_eq!(summary.dropped, 8);
        assert!(summary.truncated);
        // Drop-without-marker must be rejected.
        let bad = json.replace("\"truncated\":true", "\"truncated\":false");
        assert!(validate_chrome_trace(&bad)
            .unwrap_err()
            .contains("truncated"));
        // Accounting that hides the drops from the span count is a lie.
        let bad = json.replace(
            "\"retained\":2,\"dropped\":8,\"truncated\":true",
            "\"retained\":10,\"dropped\":0,\"truncated\":false",
        );
        assert!(validate_chrome_trace(&bad).unwrap_err().contains("claims"));
    }

    #[test]
    fn complete_trace_accounting_validates() {
        let obs = Observer::enabled();
        {
            let _s = obs.span("op");
        }
        let json = obs.chrome_trace_json();
        assert!(json.contains("span_accounting"));
        let summary = validate_chrome_trace(&json).expect("valid");
        assert!(!summary.truncated);
        assert_eq!(summary.dropped, 0);
        // Marking a complete trace truncated is also inconsistent.
        let bad = json.replace("\"truncated\":false", "\"truncated\":true");
        assert!(validate_chrome_trace(&bad).is_err());
        // Traces without any accounting event (external tools) still pass.
        let bare = chrome_trace_json(&obs.finished_spans());
        let summary = validate_chrome_trace(&bare).expect("valid bare trace");
        assert_eq!(summary.dropped, 0);
    }

    #[test]
    fn zero_duration_nested_spans_balance() {
        // Same-timestamp B/B/E/E must validate: ordering comes from the
        // recorded sequence, not a timestamp sort.
        let obs = Observer::enabled();
        for _ in 0..50 {
            let _a = obs.span("a");
            let _b = obs.span("b");
        }
        validate_chrome_trace(&obs.chrome_trace_json()).expect("balanced");
    }
}
