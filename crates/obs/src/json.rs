//! A minimal JSON reader/writer helper.
//!
//! The workspace has no serde (offline build environment), and the
//! observability layer both *emits* JSON (metrics snapshots, Chrome
//! traces) and *checks* it (the trace validator, CI schema checks, tests
//! asserting on exported snapshots). Emission is plain string building
//! plus [`escape`]; this module adds the small recursive-descent parser
//! the checking side needs. It is not a general-purpose JSON library —
//! no streaming, no number-precision guarantees beyond `f64`.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key/value pairs in document order (duplicate keys kept as-is).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse_json(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

/// Escape a string for embedding in a JSON document (without the quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Nesting depth cap: the documents this crate reads are shallow (trace
/// events, metrics snapshots); a cap turns pathological input into an
/// error instead of a stack overflow.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are rejected rather than
                            // combined — nothing this crate emits uses them.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    match s.chars().next() {
                        Some(c) => {
                            out.push(c);
                            self.pos += c.len_utf8();
                        }
                        None => return Err(self.err("unterminated string")),
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(self.bytes.get(start..self.pos).unwrap_or_default())
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse_json("null").unwrap(), Json::Null);
        assert_eq!(parse_json("true").unwrap(), Json::Bool(true));
        assert_eq!(parse_json(" false ").unwrap(), Json::Bool(false));
        assert_eq!(parse_json("42").unwrap(), Json::Num(42.0));
        assert_eq!(parse_json("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(
            parse_json("\"a\\nb\\u0041\"").unwrap(),
            Json::Str("a\nbA".to_owned())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"a": [1, 2, {"b": "x"}], "c": {}, "d": []}"#;
        let v = parse_json(doc).unwrap();
        assert_eq!(
            v.get("a").and_then(Json::as_array).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("a")
                .and_then(|a| a.as_array())
                .and_then(|a| a[2].get("b"))
                .and_then(Json::as_str),
            Some("x")
        );
        assert!(v.get("c").and_then(Json::as_object).is_some());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_json("").is_err());
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("1 2").is_err());
        assert!(parse_json("\"unterminated").is_err());
        assert!(parse_json("{\"a\" 1}").is_err());
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse_json(&deep).is_err(), "depth cap");
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "line\nbreak \"quote\" back\\slash \t control:\u{1}";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(parse_json(&doc).unwrap(), Json::Str(nasty.to_owned()));
    }

    #[test]
    fn unicode_passthrough() {
        let s = "naïve — ünïcode ✓";
        let doc = format!("\"{}\"", escape(s));
        assert_eq!(parse_json(&doc).unwrap(), Json::Str(s.to_owned()));
    }
}
