//! The [`Observer`] handle: spans, counters, and histograms behind a
//! single `Option` check.
//!
//! An enabled observer shares one `Arc`'d recorder between clones — the
//! pipeline stores one in `DeepEyeConfig`, hands clones to worker
//! threads, and every recording lands in the same sink. A disabled
//! observer holds nothing: every method is a branch on `None`, so
//! carrying one through the hot path costs nothing when tracing is off.
//!
//! Two recorder shapes share this handle:
//!
//! - [`Observer::enabled`] — the run-once tracer: every finished span is
//!   retained, snapshot at exit.
//! - [`Observer::with_recorder`] — the flight recorder for long-lived
//!   processes: raw spans land in a bounded [`crate::ring::SpanRing`]
//!   under a sampling policy, while per-path aggregates (count, total,
//!   duration histogram, self-allocation) are folded in *at span close*,
//!   before any sampling — so counters, histograms, and stage aggregates
//!   stay exact even when most raw spans are dropped. The
//!   `obs.spans_dropped` counter and [`Observer::retention`] account for
//!   the loss; [`Observer::check_stalls`] (see [`crate::watchdog`])
//!   watches spans that stay open past their budget.

use crate::alloc::{AllocCell, AllocStats};
use crate::health::{HealthConfig, HealthEngine, HealthReport, Verdict};
use crate::hist::Histogram;
use crate::ring::{RetentionStats, SpanRing};
use crate::watchdog::{StallBudget, StallEvent};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Identifier of a recorded span, usable as an explicit parent for spans
/// started on other threads ([`Observer::span_under`]).
pub type SpanId = u64;

/// A finished span as stored by the recorder.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    pub id: SpanId,
    pub parent: Option<SpanId>,
    pub name: &'static str,
    /// Logical thread id (stable per OS thread, assigned on first use).
    pub tid: u64,
    /// Start offset from the observer's origin, nanoseconds.
    pub start_ns: u64,
    pub dur_ns: u64,
    /// Global order of the begin/end moments; the trace exporter replays
    /// these to emit exactly the interleaving that happened, which keeps
    /// B/E events balanced even under timestamp ties.
    pub begin_seq: u64,
    pub end_seq: u64,
    /// Allocation accounting attributed to this span (self, not
    /// inclusive — [`crate::report::Snapshot`] folds children into
    /// ancestors at aggregation time).
    pub alloc: AllocStats,
}

/// Configuration for [`Observer::with_recorder`]: how many raw spans to
/// retain, which sampling policy governs eviction, and (optionally) the
/// stall budgets the watchdog checks open spans against.
#[derive(Debug, Clone, Default)]
pub struct RecorderConfig {
    /// Maximum retained raw spans; `0` means unbounded.
    pub capacity: usize,
    pub policy: crate::ring::SamplingPolicy,
    /// Per-span-name ceilings for [`Observer::check_stalls`]; empty
    /// disables the watchdog.
    pub budgets: Vec<StallBudget>,
}

impl RecorderConfig {
    /// The common flight-recorder shape: keep the last `capacity` spans.
    pub fn bounded(capacity: usize) -> RecorderConfig {
        RecorderConfig {
            capacity,
            policy: crate::ring::SamplingPolicy::KeepTail,
            budgets: Vec::new(),
        }
    }

    /// Attach watchdog budgets (see [`crate::watchdog`]).
    pub fn with_budgets(mut self, budgets: Vec<StallBudget>) -> RecorderConfig {
        self.budgets = budgets;
        self
    }
}

/// A span that has begun but not yet ended. Registered under the state
/// lock at span start so the watchdog can see what is currently running
/// and cross-thread children can resolve their parent's path.
pub(crate) struct OpenSpan {
    pub name: &'static str,
    pub parent: Option<SpanId>,
    pub tid: u64,
    pub start_ns: u64,
    /// Index into [`PathTable::aggs`].
    pub path: u32,
}

/// Exact per-path aggregate, updated at every span close *before* the
/// raw record is offered to the ring — sampling can therefore never
/// perturb these numbers.
pub(crate) struct PathAgg {
    /// Slash-joined root-to-leaf name chain.
    pub path: String,
    pub name: &'static str,
    pub depth: usize,
    /// Parent path index (`None` for roots).
    pub parent: Option<u32>,
    pub count: u64,
    pub total_ns: u64,
    /// Span durations at this exact path (per-stage p50/p95/p99).
    pub hist: Histogram,
    /// Self (non-inclusive) allocation totals; the snapshot folds
    /// children into ancestors.
    pub alloc: AllocStats,
}

/// Interned span paths: one [`PathAgg`] per distinct root-to-leaf name
/// chain, allocated on first occurrence. Append-only, so indices are
/// stable for the lifetime of the observer (telemetry cursors rely on
/// this).
#[derive(Default)]
pub(crate) struct PathTable {
    ids: BTreeMap<(Option<u32>, &'static str), u32>,
    pub aggs: Vec<PathAgg>,
}

impl PathTable {
    /// Path id for `name` under `parent`, interning on first sight.
    pub(crate) fn intern(&mut self, parent: Option<u32>, name: &'static str) -> u32 {
        if let Some(&id) = self.ids.get(&(parent, name)) {
            return id;
        }
        let (path, depth) = match parent.and_then(|p| self.aggs.get(p as usize)) {
            Some(p) => (format!("{}/{}", p.path, name), p.depth + 1),
            None => (name.to_owned(), 0),
        };
        let id = self.aggs.len() as u32;
        self.aggs.push(PathAgg {
            path,
            name,
            depth,
            parent,
            count: 0,
            total_ns: 0,
            hist: Histogram::default(),
            alloc: AllocStats::default(),
        });
        self.ids.insert((parent, name), id);
        id
    }
}

pub(crate) struct State {
    /// Raw span sink (bounded under a flight-recorder config).
    pub ring: SpanRing,
    pub counters: BTreeMap<&'static str, u64>,
    pub hists: BTreeMap<&'static str, Histogram>,
    /// Live allocation cells of *open* spans, drained into the
    /// [`SpanRecord`] when the owning guard drops.
    pub open_allocs: BTreeMap<SpanId, AllocCell>,
    /// Spans currently open, by id.
    pub open: BTreeMap<SpanId, OpenSpan>,
    /// Exact per-path aggregates.
    pub paths: PathTable,
    /// Stall events the watchdog has emitted (bounded; see
    /// [`crate::watchdog`]). The `obs.stall` counter is the exact total.
    pub stalls: Vec<StallEvent>,
    /// Open spans already reported as stalled (one event per span).
    pub stalled: BTreeSet<SpanId>,
    /// Online health evaluation over telemetry ticks (see
    /// [`crate::health`]); `None` unless built via
    /// [`Observer::with_health`].
    pub health: Option<HealthEngine>,
}

pub(crate) struct Inner {
    pub(crate) origin: Instant,
    next_id: AtomicU64,
    seq: AtomicU64,
    pub(crate) budgets: Vec<StallBudget>,
    state: Mutex<State>,
}

impl Inner {
    pub(crate) fn lock(&self) -> MutexGuard<'_, State> {
        // A poisoned lock only means a panicking thread held it; the
        // recorder's data is append-only and still usable.
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Stable per-thread id for trace lanes.
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    /// Per-thread stack of open spans: (observer token, span id). The
    /// token distinguishes concurrently live observers so one observer's
    /// spans never become parents of another's.
    static SPAN_STACK: RefCell<Vec<(usize, SpanId)>> = const { RefCell::new(Vec::new()) };
}

fn current_tid() -> u64 {
    TID.with(|t| *t)
}

/// The observability handle. See the crate docs for the overall model.
#[derive(Clone, Default)]
pub struct Observer {
    pub(crate) inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Observer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.inner.is_some() {
            "Observer(enabled)"
        } else {
            "Observer(disabled)"
        })
    }
}

impl Observer {
    /// An observer that records and retains everything (the run-once
    /// tracer). Clones share the same recorder.
    pub fn enabled() -> Self {
        Observer::with_recorder(RecorderConfig::default())
    }

    /// An observer with an explicit recorder shape — bounded span
    /// retention and watchdog budgets for long-lived processes.
    pub fn with_recorder(config: RecorderConfig) -> Self {
        Observer {
            inner: Some(Arc::new(Inner {
                origin: Instant::now(),
                next_id: AtomicU64::new(1),
                seq: AtomicU64::new(1),
                budgets: config.budgets,
                state: Mutex::new(State {
                    ring: SpanRing::new(config.capacity, config.policy),
                    counters: BTreeMap::new(),
                    hists: BTreeMap::new(),
                    open_allocs: BTreeMap::new(),
                    open: BTreeMap::new(),
                    paths: PathTable::default(),
                    stalls: Vec::new(),
                    stalled: BTreeSet::new(),
                    health: None,
                }),
            })),
        }
    }

    /// A flight recorder with the health engine attached: every
    /// [`Observer::telemetry_tick`](crate::telemetry) line is also fed
    /// into per-metric ring timeseries and scored by the configured
    /// detectors (see [`crate::health`]). Read the rollup with
    /// [`Observer::health_report`] / [`Observer::health_verdicts`].
    pub fn with_health(config: RecorderConfig, health: HealthConfig) -> Self {
        let obs = Observer::with_recorder(config);
        if let Some(inner) = obs.inner.as_ref() {
            inner.lock().health = Some(HealthEngine::new(health));
        }
        obs
    }

    /// The no-op observer (also `Default`): every method is a single
    /// branch, no allocation, no clock reads.
    pub fn disabled() -> Self {
        Observer { inner: None }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn token(&self) -> usize {
        self.inner
            .as_ref()
            .map(|inner| Arc::as_ptr(inner) as usize)
            .unwrap_or(0)
    }

    /// Innermost open span of this observer on the current thread.
    fn current_span(&self) -> Option<SpanId> {
        self.inner.as_ref().and_then(|_| {
            let token = self.token();
            SPAN_STACK.with(|stack| {
                stack
                    .borrow()
                    .iter()
                    .rev()
                    .find(|(t, _)| *t == token)
                    .map(|&(_, id)| id)
            })
        })
    }

    /// Start a span; it ends when the returned guard drops. The parent is
    /// the innermost open span of this observer on the current thread.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        let parent = self.current_span();
        self.span_under(name, parent)
    }

    /// Start a span under an explicit parent (e.g. a stage span owned by
    /// another thread). `parent: None` makes a root span. The parent must
    /// still be open when the child starts — which RAII guards guarantee
    /// (a guard's id outlives every use of it as a parent); a closed or
    /// unknown parent id roots the child's *path* at the child while the
    /// record still carries the raw parent id for the trace.
    pub fn span_under(&self, name: &'static str, parent: Option<SpanId>) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard { ctx: None };
        };
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let begin_seq = inner.seq.fetch_add(1, Ordering::Relaxed);
        let token = self.token();
        let tid = current_tid();
        let start_ns = inner.origin.elapsed().as_nanos() as u64;
        {
            let mut state = inner.lock();
            let parent_path = parent.and_then(|p| state.open.get(&p)).map(|o| o.path);
            let path = state.paths.intern(parent_path, name);
            state.open.insert(
                id,
                OpenSpan {
                    name,
                    parent,
                    tid,
                    start_ns,
                    path,
                },
            );
        }
        SPAN_STACK.with(|stack| stack.borrow_mut().push((token, id)));
        SpanGuard {
            ctx: Some(SpanCtx {
                inner: Arc::clone(inner),
                token,
                id,
                begin_seq,
            }),
        }
    }

    /// Add `by` to a named counter.
    pub fn incr(&self, name: &'static str, by: u64) {
        if let Some(inner) = &self.inner {
            let mut state = inner.lock();
            let slot = state.counters.entry(name).or_insert(0);
            *slot = slot.saturating_add(by);
        }
    }

    /// Record one sample into a named histogram.
    pub fn record_ns(&self, name: &'static str, ns: u64) {
        if let Some(inner) = &self.inner {
            inner.lock().hists.entry(name).or_default().record(ns);
        }
    }

    /// Record a batch of samples with one lock acquisition — worker
    /// threads buffer per-query latencies locally and flush once.
    pub fn record_many_ns(&self, name: &'static str, samples: &[u64]) {
        if samples.is_empty() {
            return;
        }
        if let Some(inner) = &self.inner {
            let mut state = inner.lock();
            let hist = state.hists.entry(name).or_default();
            for &ns in samples {
                hist.record(ns);
            }
        }
    }

    /// Attribute one allocation of `bytes` bytes to the innermost open
    /// span on the current thread. See [`crate::alloc`] for the model;
    /// with no open span (or disabled) the call records nothing.
    pub fn alloc(&self, bytes: u64) {
        self.alloc_many(1, bytes);
    }

    /// Attribute a batch of `count` allocations totalling `bytes` bytes
    /// with one lock acquisition — arena points that build many values at
    /// once (result tables, node batches) report a single charge.
    pub fn alloc_many(&self, count: u64, bytes: u64) {
        if let Some(inner) = &self.inner {
            if let Some(span) = self.current_span() {
                inner
                    .lock()
                    .open_allocs
                    .entry(span)
                    .or_default()
                    .charge(count, bytes);
            }
        }
    }

    /// Report `bytes` bytes released while the innermost open span is
    /// live, lowering the live count its `peak` tracks. Gross `bytes`
    /// totals are unaffected.
    pub fn alloc_release(&self, bytes: u64) {
        if let Some(inner) = &self.inner {
            if let Some(span) = self.current_span() {
                inner
                    .lock()
                    .open_allocs
                    .entry(span)
                    .or_default()
                    .release(bytes);
            }
        }
    }

    /// Time a region into a histogram: the sample is recorded when the
    /// returned guard drops. No-op (no clock read) when disabled.
    pub fn timer(&self, name: &'static str) -> HistTimer {
        HistTimer {
            ctx: self
                .inner
                .as_ref()
                .map(|inner| (Arc::clone(inner), name, Instant::now())),
        }
    }

    /// Current value of a counter (0 if never incremented or disabled).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .as_ref()
            .and_then(|inner| inner.lock().counters.get(name).copied())
            .unwrap_or(0)
    }

    /// Render the current `deepeye-health/v1` document. `None` when
    /// disabled or when no health engine is attached (see
    /// [`Observer::with_health`]). Each call counts one
    /// `health.evaluations`.
    pub fn health_report(&self) -> Option<String> {
        let inner = self.inner.as_ref()?;
        let mut state = inner.lock();
        let doc = state.health.as_ref().map(HealthEngine::report_json)?;
        let slot = state.counters.entry("health.evaluations").or_insert(0);
        *slot = slot.saturating_add(1);
        Some(doc)
    }

    /// The current structured health rollup (ticks, status, verdicts);
    /// `None` when disabled or without a health engine.
    pub fn health_snapshot(&self) -> Option<HealthReport> {
        let inner = self.inner.as_ref()?;
        let state = inner.lock();
        state.health.as_ref().map(HealthEngine::report)
    }

    /// All current health verdicts — latched anomaly firings plus SLO
    /// judgements — or empty when disabled / without a health engine.
    pub fn health_verdicts(&self) -> Vec<Verdict> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let state = inner.lock();
        state
            .health
            .as_ref()
            .map(HealthEngine::verdicts)
            .unwrap_or_default()
    }

    /// Current health gauges in the Prometheus text exposition format;
    /// `None` when disabled or without a health engine.
    pub fn health_prometheus(&self) -> Option<String> {
        let inner = self.inner.as_ref()?;
        let state = inner.lock();
        state.health.as_ref().map(HealthEngine::prometheus_text)
    }

    /// Total recorded duration of all finished spans with this name.
    /// Computed from the exact path aggregates, so it is unaffected by
    /// span sampling.
    pub fn stage_duration(&self, name: &str) -> Duration {
        let Some(inner) = &self.inner else {
            return Duration::ZERO;
        };
        let ns: u64 = inner
            .lock()
            .paths
            .aggs
            .iter()
            .filter(|a| a.name == name)
            .map(|a| a.total_ns)
            .sum();
        Duration::from_nanos(ns)
    }

    /// Duration of one finished span by id (`None` while it is open, when
    /// the id is unknown or its raw record was sampled away, or when
    /// disabled).
    pub fn span_duration(&self, id: SpanId) -> Option<Duration> {
        let inner = self.inner.as_ref()?;
        inner
            .lock()
            .ring
            .iter()
            .find(|s| s.id == id)
            .map(|s| Duration::from_nanos(s.dur_ns))
    }

    /// All *retained* finished spans in begin order (empty when
    /// disabled). Under a bounded recorder this is a sample; see
    /// [`Observer::retention`] for the accounting.
    pub fn finished_spans(&self) -> Vec<SpanRecord> {
        self.inner
            .as_ref()
            .map(|inner| inner.lock().ring.to_sorted_vec())
            .unwrap_or_default()
    }

    /// Span-retention accounting: finished/retained/dropped/capacity.
    /// The invariant `retained + dropped == finished` always holds.
    pub fn retention(&self) -> RetentionStats {
        self.inner
            .as_ref()
            .map(|inner| inner.lock().ring.stats())
            .unwrap_or_default()
    }

    /// Point-in-time aggregate of everything recorded so far. Built from
    /// the exact path aggregates — identical numbers whether or not raw
    /// spans were sampled away.
    pub fn snapshot(&self) -> crate::report::Snapshot {
        let Some(inner) = &self.inner else {
            return crate::report::Snapshot::default();
        };
        let state = inner.lock();
        crate::report::Snapshot::build(&state)
    }

    /// Human-readable per-stage report (span tree, counters, histograms).
    pub fn stage_report(&self) -> String {
        self.snapshot().stage_report()
    }

    /// JSON metrics snapshot (counters, histogram summaries, span
    /// aggregates by path).
    pub fn metrics_json(&self) -> String {
        self.snapshot().metrics_json()
    }

    /// Chrome trace-event JSON of the retained spans, loadable in
    /// `chrome://tracing` or Perfetto. Always carries a `span_accounting`
    /// metadata event; when the recorder dropped spans the accounting is
    /// marked truncated, which [`crate::trace::validate_chrome_trace`]
    /// requires.
    pub fn chrome_trace_json(&self) -> String {
        let Some(inner) = &self.inner else {
            return crate::trace::chrome_trace_json(&[]);
        };
        let (spans, stats) = {
            let state = inner.lock();
            (state.ring.to_sorted_vec(), state.ring.stats())
        };
        crate::trace::chrome_trace_json_with_accounting(&spans, &stats)
    }
}

struct SpanCtx {
    inner: Arc<Inner>,
    token: usize,
    id: SpanId,
    begin_seq: u64,
}

/// RAII guard for an open span; the span is recorded when this drops.
#[must_use = "a span ends when its guard drops — binding to `_` ends it immediately"]
pub struct SpanGuard {
    ctx: Option<SpanCtx>,
}

impl SpanGuard {
    /// Id of this span for use as an explicit cross-thread parent.
    /// `None` when the observer is disabled.
    pub fn id(&self) -> Option<SpanId> {
        self.ctx.as_ref().map(|c| c.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(ctx) = self.ctx.take() else { return };
        // End time on the same monotonic origin as the start: begin/end
        // timestamps of successive spans on one thread can then never
        // regress, which the trace validator checks per lane.
        let end_ns = ctx.inner.origin.elapsed().as_nanos() as u64;
        let end_seq = ctx.inner.seq.fetch_add(1, Ordering::Relaxed);
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Usually the top entry; search backwards to stay correct if
            // guards are dropped out of order.
            if let Some(pos) = stack
                .iter()
                .rposition(|&(t, id)| t == ctx.token && id == ctx.id)
            {
                stack.remove(pos);
            }
        });
        let mut state = ctx.inner.lock();
        let Some(open) = state.open.remove(&ctx.id) else {
            return;
        };
        state.stalled.remove(&ctx.id);
        let dur_ns = end_ns.saturating_sub(open.start_ns);
        let alloc = state
            .open_allocs
            .remove(&ctx.id)
            .map(|cell| cell.stats)
            .unwrap_or_default();
        // Exact aggregates first — only then does the raw record face the
        // sampling policy.
        if let Some(agg) = state.paths.aggs.get_mut(open.path as usize) {
            agg.count += 1;
            agg.total_ns += dur_ns;
            agg.hist.record(dur_ns);
            agg.alloc.merge(&alloc);
        }
        let drops = state.ring.push(SpanRecord {
            id: ctx.id,
            parent: open.parent,
            name: open.name,
            tid: open.tid,
            start_ns: open.start_ns,
            dur_ns,
            begin_seq: ctx.begin_seq,
            end_seq,
            alloc,
        });
        if drops > 0 {
            let slot = state.counters.entry("obs.spans_dropped").or_insert(0);
            *slot = slot.saturating_add(drops);
        }
    }
}

/// RAII guard from [`Observer::timer`]: records the elapsed time into a
/// histogram on drop.
#[must_use = "a timer records when its guard drops — binding to `_` records immediately"]
pub struct HistTimer {
    ctx: Option<(Arc<Inner>, &'static str, Instant)>,
}

impl Drop for HistTimer {
    fn drop(&mut self) {
        if let Some((inner, name, start)) = self.ctx.take() {
            let ns = start.elapsed().as_nanos() as u64;
            inner.lock().hists.entry(name).or_default().record(ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::SamplingPolicy;

    #[test]
    fn disabled_observer_records_nothing() {
        let obs = Observer::disabled();
        assert!(!obs.is_enabled());
        {
            let guard = obs.span("never");
            assert_eq!(guard.id(), None);
            obs.incr("c", 5);
            obs.record_ns("h", 100);
            let _t = obs.timer("h");
        }
        assert_eq!(obs.counter("c"), 0);
        assert!(obs.finished_spans().is_empty());
        assert_eq!(obs.retention(), RetentionStats::default());
        let snap = obs.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.hists.is_empty());
        assert!(snap.stages.is_empty());
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Observer::default().is_enabled());
    }

    #[test]
    fn spans_nest_on_one_thread() {
        let obs = Observer::enabled();
        {
            let outer = obs.span("outer");
            let outer_id = outer.id();
            {
                let _inner = obs.span("inner");
            }
            assert!(outer_id.is_some());
        }
        let spans = obs.finished_spans();
        assert_eq!(spans.len(), 2);
        let inner = spans.iter().find(|s| s.name == "inner").map(|s| s.parent);
        let outer = spans.iter().find(|s| s.name == "outer").cloned();
        assert_eq!(inner.flatten(), outer.as_ref().map(|s| s.id));
        assert_eq!(outer.and_then(|s| s.parent), None);
    }

    #[test]
    fn sibling_spans_share_a_parent() {
        let obs = Observer::enabled();
        let root = obs.span("root");
        let root_id = root.id();
        {
            let _a = obs.span("a");
        }
        {
            let _b = obs.span("b");
        }
        drop(root);
        let spans = obs.finished_spans();
        for name in ["a", "b"] {
            let s = spans.iter().find(|s| s.name == name);
            assert_eq!(s.and_then(|s| s.parent), root_id, "{name}");
        }
    }

    #[test]
    fn explicit_parent_crosses_threads() {
        let obs = Observer::enabled();
        let stage = obs.span("stage");
        let stage_id = stage.id();
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let obs = obs.clone();
                scope.spawn(move || {
                    let _w = obs.span_under("worker", stage_id);
                });
            }
        });
        drop(stage);
        let spans = obs.finished_spans();
        let workers: Vec<_> = spans.iter().filter(|s| s.name == "worker").collect();
        assert_eq!(workers.len(), 3);
        for w in &workers {
            assert_eq!(w.parent, stage_id);
        }
        // Worker spans carry their own thread ids.
        let stage_tid = spans
            .iter()
            .find(|s| s.name == "stage")
            .map(|s| s.tid)
            .unwrap_or(0);
        assert!(workers.iter().all(|w| w.tid != stage_tid));
    }

    #[test]
    fn two_observers_do_not_cross_parent() {
        let a = Observer::enabled();
        let b = Observer::enabled();
        let _outer_a = a.span("a.outer");
        {
            let _inner_b = b.span("b.inner");
        }
        drop(_outer_a);
        let b_spans = b.finished_spans();
        assert_eq!(b_spans.len(), 1);
        assert_eq!(b_spans[0].parent, None, "b must not parent under a's span");
    }

    #[test]
    fn counters_and_histograms_accumulate() {
        let obs = Observer::enabled();
        obs.incr("n", 2);
        obs.incr("n", 3);
        obs.record_ns("lat", 10);
        obs.record_many_ns("lat", &[20, 30]);
        assert_eq!(obs.counter("n"), 5);
        let snap = obs.snapshot();
        let lat = snap.hist("lat").expect("histogram recorded");
        assert_eq!(lat.count, 3);
        assert_eq!(lat.sum, 60);
    }

    #[test]
    fn timer_records_into_histogram() {
        let obs = Observer::enabled();
        {
            let _t = obs.timer("work_ns");
            std::thread::sleep(Duration::from_millis(1));
        }
        let snap = obs.snapshot();
        let h = snap.hist("work_ns").expect("recorded");
        assert_eq!(h.count, 1);
        assert!(h.max >= 1_000_000, "slept ≥ 1ms, got {}ns", h.max);
    }

    #[test]
    fn stage_and_span_durations() {
        let obs = Observer::enabled();
        let id = {
            let g = obs.span("stage");
            std::thread::sleep(Duration::from_millis(1));
            g.id()
        };
        assert!(obs.stage_duration("stage") >= Duration::from_millis(1));
        assert_eq!(obs.stage_duration("missing"), Duration::ZERO);
        let id = id.expect("enabled span has an id");
        assert!(obs.span_duration(id).expect("finished") >= Duration::from_millis(1));
        assert_eq!(obs.span_duration(9999), None);
    }

    #[test]
    fn clones_share_the_recorder() {
        let obs = Observer::enabled();
        let clone = obs.clone();
        clone.incr("shared", 7);
        {
            let _s = clone.span("from_clone");
        }
        assert_eq!(obs.counter("shared"), 7);
        assert_eq!(obs.finished_spans().len(), 1);
    }

    #[test]
    fn allocations_attribute_to_the_innermost_span() {
        let obs = Observer::enabled();
        {
            let _outer = obs.span("outer");
            obs.alloc(100);
            {
                let _inner = obs.span("inner");
                obs.alloc_many(3, 60);
                obs.alloc_release(50);
                obs.alloc(10);
            }
            obs.alloc(1);
        }
        let spans = obs.finished_spans();
        let inner = spans.iter().find(|s| s.name == "inner").expect("inner");
        assert_eq!(inner.alloc.count, 4);
        assert_eq!(inner.alloc.bytes, 70);
        assert_eq!(inner.alloc.peak, 60, "release before the last alloc");
        let outer = spans.iter().find(|s| s.name == "outer").expect("outer");
        assert_eq!(outer.alloc.count, 2, "self stats exclude the child");
        assert_eq!(outer.alloc.bytes, 101);
    }

    #[test]
    fn allocations_outside_any_span_are_dropped() {
        let obs = Observer::enabled();
        obs.alloc(999);
        {
            let _s = obs.span("s");
        }
        obs.alloc_release(999);
        let spans = obs.finished_spans();
        assert!(spans.iter().all(|s| s.alloc.is_empty()));
    }

    #[test]
    fn disabled_alloc_is_a_no_op() {
        let obs = Observer::disabled();
        let _g = obs.span("never");
        obs.alloc(1);
        obs.alloc_many(2, 2);
        obs.alloc_release(1);
        assert!(obs.finished_spans().is_empty());
    }

    #[test]
    fn cross_thread_workers_account_their_own_allocations() {
        let obs = Observer::enabled();
        let stage = obs.span("stage");
        let stage_id = stage.id();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let obs = obs.clone();
                scope.spawn(move || {
                    let _w = obs.span_under("worker", stage_id);
                    obs.alloc_many(2, 100);
                });
            }
        });
        drop(stage);
        let spans = obs.finished_spans();
        let worker_bytes: u64 = spans
            .iter()
            .filter(|s| s.name == "worker")
            .map(|s| s.alloc.bytes)
            .sum();
        assert_eq!(worker_bytes, 400);
        let stage = spans.iter().find(|s| s.name == "stage").expect("stage");
        assert!(stage.alloc.is_empty(), "self stats; snapshot adds children");
    }

    #[test]
    fn concurrent_recording_is_complete() {
        let obs = Observer::enabled();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let obs = obs.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        obs.incr("ops", 1);
                        let _s = obs.span("op");
                    }
                });
            }
        });
        assert_eq!(obs.counter("ops"), 800);
        assert_eq!(obs.finished_spans().len(), 800);
        let r = obs.retention();
        assert_eq!(r.finished, 800);
        assert_eq!(r.dropped, 0);
    }

    #[test]
    fn bounded_recorder_caps_retained_spans() {
        let obs = Observer::with_recorder(RecorderConfig::bounded(16));
        for _ in 0..100 {
            let _s = obs.span("op");
        }
        let r = obs.retention();
        assert_eq!(r.finished, 100);
        assert_eq!(r.retained, 16);
        assert_eq!(r.dropped, 84);
        assert_eq!(r.capacity, 16);
        assert_eq!(obs.finished_spans().len(), 16);
        assert_eq!(obs.counter("obs.spans_dropped"), 84);
    }

    #[test]
    fn aggregates_stay_exact_under_sampling() {
        let obs = Observer::with_recorder(RecorderConfig::bounded(4));
        for _ in 0..50 {
            let _root = obs.span("root");
            let _child = obs.span("child");
            obs.alloc_many(2, 10);
        }
        let snap = obs.snapshot();
        let root = snap.stage("root").expect("root aggregated");
        assert_eq!(root.count, 50, "counts survive raw-span eviction");
        let child = snap.stage("child").expect("child aggregated");
        assert_eq!(child.count, 50);
        assert_eq!(child.alloc_count, 100, "alloc aggregates exact");
        assert_eq!(child.alloc_bytes, 500);
        assert_eq!(root.alloc_bytes, 500, "inclusive fold still works");
        assert!(obs.finished_spans().len() <= 4);
        assert_eq!(
            obs.stage_duration("child").as_nanos() as u64,
            child.total_ns
        );
    }

    #[test]
    fn keep_slowest_recorder_retains_slowest_span() {
        let obs = Observer::with_recorder(RecorderConfig {
            capacity: 2,
            policy: SamplingPolicy::KeepSlowest { threshold_ns: 0 },
            budgets: Vec::new(),
        });
        for i in 0..8 {
            let _s = obs.span("op");
            if i == 3 {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        let spans = obs.finished_spans();
        assert!(spans.len() <= 2);
        let max_kept = spans.iter().map(|s| s.dur_ns).max().unwrap_or(0);
        assert!(max_kept >= 2_000_000, "the slow span survived eviction");
    }
}
