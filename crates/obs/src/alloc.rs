//! Scoped allocation accounting attributed to spans.
//!
//! The workspace lint wall forbids `unsafe`, so a tracking
//! `#[global_allocator]` (which must `unsafe impl GlobalAlloc`) is off the
//! table. Instead the pipeline's arena points — the places that
//! materialize query results, feature vectors, and top-k leaves — report
//! their allocations explicitly via [`Observer::alloc`],
//! [`Observer::alloc_many`], and [`Observer::alloc_release`]. Each call
//! attributes to the innermost open span of that observer on the calling
//! thread, exactly like automatic span parenting, so the per-stage
//! reports and the JSON metrics snapshot gain `alloc.*` columns without
//! any instrumentation site naming a stage.
//!
//! Accounting is *self* (per-span) at record time; [`Snapshot::build`]
//! folds every span's self stats into all of its ancestors' paths, so
//! stage aggregates read **inclusive** — a stage's `alloc_bytes` covers
//! everything allocated underneath it. `peak` tracks the high-water mark
//! of live bytes within one span (`alloc` raises it, `alloc_release`
//! lowers the live count); aggregated peaks are summed, which makes the
//! reported number an upper bound on concurrent live bytes, never an
//! undercount. The invariant `peak ≤ bytes` holds per span and survives
//! aggregation, and `trace_check --metrics` checks it on every export.
//!
//! A disabled observer takes the same single-`Option`-check early exit as
//! every other recording method: the accounting calls sit behind
//! `is_enabled()` guards at the call sites anyway (rule A0002 enforces
//! that for allocating arguments), so the disabled path never computes a
//! byte count at all.
//!
//! [`Observer::alloc`]: crate::Observer::alloc
//! [`Observer::alloc_many`]: crate::Observer::alloc_many
//! [`Observer::alloc_release`]: crate::Observer::alloc_release
//! [`Snapshot::build`]: crate::report::Snapshot

/// Allocation totals attributed to one span (self, not inclusive).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Number of attributed allocation events.
    pub count: u64,
    /// Total bytes attributed (gross — releases do not subtract).
    pub bytes: u64,
    /// High-water mark of live (allocated minus released) bytes.
    pub peak: u64,
}

impl AllocStats {
    /// Whether nothing was attributed.
    pub fn is_empty(&self) -> bool {
        self.count == 0 && self.bytes == 0 && self.peak == 0
    }

    /// Fold another span's stats in (counts and bytes add; peaks add too,
    /// making the aggregate an upper bound on concurrent live bytes).
    pub fn merge(&mut self, other: &AllocStats) {
        self.count += other.count;
        self.bytes += other.bytes;
        self.peak += other.peak;
    }
}

/// Live accounting for one *open* span: [`AllocStats`] plus the current
/// live-byte count the peak is tracked against.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct AllocCell {
    pub(crate) stats: AllocStats,
    live: u64,
}

impl AllocCell {
    pub(crate) fn charge(&mut self, count: u64, bytes: u64) {
        self.stats.count += count;
        self.stats.bytes += bytes;
        self.live += bytes;
        self.stats.peak = self.stats.peak.max(self.live);
    }

    pub(crate) fn release(&mut self, bytes: u64) {
        self.live = self.live.saturating_sub(bytes);
    }
}

/// Render a byte count human-readably (`0B`, `1.5KiB`, `43.0MiB`,
/// `2.10GiB`).
pub fn fmt_bytes(bytes: u64) -> String {
    const KIB: u64 = 1 << 10;
    const MIB: u64 = 1 << 20;
    const GIB: u64 = 1 << 30;
    if bytes < KIB {
        format!("{bytes}B")
    } else if bytes < MIB {
        format!("{:.1}KiB", bytes as f64 / KIB as f64)
    } else if bytes < GIB {
        format!("{:.1}MiB", bytes as f64 / MIB as f64)
    } else {
        format!("{:.2}GiB", bytes as f64 / GIB as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_tracks_peak_of_live_bytes() {
        let mut cell = AllocCell::default();
        cell.charge(1, 100);
        cell.charge(1, 50);
        cell.release(120);
        cell.charge(1, 10);
        assert_eq!(cell.stats.count, 3);
        assert_eq!(cell.stats.bytes, 160);
        assert_eq!(cell.stats.peak, 150, "peak is the pre-release high-water");
    }

    #[test]
    fn release_saturates() {
        let mut cell = AllocCell::default();
        cell.charge(1, 10);
        cell.release(1_000);
        cell.charge(1, 5);
        assert_eq!(cell.stats.peak, 10, "over-release clamps live to zero");
    }

    #[test]
    fn peak_never_exceeds_bytes() {
        let mut cell = AllocCell::default();
        for (charge, release) in [(10, 0), (20, 15), (5, 100), (40, 1)] {
            cell.charge(1, charge);
            cell.release(release);
            assert!(cell.stats.peak <= cell.stats.bytes);
        }
    }

    #[test]
    fn merge_adds_all_fields() {
        let mut a = AllocStats {
            count: 1,
            bytes: 10,
            peak: 8,
        };
        a.merge(&AllocStats {
            count: 2,
            bytes: 20,
            peak: 20,
        });
        assert_eq!(
            a,
            AllocStats {
                count: 3,
                bytes: 30,
                peak: 28
            }
        );
        assert!(!a.is_empty());
        assert!(AllocStats::default().is_empty());
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(0), "0B");
        assert_eq!(fmt_bytes(532), "532B");
        assert_eq!(fmt_bytes(1_536), "1.5KiB");
        assert_eq!(fmt_bytes(45_088_768), "43.0MiB");
        assert_eq!(fmt_bytes(2_254_857_830), "2.10GiB");
    }
}
