//! Bounded span retention for the flight recorder.
//!
//! A long-lived process cannot keep every finished span: the run-once
//! tracer's `Vec<SpanRecord>` grows without bound. [`SpanRing`] is the
//! replacement sink — a fixed-capacity buffer with a pluggable
//! [`SamplingPolicy`] deciding which raw spans survive when the buffer is
//! full. Dropping a span loses only the *raw record* (trace events, flame
//! frames): counters, histograms, and the per-path stage aggregates are
//! updated before the record reaches the ring, so every aggregate export
//! stays exact no matter how many spans were sampled away. The
//! `obs.spans_dropped` counter and [`RetentionStats`] make the loss
//! explicit, and the trace exporter stamps a truncation marker that
//! [`crate::trace::validate_chrome_trace`] enforces.
//!
//! The accounting invariant every policy maintains (property-tested in
//! `tests/properties.rs`): `retained + dropped == finished`, and
//! `retained <= capacity` whenever a capacity is set.

use crate::observer::SpanRecord;

/// Which raw spans survive when the ring is full.
///
/// The policy never affects aggregates — only which [`SpanRecord`]s the
/// trace/flame exporters can still show.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SamplingPolicy {
    /// Retain every span (the run-once tracer's behaviour; requires an
    /// unbounded ring, so [`SpanRing::new`] ignores the capacity).
    #[default]
    KeepAll,
    /// Overwrite the oldest retained span — the classic flight-recorder
    /// tail: the last `capacity` spans before an incident.
    KeepTail,
    /// Retain the slowest spans. A span under `threshold_ns` is dropped
    /// immediately; above it, a full ring evicts its current fastest
    /// entry, so the maximum-duration span (among those over the
    /// threshold) is always retained. `threshold_ns: 0` keeps pure
    /// slowest-wins semantics.
    KeepSlowest { threshold_ns: u64 },
    /// Uniform sample over the whole run (Algorithm R) with a
    /// deterministic seeded generator — two runs over the same span
    /// sequence retain the same subset.
    Reservoir { seed: u64 },
}

/// Span accounting of a [`SpanRing`] at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetentionStats {
    /// Spans that finished (closed) since the recorder started.
    pub finished: u64,
    /// Raw records currently held; `retained + dropped == finished`.
    pub retained: usize,
    /// Records sampled away (never retained, or evicted later).
    pub dropped: u64,
    /// Configured capacity; `0` means unbounded.
    pub capacity: usize,
}

/// The bounded span sink. Public so the retention invariants can be
/// property-tested against synthetic records without an [`crate::Observer`].
#[derive(Debug)]
pub struct SpanRing {
    policy: SamplingPolicy,
    capacity: usize,
    spans: Vec<SpanRecord>,
    /// Next slot to overwrite under [`SamplingPolicy::KeepTail`].
    next_slot: usize,
    finished: u64,
    dropped: u64,
    rng: u64,
}

impl SpanRing {
    /// A ring holding at most `capacity` spans under `policy`.
    /// `capacity == 0` (or [`SamplingPolicy::KeepAll`]) means unbounded.
    pub fn new(capacity: usize, policy: SamplingPolicy) -> SpanRing {
        let capacity = match policy {
            SamplingPolicy::KeepAll => 0,
            _ => capacity,
        };
        let rng = match policy {
            // Scramble so adjacent seeds diverge, and force odd — an even
            // (or zero) LCG state degenerates.
            SamplingPolicy::Reservoir { seed } => {
                seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(0xD1B5_4A32_D192_ED03)
                    | 1
            }
            _ => 1,
        };
        SpanRing {
            policy,
            capacity,
            spans: Vec::new(),
            next_slot: 0,
            finished: 0,
            dropped: 0,
            rng,
        }
    }

    /// An unbounded record-everything ring (the enabled-observer default).
    pub fn unbounded() -> SpanRing {
        SpanRing::new(0, SamplingPolicy::KeepAll)
    }

    fn next_rand(&mut self) -> u64 {
        self.rng = self
            .rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // The low bits of an LCG cycle fast; take the high half.
        self.rng >> 32
    }

    /// Offer a finished span; returns how many spans this push dropped
    /// (0 or 1 — either the offered span or an evicted resident).
    pub fn push(&mut self, span: SpanRecord) -> u64 {
        self.finished += 1;
        if self.capacity == 0 {
            self.spans.push(span);
            return 0;
        }
        let drops = match self.policy {
            SamplingPolicy::KeepAll => {
                self.spans.push(span);
                0
            }
            SamplingPolicy::KeepTail => {
                if self.spans.len() < self.capacity {
                    self.spans.push(span);
                    0
                } else if let Some(slot) = self.spans.get_mut(self.next_slot) {
                    *slot = span;
                    self.next_slot = (self.next_slot + 1) % self.capacity;
                    1
                } else {
                    1
                }
            }
            SamplingPolicy::KeepSlowest { threshold_ns } => {
                if span.dur_ns < threshold_ns {
                    1
                } else if self.spans.len() < self.capacity {
                    self.spans.push(span);
                    0
                } else {
                    let fastest = self
                        .spans
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, s)| s.dur_ns)
                        .map(|(i, s)| (i, s.dur_ns));
                    match fastest {
                        Some((i, min_dur)) if span.dur_ns >= min_dur => {
                            if let Some(slot) = self.spans.get_mut(i) {
                                *slot = span;
                            }
                            1
                        }
                        _ => 1,
                    }
                }
            }
            SamplingPolicy::Reservoir { .. } => {
                if self.spans.len() < self.capacity {
                    self.spans.push(span);
                    0
                } else {
                    // Algorithm R: the n-th span replaces a uniformly
                    // chosen resident with probability capacity / n.
                    let j = (self.next_rand() % self.finished) as usize;
                    if let Some(slot) = self.spans.get_mut(j) {
                        *slot = span;
                    }
                    1
                }
            }
        };
        self.dropped += drops;
        drops
    }

    /// Current accounting; `retained + dropped == finished` always.
    pub fn stats(&self) -> RetentionStats {
        RetentionStats {
            finished: self.finished,
            retained: self.spans.len(),
            dropped: self.dropped,
            capacity: self.capacity,
        }
    }

    /// Retained spans in arbitrary order.
    pub fn iter(&self) -> std::slice::Iter<'_, SpanRecord> {
        self.spans.iter()
    }

    pub fn len(&self) -> usize {
        self.spans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Retained spans in begin order — what the exporters consume, so a
    /// sampled trace replays deterministically.
    pub fn to_sorted_vec(&self) -> Vec<SpanRecord> {
        let mut spans = self.spans.clone();
        spans.sort_by_key(|s| s.begin_seq);
        spans
    }
}

impl<'a> IntoIterator for &'a SpanRing {
    type Item = &'a SpanRecord;
    type IntoIter = std::slice::Iter<'a, SpanRecord>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::AllocStats;

    fn span(id: u64, dur_ns: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent: None,
            name: "t",
            tid: 1,
            start_ns: id * 10,
            dur_ns,
            begin_seq: 2 * id,
            end_seq: 2 * id + 1,
            alloc: AllocStats::default(),
        }
    }

    fn check_accounting(ring: &SpanRing) {
        let s = ring.stats();
        assert_eq!(s.retained as u64 + s.dropped, s.finished);
        if s.capacity > 0 {
            assert!(s.retained <= s.capacity);
        }
    }

    #[test]
    fn keep_all_retains_everything() {
        let mut ring = SpanRing::unbounded();
        for i in 0..100 {
            assert_eq!(ring.push(span(i, i)), 0);
        }
        check_accounting(&ring);
        assert_eq!(ring.stats().retained, 100);
        assert_eq!(ring.stats().dropped, 0);
    }

    #[test]
    fn keep_tail_overwrites_oldest() {
        let mut ring = SpanRing::new(4, SamplingPolicy::KeepTail);
        for i in 0..10 {
            ring.push(span(i, 1));
        }
        check_accounting(&ring);
        let stats = ring.stats();
        assert_eq!(stats.retained, 4);
        assert_eq!(stats.dropped, 6);
        let mut ids: Vec<u64> = ring.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![6, 7, 8, 9], "last capacity spans survive");
        // Sorted export is in begin order.
        let sorted = ring.to_sorted_vec();
        assert!(sorted.windows(2).all(|w| w[0].begin_seq < w[1].begin_seq));
    }

    #[test]
    fn keep_slowest_retains_the_maximum() {
        let mut ring = SpanRing::new(3, SamplingPolicy::KeepSlowest { threshold_ns: 0 });
        let durs = [5u64, 900, 3, 17, 1_000, 2, 450, 1];
        for (i, &d) in durs.iter().enumerate() {
            ring.push(span(i as u64, d));
        }
        check_accounting(&ring);
        let mut kept: Vec<u64> = ring.iter().map(|s| s.dur_ns).collect();
        kept.sort_unstable();
        assert_eq!(kept, vec![450, 900, 1_000], "three slowest survive");
    }

    #[test]
    fn keep_slowest_threshold_drops_fast_spans() {
        let mut ring = SpanRing::new(8, SamplingPolicy::KeepSlowest { threshold_ns: 100 });
        for (i, &d) in [10u64, 500, 99, 100, 2_000].iter().enumerate() {
            ring.push(span(i as u64, d));
        }
        check_accounting(&ring);
        assert_eq!(ring.stats().retained, 3, "sub-threshold spans dropped");
        assert!(ring.iter().all(|s| s.dur_ns >= 100));
        assert!(ring.iter().any(|s| s.dur_ns == 2_000));
    }

    #[test]
    fn reservoir_is_deterministic_and_bounded() {
        let run = |seed: u64| {
            let mut ring = SpanRing::new(16, SamplingPolicy::Reservoir { seed });
            for i in 0..500 {
                ring.push(span(i, i));
            }
            check_accounting(&ring);
            let mut ids: Vec<u64> = ring.iter().map(|s| s.id).collect();
            ids.sort_unstable();
            ids
        };
        assert_eq!(run(42), run(42), "same seed, same sample");
        assert_eq!(run(42).len(), 16);
        assert_ne!(run(42), run(43), "different seeds diverge");
    }

    #[test]
    fn keep_all_policy_ignores_capacity() {
        let mut ring = SpanRing::new(2, SamplingPolicy::KeepAll);
        for i in 0..10 {
            ring.push(span(i, 1));
        }
        assert_eq!(ring.stats().capacity, 0, "normalized to unbounded");
        assert_eq!(ring.stats().retained, 10);
    }
}
