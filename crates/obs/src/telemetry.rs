//! Interval telemetry ticks: the `deepeye-telemetry/v1` JSON-lines
//! stream.
//!
//! A long-lived process cannot export one snapshot at exit — operators
//! need *per-interval* numbers: how many queries this tick, what the
//! stage p95 was over the last interval, whether memory is trending up.
//! [`Observer::telemetry_tick`] produces exactly that: the caller holds a
//! [`TelemetryCursor`] (the previous tick's state) and each call emits
//! one JSON line containing only the **deltas** since the last tick —
//! counter increments, per-histogram and per-stage interval p50/p95/p99
//! (via [`Histogram::delta`]), allocation deltas, span-retention
//! accounting, process RSS and user/sys CPU polled from `/proc/self`
//! (zeros off Linux), and any new stall events from the watchdog.
//!
//! The stream is append-only JSON lines so a soak harness can pipe it to
//! disk and a dashboard can tail it. [`validate_telemetry_jsonl`] is the
//! consuming-side mirror (like the metrics/trace/bench validators):
//! schema tag, strictly increasing `seq`, monotone time/CPU/span
//! accounting, quantile ordering, and well-formed stall records.

use crate::hist::Histogram;
use crate::json::{escape, parse_json, Json};
use crate::observer::Observer;
use std::collections::BTreeMap;

/// Schema tag stamped on every telemetry line.
pub const TELEMETRY_SCHEMA: &str = "deepeye-telemetry/v1";

/// Every JSON field name a telemetry line may carry, for the doc-sync
/// and analyze-rule checks (A0013): each must appear in DESIGN.md §10.
pub const TELEMETRY_FIELDS: &[&str] = &[
    "schema",
    "seq",
    "t_ns",
    "interval_ns",
    "counters",
    "hists",
    "stages",
    "alloc",
    "spans",
    "proc",
    "stalls",
    "count",
    "total_ns",
    "p50_ns",
    "p95_ns",
    "p99_ns",
    "bytes",
    "finished",
    "retained",
    "dropped",
    "capacity",
    "rss_bytes",
    "cpu_user_ticks",
    "cpu_sys_ticks",
    "name",
    "tid",
    "open_ns",
    "budget_ns",
    "stack",
];

/// Process resource usage polled from `/proc/self` (all zeros when the
/// files are unavailable, e.g. off Linux).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcStats {
    /// Resident set size, bytes (`VmRSS` from `/proc/self/status`).
    pub rss_bytes: u64,
    /// Cumulative user-mode CPU, clock ticks (`utime`).
    pub cpu_user_ticks: u64,
    /// Cumulative kernel-mode CPU, clock ticks (`stime`).
    pub cpu_sys_ticks: u64,
}

/// Poll current process stats. Raw clock ticks are reported as-is (the
/// consumer only needs trends, not seconds).
pub fn proc_stats() -> ProcStats {
    let rss_bytes = std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|text| {
            text.lines()
                .find(|l| l.starts_with("VmRSS:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|kb| kb.parse::<u64>().ok())
        })
        .map(|kb| kb * 1024)
        .unwrap_or(0);
    let (cpu_user_ticks, cpu_sys_ticks) = std::fs::read_to_string("/proc/self/stat")
        .ok()
        .and_then(|text| parse_proc_stat(&text))
        .unwrap_or((0, 0));
    ProcStats {
        rss_bytes,
        cpu_user_ticks,
        cpu_sys_ticks,
    }
}

/// Extract `(utime, stime)` from `/proc/self/stat` content. The comm
/// field may itself contain spaces and parentheses, so fields are
/// counted after the *last* `)`: state is field 0, utime/stime are
/// fields 11/12.
fn parse_proc_stat(text: &str) -> Option<(u64, u64)> {
    let (_, rest) = text.rsplit_once(')')?;
    let mut fields = rest.split_whitespace().skip(11);
    let utime = fields.next()?.parse().ok()?;
    let stime = fields.next()?.parse().ok()?;
    Some((utime, stime))
}

/// Per-stage state remembered between ticks (parallel to the observer's
/// append-only path table, so plain indexing by position is stable).
#[derive(Debug, Clone)]
struct StagePrev {
    count: u64,
    total_ns: u64,
    hist: Histogram,
}

/// The caller-held diffing state for [`Observer::telemetry_tick`]: the
/// previous tick's counters, histograms, stage aggregates, allocation
/// totals, and how many stall events were already streamed. Start from
/// `TelemetryCursor::default()` and pass the same cursor to every tick.
#[derive(Debug, Default)]
pub struct TelemetryCursor {
    seq: u64,
    last_t_ns: u64,
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Histogram>,
    stages: Vec<StagePrev>,
    alloc_count: u64,
    alloc_bytes: u64,
    stalls_seen: usize,
    last_proc: ProcStats,
}

impl TelemetryCursor {
    /// Ticks emitted through this cursor so far.
    pub fn ticks(&self) -> u64 {
        self.seq
    }
}

impl Observer {
    /// Emit one telemetry line: the deltas since `cursor`'s previous
    /// tick, then advance the cursor. Runs the stall watchdog first so
    /// fresh stalls ride the same line. Returns `None` when disabled.
    pub fn telemetry_tick(&self, cursor: &mut TelemetryCursor) -> Option<String> {
        let inner = self.inner.as_ref()?;
        self.check_stalls();
        let proc = proc_stats();
        // CPU counters must never regress in the stream even if the
        // kernel briefly reports stale values.
        let proc = ProcStats {
            rss_bytes: proc.rss_bytes,
            cpu_user_ticks: proc.cpu_user_ticks.max(cursor.last_proc.cpu_user_ticks),
            cpu_sys_ticks: proc.cpu_sys_ticks.max(cursor.last_proc.cpu_sys_ticks),
        };
        let t_ns = inner.origin.elapsed().as_nanos() as u64;
        let interval_ns = t_ns.saturating_sub(cursor.last_t_ns);
        let mut state = inner.lock();
        let ticks = state.counters.entry("telemetry.ticks").or_insert(0);
        *ticks = ticks.saturating_add(1);

        let mut counter_parts: Vec<String> = Vec::new();
        for (&name, &value) in &state.counters {
            let prev = cursor.counters.get(name).copied().unwrap_or(0);
            let d = value.saturating_sub(prev);
            if d > 0 {
                counter_parts.push(format!("\"{}\":{d}", escape(name)));
            }
        }

        let empty = Histogram::default();
        let mut hist_parts: Vec<String> = Vec::new();
        for (&name, hist) in &state.hists {
            let prev = cursor.hists.get(name).unwrap_or(&empty);
            let d = hist.delta(prev);
            if d.count() == 0 {
                continue;
            }
            hist_parts.push(format!(
                "\"{}\":{{\"count\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{}}}",
                escape(name),
                d.count(),
                d.quantile(0.5),
                d.quantile(0.95),
                d.quantile(0.99)
            ));
        }

        let mut stage_parts: Vec<String> = Vec::new();
        let mut alloc_count = 0u64;
        let mut alloc_bytes = 0u64;
        for (i, agg) in state.paths.aggs.iter().enumerate() {
            alloc_count += agg.alloc.count;
            alloc_bytes += agg.alloc.bytes;
            let prev = cursor.stages.get(i);
            let (prev_count, prev_total) = prev.map(|p| (p.count, p.total_ns)).unwrap_or((0, 0));
            if agg.count <= prev_count {
                continue;
            }
            let d = match prev {
                Some(p) => agg.hist.delta(&p.hist),
                None => agg.hist.clone(),
            };
            stage_parts.push(format!(
                "\"{}\":{{\"count\":{},\"total_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{}}}",
                escape(&agg.path),
                agg.count - prev_count,
                agg.total_ns.saturating_sub(prev_total),
                d.quantile(0.5),
                d.quantile(0.95),
                d.quantile(0.99)
            ));
        }
        let alloc_dc = alloc_count.saturating_sub(cursor.alloc_count);
        let alloc_db = alloc_bytes.saturating_sub(cursor.alloc_bytes);

        let ring = state.ring.stats();

        let mut stall_parts: Vec<String> = Vec::new();
        for event in state.stalls.iter().skip(cursor.stalls_seen) {
            let stack = event
                .stack
                .iter()
                .map(|n| format!("\"{}\"", escape(n)))
                .collect::<Vec<_>>()
                .join(",");
            stall_parts.push(format!(
                "{{\"name\":\"{}\",\"tid\":{},\"open_ns\":{},\"budget_ns\":{},\"stack\":[{stack}]}}",
                escape(event.name),
                event.tid,
                event.open_ns,
                event.budget_ns
            ));
        }

        cursor.seq += 1;
        cursor.last_t_ns = t_ns;
        cursor.counters = state.counters.clone();
        cursor.hists = state.hists.clone();
        cursor.stages = state
            .paths
            .aggs
            .iter()
            .map(|a| StagePrev {
                count: a.count,
                total_ns: a.total_ns,
                hist: a.hist.clone(),
            })
            .collect();
        cursor.alloc_count = alloc_count;
        cursor.alloc_bytes = alloc_bytes;
        cursor.stalls_seen = state.stalls.len();
        cursor.last_proc = proc;

        let line = format!(
            "{{\"schema\":\"{TELEMETRY_SCHEMA}\",\"seq\":{},\"t_ns\":{t_ns},\
             \"interval_ns\":{interval_ns},\"counters\":{{{}}},\"hists\":{{{}}},\
             \"stages\":{{{}}},\"alloc\":{{\"count\":{alloc_dc},\"bytes\":{alloc_db}}},\
             \"spans\":{{\"finished\":{},\"retained\":{},\"dropped\":{},\"capacity\":{}}},\
             \"proc\":{{\"rss_bytes\":{},\"cpu_user_ticks\":{},\"cpu_sys_ticks\":{}}},\
             \"stalls\":[{}]}}\n",
            cursor.seq,
            counter_parts.join(","),
            hist_parts.join(","),
            stage_parts.join(","),
            ring.finished,
            ring.retained,
            ring.dropped,
            ring.capacity,
            proc.rss_bytes,
            proc.cpu_user_ticks,
            proc.cpu_sys_ticks,
            stall_parts.join(",")
        );

        // Feed the tick straight into the health engine when one is
        // attached (see `Observer::with_health`): the engine sees
        // exactly the bytes the stream consumer will, so online
        // verdicts and offline replay agree. The bookkeeping counters
        // land on the *next* tick's deltas (the cursor snapshot above
        // already closed this interval).
        let ingest = state
            .health
            .as_mut()
            .map(|engine| engine.ingest_line(&line));
        match ingest {
            Some(Ok(())) => {
                let slot = state.counters.entry("health.ticks").or_insert(0);
                *slot = slot.saturating_add(1);
            }
            Some(Err(_)) => {
                let slot = state.counters.entry("health.ingest_errors").or_insert(0);
                *slot = slot.saturating_add(1);
            }
            None => {}
        }
        Some(line)
    }
}

/// Summary returned by a successful [`validate_telemetry_jsonl`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetrySummary {
    /// Lines (ticks) in the stream.
    pub ticks: usize,
    /// Stall events across all ticks.
    pub stalls: usize,
    /// Largest retained-span count seen.
    pub max_retained: u64,
    /// Final cumulative dropped-span count.
    pub dropped: u64,
    /// Capacity stamped on the final tick (0 = unbounded).
    pub capacity: u64,
}

fn req_u64(obj: &Json, key: &str, what: &str) -> Result<u64, String> {
    let v = obj
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{what} missing numeric `{key}`"))?;
    if v < 0.0 || v.fract() != 0.0 {
        return Err(format!("{what}.{key} = {v} is not a non-negative integer"));
    }
    Ok(v as u64)
}

fn check_quantiles(obj: &Json, what: &str) -> Result<(), String> {
    let p50 = req_u64(obj, "p50_ns", what)?;
    let p95 = req_u64(obj, "p95_ns", what)?;
    let p99 = req_u64(obj, "p99_ns", what)?;
    if !(p50 <= p95 && p95 <= p99) {
        return Err(format!(
            "{what} quantiles not monotonic: p50 {p50} p95 {p95} p99 {p99}"
        ));
    }
    Ok(())
}

/// Validate a `deepeye-telemetry/v1` JSON-lines stream: every line must
/// carry the schema tag, `seq` must strictly increase, `t_ns` and the
/// cumulative span/CPU accounting must be monotone, `retained` must
/// never exceed a nonzero `capacity`, `finished == retained + dropped`
/// on every tick, interval quantiles must be ordered, and stall records
/// must be well-formed (`open_ns > budget_ns`, stack ends at the stalled
/// span). Blank lines are ignored; an empty stream is an error.
pub fn validate_telemetry_jsonl(text: &str) -> Result<TelemetrySummary, String> {
    let mut ticks = 0usize;
    let mut stalls = 0usize;
    let mut max_retained = 0u64;
    let mut last_dropped = 0u64;
    let mut last_capacity = 0u64;
    let mut prev_seq: Option<u64> = None;
    let mut prev_t = 0u64;
    let mut prev_finished = 0u64;
    let mut prev_user = 0u64;
    let mut prev_sys = 0u64;
    // Cross-line invariant failures cite both ends: the failing line
    // number rides the `fail` prefix, and this remembers where the
    // compared-against value came from.
    let mut prev_line = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let n = lineno + 1;
        let doc = parse_json(line).map_err(|e| format!("line {n}: {e}"))?;
        let fail = |msg: String| Err(format!("line {n}: {msg}"));
        match doc.get("schema").and_then(Json::as_str) {
            Some(TELEMETRY_SCHEMA) => {}
            Some(other) => return fail(format!("unexpected schema {other:?}")),
            None => return fail("missing `schema`".to_owned()),
        }
        let seq = req_u64(&doc, "seq", "tick").map_err(|e| format!("line {n}: {e}"))?;
        if let Some(p) = prev_seq {
            if seq <= p {
                return fail(format!(
                    "`seq` {seq} does not increase past {p} (line {prev_line})"
                ));
            }
        }
        prev_seq = Some(seq);
        let t_ns = req_u64(&doc, "t_ns", "tick").map_err(|e| format!("line {n}: {e}"))?;
        if t_ns < prev_t {
            return fail(format!(
                "`t_ns` {t_ns} regresses below {prev_t} (line {prev_line})"
            ));
        }
        prev_t = t_ns;
        let interval =
            req_u64(&doc, "interval_ns", "tick").map_err(|e| format!("line {n}: {e}"))?;
        if interval > t_ns {
            return fail(format!("interval_ns {interval} exceeds t_ns {t_ns}"));
        }
        let counters = doc
            .get("counters")
            .and_then(Json::as_object)
            .ok_or_else(|| format!("line {n}: missing `counters` object"))?;
        for (name, v) in counters {
            match v.as_f64() {
                Some(x) if x >= 0.0 && x.fract() == 0.0 => {}
                _ => return fail(format!("counter `{name}` is not a non-negative integer")),
            }
        }
        let hists = doc
            .get("hists")
            .and_then(Json::as_object)
            .ok_or_else(|| format!("line {n}: missing `hists` object"))?;
        for (name, h) in hists {
            let count = req_u64(h, "count", &format!("hist `{name}`"))
                .map_err(|e| format!("line {n}: {e}"))?;
            if count == 0 {
                return fail(format!("hist `{name}` has zero interval count"));
            }
            check_quantiles(h, &format!("hist `{name}`")).map_err(|e| format!("line {n}: {e}"))?;
        }
        let stages = doc
            .get("stages")
            .and_then(Json::as_object)
            .ok_or_else(|| format!("line {n}: missing `stages` object"))?;
        for (path, s) in stages {
            let count = req_u64(s, "count", &format!("stage `{path}`"))
                .map_err(|e| format!("line {n}: {e}"))?;
            if count == 0 {
                return fail(format!("stage `{path}` has zero interval count"));
            }
            req_u64(s, "total_ns", &format!("stage `{path}`"))
                .map_err(|e| format!("line {n}: {e}"))?;
            check_quantiles(s, &format!("stage `{path}`")).map_err(|e| format!("line {n}: {e}"))?;
        }
        let alloc = doc
            .get("alloc")
            .ok_or_else(|| format!("line {n}: missing `alloc`"))?;
        let a_count = req_u64(alloc, "count", "alloc").map_err(|e| format!("line {n}: {e}"))?;
        let a_bytes = req_u64(alloc, "bytes", "alloc").map_err(|e| format!("line {n}: {e}"))?;
        if a_count == 0 && a_bytes > 0 {
            return fail(format!("alloc has {a_bytes} bytes but zero events"));
        }
        let spans = doc
            .get("spans")
            .ok_or_else(|| format!("line {n}: missing `spans`"))?;
        let finished = req_u64(spans, "finished", "spans").map_err(|e| format!("line {n}: {e}"))?;
        let retained = req_u64(spans, "retained", "spans").map_err(|e| format!("line {n}: {e}"))?;
        let dropped = req_u64(spans, "dropped", "spans").map_err(|e| format!("line {n}: {e}"))?;
        let capacity = req_u64(spans, "capacity", "spans").map_err(|e| format!("line {n}: {e}"))?;
        if retained + dropped != finished {
            return fail(format!(
                "span accounting broken: retained {retained} + dropped {dropped} != finished {finished}"
            ));
        }
        if capacity > 0 && retained > capacity {
            return fail(format!("retained {retained} exceeds capacity {capacity}"));
        }
        if finished < prev_finished {
            return fail(format!(
                "`spans.finished` {finished} regresses below {prev_finished} (line {prev_line})"
            ));
        }
        prev_finished = finished;
        if dropped < last_dropped {
            return fail(format!(
                "`spans.dropped` {dropped} regresses below {last_dropped} (line {prev_line})"
            ));
        }
        last_dropped = dropped;
        last_capacity = capacity;
        max_retained = max_retained.max(retained);
        let proc = doc
            .get("proc")
            .ok_or_else(|| format!("line {n}: missing `proc`"))?;
        req_u64(proc, "rss_bytes", "proc").map_err(|e| format!("line {n}: {e}"))?;
        let user = req_u64(proc, "cpu_user_ticks", "proc").map_err(|e| format!("line {n}: {e}"))?;
        let sys = req_u64(proc, "cpu_sys_ticks", "proc").map_err(|e| format!("line {n}: {e}"))?;
        if user < prev_user {
            return fail(format!(
                "`proc.cpu_user_ticks` {user} regresses below {prev_user} (line {prev_line})"
            ));
        }
        if sys < prev_sys {
            return fail(format!(
                "`proc.cpu_sys_ticks` {sys} regresses below {prev_sys} (line {prev_line})"
            ));
        }
        prev_user = user;
        prev_sys = sys;
        let stall_arr = doc
            .get("stalls")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("line {n}: missing `stalls` array"))?;
        for (k, stall) in stall_arr.iter().enumerate() {
            let what = format!("stall {k}");
            let name = stall
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("line {n}: {what} missing `name`"))?;
            req_u64(stall, "tid", &what).map_err(|e| format!("line {n}: {e}"))?;
            let open_ns = req_u64(stall, "open_ns", &what).map_err(|e| format!("line {n}: {e}"))?;
            let budget_ns =
                req_u64(stall, "budget_ns", &what).map_err(|e| format!("line {n}: {e}"))?;
            if open_ns <= budget_ns {
                return fail(format!(
                    "{what} open_ns {open_ns} within budget {budget_ns} is not a stall"
                ));
            }
            let stack = stall
                .get("stack")
                .and_then(Json::as_array)
                .ok_or_else(|| format!("line {n}: {what} missing `stack` array"))?;
            let leaf = stack.last().and_then(Json::as_str);
            if leaf != Some(name) {
                return fail(format!("{what} stack does not end at {name:?}"));
            }
        }
        stalls += stall_arr.len();
        ticks += 1;
        prev_line = n;
    }
    if ticks == 0 {
        return Err("telemetry stream contains no ticks".to_owned());
    }
    Ok(TelemetrySummary {
        ticks,
        stalls,
        max_retained,
        dropped: last_dropped,
        capacity: last_capacity,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::RecorderConfig;
    use crate::watchdog::StallBudget;

    #[test]
    fn disabled_observer_ticks_nothing() {
        let obs = Observer::disabled();
        let mut cursor = TelemetryCursor::default();
        assert_eq!(obs.telemetry_tick(&mut cursor), None);
        assert_eq!(cursor.ticks(), 0);
    }

    #[test]
    fn ticks_carry_only_interval_deltas() {
        let obs = Observer::with_recorder(RecorderConfig::bounded(8));
        let mut cursor = TelemetryCursor::default();
        obs.incr("exec.ok", 5);
        obs.record_many_ns("exec.query_ns", &[100, 200]);
        {
            let _s = obs.span("stage");
        }
        let line1 = obs.telemetry_tick(&mut cursor).expect("enabled");
        let doc = parse_json(line1.trim()).expect("valid JSON line");
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("exec.ok"))
                .and_then(Json::as_f64),
            Some(5.0)
        );
        assert_eq!(
            doc.get("hists")
                .and_then(|h| h.get("exec.query_ns"))
                .and_then(|h| h.get("count"))
                .and_then(Json::as_f64),
            Some(2.0)
        );
        assert_eq!(
            doc.get("stages")
                .and_then(|s| s.get("stage"))
                .and_then(|s| s.get("count"))
                .and_then(Json::as_f64),
            Some(1.0)
        );

        // Second interval: 3 more oks, nothing else.
        obs.incr("exec.ok", 3);
        let line2 = obs.telemetry_tick(&mut cursor).expect("enabled");
        let doc2 = parse_json(line2.trim()).expect("valid");
        assert_eq!(
            doc2.get("counters")
                .and_then(|c| c.get("exec.ok"))
                .and_then(Json::as_f64),
            Some(3.0),
            "delta, not cumulative"
        );
        assert!(
            doc2.get("hists")
                .and_then(|h| h.get("exec.query_ns"))
                .is_none(),
            "quiet histogram omitted"
        );
        assert!(
            doc2.get("stages").and_then(|s| s.get("stage")).is_none(),
            "quiet stage omitted"
        );
        assert_eq!(cursor.ticks(), 2);

        let stream = format!("{line1}{line2}");
        let summary = validate_telemetry_jsonl(&stream).expect("valid stream");
        assert_eq!(summary.ticks, 2);
        assert_eq!(summary.stalls, 0);
    }

    #[test]
    fn single_sample_interval_has_degenerate_ordered_quantiles() {
        let obs = Observer::with_recorder(RecorderConfig::bounded(8));
        let mut cursor = TelemetryCursor::default();
        obs.record_ns("exec.query_ns", 1234);
        let line = obs.telemetry_tick(&mut cursor).expect("enabled");
        let doc = parse_json(line.trim()).expect("valid");
        let hist = doc
            .get("hists")
            .and_then(|h| h.get("exec.query_ns"))
            .expect("hist present");
        let q = |k: &str| hist.get(k).and_then(Json::as_f64).expect("numeric");
        assert_eq!(q("count"), 1.0);
        // One sample: every quantile collapses to the same bucket bound.
        assert_eq!(q("p50_ns"), q("p95_ns"));
        assert_eq!(q("p95_ns"), q("p99_ns"));
        validate_telemetry_jsonl(&line).expect("degenerate quantiles still validate");
    }

    #[test]
    fn multi_sample_interval_quantiles_are_ordered() {
        let obs = Observer::with_recorder(RecorderConfig::bounded(8));
        let mut cursor = TelemetryCursor::default();
        // A wide spread across log2 buckets so the quantiles differ.
        obs.record_many_ns("exec.query_ns", &[10, 100, 1_000, 100_000, 50_000_000]);
        let line = obs.telemetry_tick(&mut cursor).expect("enabled");
        let doc = parse_json(line.trim()).expect("valid");
        let hist = doc
            .get("hists")
            .and_then(|h| h.get("exec.query_ns"))
            .expect("hist present");
        let q = |k: &str| hist.get(k).and_then(Json::as_f64).expect("numeric");
        assert!(q("p50_ns") <= q("p95_ns"));
        assert!(q("p95_ns") <= q("p99_ns"));
        validate_telemetry_jsonl(&line).expect("ordered quantiles validate");
    }

    #[test]
    fn saturated_counters_delta_to_zero_not_underflow() {
        let obs = Observer::with_recorder(RecorderConfig::bounded(8));
        let mut cursor = TelemetryCursor::default();
        obs.incr("exec.ok", u64::MAX);
        let line1 = obs.telemetry_tick(&mut cursor).expect("enabled");
        let doc1 = parse_json(line1.trim()).expect("valid");
        assert_eq!(
            doc1.get("counters")
                .and_then(|c| c.get("exec.ok"))
                .and_then(Json::as_f64),
            Some(u64::MAX as f64)
        );
        // The counter is already saturated; another huge increment
        // cannot move it, so the next interval must report no delta
        // rather than wrap.
        obs.incr("exec.ok", u64::MAX);
        obs.incr("exec.err", 1);
        let line2 = obs.telemetry_tick(&mut cursor).expect("enabled");
        let doc2 = parse_json(line2.trim()).expect("valid");
        assert!(
            doc2.get("counters")
                .and_then(|c| c.get("exec.ok"))
                .is_none(),
            "saturated counter has no interval delta"
        );
        assert_eq!(
            doc2.get("counters")
                .and_then(|c| c.get("exec.err"))
                .and_then(Json::as_f64),
            Some(1.0)
        );
        let stream = format!("{line1}{line2}");
        validate_telemetry_jsonl(&stream).expect("saturated stream validates");
        // The health engine accepts the saturated sample as a finite f64.
        let mut engine = crate::health::HealthEngine::new(crate::health::HealthConfig::default());
        for line in stream.lines() {
            engine.ingest_line(line).expect("tick ingests");
        }
        assert_eq!(engine.ticks(), 2);
    }

    #[test]
    fn stream_reports_drops_and_stalls() {
        let obs =
            Observer::with_recorder(RecorderConfig::bounded(2).with_budgets(vec![StallBudget {
                span: "slow",
                max_open_ns: 1,
            }]));
        let mut cursor = TelemetryCursor::default();
        for _ in 0..10 {
            let _s = obs.span("fast");
        }
        let slow = obs.span("slow");
        std::thread::sleep(std::time::Duration::from_millis(1));
        let line = obs.telemetry_tick(&mut cursor).expect("enabled");
        drop(slow);
        let summary = validate_telemetry_jsonl(&line).expect("valid");
        assert_eq!(summary.ticks, 1);
        assert_eq!(summary.stalls, 1, "watchdog event rides the tick");
        assert_eq!(summary.max_retained, 2);
        assert_eq!(summary.dropped, 8);
        assert_eq!(summary.capacity, 2);
        let doc = parse_json(line.trim()).expect("valid");
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("obs.spans_dropped"))
                .and_then(Json::as_f64),
            Some(8.0)
        );
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("obs.stall"))
                .and_then(Json::as_f64),
            Some(1.0)
        );
    }

    #[test]
    fn proc_stats_are_sane() {
        let p = proc_stats();
        // On Linux (the CI environment) a live process has nonzero RSS;
        // elsewhere everything is zero. Either way nothing panics.
        if p.rss_bytes > 0 {
            assert!(p.rss_bytes > 4096, "RSS should be at least a page");
        }
        assert_eq!(
            parse_proc_stat("123 (a b) c 1 2 3 4 5 6 7 8 9 10 40 50 12"),
            Some((40, 50))
        );
        assert_eq!(parse_proc_stat("garbage"), None);
    }

    #[test]
    fn validator_rejects_malformed_streams() {
        assert!(validate_telemetry_jsonl("").is_err(), "empty stream");
        assert!(validate_telemetry_jsonl("not json").is_err());
        let obs = Observer::with_recorder(RecorderConfig::bounded(8));
        let mut cursor = TelemetryCursor::default();
        {
            let _s = obs.span("stage");
        }
        let line = obs.telemetry_tick(&mut cursor).expect("enabled");
        // Wrong schema tag.
        let bad = line.replace("deepeye-telemetry/v1", "deepeye-telemetry/v0");
        assert!(validate_telemetry_jsonl(&bad)
            .unwrap_err()
            .contains("schema"));
        // Repeated seq: duplicate the line verbatim. The error names
        // the failing field, the failing line, and the compared line.
        let dup = format!("{line}{line}");
        let err = validate_telemetry_jsonl(&dup).unwrap_err();
        assert!(err.contains("seq"));
        assert!(
            err.contains("line 2") && err.contains("(line 1)"),
            "cross-line error cites both lines: {err}"
        );
        // Broken span accounting.
        let bad = line.replace("\"finished\":1", "\"finished\":5");
        assert!(validate_telemetry_jsonl(&bad)
            .unwrap_err()
            .contains("accounting"));
    }

    #[test]
    fn cross_line_regressions_name_the_metric() {
        let obs = Observer::with_recorder(RecorderConfig::bounded(8));
        let mut cursor = TelemetryCursor::default();
        {
            let _s = obs.span("stage");
        }
        let line1 = obs.telemetry_tick(&mut cursor).expect("enabled");
        {
            let _s = obs.span("stage");
        }
        let line2 = obs.telemetry_tick(&mut cursor).expect("enabled");
        // Force the second tick's finished count below the first's
        // (retained too, so the within-line accounting still balances).
        let tampered = line2.replace(
            "\"finished\":2,\"retained\":2",
            "\"finished\":0,\"retained\":0",
        );
        let err = validate_telemetry_jsonl(&format!("{line1}{tampered}")).unwrap_err();
        assert!(
            err.contains("spans.finished") && err.contains("line 2") && err.contains("(line 1)"),
            "regression error names metric and both lines: {err}"
        );
    }

    #[test]
    fn with_health_ingests_every_tick() {
        let obs = Observer::with_health(
            RecorderConfig::bounded(8),
            crate::health::HealthConfig::default(),
        );
        let mut cursor = TelemetryCursor::default();
        for _ in 0..3 {
            {
                let _s = obs.span("stage");
            }
            obs.telemetry_tick(&mut cursor).expect("enabled");
        }
        assert_eq!(obs.counter("health.ticks"), 3);
        assert_eq!(obs.counter("health.ingest_errors"), 0);
        let doc = obs.health_report().expect("engine attached");
        let summary = crate::health::validate_health_json(&doc).expect("valid document");
        assert_eq!(summary.ticks, 3);
        assert_eq!(obs.counter("health.evaluations"), 1);
        let prom = obs.health_prometheus().expect("engine attached");
        assert!(prom.contains("deepeye_health_ticks 3"));
        let snapshot = obs.health_snapshot().expect("engine attached");
        assert_eq!(snapshot.ticks, 3);
        // A plain recorder has no engine and records no health metrics.
        let plain = Observer::with_recorder(RecorderConfig::bounded(8));
        assert!(plain.health_report().is_none());
        assert!(plain.health_verdicts().is_empty());
        assert_eq!(plain.counter("health.ticks"), 0);
    }
}
