//! # deepeye-obs
//!
//! Lightweight observability for the DeepEye pipeline: hierarchical spans
//! on a monotonic clock, counters, log-scale latency histograms, and three
//! exporters — a human-readable per-stage report, a JSON metrics snapshot,
//! and Chrome trace-event JSON loadable in `chrome://tracing` / Perfetto.
//!
//! Like the other external stand-ins in this workspace (`vendor/*`), the
//! crate is dependency-free: the build environment has no crates.io
//! access, so no `tracing`/`serde` — a small purpose-built layer instead.
//!
//! ## Design
//!
//! The central type is [`Observer`], a cheaply cloneable handle that is
//! either **enabled** (shares an `Arc`'d recorder; clones record into the
//! same sink) or **disabled** (holds nothing). Every recording method on a
//! disabled observer is a single `Option` check — the pipeline carries an
//! observer unconditionally and pays nothing when nobody is listening.
//!
//! Spans are RAII guards: [`Observer::span`] starts one, dropping the
//! guard ends it. A per-thread span stack supplies parents automatically;
//! work shipped to worker threads passes the parent explicitly via
//! [`Observer::span_under`] so cross-thread children merge under the right
//! stage (see `deepeye_core::parallel`).
//!
//! For long-lived processes, [`Observer::with_recorder`] turns the tracer
//! into a **flight recorder**: raw spans live in a bounded [`ring`]
//! buffer under a [`SamplingPolicy`], per-stage aggregates stay exact
//! regardless of sampling, a [`watchdog`] flags spans open past their
//! budget, and [`telemetry`] ticks stream per-interval deltas as
//! `deepeye-telemetry/v1` JSON lines.
//!
//! ```
//! use deepeye_obs::Observer;
//!
//! let obs = Observer::enabled();
//! {
//!     let _stage = obs.span("pipeline.enumerate");
//!     obs.incr("enumerate.candidates", 42);
//!     obs.record_ns("exec.query_ns", 1_500);
//! }
//! let snapshot = obs.snapshot();
//! assert_eq!(snapshot.counter("enumerate.candidates"), 42);
//! assert!(obs.stage_report().contains("pipeline.enumerate"));
//! deepeye_obs::validate_chrome_trace(&obs.chrome_trace_json()).unwrap();
//! ```

#![forbid(unsafe_code)]

pub mod alloc;
pub mod clock;
pub mod cost;
pub mod flame;
pub mod health;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod observer;
pub mod report;
pub mod ring;
pub mod series;
pub mod telemetry;
pub mod trace;
pub mod watchdog;

pub use alloc::{fmt_bytes, AllocStats};
pub use clock::Stopwatch;
pub use cost::{
    validate_cost_json, CandidateCost, CostAcc, CostCollector, CostReport, CostSummary, GroupCost,
    NoCost, Op, OpCosts, COST_FIELDS, COST_SCHEMA,
};

pub use flame::{flame_svg, folded_stacks, spans_from_chrome_trace, FlameSpan};
pub use health::{
    default_detectors, validate_health_json, Detector, EwmaDrift, HealthConfig, HealthEngine,
    HealthReport, HealthSummary, MonotonicGrowth, RobustZ, Severity, SloObjective, Verdict,
    HEALTH_FIELDS, HEALTH_SCHEMA,
};
pub use hist::{HistSummary, Histogram};
pub use json::{parse_json, Json, JsonError};
pub use observer::{HistTimer, Observer, RecorderConfig, SpanGuard, SpanId, SpanRecord};
pub use report::{fmt_duration, validate_metrics_json, MetricsSummary, Snapshot, StageAgg};
pub use ring::{RetentionStats, SamplingPolicy, SpanRing};
pub use series::{stats_of, RingSeries, WindowStats};
pub use telemetry::{
    proc_stats, validate_telemetry_jsonl, ProcStats, TelemetryCursor, TelemetrySummary,
    TELEMETRY_FIELDS, TELEMETRY_SCHEMA,
};
pub use trace::{chrome_trace_json_with_accounting, validate_chrome_trace, TraceSummary};
pub use watchdog::{StallBudget, StallEvent, STALL_LOG_CAP};
