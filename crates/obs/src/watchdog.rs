//! Stall watchdog: spans open longer than their stage budget.
//!
//! A flight recorder only sees spans when they *close* — a stage that
//! hangs never reaches the ring, the aggregates, or the trace. The
//! watchdog closes that blind spot: [`Observer::check_stalls`] sweeps the
//! open-span registry against a table of [`StallBudget`]s (the bench
//! crate derives one from its per-stage budget table) and emits one
//! structured [`StallEvent`] per offending span, carrying the open-span
//! stack at detection time. Each detection increments the `obs.stall`
//! counter; telemetry ticks drain the event log into the `stalls` field
//! of the stream (see [`crate::telemetry`]).
//!
//! A span is reported **once**: it stays marked until it closes, so a
//! periodic tick loop does not multiply-count a single long stall. The
//! event log is bounded ([`STALL_LOG_CAP`]) — under a pathological stall
//! storm the counter stays exact while old events are kept and new ones
//! beyond the cap are counted but not materialized.

use crate::observer::{Observer, SpanId};

/// Retained [`StallEvent`]s are capped at this many; the `obs.stall`
/// counter keeps the exact total regardless.
pub const STALL_LOG_CAP: usize = 1024;

/// Budget for one span name: open longer than `max_open_ns` is a stall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallBudget {
    /// Span name the budget applies to (e.g. `harness.execute`).
    pub span: &'static str,
    /// Maximum tolerated open time, nanoseconds.
    pub max_open_ns: u64,
}

/// One detected stall: a span open past its budget, with the open-span
/// stack (root to leaf) at detection time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallEvent {
    pub span_id: SpanId,
    /// Name of the stalled span.
    pub name: &'static str,
    /// Thread the span was opened on.
    pub tid: u64,
    /// How long the span had been open when detected, nanoseconds.
    pub open_ns: u64,
    /// The budget it exceeded.
    pub budget_ns: u64,
    /// Open-span names from the root to the stalled span itself —
    /// where the process was stuck.
    pub stack: Vec<&'static str>,
}

impl Observer {
    /// Sweep open spans against the recorder's stall budgets; returns how
    /// many *new* stalls this sweep detected. Already-reported spans are
    /// skipped until they close, so calling this from a periodic tick
    /// loop reports each stall exactly once. No budgets (or a disabled
    /// observer) makes this a no-op.
    pub fn check_stalls(&self) -> usize {
        let Some(inner) = &self.inner else { return 0 };
        if inner.budgets.is_empty() {
            return 0;
        }
        let now_ns = inner.origin.elapsed().as_nanos() as u64;
        let mut state = inner.lock();
        let mut events: Vec<StallEvent> = Vec::new();
        for (&id, open) in &state.open {
            if state.stalled.contains(&id) {
                continue;
            }
            let Some(budget) = inner.budgets.iter().find(|b| b.span == open.name) else {
                continue;
            };
            let open_ns = now_ns.saturating_sub(open.start_ns);
            if open_ns <= budget.max_open_ns {
                continue;
            }
            // Stack via the open-span registry; depth cap guards against
            // a (buggy) parent cycle.
            let mut stack = vec![open.name];
            let mut cursor = open.parent;
            for _ in 0..64 {
                let Some(parent) = cursor.and_then(|pid| state.open.get(&pid)) else {
                    break;
                };
                stack.push(parent.name);
                cursor = parent.parent;
            }
            stack.reverse();
            events.push(StallEvent {
                span_id: id,
                name: open.name,
                tid: open.tid,
                open_ns,
                budget_ns: budget.max_open_ns,
                stack,
            });
        }
        let detected = events.len();
        if detected > 0 {
            let stalls = state.counters.entry("obs.stall").or_insert(0);
            *stalls = stalls.saturating_add(detected as u64);
            for event in events {
                state.stalled.insert(event.span_id);
                if state.stalls.len() < STALL_LOG_CAP {
                    state.stalls.push(event);
                }
            }
        }
        detected
    }

    /// The stall events recorded so far (bounded at [`STALL_LOG_CAP`];
    /// the `obs.stall` counter is the exact total).
    pub fn stall_events(&self) -> Vec<StallEvent> {
        self.inner
            .as_ref()
            .map(|inner| inner.lock().stalls.clone())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::RecorderConfig;
    use std::time::Duration;

    fn watched(budget_ns: u64) -> Observer {
        Observer::with_recorder(RecorderConfig::bounded(64).with_budgets(vec![StallBudget {
            span: "stage",
            max_open_ns: budget_ns,
        }]))
    }

    #[test]
    fn no_budgets_means_no_watchdog() {
        let obs = Observer::enabled();
        let _g = obs.span("stage");
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(obs.check_stalls(), 0);
        assert!(obs.stall_events().is_empty());
    }

    #[test]
    fn open_span_past_budget_stalls_once() {
        let obs = watched(1); // 1ns budget: anything open is late.
        let guard = obs.span("stage");
        let _unit = obs.span("unit"); // unbudgeted, never reported
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(obs.check_stalls(), 1);
        // Same open span is not re-reported.
        assert_eq!(obs.check_stalls(), 0);
        assert_eq!(obs.counter("obs.stall"), 1);
        let events = obs.stall_events();
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.name, "stage");
        assert_eq!(e.stack, vec!["stage"]);
        assert!(e.open_ns > e.budget_ns);
        assert_eq!(e.span_id, guard.id().unwrap_or(0));
        drop(guard);
    }

    #[test]
    fn stall_stack_walks_open_parents() {
        let obs =
            Observer::with_recorder(RecorderConfig::bounded(64).with_budgets(vec![StallBudget {
                span: "leaf",
                max_open_ns: 1,
            }]));
        let _root = obs.span("root");
        let _mid = obs.span("mid");
        let _leaf = obs.span("leaf");
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(obs.check_stalls(), 1);
        let events = obs.stall_events();
        assert_eq!(events[0].stack, vec!["root", "mid", "leaf"]);
    }

    #[test]
    fn spans_within_budget_do_not_stall() {
        let obs = watched(60_000_000_000); // 60s budget
        let _g = obs.span("stage");
        assert_eq!(obs.check_stalls(), 0);
        assert_eq!(obs.counter("obs.stall"), 0);
    }

    #[test]
    fn closed_span_frees_the_stalled_mark() {
        let obs = watched(1);
        {
            let _g = obs.span("stage");
            std::thread::sleep(Duration::from_millis(1));
            assert_eq!(obs.check_stalls(), 1);
        }
        // A *new* span over budget is a new stall.
        let _g = obs.span("stage");
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(obs.check_stalls(), 1);
        assert_eq!(obs.counter("obs.stall"), 2);
    }

    #[test]
    fn disabled_observer_never_stalls() {
        let obs = Observer::disabled();
        let _g = obs.span("stage");
        assert_eq!(obs.check_stalls(), 0);
        assert!(obs.stall_events().is_empty());
    }
}
