//! Folded-stack and SVG flame-view export of a span tree.
//!
//! Two renderings of "where did the time go", both derived from the same
//! parent-chain walk the stage report uses:
//!
//! * [`folded_stacks`] emits the `frame;frame;frame <ns>` lines the
//!   flamegraph toolchain (`flamegraph.pl`, speedscope, inferno)
//!   consumes. Each line carries a stack's **self** time — its spans'
//!   duration minus the duration of their direct children — so the sum
//!   over a root's lines reconstructs that root's wall time (and can
//!   exceed it when children ran concurrently on worker threads; the
//!   clamp only ever rounds negative self-time up to zero).
//! * [`flame_svg`] renders a self-contained icicle view (no scripts, no
//!   external assets) for a quick look without leaving the terminal's
//!   `open` command.
//!
//! Both accept [`FlameSpan`]s, an owned mirror of
//! [`SpanRecord`] — owned because the third entry
//! point, [`spans_from_chrome_trace`], rebuilds spans from a *recorded
//! trace file* (Chrome trace-event JSON), where names are strings from
//! disk, not `&'static str`. Any trace the exporter in [`crate::trace`]
//! wrote — or any well-formed B/E trace from elsewhere — round-trips
//! into a flame view.

use crate::json::{parse_json, Json};
use crate::observer::SpanRecord;
use std::collections::BTreeMap;

/// One span as the flame exporters consume it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlameSpan {
    pub id: u64,
    pub parent: Option<u64>,
    pub name: String,
    pub dur_ns: u64,
}

impl From<&SpanRecord> for FlameSpan {
    fn from(s: &SpanRecord) -> FlameSpan {
        FlameSpan {
            id: s.id,
            parent: s.parent,
            name: s.name.to_owned(),
            dur_ns: s.dur_ns,
        }
    }
}

/// Per-span stack path (root-first, `;`-joined) via the parent chain.
/// Unknown parents (still-open spans) root the chain there; a depth cap
/// guards against a buggy cycle.
fn stack_paths(spans: &[FlameSpan]) -> Vec<String> {
    let by_id: BTreeMap<u64, &FlameSpan> = spans.iter().map(|s| (s.id, s)).collect();
    spans
        .iter()
        .map(|span| {
            let mut names = vec![span.name.as_str()];
            let mut cursor = span.parent;
            for _ in 0..64 {
                let Some(parent) = cursor.and_then(|id| by_id.get(&id)) else {
                    break;
                };
                names.push(parent.name.as_str());
                cursor = parent.parent;
            }
            names.reverse();
            names.join(";")
        })
        .collect()
}

/// Render spans as folded stacks: one `path;to;frame <self_ns>` line per
/// distinct stack, sorted by path. Empty input renders an empty string.
pub fn folded_stacks(spans: &[FlameSpan]) -> String {
    // Self time = own duration minus direct children's durations.
    let mut child_ns: BTreeMap<u64, u64> = BTreeMap::new();
    for span in spans {
        if let Some(parent) = span.parent {
            *child_ns.entry(parent).or_insert(0) += span.dur_ns;
        }
    }
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for (span, path) in spans.iter().zip(stack_paths(spans)) {
        let self_ns = span
            .dur_ns
            .saturating_sub(child_ns.get(&span.id).copied().unwrap_or(0));
        *folded.entry(path).or_insert(0) += self_ns;
    }
    let mut out = String::new();
    for (path, ns) in folded {
        out.push_str(&path);
        out.push(' ');
        out.push_str(&ns.to_string());
        out.push('\n');
    }
    out
}

/// Aggregated frame tree for the SVG layout.
#[derive(Default)]
struct Frame {
    /// Inclusive time of spans at exactly this path.
    own_ns: u64,
    children: BTreeMap<String, Frame>,
}

impl Frame {
    /// Inclusive display time: at least the children's total, so frames
    /// whose own span is still open at export time still get width.
    fn incl_ns(&self) -> u64 {
        self.own_ns
            .max(self.children.values().map(Frame::incl_ns).sum())
    }
}

const SVG_WIDTH: f64 = 1200.0;
const ROW_H: f64 = 18.0;

/// Deterministic warm palette from the frame name.
fn frame_color(name: &str) -> String {
    let mut hash: u32 = 2_166_136_261;
    for b in name.bytes() {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(16_777_619);
    }
    let r = 205 + (hash % 50);
    let g = 80 + ((hash >> 8) % 110);
    let b = 30 + ((hash >> 16) % 40);
    format!("rgb({r},{g},{b})")
}

fn depth_of(frame: &Frame) -> usize {
    1 + frame.children.values().map(depth_of).max().unwrap_or(0)
}

fn render_frame(
    name: &str,
    frame: &Frame,
    x: f64,
    width: f64,
    depth: usize,
    total_ns: u64,
    out: &mut String,
) {
    let y = ROW_H * depth as f64;
    let pct = if total_ns == 0 {
        0.0
    } else {
        100.0 * frame.incl_ns() as f64 / total_ns as f64
    };
    out.push_str(&format!(
        "<g><title>{} — {} ({pct:.1}%)</title>\
         <rect x=\"{x:.2}\" y=\"{y:.1}\" width=\"{width:.2}\" height=\"{:.1}\" \
         fill=\"{}\" stroke=\"white\" stroke-width=\"0.5\"/>",
        escape_xml(name),
        crate::report::fmt_duration(frame.incl_ns()),
        ROW_H - 1.0,
        frame_color(name),
    ));
    // Label only when it plausibly fits (~6.5px per character).
    if width >= 6.5 * name.len() as f64 {
        out.push_str(&format!(
            "<text x=\"{:.2}\" y=\"{:.1}\" font-size=\"11\" font-family=\"monospace\" \
             fill=\"black\">{}</text>",
            x + 3.0,
            y + ROW_H - 5.0,
            escape_xml(name),
        ));
    }
    out.push_str("</g>\n");
    let child_total: u64 = frame.children.values().map(Frame::incl_ns).sum();
    if child_total == 0 {
        return;
    }
    // Children share the parent's width proportionally; a concurrency
    // overshoot (children > parent) compresses rather than overflows.
    let scale = width / child_total.max(frame.incl_ns()) as f64;
    let mut cx = x;
    for (child_name, child) in &frame.children {
        let w = child.incl_ns() as f64 * scale;
        render_frame(child_name, child, cx, w, depth + 1, total_ns, out);
        cx += w;
    }
}

fn escape_xml(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Render spans as a self-contained SVG icicle flame view (roots on top,
/// callees below, width proportional to inclusive time).
pub fn flame_svg(spans: &[FlameSpan]) -> String {
    let mut roots: Frame = Frame::default();
    for (span, path) in spans.iter().zip(stack_paths(spans)) {
        let mut node = &mut roots;
        for name in path.split(';') {
            node = node.children.entry(name.to_owned()).or_default();
        }
        node.own_ns += span.dur_ns;
    }
    let total_ns: u64 = roots.children.values().map(Frame::incl_ns).sum();
    let rows = roots.children.values().map(depth_of).max().unwrap_or(0);
    let height = ROW_H * rows as f64 + 30.0;
    let mut out = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{SVG_WIDTH}\" height=\"{height}\" \
         viewBox=\"0 0 {SVG_WIDTH} {height}\">\n\
         <rect width=\"100%\" height=\"100%\" fill=\"#f8f8f8\"/>\n"
    );
    let mut x = 0.0;
    for (name, frame) in &roots.children {
        let width = if total_ns == 0 {
            SVG_WIDTH / roots.children.len() as f64
        } else {
            SVG_WIDTH * frame.incl_ns() as f64 / total_ns as f64
        };
        render_frame(name, frame, x, width, 0, total_ns, &mut out);
        x += width;
    }
    out.push_str(&format!(
        "<text x=\"4\" y=\"{:.1}\" font-size=\"11\" font-family=\"monospace\" fill=\"#555\">\
         deepeye flame view — {} spans, {}</text>\n</svg>\n",
        height - 8.0,
        spans.len(),
        crate::report::fmt_duration(total_ns),
    ));
    out
}

/// Rebuild [`FlameSpan`]s from a Chrome trace-event document (bare array
/// or `{"traceEvents": [...]}`): `B`/`E` pairs are replayed per
/// `(pid, tid)` lane exactly like [`crate::validate_chrome_trace`], `X`
/// events become leaf spans under the lane's open stack, and metadata
/// events are skipped. Unbalanced or malformed input is an error.
pub fn spans_from_chrome_trace(text: &str) -> Result<Vec<FlameSpan>, String> {
    let doc = parse_json(text).map_err(|e| e.to_string())?;
    let events = match &doc {
        Json::Arr(items) => items.as_slice(),
        Json::Obj(_) => doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .ok_or("document has no `traceEvents` array")?,
        _ => return Err("document is neither an event array nor an object".to_owned()),
    };
    // Per-lane stack of (span index into `spans`, name, start ts µs).
    type LaneStacks = BTreeMap<(u64, u64), Vec<(usize, String, f64)>>;
    let mut spans: Vec<FlameSpan> = Vec::new();
    let mut stacks: LaneStacks = BTreeMap::new();
    let mut next_id: u64 = 1;
    for (i, event) in events.iter().enumerate() {
        let fail = |msg: String| Err(format!("event {i}: {msg}"));
        let Some(ph) = event.get("ph").and_then(Json::as_str) else {
            return fail("missing `ph`".to_owned());
        };
        if !matches!(ph, "B" | "E" | "X") {
            continue; // metadata / counters / instants carry no duration
        }
        let Some(ts) = event.get("ts").and_then(Json::as_f64) else {
            return fail("missing numeric `ts`".to_owned());
        };
        let pid = event.get("pid").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        let tid = event.get("tid").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        let stack = stacks.entry((pid, tid)).or_default();
        let parent = stack.last().map(|&(idx, _, _)| spans[idx].id);
        match ph {
            "B" => {
                let Some(name) = event.get("name").and_then(Json::as_str) else {
                    return fail("B event without a name".to_owned());
                };
                spans.push(FlameSpan {
                    id: next_id,
                    parent,
                    name: name.to_owned(),
                    dur_ns: 0,
                });
                stack.push((spans.len() - 1, name.to_owned(), ts));
                next_id += 1;
            }
            "E" => {
                let Some((idx, open, start)) = stack.pop() else {
                    return fail(format!("E without matching B on lane ({pid}, {tid})"));
                };
                if let Some(name) = event.get("name").and_then(Json::as_str) {
                    if name != open {
                        return fail(format!("E name {name:?} closes B name {open:?}"));
                    }
                }
                spans[idx].dur_ns = ((ts - start).max(0.0) * 1e3) as u64;
            }
            _ => {
                // "X": a complete event; `dur` is µs like `ts`.
                let Some(dur) = event.get("dur").and_then(Json::as_f64) else {
                    return fail("X event without `dur`".to_owned());
                };
                let name = event
                    .get("name")
                    .and_then(Json::as_str)
                    .unwrap_or("unnamed");
                spans.push(FlameSpan {
                    id: next_id,
                    parent,
                    name: name.to_owned(),
                    dur_ns: (dur.max(0.0) * 1e3) as u64,
                });
                next_id += 1;
            }
        }
    }
    for ((pid, tid), stack) in &stacks {
        if let Some((_, open, _)) = stack.last() {
            return Err(format!("unclosed span {open:?} on lane ({pid}, {tid})"));
        }
    }
    Ok(spans)
}

impl crate::Observer {
    /// Folded-stack rendering of all finished spans (see
    /// [`folded_stacks`]). Empty when disabled.
    pub fn folded_stacks(&self) -> String {
        let spans: Vec<FlameSpan> = self.finished_spans().iter().map(FlameSpan::from).collect();
        folded_stacks(&spans)
    }

    /// Self-contained SVG flame view of all finished spans (see
    /// [`flame_svg`]).
    pub fn flame_svg(&self) -> String {
        let spans: Vec<FlameSpan> = self.finished_spans().iter().map(FlameSpan::from).collect();
        flame_svg(&spans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Observer;

    fn sample_spans() -> Vec<FlameSpan> {
        let obs = Observer::enabled();
        {
            let _root = obs.span("pipeline.recommend");
            {
                let _e = obs.span("pipeline.enumerate");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            {
                let _x = obs.span("pipeline.execute");
                let _w = obs.span("execute.worker");
            }
        }
        obs.finished_spans().iter().map(FlameSpan::from).collect()
    }

    #[test]
    fn folded_stacks_cover_the_roots() {
        let spans = sample_spans();
        let folded = folded_stacks(&spans);
        assert!(folded.contains("pipeline.recommend;pipeline.enumerate "));
        assert!(folded.contains("pipeline.recommend;pipeline.execute;execute.worker "));
        // Self-times of all stacks under a root sum back to ≥ its wall
        // time (clamping can only add, never lose, root time).
        let root_ns: u64 = spans
            .iter()
            .filter(|s| s.parent.is_none())
            .map(|s| s.dur_ns)
            .sum();
        let folded_ns: u64 = folded
            .lines()
            .filter_map(|l| l.rsplit_once(' ').and_then(|(_, v)| v.parse::<u64>().ok()))
            .sum();
        assert!(
            folded_ns >= root_ns.saturating_mul(95) / 100,
            "folded {folded_ns} < 95% of root {root_ns}"
        );
    }

    #[test]
    fn folded_lines_are_sorted_and_parse() {
        let folded = folded_stacks(&sample_spans());
        let lines: Vec<&str> = folded.lines().collect();
        assert!(!lines.is_empty());
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted, "deterministic order");
        for line in lines {
            let (path, ns) = line.rsplit_once(' ').expect("`path ns` shape");
            assert!(!path.is_empty());
            ns.parse::<u64>().expect("numeric self time");
        }
    }

    #[test]
    fn empty_input_renders_empty_stacks() {
        assert_eq!(folded_stacks(&[]), "");
    }

    #[test]
    fn svg_is_self_contained_and_mentions_frames() {
        let svg = flame_svg(&sample_spans());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("pipeline.recommend"));
        assert!(!svg.contains("<script"), "no scripts");
        assert!(
            !svg.contains("http://") || svg.contains("xmlns"),
            "no external fetches"
        );
    }

    #[test]
    fn chrome_trace_round_trips_into_flame_spans() {
        let obs = Observer::enabled();
        {
            let _a = obs.span("outer");
            let _b = obs.span("inner");
        }
        let spans = spans_from_chrome_trace(&obs.chrome_trace_json()).expect("parses");
        assert_eq!(spans.len(), 2);
        let inner = spans.iter().find(|s| s.name == "inner").expect("inner");
        let outer = spans.iter().find(|s| s.name == "outer").expect("outer");
        assert_eq!(inner.parent, Some(outer.id));
        let folded = folded_stacks(&spans);
        assert!(folded.contains("outer;inner "));
    }

    #[test]
    fn trace_replay_rejects_malformed_input() {
        assert!(spans_from_chrome_trace("not json").is_err());
        let unbalanced = r#"[{"ph":"B","ts":1,"pid":1,"tid":1,"name":"x"}]"#;
        assert!(spans_from_chrome_trace(unbalanced).is_err());
        let mismatch = r#"[{"ph":"B","ts":1,"pid":1,"tid":1,"name":"x"},
                           {"ph":"E","ts":2,"pid":1,"tid":1,"name":"y"}]"#;
        assert!(spans_from_chrome_trace(mismatch).is_err());
    }

    #[test]
    fn x_events_nest_under_the_open_stack() {
        let doc = r#"[{"ph":"B","ts":0,"pid":1,"tid":1,"name":"stage"},
                      {"ph":"X","ts":1,"dur":5,"pid":1,"tid":1,"name":"leaf"},
                      {"ph":"E","ts":10,"pid":1,"tid":1,"name":"stage"}]"#;
        let spans = spans_from_chrome_trace(doc).expect("parses");
        let leaf = spans.iter().find(|s| s.name == "leaf").expect("leaf");
        let stage = spans.iter().find(|s| s.name == "stage").expect("stage");
        assert_eq!(leaf.parent, Some(stage.id));
        assert_eq!(leaf.dur_ns, 5_000);
        assert_eq!(stage.dur_ns, 10_000);
    }

    #[test]
    fn observer_convenience_exports() {
        let obs = Observer::enabled();
        {
            let _s = obs.span("only");
        }
        assert!(obs.folded_stacks().starts_with("only "));
        assert!(obs.flame_svg().contains("only"));
        assert_eq!(Observer::disabled().folded_stacks(), "");
    }
}
