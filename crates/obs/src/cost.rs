//! Executor cost profiling: per-operator work counters, per-candidate
//! attribution, and the versioned `deepeye-cost/v1` document.
//!
//! The stage-level view (`bench.execute_ns`, the `execute.worker` span)
//! says *that* execution is the hotspot; this module says *why*. The
//! executor threads a [`CostAcc`] through its inner loops and counts the
//! seven operators of [`Op`] — rows scanned, group-hash probes and
//! inserts, bin computations, aggregate updates, sort comparisons, and
//! output cardinality. Costs are deterministic work counts, not wall
//! time: two runs of the same query on the same data produce identical
//! numbers, so cross-run diffs (`perfdiff`) attribute a nanosecond delta
//! to the operator bucket whose count moved.
//!
//! The disabled path is monomorphized away: [`NoCost`] implements
//! [`CostAcc`] as a no-op, so `execute_with` compiles to exactly the
//! uninstrumented loop. The parallel executor's costed path records one
//! [`CandidateCost`] per candidate query into a [`CostCollector`] and
//! flushes once per worker chunk — the exactness invariant (checked by
//! [`validate_cost_json`] and asserted by the harness) is that the
//! per-candidate costs sum to the per-worker flush totals, which are the
//! `execute.worker` stage totals.

use crate::json::{escape, Json};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Version tag every cost JSON document carries. Bump when a field is
/// added, removed, or changes meaning; `perfdiff` refuses to compare
/// documents whose schemas differ.
pub const COST_SCHEMA: &str = "deepeye-cost/v1";

/// The JSON field names of the cost document, in document order.
/// DESIGN.md §12 documents each one; a doc-sync test walks this list
/// against a generated document.
pub const COST_FIELDS: &[&str] = &[
    "schema",
    "operators",
    "totals",
    "workers",
    "groups",
    "candidates",
    "chart",
    "transform",
    "signature",
    "builds",
    "costs",
    "id",
];

/// The executor operator taxonomy, in executor-pipeline order: scan,
/// transform (bin/group-hash), aggregate, order, emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Source rows iterated while computing keys or raw pairs.
    RowsScanned,
    /// Bin-key computations (one per source row under a BIN transform).
    BinComputations,
    /// Group-hash lookups (one per non-null key).
    GroupProbes,
    /// Group-hash insertions (one per distinct bucket).
    GroupInserts,
    /// Aggregate accumulator updates (CNT bump or SUM/AVG add).
    AggUpdates,
    /// Comparator invocations while applying ORDER BY.
    SortComparisons,
    /// Marks in the materialized series (output cardinality).
    OutputRows,
}

impl Op {
    /// All operators, executor-pipeline order.
    pub const ALL: [Op; 7] = [
        Op::RowsScanned,
        Op::BinComputations,
        Op::GroupProbes,
        Op::GroupInserts,
        Op::AggUpdates,
        Op::SortComparisons,
        Op::OutputRows,
    ];

    /// Stable lowercase name used in the JSON artifact and diff output.
    pub fn name(self) -> &'static str {
        match self {
            Op::RowsScanned => "rows_scanned",
            Op::BinComputations => "bin_computations",
            Op::GroupProbes => "group_probes",
            Op::GroupInserts => "group_inserts",
            Op::AggUpdates => "agg_updates",
            Op::SortComparisons => "sort_comparisons",
            Op::OutputRows => "output_rows",
        }
    }

    /// The registry counter this operator's worker totals flush into.
    pub fn metric(self) -> &'static str {
        match self {
            Op::RowsScanned => "cost.rows_scanned",
            Op::BinComputations => "cost.bin_computations",
            Op::GroupProbes => "cost.group_probes",
            Op::GroupInserts => "cost.group_inserts",
            Op::AggUpdates => "cost.agg_updates",
            Op::SortComparisons => "cost.sort_comparisons",
            Op::OutputRows => "cost.output_rows",
        }
    }

    /// Parse the stable name back (validator input).
    pub fn from_name(name: &str) -> Option<Op> {
        Op::ALL.into_iter().find(|op| op.name() == name)
    }
}

/// A cost accumulator the executor threads through its loops. The
/// executor is generic over this, so the disabled path ([`NoCost`])
/// monomorphizes to the bare loop.
pub trait CostAcc {
    fn add(&mut self, op: Op, n: u64);
}

/// The no-op accumulator: every `add` compiles away.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoCost;

impl CostAcc for NoCost {
    #[inline(always)]
    fn add(&mut self, _op: Op, _n: u64) {}
}

/// One operator-count vector: the cost of a candidate, a worker chunk,
/// or a rollup group.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCosts {
    counts: [u64; Op::ALL.len()],
}

impl CostAcc for OpCosts {
    #[inline]
    fn add(&mut self, op: Op, n: u64) {
        if let Some(slot) = self.counts.get_mut(op as usize) {
            *slot = slot.saturating_add(n);
        }
    }
}

impl OpCosts {
    /// The count of one operator.
    pub fn get(&self, op: Op) -> u64 {
        self.counts.get(op as usize).copied().unwrap_or(0)
    }

    /// Fold `other` into `self` (saturating; counts never wrap).
    pub fn merge(&mut self, other: &OpCosts) {
        for (slot, v) in self.counts.iter_mut().zip(other.counts) {
            *slot = slot.saturating_add(v);
        }
    }

    /// Sum of all operator counts — the scalar "how much work" number
    /// rollups sort by.
    pub fn total(&self) -> u64 {
        self.counts.iter().fold(0u64, |a, &b| a.saturating_add(b))
    }

    pub fn is_zero(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// `(op, count)` pairs in [`Op::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (Op, u64)> + '_ {
        Op::ALL.into_iter().map(|op| (op, self.get(op)))
    }

    fn json(&self) -> String {
        let mut out = String::from("{");
        for (i, (op, n)) in self.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {n}", op.name()));
        }
        out.push('}');
        out
    }
}

/// One candidate query's accumulated executor cost, keyed by the stable
/// candidate id and carrying the rollup dimensions (chart type,
/// transform, column-pair type signature like `categorical*numerical`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateCost {
    pub id: String,
    pub chart: String,
    pub transform: String,
    pub signature: String,
    /// How many times this candidate was executed (harness repetitions
    /// accumulate here instead of duplicating records).
    pub builds: u64,
    pub costs: OpCosts,
}

/// One rollup row: every candidate sharing (chart × transform ×
/// signature), merged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupCost {
    pub chart: String,
    pub transform: String,
    pub signature: String,
    /// Distinct candidates in the group.
    pub candidates: u64,
    pub builds: u64,
    pub costs: OpCosts,
}

impl GroupCost {
    /// The `chart/transform/signature` label diff output uses.
    pub fn label(&self) -> String {
        format!("{}/{}/{}", self.chart, self.transform, self.signature)
    }
}

#[derive(Debug, Default)]
struct CostState {
    candidates: BTreeMap<String, CandidateCost>,
    workers: Vec<OpCosts>,
}

fn lock(m: &Mutex<CostState>) -> MutexGuard<'_, CostState> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A cheaply cloneable handle collecting per-candidate executor costs —
/// the cost-profiling sibling of [`crate::Observer`]: either **enabled**
/// (clones share one sink) or **disabled** (holds nothing; every method
/// is one `Option` check). Workers buffer candidate costs locally and
/// flush once per chunk via [`CostCollector::record_worker`], so the
/// parallel executor takes the lock once per chunk, not per query.
#[derive(Debug, Clone, Default)]
pub struct CostCollector {
    inner: Option<Arc<Mutex<CostState>>>,
}

impl CostCollector {
    /// A collecting handle.
    pub fn enabled() -> CostCollector {
        CostCollector {
            inner: Some(Arc::new(Mutex::new(CostState::default()))),
        }
    }

    /// The no-op handle (the default).
    pub fn disabled() -> CostCollector {
        CostCollector { inner: None }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Flush one worker chunk: the candidates it built and, implicitly,
    /// the chunk total (computed here, so per-candidate costs sum to the
    /// worker totals *by construction*). Repeated candidate ids merge —
    /// `builds` accumulates and costs add — keeping repeated runs
    /// (harness warmup + reps) one record per candidate.
    pub fn record_worker(&self, candidates: Vec<CandidateCost>) {
        let Some(inner) = &self.inner else { return };
        let mut total = OpCosts::default();
        let mut state = lock(inner);
        for c in candidates {
            total.merge(&c.costs);
            match state.candidates.get_mut(&c.id) {
                Some(existing) => {
                    existing.builds += c.builds;
                    existing.costs.merge(&c.costs);
                }
                None => {
                    state.candidates.insert(c.id.clone(), c);
                }
            }
        }
        state.workers.push(total);
    }

    /// Point-in-time report: candidates (sorted by id), worker flush
    /// totals, the grand total, and the (chart × transform × signature)
    /// rollup. Empty when disabled.
    pub fn report(&self) -> CostReport {
        let Some(inner) = &self.inner else {
            return CostReport::default();
        };
        let state = lock(inner);
        let candidates: Vec<CandidateCost> = state.candidates.values().cloned().collect();
        let workers = state.workers.clone();
        drop(state);
        CostReport::build(candidates, workers)
    }
}

/// The assembled cost view behind the `deepeye-cost/v1` document.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CostReport {
    /// Per-candidate costs, sorted by candidate id.
    pub candidates: Vec<CandidateCost>,
    /// One total per worker-chunk flush.
    pub workers: Vec<OpCosts>,
    /// Grand total (= sum of candidates = sum of workers = sum of groups).
    pub totals: OpCosts,
    /// (chart × transform × signature) rollup, sorted by descending
    /// total cost.
    pub groups: Vec<GroupCost>,
}

impl CostReport {
    fn build(candidates: Vec<CandidateCost>, workers: Vec<OpCosts>) -> CostReport {
        let mut totals = OpCosts::default();
        let mut groups: BTreeMap<(String, String, String), GroupCost> = BTreeMap::new();
        for c in &candidates {
            totals.merge(&c.costs);
            let key = (c.chart.clone(), c.transform.clone(), c.signature.clone());
            let g = groups.entry(key).or_insert_with(|| GroupCost {
                chart: c.chart.clone(),
                transform: c.transform.clone(),
                signature: c.signature.clone(),
                candidates: 0,
                builds: 0,
                costs: OpCosts::default(),
            });
            g.candidates += 1;
            g.builds += c.builds;
            g.costs.merge(&c.costs);
        }
        let mut groups: Vec<GroupCost> = groups.into_values().collect();
        groups.sort_by(|a, b| {
            b.costs
                .total()
                .cmp(&a.costs.total())
                .then_with(|| a.label().cmp(&b.label()))
        });
        CostReport {
            candidates,
            workers,
            totals,
            groups,
        }
    }

    /// Render the `deepeye-cost/v1` document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": \"{COST_SCHEMA}\",\n"));
        out.push_str("  \"operators\": [");
        for (i, op) in Op::ALL.into_iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\"", op.name()));
        }
        out.push_str("],\n");
        out.push_str(&format!("  \"totals\": {},\n", self.totals.json()));
        out.push_str("  \"workers\": [");
        for (i, w) in self.workers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}", w.json()));
        }
        if !self.workers.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str("  \"groups\": [");
        for (i, g) in self.groups.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"chart\": \"{}\", \"transform\": \"{}\", \"signature\": \"{}\", \
                 \"candidates\": {}, \"builds\": {}, \"costs\": {}}}",
                escape(&g.chart),
                escape(&g.transform),
                escape(&g.signature),
                g.candidates,
                g.builds,
                g.costs.json()
            ));
        }
        if !self.groups.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str("  \"candidates\": [");
        for (i, c) in self.candidates.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"id\": \"{}\", \"chart\": \"{}\", \"transform\": \"{}\", \
                 \"signature\": \"{}\", \"builds\": {}, \"costs\": {}}}",
                escape(&c.id),
                escape(&c.chart),
                escape(&c.transform),
                escape(&c.signature),
                c.builds,
                c.costs.json()
            ));
        }
        if !self.candidates.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// The human-readable rollup table printed to stderr by
    /// `harness --cost-out` and the CLI: one line per group (descending
    /// total cost, top operators named with their share) plus the grand
    /// totals.
    pub fn cost_table(&self) -> String {
        let mut out = format!(
            "executor cost report — {} candidate(s), {} worker flush(es), {} total op(s)\n",
            self.candidates.len(),
            self.workers.len(),
            self.totals.total()
        );
        for g in &self.groups {
            let total = g.costs.total().max(1);
            let mut ops: Vec<(Op, u64)> = g.costs.iter().filter(|(_, n)| *n > 0).collect();
            ops.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
            let tops: Vec<String> = ops
                .iter()
                .take(2)
                .map(|(op, n)| format!("{} {}%", op.name(), 100 * n / total))
                .collect();
            out.push_str(&format!(
                "  {:<44} {:>5} cand  {:>7} builds  {:>12} ops  {}\n",
                g.label(),
                g.candidates,
                g.builds,
                g.costs.total(),
                tops.join(", ")
            ));
        }
        out.push_str("  totals:");
        for (op, n) in self.totals.iter() {
            out.push_str(&format!(" {} {n}", op.name()));
        }
        out.push('\n');
        out
    }
}

/// What [`validate_cost_json`] found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostSummary {
    pub candidates: usize,
    pub workers: usize,
    pub groups: usize,
    /// Grand total operation count.
    pub total_ops: u64,
}

fn count_field(obj: &Json, key: &str, what: &str) -> Result<u64, String> {
    let v = obj
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{what} missing numeric field {key:?}"))?;
    if v < 0.0 || v.fract() != 0.0 {
        return Err(format!(
            "{what} field {key:?} must be a non-negative integer"
        ));
    }
    Ok(v as u64)
}

fn costs_field(obj: &Json, what: &str) -> Result<OpCosts, String> {
    let costs = obj
        .get("costs")
        .ok_or_else(|| format!("{what} missing costs object"))?;
    let entries = costs
        .as_object()
        .ok_or_else(|| format!("{what} costs is not an object"))?;
    let mut out = OpCosts::default();
    for (name, value) in entries {
        let op = Op::from_name(name)
            .ok_or_else(|| format!("{what} costs names unknown operator {name:?}"))?;
        let v = value
            .as_f64()
            .ok_or_else(|| format!("{what} operator {name:?} is not a number"))?;
        if v < 0.0 || v.fract() != 0.0 {
            return Err(format!(
                "{what} operator {name:?} must be a non-negative integer"
            ));
        }
        out.add(op, v as u64);
    }
    Ok(out)
}

fn op_vector(obj: &Json, what: &str) -> Result<OpCosts, String> {
    let entries = obj
        .as_object()
        .ok_or_else(|| format!("{what} is not an object"))?;
    let mut out = OpCosts::default();
    for (name, value) in entries {
        let op =
            Op::from_name(name).ok_or_else(|| format!("{what} names unknown operator {name:?}"))?;
        let v = value
            .as_f64()
            .ok_or_else(|| format!("{what} operator {name:?} is not a number"))?;
        if v < 0.0 || v.fract() != 0.0 {
            return Err(format!(
                "{what} operator {name:?} must be a non-negative integer"
            ));
        }
        out.add(op, v as u64);
    }
    Ok(out)
}

/// Validate a `deepeye-cost/v1` document: schema tag, the operator
/// taxonomy, non-negative integer counts, and the exactness invariant —
/// per-candidate costs sum exactly to the worker flush totals (the
/// `execute.worker` stage totals), the grand totals, and the rollup
/// groups, per operator.
pub fn validate_cost_json(text: &str) -> Result<CostSummary, String> {
    let doc = crate::parse_json(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("document missing string field \"schema\"")?;
    if schema != COST_SCHEMA {
        return Err(format!(
            "unknown schema {schema:?} (this build reads {COST_SCHEMA:?})"
        ));
    }
    let operators = doc
        .get("operators")
        .and_then(Json::as_array)
        .ok_or("document missing operators array")?;
    let names: Vec<&str> = operators.iter().filter_map(Json::as_str).collect();
    let expected: Vec<&str> = Op::ALL.into_iter().map(Op::name).collect();
    if names != expected {
        return Err(format!(
            "operators array {names:?} does not match the taxonomy {expected:?}"
        ));
    }
    let totals = op_vector(
        doc.get("totals").ok_or("document missing totals object")?,
        "totals",
    )?;

    let mut worker_sum = OpCosts::default();
    let workers = doc
        .get("workers")
        .and_then(Json::as_array)
        .ok_or("document missing workers array")?;
    for (i, w) in workers.iter().enumerate() {
        worker_sum.merge(&op_vector(w, &format!("worker {i}"))?);
    }

    let mut candidate_sum = OpCosts::default();
    let mut candidate_builds = 0u64;
    let mut seen_ids: BTreeMap<String, (String, String, String)> = BTreeMap::new();
    let candidates = doc
        .get("candidates")
        .and_then(Json::as_array)
        .ok_or("document missing candidates array")?;
    for c in candidates {
        let id = c
            .get("id")
            .and_then(Json::as_str)
            .ok_or("candidate missing string field \"id\"")?;
        if id.is_empty() {
            return Err("candidate has an empty id".into());
        }
        let what = format!("candidate {id:?}");
        let dims = ["chart", "transform", "signature"].map(|key| {
            c.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("{what} missing string field {key:?}"))
        });
        let [chart, transform, signature] = dims;
        let key = (chart?, transform?, signature?);
        if seen_ids.insert(id.to_owned(), key).is_some() {
            return Err(format!("duplicate candidate id {id:?}"));
        }
        candidate_builds += count_field(c, "builds", &what)?;
        candidate_sum.merge(&costs_field(c, &what)?);
    }

    let mut group_sum = OpCosts::default();
    let mut group_candidates = 0u64;
    let mut group_builds = 0u64;
    let mut group_keys: BTreeMap<(String, String, String), u64> = BTreeMap::new();
    let groups = doc
        .get("groups")
        .and_then(Json::as_array)
        .ok_or("document missing groups array")?;
    for g in groups {
        let dims = ["chart", "transform", "signature"].map(|key| {
            g.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("group missing string field {key:?}"))
        });
        let [chart, transform, signature] = dims;
        let key = (chart?, transform?, signature?);
        let what = format!("group {}/{}/{}", key.0, key.1, key.2);
        let cands = count_field(g, "candidates", &what)?;
        if cands == 0 {
            return Err(format!("{what} rolls up zero candidates"));
        }
        group_candidates += cands;
        group_builds += count_field(g, "builds", &what)?;
        group_sum.merge(&costs_field(g, &what)?);
        if group_keys.insert(key.clone(), cands).is_some() {
            return Err(format!("duplicate {what}"));
        }
    }

    // Membership: every candidate's rollup key names a declared group,
    // and the group candidate counts account for every candidate.
    for (id, key) in &seen_ids {
        if !group_keys.contains_key(key) {
            return Err(format!(
                "candidate {id:?} belongs to undeclared group {}/{}/{}",
                key.0, key.1, key.2
            ));
        }
    }
    if group_candidates != seen_ids.len() as u64 {
        return Err(format!(
            "groups roll up {group_candidates} candidate(s), document has {}",
            seen_ids.len()
        ));
    }

    // The exactness invariant, per operator: candidates = workers =
    // groups = totals. Losing a count anywhere must not read as "cheap".
    for op in Op::ALL {
        let t = totals.get(op);
        for (what, sum) in [
            ("candidates", candidate_sum.get(op)),
            ("workers", worker_sum.get(op)),
            ("groups", group_sum.get(op)),
        ] {
            if sum != t {
                return Err(format!(
                    "operator {:?}: {what} sum {sum} != totals {t}",
                    op.name()
                ));
            }
        }
    }
    let builds_total: u64 = candidate_builds;
    if group_builds != builds_total {
        return Err(format!(
            "groups record {group_builds} build(s), candidates record {builds_total}"
        ));
    }
    if !candidates.is_empty() && workers.is_empty() {
        return Err("document has candidates but no worker flushes".into());
    }
    Ok(CostSummary {
        candidates: candidates.len(),
        workers: workers.len(),
        groups: groups.len(),
        total_ops: totals.total(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidate(id: &str, chart: &str, sig: &str, probes: u64) -> CandidateCost {
        let mut costs = OpCosts::default();
        costs.add(Op::RowsScanned, 10);
        costs.add(Op::GroupProbes, probes);
        costs.add(Op::OutputRows, 3);
        CandidateCost {
            id: id.to_owned(),
            chart: chart.to_owned(),
            transform: "group".to_owned(),
            signature: sig.to_owned(),
            builds: 1,
            costs,
        }
    }

    #[test]
    fn op_taxonomy_is_consistent() {
        assert_eq!(Op::ALL.len(), 7);
        for op in Op::ALL {
            assert_eq!(Op::from_name(op.name()), Some(op));
            assert_eq!(op.metric(), format!("cost.{}", op.name()));
            assert!(crate::metrics::is_counter(op.metric()), "{}", op.metric());
        }
        assert_eq!(Op::from_name("hash_joins"), None);
    }

    #[test]
    fn opcosts_merge_and_total() {
        let mut a = OpCosts::default();
        a.add(Op::RowsScanned, 5);
        let mut b = OpCosts::default();
        b.add(Op::RowsScanned, 2);
        b.add(Op::SortComparisons, 7);
        a.merge(&b);
        assert_eq!(a.get(Op::RowsScanned), 7);
        assert_eq!(a.get(Op::SortComparisons), 7);
        assert_eq!(a.total(), 14);
        assert!(!a.is_zero());
        assert!(OpCosts::default().is_zero());
    }

    #[test]
    fn nocost_is_inert() {
        let mut n = NoCost;
        n.add(Op::RowsScanned, u64::MAX);
        // Nothing to observe — the test is that this compiles and the
        // type carries no state.
        assert_eq!(std::mem::size_of::<NoCost>(), 0);
    }

    #[test]
    fn collector_merges_repeat_candidates() {
        let costs = CostCollector::enabled();
        costs.record_worker(vec![candidate("q1", "bar", "categorical*numerical", 4)]);
        costs.record_worker(vec![
            candidate("q1", "bar", "categorical*numerical", 4),
            candidate("q2", "pie", "categorical", 6),
        ]);
        let report = costs.report();
        assert_eq!(report.candidates.len(), 2);
        assert_eq!(report.workers.len(), 2);
        let q1 = &report.candidates[0];
        assert_eq!(q1.id, "q1");
        assert_eq!(q1.builds, 2);
        assert_eq!(q1.costs.get(Op::GroupProbes), 8);
        // Worker totals and candidate totals agree.
        let mut worker_sum = OpCosts::default();
        for w in &report.workers {
            worker_sum.merge(w);
        }
        assert_eq!(worker_sum, report.totals);
        // Rollup groups cover both dimension keys.
        assert_eq!(report.groups.len(), 2);
        assert_eq!(report.groups.iter().map(|g| g.candidates).sum::<u64>(), 2);
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let costs = CostCollector::disabled();
        assert!(!costs.is_enabled());
        costs.record_worker(vec![candidate("q1", "bar", "categorical", 1)]);
        let report = costs.report();
        assert!(report.candidates.is_empty());
        assert!(report.workers.is_empty());
        assert!(report.totals.is_zero());
    }

    #[test]
    fn report_json_validates_and_names_every_field() {
        let costs = CostCollector::enabled();
        costs.record_worker(vec![
            candidate("q1", "bar", "categorical*numerical", 4),
            candidate("q2", "pie", "categorical", 6),
        ]);
        let text = costs.report().to_json();
        let summary = validate_cost_json(&text).expect("valid");
        assert_eq!(summary.candidates, 2);
        assert_eq!(summary.workers, 1);
        assert_eq!(summary.groups, 2);
        for field in COST_FIELDS {
            assert!(
                text.contains(&format!("\"{field}\"")),
                "field {field:?} missing from generated document"
            );
        }
        let table = costs.report().cost_table();
        assert!(table.contains("bar/group/categorical*numerical"));
        assert!(table.contains("totals:"));
    }

    #[test]
    fn validator_rejects_broken_documents() {
        let costs = CostCollector::enabled();
        costs.record_worker(vec![candidate("q1", "bar", "categorical*numerical", 4)]);
        let good = costs.report().to_json();
        assert!(validate_cost_json(&good).is_ok());
        for (broken, why) in [
            (good.replace("deepeye-cost/v1", "deepeye-cost/v0"), "schema"),
            (
                // Only the first occurrence (the totals vector) — the
                // candidate/worker/group copies keep the true count.
                good.replacen("\"group_probes\": 4", "\"group_probes\": 9", 1),
                "sum invariant",
            ),
            (
                good.replace("\"rows_scanned\": 10", "\"rows_scanned\": -1"),
                "negative count",
            ),
            (
                good.replace("rows_scanned", "rows_sacnned"),
                "unknown operator",
            ),
            (
                good.replace("\"candidates\": 1", "\"candidates\": 0"),
                "empty group",
            ),
        ] {
            assert!(
                validate_cost_json(&broken).is_err(),
                "validator should reject broken {why}"
            );
        }
    }

    #[test]
    fn empty_report_is_valid() {
        let report = CostCollector::enabled().report();
        let summary = validate_cost_json(&report.to_json()).expect("valid");
        assert_eq!(summary.candidates, 0);
        assert_eq!(summary.total_ops, 0);
    }
}
