//! Aggregation and the human/JSON exporters.
//!
//! A [`Snapshot`] reads the observer's per-*path* aggregates
//! (`pipeline.recommend/pipeline.execute/execute.worker`), carrying
//! counters and histogram summaries alongside. The same snapshot feeds
//! both the human-readable stage report and the JSON metrics export, so
//! every consumer reads identical numbers. Aggregates are maintained at
//! span close, *before* the raw record meets the flight recorder's
//! sampling policy — a snapshot is therefore exact even when most raw
//! spans were dropped (see [`crate::ring`]).

use crate::alloc::{fmt_bytes, AllocStats};
use crate::hist::HistSummary;
use crate::json::escape;
use crate::observer::State;

/// Aggregate of all spans sharing one path (root-to-leaf name chain).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageAgg {
    /// Slash-joined name chain, e.g. `pipeline.recommend/pipeline.rank`.
    pub path: String,
    /// Leaf name of the path.
    pub name: &'static str,
    /// Nesting depth (0 = root).
    pub depth: usize,
    pub count: u64,
    pub total_ns: u64,
    /// Median span duration at this path (log2-bucket approximation).
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    /// Inclusive attributed allocation events (this path and everything
    /// underneath it).
    pub alloc_count: u64,
    /// Inclusive attributed bytes.
    pub alloc_bytes: u64,
    /// Sum of per-span live-byte peaks underneath this path — an upper
    /// bound on concurrent live bytes, never an undercount.
    pub alloc_peak: u64,
}

/// Point-in-time aggregate view of an observer's recordings.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Stage aggregates sorted by path (so children follow parents).
    pub stages: Vec<StageAgg>,
    pub counters: Vec<(String, u64)>,
    pub hists: Vec<(String, HistSummary)>,
}

impl Snapshot {
    pub(crate) fn build(state: &State) -> Snapshot {
        let aggs = &state.paths.aggs;
        // Fold every path's self allocation stats into all of its
        // ancestors, so stage aggregates read inclusive. A child is
        // always interned after its parent (the parent was open when the
        // child started), so one reverse index walk propagates
        // grandchildren before their parents move up. A path whose spans
        // are all still open at snapshot time has `count == 0` and is
        // skipped from the export rather than invented.
        let mut inclusive: Vec<AllocStats> = aggs.iter().map(|a| a.alloc).collect();
        for i in (0..aggs.len()).rev() {
            let Some(parent) = aggs.get(i).and_then(|a| a.parent) else {
                continue;
            };
            let stats = inclusive.get(i).copied().unwrap_or_default();
            if let Some(slot) = inclusive.get_mut(parent as usize) {
                slot.merge(&stats);
            }
        }
        let mut stages: Vec<StageAgg> = aggs
            .iter()
            .zip(inclusive.iter())
            .filter(|(a, _)| a.count > 0)
            .map(|(a, alloc)| StageAgg {
                path: a.path.clone(),
                name: a.name,
                depth: a.depth,
                count: a.count,
                total_ns: a.total_ns,
                p50_ns: a.hist.quantile(0.50),
                p95_ns: a.hist.quantile(0.95),
                p99_ns: a.hist.quantile(0.99),
                alloc_count: alloc.count,
                alloc_bytes: alloc.bytes,
                alloc_peak: alloc.peak,
            })
            .collect();
        stages.sort_by(|a, b| a.path.cmp(&b.path));
        Snapshot {
            stages,
            counters: state
                .counters
                .iter()
                .map(|(k, v)| ((*k).to_owned(), *v))
                .collect(),
            hists: state
                .hists
                .iter()
                .map(|(k, h)| ((*k).to_owned(), h.summary()))
                .collect(),
        }
    }

    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Histogram summary by name.
    pub fn hist(&self, name: &str) -> Option<&HistSummary> {
        self.hists.iter().find(|(k, _)| k == name).map(|(_, h)| h)
    }

    /// Stage aggregate whose leaf name matches (first in path order).
    pub fn stage(&self, name: &str) -> Option<&StageAgg> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// The human-readable per-stage report.
    pub fn stage_report(&self) -> String {
        let mut out = String::from("== pipeline stage report ==\n");
        if self.stages.is_empty() {
            out.push_str("(no spans recorded)\n");
        } else {
            let name_width = self
                .stages
                .iter()
                .map(|s| 2 * s.depth + s.name.len())
                .max()
                .unwrap_or(0)
                .max("stage".len());
            out.push_str(&format!(
                "{:<name_width$}  {:>6}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}  {:>8}  {:>10}  {:>10}\n",
                "stage", "count", "total", "mean", "p50", "p95", "p99", "allocs", "alloc", "peak"
            ));
            for s in &self.stages {
                let mean_ns = s.total_ns.checked_div(s.count).unwrap_or(0);
                out.push_str(&format!(
                    "{:<name_width$}  {:>6}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}  {:>8}  {:>10}  {:>10}\n",
                    format!("{}{}", "  ".repeat(s.depth), s.name),
                    s.count,
                    fmt_duration(s.total_ns),
                    fmt_duration(mean_ns),
                    fmt_duration(s.p50_ns),
                    fmt_duration(s.p95_ns),
                    fmt_duration(s.p99_ns),
                    s.alloc_count,
                    fmt_bytes(s.alloc_bytes),
                    fmt_bytes(s.alloc_peak),
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("\ncounters:\n");
            let width = self
                .counters
                .iter()
                .map(|(k, _)| k.len())
                .max()
                .unwrap_or(0);
            for (name, value) in &self.counters {
                out.push_str(&format!("  {name:<width$}  {value}\n"));
            }
        }
        if !self.hists.is_empty() {
            out.push_str("\nhistograms:\n");
            for (name, h) in &self.hists {
                out.push_str(&format!(
                    "  {name}  count={} mean={} p50={} p95={} p99={} max={}\n",
                    h.count,
                    fmt_duration(h.mean as u64),
                    fmt_duration(h.p50),
                    fmt_duration(h.p95),
                    fmt_duration(h.p99),
                    fmt_duration(h.max),
                ));
            }
        }
        out
    }

    /// The JSON metrics export: counters, histogram summaries, and span
    /// aggregates keyed by path.
    pub fn metrics_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", escape(name), value));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (name, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"sum_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \
                 \"mean_ns\": {:.1}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}}}",
                escape(name),
                h.count,
                h.sum,
                h.min,
                h.max,
                h.mean,
                h.p50,
                h.p95,
                h.p99
            ));
        }
        if !self.hists.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"stages\": {");
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"total_ns\": {}, \"p50_ns\": {}, \
                 \"p95_ns\": {}, \"p99_ns\": {}, \"alloc_count\": {}, \
                 \"alloc_bytes\": {}, \"alloc_peak\": {}}}",
                escape(&s.path),
                s.count,
                s.total_ns,
                s.p50_ns,
                s.p95_ns,
                s.p99_ns,
                s.alloc_count,
                s.alloc_bytes,
                s.alloc_peak
            ));
        }
        if !self.stages.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

/// Summary returned by [`validate_metrics_json`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsSummary {
    pub counters: usize,
    pub histograms: usize,
    pub stages: usize,
}

fn non_negative_int(v: &crate::json::Json, what: &str) -> Result<u64, String> {
    let x = v
        .as_f64()
        .ok_or_else(|| format!("{what} is not a number"))?;
    if x < 0.0 || x.fract() != 0.0 {
        return Err(format!("{what} = {x} is not a non-negative integer"));
    }
    Ok(x as u64)
}

/// Validate a [`Snapshot::metrics_json`] document: the three top-level
/// objects must be present, counters must be non-negative integers, and
/// each histogram summary must be internally consistent (all eight fields
/// present; when `count > 0`, `min ≤ p50 ≤ p95 ≤ p99 ≤ max`,
/// `min ≤ mean ≤ max`, and `sum ≥ max`). Every stage must carry ordered
/// `p50_ns ≤ p95_ns ≤ p99_ns` duration quantiles with `p99_ns ≤
/// total_ns`, plus the three `alloc_*` attribution fields with
/// `alloc_peak ≤ alloc_bytes` and no bytes without events.
pub fn validate_metrics_json(text: &str) -> Result<MetricsSummary, String> {
    use crate::json::{parse_json, Json};
    let doc = parse_json(text).map_err(|e| e.to_string())?;
    let counters = doc
        .get("counters")
        .and_then(Json::as_object)
        .ok_or("missing `counters` object")?;
    for (name, value) in counters {
        non_negative_int(value, &format!("counter `{name}`"))?;
    }
    let hists = doc
        .get("histograms")
        .and_then(Json::as_object)
        .ok_or("missing `histograms` object")?;
    for (name, h) in hists {
        let field = |key: &str| -> Result<u64, String> {
            non_negative_int(
                h.get(key)
                    .ok_or_else(|| format!("histogram `{name}` missing `{key}`"))?,
                &format!("histogram `{name}`.{key}"),
            )
        };
        let count = field("count")?;
        let sum = field("sum_ns")?;
        let min = field("min_ns")?;
        let max = field("max_ns")?;
        let mean = h
            .get("mean_ns")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("histogram `{name}` missing `mean_ns`"))?;
        let p50 = field("p50_ns")?;
        let p95 = field("p95_ns")?;
        let p99 = field("p99_ns")?;
        if count > 0 {
            if !(min <= p50 && p50 <= p95 && p95 <= p99 && p99 <= max) {
                return Err(format!(
                    "histogram `{name}` percentiles not monotonic: \
                     min {min} p50 {p50} p95 {p95} p99 {p99} max {max}"
                ));
            }
            if mean < min as f64 || mean > max as f64 {
                return Err(format!(
                    "histogram `{name}` mean {mean} outside [{min}, {max}]"
                ));
            }
            if sum < max {
                return Err(format!("histogram `{name}` sum {sum} < max {max}"));
            }
        }
    }
    let stages = doc
        .get("stages")
        .and_then(Json::as_object)
        .ok_or("missing `stages` object")?;
    for (path, s) in stages {
        let count = non_negative_int(
            s.get("count")
                .ok_or_else(|| format!("stage `{path}` missing `count`"))?,
            &format!("stage `{path}`.count"),
        )?;
        if count == 0 {
            return Err(format!("stage `{path}` has zero count"));
        }
        let total_ns = non_negative_int(
            s.get("total_ns")
                .ok_or_else(|| format!("stage `{path}` missing `total_ns`"))?,
            &format!("stage `{path}`.total_ns"),
        )?;
        let stage_field = |key: &str| -> Result<u64, String> {
            non_negative_int(
                s.get(key)
                    .ok_or_else(|| format!("stage `{path}` missing `{key}`"))?,
                &format!("stage `{path}`.{key}"),
            )
        };
        let p50 = stage_field("p50_ns")?;
        let p95 = stage_field("p95_ns")?;
        let p99 = stage_field("p99_ns")?;
        if !(p50 <= p95 && p95 <= p99) {
            return Err(format!(
                "stage `{path}` quantiles not monotonic: p50 {p50} p95 {p95} p99 {p99}"
            ));
        }
        if p99 > total_ns {
            return Err(format!(
                "stage `{path}` p99 {p99} exceeds total_ns {total_ns}"
            ));
        }
        let alloc_field = |key: &str| -> Result<u64, String> {
            non_negative_int(
                s.get(key)
                    .ok_or_else(|| format!("stage `{path}` missing `{key}`"))?,
                &format!("stage `{path}`.{key}"),
            )
        };
        let alloc_count = alloc_field("alloc_count")?;
        let alloc_bytes = alloc_field("alloc_bytes")?;
        let alloc_peak = alloc_field("alloc_peak")?;
        if alloc_peak > alloc_bytes {
            return Err(format!(
                "stage `{path}` alloc_peak {alloc_peak} exceeds alloc_bytes {alloc_bytes}"
            ));
        }
        if alloc_count == 0 && alloc_bytes > 0 {
            return Err(format!(
                "stage `{path}` has {alloc_bytes} attributed bytes but zero events"
            ));
        }
    }
    Ok(MetricsSummary {
        counters: counters.len(),
        histograms: hists.len(),
        stages: stages.len(),
    })
}

/// Render nanoseconds human-readably (`532ns`, `1.2µs`, `43ms`, `2.1s`).
pub fn fmt_duration(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse_json, Json};
    use crate::Observer;

    fn sample_observer() -> Observer {
        let obs = Observer::enabled();
        {
            let _root = obs.span("pipeline.recommend");
            {
                let _e = obs.span("pipeline.enumerate");
                obs.alloc_many(2, 64);
            }
            {
                let _x = obs.span("pipeline.execute");
                obs.alloc(192);
            }
        }
        obs.incr("enumerate.candidates", 12);
        obs.record_many_ns("exec.query_ns", &[100, 2_000, 30_000]);
        obs
    }

    #[test]
    fn stage_paths_nest() {
        let snap = sample_observer().snapshot();
        let paths: Vec<&str> = snap.stages.iter().map(|s| s.path.as_str()).collect();
        assert!(paths.contains(&"pipeline.recommend"));
        assert!(paths.contains(&"pipeline.recommend/pipeline.enumerate"));
        assert!(paths.contains(&"pipeline.recommend/pipeline.execute"));
        let root = snap.stage("pipeline.recommend").expect("root present");
        assert_eq!(root.depth, 0);
        assert_eq!(root.count, 1);
        let child = snap.stage("pipeline.enumerate").expect("child present");
        assert_eq!(child.depth, 1);
    }

    #[test]
    fn repeated_spans_aggregate() {
        let obs = Observer::enabled();
        for _ in 0..5 {
            let _s = obs.span("op");
        }
        let snap = obs.snapshot();
        assert_eq!(snap.stage("op").map(|s| s.count), Some(5));
        assert_eq!(snap.stages.len(), 1);
    }

    #[test]
    fn stage_report_renders_everything() {
        let report = sample_observer().stage_report();
        assert!(report.contains("pipeline.recommend"));
        assert!(report.contains("  pipeline.enumerate"), "indented child");
        assert!(report.contains("enumerate.candidates"));
        assert!(report.contains("exec.query_ns"));
        assert!(report.contains("count=3"));
    }

    #[test]
    fn empty_report_renders() {
        let report = Observer::enabled().stage_report();
        assert!(report.contains("no spans recorded"));
    }

    #[test]
    fn alloc_aggregates_are_inclusive() {
        let snap = sample_observer().snapshot();
        let root = snap.stage("pipeline.recommend").expect("root");
        assert_eq!(root.alloc_count, 3, "root folds both children in");
        assert_eq!(root.alloc_bytes, 256);
        assert_eq!(root.alloc_peak, 256);
        let enumerate = snap.stage("pipeline.enumerate").expect("child");
        assert_eq!(enumerate.alloc_count, 2);
        assert_eq!(enumerate.alloc_bytes, 64);
        // Children never exceed the parent's inclusive totals.
        let child_bytes: u64 = snap
            .stages
            .iter()
            .filter(|s| s.depth == 1)
            .map(|s| s.alloc_bytes)
            .sum();
        assert!(child_bytes <= root.alloc_bytes);
    }

    #[test]
    fn stage_report_shows_alloc_columns() {
        let report = sample_observer().stage_report();
        assert!(report.contains("allocs"), "alloc column header");
        assert!(report.contains("256B"), "inclusive root bytes rendered");
    }

    #[test]
    fn metrics_json_carries_alloc_fields() {
        let doc = parse_json(&sample_observer().metrics_json()).expect("valid JSON");
        let root = doc
            .get("stages")
            .and_then(|s| s.get("pipeline.recommend"))
            .expect("root stage exported");
        assert_eq!(root.get("alloc_count").and_then(Json::as_f64), Some(3.0));
        assert_eq!(root.get("alloc_bytes").and_then(Json::as_f64), Some(256.0));
        assert_eq!(root.get("alloc_peak").and_then(Json::as_f64), Some(256.0));
    }

    #[test]
    fn validator_rejects_inconsistent_alloc_fields() {
        // Missing field.
        let doc = sample_observer()
            .metrics_json()
            .replace("\"alloc_peak\": ", "\"alloc_peek\": ");
        assert!(validate_metrics_json(&doc).unwrap_err().contains("alloc"));
        // Peak above bytes.
        let doc = sample_observer()
            .metrics_json()
            .replace("\"alloc_peak\": 256", "\"alloc_peak\": 999");
        assert!(validate_metrics_json(&doc).unwrap_err().contains("exceeds"));
    }

    #[test]
    fn metrics_json_is_valid_and_faithful() {
        let obs = sample_observer();
        let doc = parse_json(&obs.metrics_json()).expect("valid JSON");
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("enumerate.candidates"))
                .and_then(Json::as_f64),
            Some(12.0)
        );
        let hist = doc
            .get("histograms")
            .and_then(|h| h.get("exec.query_ns"))
            .expect("histogram exported");
        assert_eq!(hist.get("count").and_then(Json::as_f64), Some(3.0));
        assert_eq!(hist.get("sum_ns").and_then(Json::as_f64), Some(32_100.0));
        let stages = doc.get("stages").and_then(Json::as_object).expect("stages");
        assert!(stages
            .iter()
            .any(|(k, _)| k == "pipeline.recommend/pipeline.execute"));
    }

    #[test]
    fn disabled_metrics_json_is_valid() {
        let doc = parse_json(&Observer::disabled().metrics_json()).expect("valid JSON");
        assert!(doc
            .get("counters")
            .and_then(Json::as_object)
            .map(<[(String, Json)]>::is_empty)
            .unwrap_or(false));
    }

    #[test]
    fn validator_accepts_real_exports() {
        let summary =
            validate_metrics_json(&sample_observer().metrics_json()).expect("valid metrics");
        assert_eq!(summary.counters, 1);
        assert_eq!(summary.histograms, 1);
        assert!(summary.stages >= 3);
        // The empty (disabled) export is also well-formed.
        let empty = validate_metrics_json(&Observer::disabled().metrics_json()).unwrap();
        assert_eq!(empty.counters, 0);
    }

    #[test]
    fn validator_rejects_broken_documents() {
        assert!(validate_metrics_json("not json").is_err());
        assert!(validate_metrics_json("{}")
            .unwrap_err()
            .contains("counters"));
        // Percentile order violated.
        let doc = sample_observer()
            .metrics_json()
            .replace("\"p50_ns\": ", "\"p50_ns\": 99999999999, \"ignored\": ");
        assert!(validate_metrics_json(&doc)
            .unwrap_err()
            .contains("monotonic"));
        // Negative counter.
        let doc = sample_observer().metrics_json().replace(
            "\"enumerate.candidates\": 12",
            "\"enumerate.candidates\": -3",
        );
        assert!(validate_metrics_json(&doc)
            .unwrap_err()
            .contains("non-negative"));
    }

    #[test]
    fn stage_quantiles_are_exported_and_ordered() {
        let obs = Observer::enabled();
        for _ in 0..20 {
            let _s = obs.span("op");
        }
        let snap = obs.snapshot();
        let op = snap.stage("op").expect("aggregated");
        assert!(op.p50_ns <= op.p95_ns && op.p95_ns <= op.p99_ns);
        assert!(op.p99_ns <= op.total_ns);
        let report = snap.stage_report();
        for col in ["p50", "p95", "p99"] {
            assert!(report.contains(col), "missing column {col}");
        }
        let doc = parse_json(&snap.metrics_json()).expect("valid JSON");
        let stage = doc.get("stages").and_then(|s| s.get("op")).expect("op row");
        for key in ["p50_ns", "p95_ns", "p99_ns"] {
            assert!(
                stage.get(key).and_then(Json::as_f64).is_some(),
                "missing {key}"
            );
        }
    }

    #[test]
    fn validator_rejects_broken_stage_quantiles() {
        // Missing stage quantile field.
        let bad = r#"{"counters": {}, "histograms": {}, "stages": {"op":
            {"count": 1, "total_ns": 10, "p95_ns": 1, "p99_ns": 1,
             "alloc_count": 0, "alloc_bytes": 0, "alloc_peak": 0}}}"#;
        assert!(validate_metrics_json(bad).unwrap_err().contains("p50_ns"));
        // Out-of-order stage quantiles.
        let bad = r#"{"counters": {}, "histograms": {}, "stages": {"op":
            {"count": 1, "total_ns": 10, "p50_ns": 9, "p95_ns": 1, "p99_ns": 10,
             "alloc_count": 0, "alloc_bytes": 0, "alloc_peak": 0}}}"#;
        assert!(validate_metrics_json(bad)
            .unwrap_err()
            .contains("monotonic"));
        // Stage quantile above total_ns is impossible.
        let obs = Observer::enabled();
        {
            let _s = obs.span("op");
        }
        let json = obs.metrics_json();
        let op = parse_json(&json)
            .ok()
            .and_then(|d| {
                d.get("stages")
                    .and_then(|s| s.get("op"))
                    .and_then(|s| s.get("total_ns"))
                    .and_then(Json::as_f64)
            })
            .expect("total exported") as u64;
        let bad = json.replace(
            &format!("\"total_ns\": {op}"),
            &format!("\"total_ns\": {op}, \"p99_ns\": {}", op + 10),
        );
        assert!(validate_metrics_json(&bad).unwrap_err().contains("p99"));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(0), "0ns");
        assert_eq!(fmt_duration(532), "532ns");
        assert_eq!(fmt_duration(1_200), "1.2µs");
        assert_eq!(fmt_duration(43_000_000), "43.0ms");
        assert_eq!(fmt_duration(2_100_000_000), "2.10s");
    }
}
