//! The sanctioned monotonic clock for ad-hoc timing.
//!
//! All wall-clock reads in the workspace go through `deepeye-obs`: spans
//! and [`Observer::timer`](crate::Observer::timer) cover the common
//! cases, and [`Stopwatch`] covers the rest — per-item latencies buffered
//! for a batched [`record_many_ns`](crate::Observer::record_many_ns)
//! flush, or report scripts printing elapsed times. Code outside this
//! crate never touches `std::time::Instant` directly; `deepeye-analyze`
//! rule `A0001` enforces that, which keeps every timing source on one
//! clock discipline (monotonic, nanosecond-resolution, saturating) and
//! keeps future clock swaps (virtual time in tests, coarse clocks on hot
//! paths) a one-crate change.

use std::time::{Duration, Instant};

/// A started monotonic stopwatch. Reading it does not stop it, so one
/// stopwatch can time successive laps against its origin or a fresh one
/// can be started per item.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Start timing now.
    #[must_use]
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Nanoseconds elapsed since [`start`](Self::start), saturated into
    /// `u64` (580+ years) — the unit every histogram in the workspace
    /// records.
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Elapsed time as a [`Duration`], for human-facing report output.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_ns();
        let b = sw.elapsed_ns();
        assert!(b >= a);
        assert!(sw.elapsed() >= Duration::from_nanos(b));
    }

    #[test]
    fn measures_a_sleep() {
        let sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(1));
        assert!(sw.elapsed_ns() >= 1_000_000);
    }
}
