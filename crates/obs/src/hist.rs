//! Log-scale histograms for latency distributions.
//!
//! Values (nanoseconds) land in power-of-two buckets: bucket 0 holds 0,
//! bucket `b` holds `[2^(b-1), 2^b)`. 64 buckets cover the full `u64`
//! range, so recording never saturates; quantiles are read back as the
//! geometric midpoint of the answering bucket — ~±25% relative error,
//! plenty for stage attribution.

/// Number of buckets: value 0 plus one per power of two.
const BUCKETS: usize = 65;

/// A fixed-size log-scale histogram of `u64` samples (nanoseconds by
/// convention, but unit-agnostic).
#[derive(Debug, Clone)]
pub struct Histogram {
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

fn bucket_of(value: u64) -> usize {
    match value {
        0 => 0,
        v => v.ilog2() as usize + 1,
    }
}

/// Representative value of a bucket: the geometric midpoint of its range.
fn bucket_mid(bucket: usize) -> u64 {
    match bucket {
        0 => 0,
        b => {
            let lo = 1u64 << (b - 1);
            // lo * sqrt(2), without floats drifting at the top of the range.
            lo + lo / 2
        }
    }
}

impl Histogram {
    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_of(value)] += 1;
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`): the geometric midpoint of
    /// the bucket holding the `ceil(q·count)`-th sample, clamped to the
    /// observed min/max so tails never exceed reality.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_mid(b).clamp(self.min(), self.max);
            }
        }
        self.max
    }

    /// The interval histogram `self − prev`, for telemetry ticks: `prev`
    /// must be an earlier snapshot of the same histogram (bucket counts
    /// only grow), and the result describes just the samples recorded in
    /// between. Exact per bucket and in count/sum; the interval's min and
    /// max are approximated by the bounds of the lowest and highest
    /// non-empty delta bucket (the raw extremes are not kept per
    /// interval), which still brackets the true values so quantiles and
    /// the mean stay inside `[min, max]`.
    pub fn delta(&self, prev: &Histogram) -> Histogram {
        let mut out = Histogram::default();
        for (i, (cur, old)) in self.buckets.iter().zip(prev.buckets.iter()).enumerate() {
            let d = cur.saturating_sub(*old);
            if d == 0 {
                continue;
            }
            if let Some(slot) = out.buckets.get_mut(i) {
                *slot = d;
            }
            out.count += d;
            // Bucket b holds [2^(b-1), 2^b); bucket 0 holds exactly 0.
            let lo = match i {
                0 => 0,
                b => 1u64 << (b - 1),
            };
            let hi = match i {
                0 => 0,
                64 => u64::MAX,
                b => (1u64 << b) - 1,
            };
            out.min = out.min.min(lo);
            out.max = out.max.max(hi);
        }
        out.sum = self.sum.saturating_sub(prev.sum);
        // The global extremes tighten the bucket bounds when they fall
        // inside the interval's bucket range.
        if out.count > 0 {
            out.min = out.min.max(self.min.min(out.max));
            out.max = out.max.min(self.max).max(out.min);
        }
        out
    }

    /// A compact summary for exporters.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            sum: self.sum,
            min: self.min(),
            max: self.max,
            mean: self.mean(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistSummary {
    pub count: u64,
    pub sum: u128,
    pub min: u64,
    pub max: u64,
    pub mean: f64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::default();
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.p50, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn records_and_summarizes() {
        let mut h = Histogram::default();
        for v in [100u64, 200, 300, 400, 10_000] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 11_000);
        assert_eq!(s.min, 100);
        assert_eq!(s.max, 10_000);
        // p50 lands in the bucket of 200–300; log-scale tolerance.
        assert!(s.p50 >= 128 && s.p50 <= 512, "p50 = {}", s.p50);
        assert!(s.p99 <= 10_000);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let mut h = Histogram::default();
        for i in 1..=1000u64 {
            h.record(i * 17);
        }
        let (p50, p95, p99) = (h.quantile(0.5), h.quantile(0.95), h.quantile(0.99));
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p99 <= h.max());
        assert!(h.quantile(0.0) >= h.min());
    }

    #[test]
    fn merge_equals_recording_everything() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut all = Histogram::default();
        for v in [1u64, 5, 9, 120, 7_000] {
            a.record(v);
            all.record(v);
        }
        for v in [0u64, 33, 900_000] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.summary(), all.summary());
    }

    #[test]
    fn delta_describes_only_the_interval() {
        let mut h = Histogram::default();
        for v in [100u64, 200, 300] {
            h.record(v);
        }
        let snap = h.clone();
        for v in [1_000u64, 5_000, 9_000, 20_000] {
            h.record(v);
        }
        let d = h.delta(&snap);
        assert_eq!(d.count(), 4);
        assert_eq!(d.sum(), 35_000);
        let s = d.summary();
        assert!(s.min <= 1_000, "interval min bracketed, got {}", s.min);
        assert!(s.max >= 9_000 && s.max <= 32_767, "max = {}", s.max);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        assert!(s.mean >= s.min as f64 && s.mean <= s.max as f64);
        // An empty interval is an empty histogram.
        let none = h.delta(&h);
        assert_eq!(none.count(), 0);
        assert_eq!(none.summary().p99, 0);
    }

    #[test]
    fn zero_and_extreme_values() {
        let mut h = Histogram::default();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        // Quantiles stay within the recorded range and stay ordered.
        let (lo, hi) = (h.quantile(0.0), h.quantile(1.0));
        assert!(lo <= hi);
        assert!(lo >= h.min());
        assert!(hi <= h.max());
    }
}
