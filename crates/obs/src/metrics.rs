//! The central metric registry: every counter and histogram name the
//! pipeline may record.
//!
//! Instrumentation sites across the product crates pass name literals to
//! [`Observer::incr`](crate::Observer::incr) /
//! [`Observer::timer`](crate::Observer::timer) /
//! [`Observer::record_ns`](crate::Observer::record_ns); nothing ties those
//! literals together at the type level, so a typo silently forks a metric
//! (`exec.ok` vs `exec.okay`) and dashboards read zeros. This module is
//! the single source of truth: `deepeye-analyze` rule `A0005` scans the
//! workspace for metric-name literals and fails the build when a name is
//! used that is not registered here — or registered here and used
//! nowhere (a dead entry is a doc lie). DESIGN.md §6 "Metric names"
//! documents the same set; the root `observability` test suite keeps the
//! prose in sync.
//!
//! Adding a metric is a three-line change: the call site, this registry,
//! and the DESIGN.md table — and the lint wall plus the doc-sync test
//! make sure none of the three drifts.
//!
//! The flight recorder's self-metrics (`obs.spans_dropped`, `obs.stall`,
//! `telemetry.ticks`) are recorded inside `deepeye-obs` itself, so rule
//! `A0005` (which scans the product crates) exempts the `obs.*` /
//! `telemetry.*` / `health.*` prefixes; rule `A0013` owns the first two,
//! keeping the registry, the recorder sources, and DESIGN.md §10 in
//! sync, and rule `A0020` does the same for the health engine's
//! `health.*` counters against DESIGN.md §13.
//!
//! The executor cost counters (`cost.*`) are flushed by
//! `deepeye_core::parallel::flush_cost_counters`, one per operator in the
//! [`cost`](crate::cost) taxonomy. Rule `A0005` sees those literal call
//! sites like any other product metric; rule `A0014` additionally keeps
//! the operator names aligned across this registry, the `exec.rs` /
//! `batch.rs` instrumentation sites, and DESIGN.md §12.

/// Every counter name ([`Observer::incr`](crate::Observer::incr)) the
/// pipeline records, sorted.
pub const COUNTERS: &[&str] = &[
    "cost.agg_updates",
    "cost.bin_computations",
    "cost.group_inserts",
    "cost.group_probes",
    "cost.output_rows",
    "cost.rows_scanned",
    "cost.sort_comparisons",
    "enumerate.candidates",
    "enumerate.raw",
    "exec.err",
    "exec.ok",
    "health.evaluations",
    "health.ingest_errors",
    "health.ticks",
    "ltr.docs",
    "ltr.epochs",
    "ltr.groups",
    "obs.spans_dropped",
    "obs.stall",
    "progressive.leaves_materialized",
    "progressive.leaves_pruned",
    "progressive.leaves_total",
    "progressive.nodes_generated",
    "progressive.shared_scans",
    "rank.nodes",
    "recognize.kept",
    "recognize.rejected",
    "sema.rejected",
    "telemetry.ticks",
];

/// Every histogram name ([`Observer::timer`](crate::Observer::timer),
/// [`Observer::record_ns`](crate::Observer::record_ns),
/// [`Observer::record_many_ns`](crate::Observer::record_many_ns)) the
/// pipeline records, sorted.
pub const HISTOGRAMS: &[&str] = &[
    "bench.analyze_ns",
    "bench.enumerate_ns",
    "bench.execute_ns",
    "bench.rank_ns",
    "bench.recognize_ns",
    "bench.topk_ns",
    "exec.query_ns",
    "ltr.epoch_ns",
    "progressive.leaf_ns",
];

/// Whether `name` is a registered counter.
pub fn is_counter(name: &str) -> bool {
    COUNTERS.binary_search(&name).is_ok()
}

/// Whether `name` is a registered histogram.
pub fn is_histogram(name: &str) -> bool {
    HISTOGRAMS.binary_search(&name).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lists_are_sorted_and_unique() {
        for list in [COUNTERS, HISTOGRAMS] {
            for pair in list.windows(2) {
                assert!(
                    pair[0] < pair[1],
                    "{} must sort before {}",
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    #[test]
    fn counters_and_histograms_are_disjoint() {
        for c in COUNTERS {
            assert!(!is_histogram(c), "{c} registered as both kinds");
        }
    }

    #[test]
    fn lookups() {
        assert!(is_counter("exec.ok"));
        assert!(!is_counter("exec.okay"));
        assert!(is_histogram("exec.query_ns"));
        assert!(!is_histogram("exec.ok"));
    }

    #[test]
    fn names_are_well_formed() {
        for name in COUNTERS.iter().chain(HISTOGRAMS) {
            assert!(
                name.contains('.')
                    && name
                        .chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "._".contains(c)),
                "metric name {name:?} must be dotted lowercase"
            );
        }
    }
}
