//! Property-based tests for the observability layer: histogram merge
//! semantics, allocation-attribution reconciliation across threads, the
//! flight recorder's retention invariants, the executor cost
//! collector's flush-order invariance and exactness invariant, and the
//! health engine's ring-timeseries statistics and detector determinism.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use deepeye_obs::{
    default_detectors, stats_of, validate_cost_json, validate_health_json, AllocStats,
    CandidateCost, CostAcc, CostCollector, HealthConfig, HealthEngine, Histogram, Observer, Op,
    OpCosts, RecorderConfig, RingSeries, SamplingPolicy, SpanRecord, SpanRing,
};
use proptest::prelude::*;

/// A synthetic finished span for driving [`SpanRing`] directly.
fn record(id: u64, dur_ns: u64) -> SpanRecord {
    SpanRecord {
        id,
        parent: None,
        name: "prop.ring",
        tid: 1,
        start_ns: id * 7,
        dur_ns,
        begin_seq: 2 * id,
        end_seq: 2 * id + 1,
        alloc: AllocStats::default(),
    }
}

/// A synthetic candidate whose rollup dimensions are a pure function of
/// its id — merging the same id across flushes must see consistent
/// dimensions, exactly as `query_id`-keyed candidates do in production.
fn cost_candidate(id_idx: u64, counts: &[u64], builds: u64) -> CandidateCost {
    const CHARTS: [&str; 3] = ["bar", "line", "pie"];
    const TRANSFORMS: [&str; 3] = ["none", "group", "bin"];
    const SIGNATURES: [&str; 3] = ["categorical*numerical", "temporal*numerical", "categorical"];
    let mut costs = OpCosts::default();
    for (op, &n) in Op::ALL.into_iter().zip(counts) {
        costs.add(op, n);
    }
    CandidateCost {
        id: format!("q{id_idx}"),
        chart: CHARTS[(id_idx % 3) as usize].to_owned(),
        transform: TRANSFORMS[((id_idx / 3) % 3) as usize].to_owned(),
        signature: SIGNATURES[((id_idx / 9) % 3) as usize].to_owned(),
        builds,
        costs,
    }
}

/// Deterministic Fisher–Yates driven by a seed (no `rand` dependency).
fn shuffled<T>(mut items: Vec<T>, mut seed: u64) -> Vec<T> {
    for i in (1..items.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        items.swap(i, (seed >> 33) as usize % (i + 1));
    }
    items
}

/// A minimal valid `deepeye-telemetry/v1` line for driving the health
/// engine's ingest path with controlled stage latency and RSS readings.
fn tick_line(seq: u64, p50: u64, rss: u64) -> String {
    format!(
        concat!(
            "{{\"schema\":\"deepeye-telemetry/v1\",\"seq\":{seq},\"t_ns\":{t},",
            "\"interval_ns\":1000000,\"counters\":{{\"exec.ok\":{ok}}},\"hists\":{{}},",
            "\"stages\":{{\"harness.execute\":{{\"count\":1,\"total_ns\":{p50},",
            "\"p50_ns\":{p50},\"p95_ns\":{p50},\"p99_ns\":{p50}}}}},",
            "\"alloc\":{{\"count\":1,\"bytes\":64}},",
            "\"spans\":{{\"finished\":{seq},\"retained\":1,\"dropped\":0,\"capacity\":256}},",
            "\"proc\":{{\"rss_bytes\":{rss},\"cpu_user_ticks\":1,\"cpu_sys_ticks\":1}},",
            "\"stalls\":[]}}",
        ),
        seq = seq,
        t = seq * 1_000_000,
        ok = seq % 5,
        p50 = p50,
        rss = rss,
    )
}

/// Map an arbitrary tag to one of the four sampling policies.
fn policy_from(tag: u64, threshold_ns: u64, seed: u64) -> SamplingPolicy {
    match tag % 4 {
        0 => SamplingPolicy::KeepAll,
        1 => SamplingPolicy::KeepTail,
        2 => SamplingPolicy::KeepSlowest { threshold_ns },
        _ => SamplingPolicy::Reservoir { seed },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging shard histograms is indistinguishable from recording every
    /// sample into one histogram — the exact invariant the observer
    /// relies on when it folds per-thread data into the shared sink.
    #[test]
    fn merge_then_quantile_equals_record_all(
        a_samples in proptest::collection::vec(0u64..1_000_000_000_000, 0..120),
        b_samples in proptest::collection::vec(0u64..1_000_000_000_000, 0..120),
    ) {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut all = Histogram::default();
        for &v in &a_samples {
            a.record(v);
            all.record(v);
        }
        for &v in &b_samples {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        prop_assert_eq!(a.summary(), all.summary());
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            prop_assert_eq!(a.quantile(q), all.quantile(q), "quantile {} diverged", q);
        }
    }

    /// Quantiles stay monotone in `q` and inside the recorded range, for
    /// any sample set — merged or not.
    #[test]
    fn quantiles_are_monotone_and_bounded(
        samples in proptest::collection::vec(0u64..u64::MAX / 2, 1..200),
    ) {
        let mut h = Histogram::default();
        for &v in &samples {
            h.record(v);
        }
        let qs: Vec<u64> = [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0]
            .iter()
            .map(|&q| h.quantile(q))
            .collect();
        for w in qs.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles must be monotone: {:?}", qs);
        }
        prop_assert!(qs[0] >= h.min());
        prop_assert!(qs[qs.len() - 1] <= h.max());
    }

    /// Allocation charges from concurrent scoped-thread worker spans
    /// reconcile: the parent's inclusive aggregate equals the total of
    /// every worker's charges (children never exceed the parent), and
    /// peak never exceeds total bytes.
    #[test]
    fn alloc_counters_reconcile_across_threads(
        workers in proptest::collection::vec(
            proptest::collection::vec((1u64..5, 0u64..10_000), 0..12),
            1..6,
        ),
    ) {
        let obs = Observer::enabled();
        let parent = obs.span("prop.parent");
        let parent_id = parent.id();
        std::thread::scope(|scope| {
            for charges in &workers {
                let obs = obs.clone();
                scope.spawn(move || {
                    let _worker = obs.span_under("prop.worker", parent_id);
                    for &(count, bytes) in charges {
                        obs.alloc_many(count, bytes);
                    }
                });
            }
        });
        drop(parent);

        let total_count: u64 = workers.iter().flatten().map(|&(c, _)| c).sum();
        let total_bytes: u64 = workers.iter().flatten().map(|&(_, b)| b).sum();
        let snapshot = obs.snapshot();
        let parent_agg = snapshot.stage("prop.parent").expect("parent stage");
        let child_agg = snapshot.stage("prop.worker");

        // Inclusive parent aggregate == everything charged below it.
        prop_assert_eq!(parent_agg.alloc_count, total_count);
        prop_assert_eq!(parent_agg.alloc_bytes, total_bytes);
        // Children sum to at most the parent (equality here: the parent
        // charges nothing itself).
        let (child_count, child_bytes) =
            child_agg.map_or((0, 0), |a| (a.alloc_count, a.alloc_bytes));
        prop_assert!(child_count <= parent_agg.alloc_count);
        prop_assert_eq!(child_bytes, total_bytes);
        // Peak is a sum of per-span live peaks: bounded by total bytes.
        prop_assert!(parent_agg.alloc_peak <= parent_agg.alloc_bytes);
        // The metrics document stays self-consistent under any charge mix.
        deepeye_obs::validate_metrics_json(&snapshot.metrics_json())
            .expect("metrics validate");
    }

    /// The retention accounting invariant holds for every policy,
    /// capacity, and span sequence: `retained + dropped == finished`,
    /// and `retained <= capacity` whenever a capacity is set.
    #[test]
    fn ring_accounting_holds_for_any_policy(
        tag in 0u64..4,
        threshold_ns in 0u64..2_000,
        seed in 0u64..u64::MAX,
        capacity in 1usize..32,
        durs in proptest::collection::vec(0u64..5_000, 0..200),
    ) {
        let policy = policy_from(tag, threshold_ns, seed);
        let mut ring = SpanRing::new(capacity, policy);
        for (i, &d) in durs.iter().enumerate() {
            let drops = ring.push(record(i as u64, d));
            prop_assert!(drops <= 1, "one push drops at most one span");
        }
        let stats = ring.stats();
        prop_assert_eq!(stats.finished, durs.len() as u64);
        prop_assert_eq!(stats.retained as u64 + stats.dropped, stats.finished);
        if stats.capacity > 0 {
            prop_assert!(stats.retained <= stats.capacity);
        } else {
            // KeepAll normalizes to unbounded and never drops.
            prop_assert_eq!(stats.dropped, 0);
        }
        // The sorted export is a begin-ordered permutation of the
        // retained set.
        let sorted = ring.to_sorted_vec();
        prop_assert_eq!(sorted.len(), stats.retained);
        prop_assert!(sorted.windows(2).all(|w| w[0].begin_seq < w[1].begin_seq));
    }

    /// KeepSlowest with a zero threshold always retains the
    /// maximum-duration span, whatever the arrival order.
    #[test]
    fn keep_slowest_retains_the_maximum_duration(
        capacity in 1usize..16,
        durs in proptest::collection::vec(0u64..1_000_000, 1..100),
    ) {
        let mut ring = SpanRing::new(capacity, SamplingPolicy::KeepSlowest { threshold_ns: 0 });
        for (i, &d) in durs.iter().enumerate() {
            ring.push(record(i as u64, d));
        }
        let max_dur = durs.iter().copied().max().unwrap_or(0);
        prop_assert!(
            ring.iter().any(|s| s.dur_ns == max_dur),
            "slowest span ({} ns) must survive sampling",
            max_dur
        );
        let stats = ring.stats();
        prop_assert_eq!(stats.retained as u64 + stats.dropped, stats.finished);
    }

    /// Sampling never touches aggregates: a tightly bounded observer and
    /// a record-all observer driven through the same operation sequence
    /// agree exactly on counters, histograms, per-stage counts, and
    /// allocation totals — only the raw span retention differs.
    #[test]
    fn aggregates_equal_record_all_reference(
        ops in proptest::collection::vec(
            (1u64..20, 0u64..1_000_000, (1u64..4, 0u64..10_000)),
            1..80,
        ),
    ) {
        let bounded = Observer::with_recorder(RecorderConfig::bounded(2));
        let reference = Observer::enabled();
        for &(delta, sample_ns, (alloc_count, alloc_bytes)) in &ops {
            for obs in [&bounded, &reference] {
                let _span = obs.span("prop.op");
                obs.incr("exec.ok", delta);
                obs.record_ns("exec.query_ns", sample_ns);
                obs.alloc_many(alloc_count, alloc_bytes);
            }
        }

        // Raw retention differs...
        let retention = bounded.retention();
        prop_assert!(retention.retained <= 2);
        prop_assert_eq!(retention.finished, ops.len() as u64);
        prop_assert_eq!(
            retention.retained as u64 + retention.dropped,
            retention.finished
        );
        prop_assert_eq!(reference.retention().dropped, 0);

        // ...while every aggregate surface matches the reference exactly.
        let b = bounded.snapshot();
        let r = reference.snapshot();
        prop_assert_eq!(b.counter("exec.ok"), r.counter("exec.ok"));
        prop_assert_eq!(b.hist("exec.query_ns"), r.hist("exec.query_ns"));
        let b_stage = b.stage("prop.op").expect("bounded stage agg");
        let r_stage = r.stage("prop.op").expect("reference stage agg");
        prop_assert_eq!(b_stage.count, r_stage.count);
        prop_assert_eq!(b_stage.alloc_count, r_stage.alloc_count);
        prop_assert_eq!(b_stage.alloc_bytes, r_stage.alloc_bytes);
        prop_assert_eq!(b_stage.alloc_peak, r_stage.alloc_peak);
        deepeye_obs::validate_metrics_json(&b.metrics_json()).expect("bounded metrics validate");
    }

    /// Worker flush order never changes what the cost collector reports:
    /// candidates, rollup groups, and grand totals are identical under
    /// any permutation and chunking of the same candidate stream, and
    /// both documents satisfy the exactness invariant the validator
    /// enforces. (This is exactly the guarantee the parallel executor
    /// leans on — worker chunks land in nondeterministic order.)
    #[test]
    fn cost_report_is_flush_order_invariant(
        cands in proptest::collection::vec(
            (0u64..12, proptest::collection::vec(0u64..10_000, 7), 1u64..4),
            1..24,
        ),
        chunk_a in 1usize..5,
        chunk_b in 1usize..5,
        seed in 0u64..u64::MAX,
    ) {
        let ordered: Vec<CandidateCost> = cands
            .iter()
            .map(|(id, counts, builds)| cost_candidate(*id, counts, *builds))
            .collect();
        let permuted = shuffled(ordered.clone(), seed);

        let a = CostCollector::enabled();
        for chunk in ordered.chunks(chunk_a) {
            a.record_worker(chunk.to_vec());
        }
        let b = CostCollector::enabled();
        for chunk in permuted.chunks(chunk_b) {
            b.record_worker(chunk.to_vec());
        }

        let ra = a.report();
        let rb = b.report();
        prop_assert_eq!(&ra.candidates, &rb.candidates);
        prop_assert_eq!(&ra.groups, &rb.groups);
        prop_assert_eq!(ra.totals, rb.totals);
        // Worker flush totals differ in shape but sum identically.
        let sum = |workers: &[OpCosts]| {
            let mut t = OpCosts::default();
            for w in workers {
                t.merge(w);
            }
            t
        };
        prop_assert_eq!(sum(&ra.workers), ra.totals);
        prop_assert_eq!(sum(&rb.workers), rb.totals);
        // Both documents pass the full exactness validation.
        let sa = validate_cost_json(&ra.to_json()).expect("order A validates");
        let sb = validate_cost_json(&rb.to_json()).expect("order B validates");
        prop_assert_eq!(sa.candidates, sb.candidates);
        prop_assert_eq!(sa.groups, sb.groups);
        prop_assert_eq!(sa.total_ops, sb.total_ops);
    }

    /// A disabled collector is absent, not zero: it accepts any flush
    /// without recording, its report is empty (and still a valid
    /// document), and the `NoCost` accumulator stays inert for any
    /// operation sequence.
    #[test]
    fn disabled_cost_collection_is_absent(
        cands in proptest::collection::vec(
            (0u64..12, proptest::collection::vec(0u64..10_000, 7), 1u64..4),
            0..16,
        ),
    ) {
        let costs = CostCollector::disabled();
        prop_assert!(!costs.is_enabled());
        for (id, counts, builds) in &cands {
            costs.record_worker(vec![cost_candidate(*id, counts, *builds)]);
        }
        let report = costs.report();
        prop_assert!(report.candidates.is_empty());
        prop_assert!(report.workers.is_empty());
        prop_assert!(report.groups.is_empty());
        prop_assert!(report.totals.is_zero());
        let summary = validate_cost_json(&report.to_json()).expect("empty doc validates");
        prop_assert_eq!(summary.candidates, 0);
        prop_assert_eq!(summary.total_ops, 0);

        let mut sink = deepeye_obs::NoCost;
        for (_, counts, _) in &cands {
            for (op, &n) in Op::ALL.into_iter().zip(counts) {
                sink.add(op, n);
            }
        }
        prop_assert_eq!(std::mem::size_of_val(&sink), 0);
    }

    /// The ring's windowed view and statistics equal a brute-force
    /// recompute over the logical suffix of the input stream, for any
    /// capacity and window — the wrap-index math can never change what
    /// the detectors see.
    #[test]
    fn ring_window_stats_equal_brute_force(
        samples in proptest::collection::vec(-1.0e12f64..1.0e12, 0..200),
        capacity in 1usize..48,
        window in 0usize..64,
    ) {
        let mut ring = RingSeries::new(capacity);
        ring.extend(&samples);
        let retained: Vec<f64> = samples
            .iter()
            .copied()
            .skip(samples.len().saturating_sub(capacity))
            .collect();
        let expect: Vec<f64> = if window == 0 {
            retained.clone()
        } else {
            retained
                .iter()
                .copied()
                .skip(retained.len().saturating_sub(window))
                .collect()
        };
        prop_assert_eq!(ring.window(window), expect.clone());
        match ring.window_stats(window) {
            None => prop_assert!(expect.is_empty()),
            Some(stats) => {
                let count = expect.len();
                let min = expect.iter().copied().fold(f64::INFINITY, f64::min);
                let max = expect.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let mean = expect.iter().sum::<f64>() / count as f64;
                let middle = |mut v: Vec<f64>| {
                    v.sort_by(f64::total_cmp);
                    if v.len() % 2 == 1 {
                        v[v.len() / 2]
                    } else {
                        (v[v.len() / 2 - 1] + v[v.len() / 2]) / 2.0
                    }
                };
                let median = middle(expect.clone());
                let mad = middle(expect.iter().map(|v| (v - median).abs()).collect());
                prop_assert_eq!(stats.count, count);
                prop_assert_eq!(stats.min, min);
                prop_assert_eq!(stats.max, max);
                prop_assert_eq!(stats.mean, mean);
                prop_assert_eq!(stats.median, median);
                prop_assert_eq!(stats.mad, mad);
                prop_assert!(stats.min <= stats.median && stats.median <= stats.max);
                prop_assert!(stats.mad >= 0.0);
                // The free function and the ring agree by construction.
                prop_assert_eq!(stats_of(&expect), Some(stats));
            }
        }
    }

    /// Batching samples into one `extend` call is indistinguishable from
    /// single pushes — ring contents, windowed views, and every default
    /// detector's verdict are identical. This is the determinism
    /// guarantee the engine leans on when a tick carries several
    /// samples for the same metric.
    #[test]
    fn batched_extend_matches_single_pushes(
        samples in proptest::collection::vec(0.0f64..1.0e9, 0..120),
        capacity in 1usize..40,
        chunk in 1usize..10,
    ) {
        let mut one = RingSeries::new(capacity);
        for &v in &samples {
            one.push(v);
        }
        let mut batched = RingSeries::new(capacity);
        for c in samples.chunks(chunk) {
            batched.extend(c);
        }
        prop_assert_eq!(one.window(0), batched.window(0));
        prop_assert_eq!(one.last(), batched.last());
        prop_assert_eq!(one.total_appended(), batched.total_appended());
        for det in default_detectors() {
            prop_assert_eq!(
                det.evaluate("stage.prop.p50_ns", &one),
                det.evaluate("stage.prop.p50_ns", &batched),
                "{} must not distinguish batched appends", det.name()
            );
            prop_assert_eq!(
                det.evaluate("proc.rss_bytes", &one),
                det.evaluate("proc.rss_bytes", &batched),
                "{} must not distinguish batched appends", det.name()
            );
        }
    }

    /// Detectors never fire on windows below their minimum sample count,
    /// and never on flat series of any length (no drift over a constant
    /// baseline, no scale for a z-score, no strict growth).
    #[test]
    fn detectors_stay_quiet_on_short_and_flat_windows(
        level in 0.0f64..1.0e9,
        short in proptest::collection::vec(0.0f64..1.0e9, 0..15),
        flat_len in 16usize..64,
    ) {
        let mut ring = RingSeries::new(64);
        ring.extend(&short);
        for det in default_detectors() {
            prop_assert_eq!(det.evaluate("stage.prop.p50_ns", &ring), None);
            prop_assert_eq!(det.evaluate("proc.rss_bytes", &ring), None);
        }
        let mut flat = RingSeries::new(64);
        flat.extend(&vec![level; flat_len]);
        for det in default_detectors() {
            prop_assert_eq!(det.evaluate("stage.prop.p50_ns", &flat), None);
            prop_assert_eq!(det.evaluate("proc.rss_bytes", &flat), None);
        }
    }

    /// The engine is a pure function of the tick stream: replaying the
    /// same lines yields byte-identical documents, and every document
    /// passes the `deepeye-health/v1` validator with the right tick
    /// count.
    #[test]
    fn health_engine_is_deterministic_and_validates(
        p50s in proptest::collection::vec(1_000u64..1_000_000, 1..40),
        rss0 in 1_000u64..1_000_000,
    ) {
        let run = || {
            let mut engine = HealthEngine::new(HealthConfig::default());
            for (i, &p) in p50s.iter().enumerate() {
                engine
                    .ingest_line(&tick_line(i as u64 + 1, p, rss0 + i as u64))
                    .expect("synthetic tick line is valid");
            }
            engine.report_json()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(&a, &b, "same stream must produce identical bytes");
        let summary = validate_health_json(&a).expect("document validates");
        prop_assert_eq!(summary.ticks, p50s.len() as u64);
        prop_assert!(summary.series > 0);
    }
}
