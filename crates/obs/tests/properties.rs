//! Property-based tests for the observability layer: histogram merge
//! semantics and allocation-attribution reconciliation across threads.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use deepeye_obs::{Histogram, Observer};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging shard histograms is indistinguishable from recording every
    /// sample into one histogram — the exact invariant the observer
    /// relies on when it folds per-thread data into the shared sink.
    #[test]
    fn merge_then_quantile_equals_record_all(
        a_samples in proptest::collection::vec(0u64..1_000_000_000_000, 0..120),
        b_samples in proptest::collection::vec(0u64..1_000_000_000_000, 0..120),
    ) {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut all = Histogram::default();
        for &v in &a_samples {
            a.record(v);
            all.record(v);
        }
        for &v in &b_samples {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        prop_assert_eq!(a.summary(), all.summary());
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            prop_assert_eq!(a.quantile(q), all.quantile(q), "quantile {} diverged", q);
        }
    }

    /// Quantiles stay monotone in `q` and inside the recorded range, for
    /// any sample set — merged or not.
    #[test]
    fn quantiles_are_monotone_and_bounded(
        samples in proptest::collection::vec(0u64..u64::MAX / 2, 1..200),
    ) {
        let mut h = Histogram::default();
        for &v in &samples {
            h.record(v);
        }
        let qs: Vec<u64> = [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0]
            .iter()
            .map(|&q| h.quantile(q))
            .collect();
        for w in qs.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles must be monotone: {:?}", qs);
        }
        prop_assert!(qs[0] >= h.min());
        prop_assert!(qs[qs.len() - 1] <= h.max());
    }

    /// Allocation charges from concurrent scoped-thread worker spans
    /// reconcile: the parent's inclusive aggregate equals the total of
    /// every worker's charges (children never exceed the parent), and
    /// peak never exceeds total bytes.
    #[test]
    fn alloc_counters_reconcile_across_threads(
        workers in proptest::collection::vec(
            proptest::collection::vec((1u64..5, 0u64..10_000), 0..12),
            1..6,
        ),
    ) {
        let obs = Observer::enabled();
        let parent = obs.span("prop.parent");
        let parent_id = parent.id();
        std::thread::scope(|scope| {
            for charges in &workers {
                let obs = obs.clone();
                scope.spawn(move || {
                    let _worker = obs.span_under("prop.worker", parent_id);
                    for &(count, bytes) in charges {
                        obs.alloc_many(count, bytes);
                    }
                });
            }
        });
        drop(parent);

        let total_count: u64 = workers.iter().flatten().map(|&(c, _)| c).sum();
        let total_bytes: u64 = workers.iter().flatten().map(|&(_, b)| b).sum();
        let snapshot = obs.snapshot();
        let parent_agg = snapshot.stage("prop.parent").expect("parent stage");
        let child_agg = snapshot.stage("prop.worker");

        // Inclusive parent aggregate == everything charged below it.
        prop_assert_eq!(parent_agg.alloc_count, total_count);
        prop_assert_eq!(parent_agg.alloc_bytes, total_bytes);
        // Children sum to at most the parent (equality here: the parent
        // charges nothing itself).
        let (child_count, child_bytes) =
            child_agg.map_or((0, 0), |a| (a.alloc_count, a.alloc_bytes));
        prop_assert!(child_count <= parent_agg.alloc_count);
        prop_assert_eq!(child_bytes, total_bytes);
        // Peak is a sum of per-span live peaks: bounded by total bytes.
        prop_assert!(parent_agg.alloc_peak <= parent_agg.alloc_bytes);
        // The metrics document stays self-consistent under any charge mix.
        deepeye_obs::validate_metrics_json(&snapshot.metrics_json())
            .expect("metrics validate");
    }
}
