//! Dense feature matrices and label vectors for the classifiers.

/// A dense supervised dataset: row-major feature matrix plus binary labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    features: Vec<Vec<f64>>,
    labels: Vec<bool>,
}

impl Dataset {
    /// Build a dataset, panicking on ragged rows or mismatched label count
    /// (training data is programmer-assembled; silent truncation would hide
    /// bugs).
    pub fn new(features: Vec<Vec<f64>>, labels: Vec<bool>) -> Self {
        assert_eq!(features.len(), labels.len(), "feature/label count mismatch");
        if let Some(first) = features.first() {
            let width = first.len();
            assert!(
                features.iter().all(|row| row.len() == width),
                "ragged feature rows"
            );
        }
        Dataset { features, labels }
    }

    pub fn len(&self) -> usize {
        self.labels.len()
    }

    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of features per row (0 when empty).
    pub fn width(&self) -> usize {
        self.features.first().map_or(0, Vec::len)
    }

    pub fn features(&self) -> &[Vec<f64>] {
        &self.features
    }

    pub fn labels(&self) -> &[bool] {
        &self.labels
    }

    pub fn row(&self, i: usize) -> &[f64] {
        self.features.get(i).map_or(&[], Vec::as_slice)
    }

    pub fn label(&self, i: usize) -> bool {
        self.labels.get(i).copied().unwrap_or(false)
    }

    /// Fraction of positive labels.
    pub fn positive_rate(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.labels.iter().filter(|&&l| l).count() as f64 / self.len() as f64
    }

    /// Select a subset of rows by index.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            features: indices.iter().map(|&i| self.features[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
        }
    }
}

/// Per-feature standardization (z-score) fitted on training data and
/// reusable on test data — required by the SVM, harmless for trees.
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Fit means and standard deviations per feature column.
    pub fn fit(features: &[Vec<f64>]) -> Self {
        let width = features.first().map_or(0, Vec::len);
        let n = features.len().max(1) as f64;
        let mut means = vec![0.0; width];
        for row in features {
            for (m, x) in means.iter_mut().zip(row) {
                *m += x;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; width];
        for row in features {
            for ((s, m), x) in stds.iter_mut().zip(&means).zip(row) {
                *s += (x - m) * (x - m);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0; // constant feature: leave centered at zero
            }
        }
        Standardizer { means, stds }
    }

    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(x, (m, s))| (x - m) / s)
            .collect()
    }

    pub fn transform(&self, features: &[Vec<f64>]) -> Vec<Vec<f64>> {
        features.iter().map(|r| self.transform_row(r)).collect()
    }

    /// `(means, stds)` for persistence.
    pub fn parts(&self) -> (Vec<f64>, Vec<f64>) {
        (self.means.clone(), self.stds.clone())
    }

    /// Rebuild from persisted parts.
    pub fn from_parts(means: Vec<f64>, stds: Vec<f64>) -> Self {
        assert_eq!(means.len(), stds.len(), "means/stds width mismatch");
        Standardizer { means, stds }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let d = Dataset::new(vec![vec![1.0, 2.0], vec![3.0, 4.0]], vec![true, false]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.width(), 2);
        assert_eq!(d.row(1), &[3.0, 4.0]);
        assert!(d.label(0));
        assert_eq!(d.positive_rate(), 0.5);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_labels_panic() {
        Dataset::new(vec![vec![1.0]], vec![true, false]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![true, false]);
    }

    #[test]
    fn subset_selects_rows() {
        let d = Dataset::new(
            vec![vec![1.0], vec![2.0], vec![3.0]],
            vec![true, false, true],
        );
        let s = d.subset(&[2, 0]);
        assert_eq!(s.features(), &[vec![3.0], vec![1.0]]);
        assert_eq!(s.labels(), &[true, true]);
    }

    #[test]
    fn standardizer_zero_mean_unit_var() {
        let rows = vec![vec![1.0, 10.0], vec![3.0, 10.0], vec![5.0, 10.0]];
        let s = Standardizer::fit(&rows);
        let t = s.transform(&rows);
        let mean0: f64 = t.iter().map(|r| r[0]).sum::<f64>() / 3.0;
        assert!(mean0.abs() < 1e-12);
        // Constant feature stays finite (centered at zero).
        assert!(t.iter().all(|r| r[1] == 0.0));
    }

    #[test]
    fn standardizer_applies_to_new_rows() {
        let rows = vec![vec![0.0], vec![10.0]];
        let s = Standardizer::fit(&rows);
        let out = s.transform_row(&[5.0]);
        assert!(out[0].abs() < 1e-12); // 5 is the mean
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::new(vec![], vec![]);
        assert!(d.is_empty());
        assert_eq!(d.width(), 0);
        assert_eq!(d.positive_rate(), 0.0);
    }
}
