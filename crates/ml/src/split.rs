//! Train/test splitting and k-fold cross-validation (the paper trains on 32
//! of 42 datasets, tests on 10, and "also conducted cross validation").

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Shuffle row indices deterministically and split at `train_fraction`.
pub fn train_test_split(data: &Dataset, train_fraction: f64, seed: u64) -> (Dataset, Dataset) {
    assert!(
        (0.0..=1.0).contains(&train_fraction),
        "fraction out of range"
    );
    let mut indices: Vec<usize> = (0..data.len()).collect();
    indices.shuffle(&mut StdRng::seed_from_u64(seed));
    let cut = ((data.len() as f64) * train_fraction).round() as usize;
    let (train_idx, test_idx) = indices.split_at(cut.min(data.len()));
    (data.subset(train_idx), data.subset(test_idx))
}

/// Stratified split: preserves the positive rate in both halves.
pub fn stratified_split(data: &Dataset, train_fraction: f64, seed: u64) -> (Dataset, Dataset) {
    assert!(
        (0.0..=1.0).contains(&train_fraction),
        "fraction out of range"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pos: Vec<usize> = (0..data.len()).filter(|&i| data.label(i)).collect();
    let mut neg: Vec<usize> = (0..data.len()).filter(|&i| !data.label(i)).collect();
    pos.shuffle(&mut rng);
    neg.shuffle(&mut rng);
    let mut train = Vec::new();
    let mut test = Vec::new();
    for class in [pos, neg] {
        let cut = ((class.len() as f64) * train_fraction).round() as usize;
        train.extend_from_slice(&class[..cut.min(class.len())]);
        test.extend_from_slice(&class[cut.min(class.len())..]);
    }
    (data.subset(&train), data.subset(&test))
}

/// K-fold index partitions for cross-validation. Each element is
/// `(train_indices, test_indices)`.
pub fn k_folds(n: usize, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "need at least 2 folds");
    let mut indices: Vec<usize> = (0..n).collect();
    indices.shuffle(&mut StdRng::seed_from_u64(seed));
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, idx) in indices.into_iter().enumerate() {
        folds[i % k].push(idx);
    }
    (0..k)
        .map(|f| {
            let test = folds[f].clone();
            let train: Vec<usize> = folds
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != f)
                .flat_map(|(_, fold)| fold.iter().copied())
                .collect();
            (train, test)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> Dataset {
        Dataset::new(
            (0..n).map(|i| vec![i as f64]).collect(),
            (0..n).map(|i| i % 4 == 0).collect(),
        )
    }

    #[test]
    fn split_partitions_rows() {
        let d = data(100);
        let (train, test) = train_test_split(&d, 0.8, 1);
        assert_eq!(train.len(), 80);
        assert_eq!(test.len(), 20);
        // No overlap: every original feature value appears exactly once.
        let mut all: Vec<f64> = train
            .features()
            .iter()
            .chain(test.features())
            .map(|r| r[0])
            .collect();
        all.sort_by(f64::total_cmp);
        assert_eq!(all, (0..100).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn split_is_seeded() {
        let d = data(50);
        let (a, _) = train_test_split(&d, 0.5, 42);
        let (b, _) = train_test_split(&d, 0.5, 42);
        let (c, _) = train_test_split(&d, 0.5, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn stratified_preserves_rate() {
        let d = data(100); // 25% positive
        let (train, test) = stratified_split(&d, 0.8, 7);
        assert!((train.positive_rate() - 0.25).abs() < 0.02);
        assert!((test.positive_rate() - 0.25).abs() < 0.05);
        assert_eq!(train.len() + test.len(), 100);
    }

    #[test]
    fn k_folds_cover_everything_once() {
        let folds = k_folds(23, 5, 3);
        assert_eq!(folds.len(), 5);
        let mut seen = [0usize; 23];
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 23);
            for &i in test {
                seen[i] += 1;
            }
            // Train and test are disjoint.
            for &i in test {
                assert!(!train.contains(&i));
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "each row in exactly one test fold"
        );
    }

    #[test]
    fn extreme_fractions() {
        let d = data(10);
        let (train, test) = train_test_split(&d, 1.0, 0);
        assert_eq!((train.len(), test.len()), (10, 0));
        let (train, test) = train_test_split(&d, 0.0, 0);
        assert_eq!((train.len(), test.len()), (0, 10));
    }
}
