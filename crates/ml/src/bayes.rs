//! Gaussian naive Bayes classifier — the paper's "Bayes" baseline in the
//! recognition experiments (Figure 10, Tables VII–VIII).

use crate::dataset::Dataset;

/// Signed log compression for heavy-tailed features: Gaussian class
/// models are hopeless on raw magnitudes spanning many decades (tuple
/// counts from 3 to 10^5, values scaled per dataset), so features pass
/// through `sign(x)·ln(1+|x|)` first — standard practice for naive Bayes
/// on skewed numeric data.
fn compress(x: f64) -> f64 {
    x.signum() * x.abs().ln_1p()
}

fn compress_row(row: &[f64]) -> Vec<f64> {
    row.iter().map(|&x| compress(x)).collect()
}

/// Per-class Gaussian model: feature means and variances plus a log prior.
#[derive(Debug, Clone, PartialEq)]
struct ClassModel {
    log_prior: f64,
    means: Vec<f64>,
    variances: Vec<f64>,
}

/// Gaussian naive Bayes with variance smoothing.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianNb {
    positive: ClassModel,
    negative: ClassModel,
}

/// Variance floor (relative to the largest feature variance) to avoid
/// divisions by zero for constant features, mirroring scikit-learn's
/// `var_smoothing`.
const VAR_SMOOTHING: f64 = 1e-9;

fn fit_class(rows: &[&Vec<f64>], width: usize, prior: f64, floor: f64) -> ClassModel {
    let n = rows.len().max(1) as f64;
    let mut means = vec![0.0; width];
    for row in rows {
        for (m, x) in means.iter_mut().zip(row.iter()) {
            *m += x;
        }
    }
    for m in &mut means {
        *m /= n;
    }
    let mut variances = vec![0.0; width];
    for row in rows {
        for ((v, m), x) in variances.iter_mut().zip(&means).zip(row.iter()) {
            *v += (x - m) * (x - m);
        }
    }
    for v in &mut variances {
        *v = *v / n + floor;
    }
    ClassModel {
        log_prior: prior.max(1e-12).ln(),
        means,
        variances,
    }
}

impl ClassModel {
    fn log_likelihood(&self, row: &[f64]) -> f64 {
        let mut ll = self.log_prior;
        for ((x, m), v) in row.iter().zip(&self.means).zip(&self.variances) {
            ll += -0.5 * ((x - m) * (x - m) / v + (2.0 * std::f64::consts::PI * v).ln());
        }
        ll
    }
}

impl GaussianNb {
    /// Fit both class models. An absent class gets a tiny prior so
    /// prediction still works.
    pub fn fit(data: &Dataset) -> Self {
        let width = data.width();
        let compressed: Vec<Vec<f64>> = data.features().iter().map(|r| compress_row(r)).collect();
        let pos_rows: Vec<&Vec<f64>> = compressed
            .iter()
            .zip(data.labels())
            .filter_map(|(r, &l)| l.then_some(r))
            .collect();
        let neg_rows: Vec<&Vec<f64>> = compressed
            .iter()
            .zip(data.labels())
            .filter_map(|(r, &l)| (!l).then_some(r))
            .collect();
        let n = data.len().max(1) as f64;
        // Global variance scale for the smoothing floor.
        let all_var = {
            let mut means = vec![0.0; width];
            for r in &compressed {
                for (m, x) in means.iter_mut().zip(r) {
                    *m += x;
                }
            }
            for m in &mut means {
                *m /= n;
            }
            let mut max_v: f64 = 0.0;
            for f in 0..width {
                let v: f64 = compressed
                    .iter()
                    .map(|r| (r[f] - means[f]).powi(2))
                    .sum::<f64>()
                    / n;
                max_v = max_v.max(v);
            }
            max_v.max(1.0)
        };
        let floor = VAR_SMOOTHING * all_var;
        GaussianNb {
            positive: fit_class(&pos_rows, width, pos_rows.len() as f64 / n, floor),
            negative: fit_class(&neg_rows, width, neg_rows.len() as f64 / n, floor),
        }
    }

    /// Per-class log-likelihoods `(positive, negative)` — each including
    /// its class log-prior — after feature compression. The pair is the
    /// full evidence behind a prediction: `decision` is their difference.
    pub fn log_likelihoods(&self, row: &[f64]) -> (f64, f64) {
        let z = compress_row(row);
        (
            self.positive.log_likelihood(&z),
            self.negative.log_likelihood(&z),
        )
    }

    /// Log-odds of the positive class.
    pub fn decision(&self, row: &[f64]) -> f64 {
        let (pos, neg) = self.log_likelihoods(row);
        pos - neg
    }

    pub fn predict(&self, row: &[f64]) -> bool {
        self.decision(row) >= 0.0
    }

    pub fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<bool> {
        rows.iter().map(|r| self.predict(r)).collect()
    }

    /// `(positive, negative)` class parts for persistence:
    /// `(log_prior, means, variances)` each.
    #[allow(clippy::type_complexity)]
    pub(crate) fn persist_parts(&self) -> ((f64, Vec<f64>, Vec<f64>), (f64, Vec<f64>, Vec<f64>)) {
        let part = |c: &ClassModel| (c.log_prior, c.means.clone(), c.variances.clone());
        (part(&self.positive), part(&self.negative))
    }

    /// Rebuild from persisted class parts.
    pub(crate) fn from_persist_parts(
        pos: (f64, Vec<f64>, Vec<f64>),
        neg: (f64, Vec<f64>, Vec<f64>),
    ) -> Self {
        let model = |(log_prior, means, variances): (f64, Vec<f64>, Vec<f64>)| ClassModel {
            log_prior,
            means,
            variances,
        };
        GaussianNb {
            positive: model(pos),
            negative: model(neg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian_blobs() -> Dataset {
        // Two well-separated blobs (deterministic lattice jitter).
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..50 {
            let j = (i as f64 * 0.37).sin() * 0.5;
            features.push(vec![0.0 + j, 0.0 - j]);
            labels.push(false);
            features.push(vec![5.0 + j, 5.0 - j]);
            labels.push(true);
        }
        Dataset::new(features, labels)
    }

    #[test]
    fn separable_blobs_classified() {
        let data = gaussian_blobs();
        let nb = GaussianNb::fit(&data);
        let preds = nb.predict_batch(data.features());
        let errors = preds
            .iter()
            .zip(data.labels())
            .filter(|(p, a)| p != a)
            .count();
        assert_eq!(errors, 0);
        assert!(nb.predict(&[4.8, 5.2]));
        assert!(!nb.predict(&[0.3, -0.3]));
    }

    #[test]
    fn decision_is_monotone_between_blobs() {
        let nb = GaussianNb::fit(&gaussian_blobs());
        let d0 = nb.decision(&[0.0, 0.0]);
        let d5 = nb.decision(&[5.0, 5.0]);
        assert!(d0 < 0.0 && d5 > 0.0);
    }

    #[test]
    fn priors_break_ties() {
        // Identical feature distribution; 80% positives → predict positive.
        let data = Dataset::new(
            vec![vec![1.0]; 10],
            vec![true, true, true, true, true, true, true, true, false, false],
        );
        let nb = GaussianNb::fit(&data);
        assert!(nb.predict(&[1.0]));
    }

    #[test]
    fn constant_features_do_not_crash() {
        let data = Dataset::new(
            vec![
                vec![3.0, 1.0],
                vec![3.0, 2.0],
                vec![3.0, 9.0],
                vec![3.0, 10.0],
            ],
            vec![false, false, true, true],
        );
        let nb = GaussianNb::fit(&data);
        assert!(nb.predict(&[3.0, 9.5]));
        assert!(!nb.predict(&[3.0, 1.5]));
        assert!(nb.decision(&[3.0, 5.0]).is_finite());
    }

    #[test]
    fn single_class_training() {
        let data = Dataset::new(vec![vec![1.0], vec![2.0]], vec![true, true]);
        let nb = GaussianNb::fit(&data);
        assert!(nb.predict(&[1.5]));
    }
}
