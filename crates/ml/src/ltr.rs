//! LambdaMART learning-to-rank (§III of the paper, citing Burges et al.).
//!
//! A gradient-boosted ensemble of regression trees trained with lambda
//! gradients: for every pair of documents in a query where one out-ranks
//! the other, the model receives a push proportional to the NDCG change of
//! swapping them. Leaf outputs use the Newton step
//! `Σλ / Σw` as in the reference implementation.

use crate::tree::{RegressionTree, TreeParams};

/// One ranking "query": a list of candidates (feature vectors) with graded
/// relevance labels. In DeepEye a query is one dataset's candidate
/// visualizations and the grades come from the human (here: oracle) ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryGroup {
    pub features: Vec<Vec<f64>>,
    pub relevance: Vec<f64>,
}

impl QueryGroup {
    pub fn new(features: Vec<Vec<f64>>, relevance: Vec<f64>) -> Self {
        assert_eq!(
            features.len(),
            relevance.len(),
            "feature/relevance mismatch"
        );
        QueryGroup {
            features,
            relevance,
        }
    }

    pub fn len(&self) -> usize {
        self.relevance.len()
    }

    pub fn is_empty(&self) -> bool {
        self.relevance.is_empty()
    }
}

/// LambdaMART hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LambdaMartParams {
    /// Number of boosting rounds (trees).
    pub trees: usize,
    /// Shrinkage applied to each tree's output.
    pub learning_rate: f64,
    /// Weak-learner shape.
    pub tree: TreeParams,
}

impl Default for LambdaMartParams {
    fn default() -> Self {
        LambdaMartParams {
            trees: 60,
            learning_rate: 0.1,
            tree: TreeParams {
                max_depth: 4,
                min_samples_split: 4,
                min_samples_leaf: 2,
                min_gain: 1e-9,
            },
        }
    }
}

/// A trained LambdaMART ranker.
#[derive(Debug, Clone, PartialEq)]
pub struct LambdaMart {
    trees: Vec<RegressionTree>,
}

/// Position discount `1 / log2(pos + 2)` for 0-based positions.
fn discount(pos: usize) -> f64 {
    1.0 / (pos as f64 + 2.0).log2()
}

fn gain(rel: f64) -> f64 {
    2f64.powf(rel) - 1.0
}

/// Max DCG of a group (ideal ordering); 0 when nothing is relevant.
fn max_dcg(relevance: &[f64]) -> f64 {
    let mut sorted: Vec<f64> = relevance.to_vec();
    sorted.sort_by(|a, b| b.total_cmp(a));
    sorted
        .iter()
        .enumerate()
        .map(|(i, &r)| gain(r) * discount(i))
        .sum()
}

impl LambdaMart {
    /// Train on the given query groups.
    pub fn train(groups: &[QueryGroup], params: LambdaMartParams) -> Self {
        Self::train_observed(groups, params, &deepeye_obs::Observer::disabled())
    }

    /// [`LambdaMart::train`] with observability: wraps training in an
    /// `ltr.train` span with one `ltr.epoch` child span per boosting
    /// round, records per-round wall time into the `ltr.epoch_ns`
    /// histogram, and counts `ltr.epochs` / `ltr.docs` / `ltr.groups`.
    pub fn train_observed(
        groups: &[QueryGroup],
        params: LambdaMartParams,
        obs: &deepeye_obs::Observer,
    ) -> Self {
        let _train = obs.span("ltr.train");
        let total_docs: usize = groups.iter().map(QueryGroup::len).sum();
        obs.incr("ltr.docs", total_docs as u64);
        obs.incr("ltr.groups", groups.len() as u64);
        // Flatten features once; remember each group's offset.
        let mut flat_features: Vec<Vec<f64>> = Vec::with_capacity(total_docs);
        let mut offsets = Vec::with_capacity(groups.len());
        for g in groups {
            offsets.push(flat_features.len());
            flat_features.extend(g.features.iter().cloned());
        }
        let max_dcgs: Vec<f64> = groups.iter().map(|g| max_dcg(&g.relevance)).collect();

        let mut scores = vec![0.0f64; total_docs];
        let mut trees = Vec::with_capacity(params.trees);
        let mut lambdas = vec![0.0f64; total_docs];
        let mut weights = vec![0.0f64; total_docs];

        for _ in 0..params.trees {
            let _epoch = obs.span("ltr.epoch");
            let _epoch_timer = obs.timer("ltr.epoch_ns");
            obs.incr("ltr.epochs", 1);
            lambdas.iter_mut().for_each(|l| *l = 0.0);
            weights.iter_mut().for_each(|w| *w = 0.0);

            for (gi, g) in groups.iter().enumerate() {
                if max_dcgs[gi] <= 0.0 || g.len() < 2 {
                    continue;
                }
                let base = offsets[gi];
                // Rank positions under the current scores (descending).
                let mut order: Vec<usize> = (0..g.len()).collect();
                order.sort_by(|&a, &b| scores[base + b].total_cmp(&scores[base + a]));
                let mut position = vec![0usize; g.len()];
                for (pos, &doc) in order.iter().enumerate() {
                    position[doc] = pos;
                }
                // Group documents by relevance level so only the pairs
                // with rel_i > rel_j are ever touched — in visualization
                // ranking most candidates share the lowest grade, which
                // makes this far cheaper than the naive n² double loop.
                let mut levels: Vec<(f64, Vec<usize>)> = Vec::new();
                for (doc, &rel) in g.relevance.iter().enumerate() {
                    match levels.iter_mut().find(|(r, _)| *r == rel) {
                        Some((_, docs)) => docs.push(doc),
                        None => levels.push((rel, vec![doc])),
                    }
                }
                levels.sort_by(|a, b| b.0.total_cmp(&a.0));
                for (ai, (rel_a, docs_a)) in levels.iter().enumerate() {
                    for (rel_b, docs_b) in levels.iter().skip(ai + 1) {
                        let gain_diff = gain(*rel_a) - gain(*rel_b);
                        for &i in docs_a {
                            for &j in docs_b {
                                let (hi, lo) = (base + i, base + j);
                                let rho = 1.0 / (1.0 + (scores[hi] - scores[lo]).exp());
                                let delta = (gain_diff
                                    * (discount(position[i]) - discount(position[j])))
                                .abs()
                                    / max_dcgs[gi];
                                lambdas[hi] += rho * delta;
                                lambdas[lo] -= rho * delta;
                                let w = rho * (1.0 - rho) * delta;
                                weights[hi] += w;
                                weights[lo] += w;
                            }
                        }
                    }
                }
            }

            let mut tree = RegressionTree::train(&flat_features, &lambdas, params.tree);
            // Newton leaf re-estimation: value = Σλ / Σw per leaf.
            let assignment = tree.training_leaves().to_vec();
            let mut leaf_lambda: std::collections::HashMap<usize, (f64, f64)> =
                std::collections::HashMap::new();
            for (doc, &leaf) in assignment.iter().enumerate() {
                let e = leaf_lambda.entry(leaf).or_insert((0.0, 0.0));
                e.0 += lambdas[doc];
                e.1 += weights[doc];
            }
            for (leaf, (lsum, wsum)) in &leaf_lambda {
                let value = if *wsum > 1e-12 { lsum / wsum } else { 0.0 };
                tree.set_leaf_value(*leaf, value * params.learning_rate);
            }
            for (doc, row) in flat_features.iter().enumerate() {
                scores[doc] += tree.predict(row);
            }
            trees.push(tree);
        }
        LambdaMart { trees }
    }

    /// Train with default parameters.
    pub fn fit(groups: &[QueryGroup]) -> Self {
        Self::train(groups, LambdaMartParams::default())
    }

    /// Ranking score of a candidate (higher = better).
    pub fn score(&self, row: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict(row)).sum()
    }

    /// Rank a list of candidates: returns indices sorted best-first.
    pub fn rank(&self, rows: &[Vec<f64>]) -> Vec<usize> {
        let scores: Vec<f64> = rows.iter().map(|r| self.score(r)).collect();
        let mut order: Vec<usize> = (0..rows.len()).collect();
        order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
        order
    }

    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    pub(crate) fn persist_trees(&self) -> &[RegressionTree] {
        &self.trees
    }

    pub(crate) fn from_persist_trees(trees: Vec<RegressionTree>) -> Self {
        LambdaMart { trees }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ndcg;

    /// Relevance is a simple monotone function of one feature.
    fn synthetic_groups(n_groups: usize, docs: usize) -> Vec<QueryGroup> {
        (0..n_groups)
            .map(|g| {
                let features: Vec<Vec<f64>> = (0..docs)
                    .map(|d| {
                        let x = ((d * 7 + g * 13) % docs) as f64;
                        vec![x, (x * 0.5).sin(), g as f64]
                    })
                    .collect();
                let relevance: Vec<f64> = features
                    .iter()
                    .map(|f| (f[0] / docs as f64 * 3.0).floor())
                    .collect();
                QueryGroup::new(features, relevance)
            })
            .collect()
    }

    fn ranked_relevance(model: &LambdaMart, g: &QueryGroup) -> Vec<f64> {
        model
            .rank(&g.features)
            .into_iter()
            .map(|i| g.relevance[i])
            .collect()
    }

    #[test]
    fn learns_monotone_relevance() {
        let groups = synthetic_groups(6, 20);
        let model = LambdaMart::fit(&groups);
        for g in &groups {
            let n = ndcg(&ranked_relevance(&model, g));
            assert!(n > 0.95, "train NDCG {n}");
        }
    }

    #[test]
    fn generalizes_to_unseen_group() {
        let groups = synthetic_groups(8, 24);
        let (train, test) = groups.split_at(6);
        let model = LambdaMart::fit(train);
        for g in test {
            let n = ndcg(&ranked_relevance(&model, g));
            assert!(n > 0.9, "test NDCG {n}");
        }
    }

    #[test]
    fn more_trees_never_hurt_training_ndcg_substantially() {
        let groups = synthetic_groups(4, 16);
        let small = LambdaMart::train(
            &groups,
            LambdaMartParams {
                trees: 5,
                ..Default::default()
            },
        );
        let large = LambdaMart::train(
            &groups,
            LambdaMartParams {
                trees: 60,
                ..Default::default()
            },
        );
        let avg = |m: &LambdaMart| {
            groups
                .iter()
                .map(|g| ndcg(&ranked_relevance(m, g)))
                .sum::<f64>()
                / groups.len() as f64
        };
        assert!(avg(&large) + 1e-9 >= avg(&small) - 0.05);
        assert_eq!(large.tree_count(), 60);
    }

    #[test]
    fn training_is_deterministic() {
        let groups = synthetic_groups(3, 12);
        let a = LambdaMart::fit(&groups);
        let b = LambdaMart::fit(&groups);
        let row = &groups[0].features[0];
        assert_eq!(a.score(row), b.score(row));
    }

    #[test]
    fn degenerate_groups_handled() {
        // Uniform relevance (no pairs) and a singleton group.
        let groups = vec![
            QueryGroup::new(vec![vec![1.0], vec![2.0]], vec![1.0, 1.0]),
            QueryGroup::new(vec![vec![3.0]], vec![2.0]),
        ];
        let model = LambdaMart::fit(&groups);
        assert!(model.score(&[1.0]).is_finite());
    }

    #[test]
    fn empty_training_gives_constant_scores() {
        let model = LambdaMart::fit(&[]);
        assert_eq!(model.score(&[1.0, 2.0]), 0.0);
    }

    #[test]
    fn observed_training_records_epochs() {
        let groups = synthetic_groups(3, 12);
        let obs = deepeye_obs::Observer::enabled();
        let params = LambdaMartParams {
            trees: 7,
            ..Default::default()
        };
        let observed = LambdaMart::train_observed(&groups, params, &obs);
        assert_eq!(observed.tree_count(), 7);
        assert_eq!(obs.counter("ltr.epochs"), 7);
        assert_eq!(obs.counter("ltr.groups"), 3);
        let snap = obs.snapshot();
        assert_eq!(snap.stage("ltr.epoch").map(|s| s.count), Some(7));
        assert_eq!(snap.hist("ltr.epoch_ns").map(|h| h.count), Some(7));
        // Observation must not change the trained model.
        let baseline = LambdaMart::train(&groups, params);
        let row = &groups[0].features[0];
        assert_eq!(observed.score(row), baseline.score(row));
    }

    #[test]
    fn rank_orders_best_first() {
        let groups = synthetic_groups(5, 20);
        let model = LambdaMart::fit(&groups);
        let g = &groups[0];
        let order = model.rank(&g.features);
        let scores: Vec<f64> = order.iter().map(|&i| model.score(&g.features[i])).collect();
        assert!(scores.windows(2).all(|w| w[0] >= w[1]));
    }
}
