//! # deepeye-ml
//!
//! Machine-learning substrate for DeepEye, built from scratch (the Rust
//! ecosystem for learning-to-rank is thin). Provides the three binary
//! classifiers the paper compares for visualization recognition — decision
//! tree, naive Bayes, linear SVM (§III, §VI-B) — plus the LambdaMART
//! learning-to-rank model used for visualization ranking/selection, and the
//! evaluation metrics of §VI (precision / recall / F-measure, NDCG).
//!
//! ```
//! use deepeye_ml::{Dataset, DecisionTree};
//!
//! let data = Dataset::new(
//!     vec![vec![0.0], vec![1.0], vec![10.0], vec![11.0]],
//!     vec![false, false, true, true],
//! );
//! let tree = DecisionTree::fit(&data);
//! assert!(tree.predict(&[12.0]));
//! assert!(!tree.predict(&[0.5]));
//! ```

#![forbid(unsafe_code)]

pub mod bayes;
pub mod dataset;
pub mod ltr;
pub mod metrics;
pub mod persist;
pub mod split;
pub mod svm;
pub mod tree;

pub use bayes::GaussianNb;
pub use dataset::{Dataset, Standardizer};
pub use ltr::{LambdaMart, LambdaMartParams, QueryGroup};
pub use metrics::{dcg_at, ndcg, ndcg_at, Confusion};
pub use persist::PersistError;
pub use split::{k_folds, stratified_split, train_test_split};
pub use svm::{LinearSvm, SvmParams};
pub use tree::{DecisionTree, PathStep, RegressionTree, TreeParams};
