//! Model persistence: a compact, versioned, line-oriented text format for
//! every trained model in the crate, so pipelines can train once (the
//! offline phase of the paper's Figure 4) and ship the models. Hand-rolled
//! on purpose — the model space is closed and simple, and floats round-trip
//! exactly via their bit patterns.

use crate::bayes::GaussianNb;
use crate::dataset::Standardizer;
use crate::ltr::LambdaMart;
use crate::svm::LinearSvm;
use crate::tree::{DecisionTree, RegressionTree};
use std::fmt;

/// Errors raised while decoding a persisted model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistError {
    pub message: String,
}

impl PersistError {
    fn new(message: impl Into<String>) -> Self {
        PersistError {
            message: message.into(),
        }
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "model decode error: {}", self.message)
    }
}

impl std::error::Error for PersistError {}

/// Exact float encoding: hexadecimal bit pattern (round-trips NaN payloads
/// and subnormals, immune to locale and formatting drift).
pub fn encode_f64(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

/// Inverse of [`encode_f64`].
pub fn decode_f64(s: &str) -> Result<f64, PersistError> {
    u64::from_str_radix(s.trim(), 16)
        .map(f64::from_bits)
        .map_err(|_| PersistError::new(format!("bad float field {s:?}")))
}

fn decode_usize(s: &str) -> Result<usize, PersistError> {
    s.trim()
        .parse()
        .map_err(|_| PersistError::new(format!("bad integer field {s:?}")))
}

/// A line-oriented reader with error context.
struct Lines<'a> {
    iter: std::str::Lines<'a>,
    line_no: usize,
}

impl<'a> Lines<'a> {
    fn new(text: &'a str) -> Self {
        Lines {
            iter: text.lines(),
            line_no: 0,
        }
    }

    fn next(&mut self) -> Result<&'a str, PersistError> {
        self.line_no += 1;
        self.iter
            .next()
            .ok_or_else(|| PersistError::new(format!("unexpected end at line {}", self.line_no)))
    }

    fn expect(&mut self, tag: &str) -> Result<(), PersistError> {
        let line = self.next()?;
        if line.trim() == tag {
            Ok(())
        } else {
            Err(PersistError::new(format!(
                "expected {tag:?}, found {line:?}"
            )))
        }
    }

    fn floats(&mut self) -> Result<Vec<f64>, PersistError> {
        self.next()?.split_whitespace().map(decode_f64).collect()
    }
}

// --- decision / regression trees -----------------------------------------

/// Serialized node: `L <value>` or `S <feature> <threshold> <left> <right>`.
fn encode_tree_nodes(nodes: &[crate::tree::PersistNode], out: &mut String) {
    out.push_str(&format!("nodes {}\n", nodes.len()));
    for n in nodes {
        match n {
            crate::tree::PersistNode::Leaf { value } => {
                out.push_str(&format!("L {}\n", encode_f64(*value)));
            }
            crate::tree::PersistNode::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                out.push_str(&format!(
                    "S {feature} {} {left} {right}\n",
                    encode_f64(*threshold)
                ));
            }
        }
    }
}

fn decode_tree_nodes(lines: &mut Lines) -> Result<Vec<crate::tree::PersistNode>, PersistError> {
    let header = lines.next()?;
    let count: usize = header
        .strip_prefix("nodes ")
        .ok_or_else(|| PersistError::new(format!("expected node count, found {header:?}")))
        .and_then(decode_usize)?;
    let mut nodes = Vec::with_capacity(count);
    for _ in 0..count {
        let line = lines.next()?;
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("L") => {
                let value = decode_f64(
                    parts
                        .next()
                        .ok_or_else(|| PersistError::new("missing leaf value"))?,
                )?;
                nodes.push(crate::tree::PersistNode::Leaf { value });
            }
            Some("S") => {
                let feature = decode_usize(
                    parts
                        .next()
                        .ok_or_else(|| PersistError::new("missing feature"))?,
                )?;
                let threshold = decode_f64(
                    parts
                        .next()
                        .ok_or_else(|| PersistError::new("missing threshold"))?,
                )?;
                let left = decode_usize(
                    parts
                        .next()
                        .ok_or_else(|| PersistError::new("missing left"))?,
                )?;
                let right = decode_usize(
                    parts
                        .next()
                        .ok_or_else(|| PersistError::new("missing right"))?,
                )?;
                // Children must come strictly after their parent (the
                // encoder always appends them later); anything else would
                // make traversal loop forever on a corrupted file.
                let this = nodes.len();
                if left >= count || right >= count || left <= this || right <= this {
                    return Err(PersistError::new("child index out of range or non-forward"));
                }
                nodes.push(crate::tree::PersistNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                });
            }
            other => return Err(PersistError::new(format!("bad node tag {other:?}"))),
        }
    }
    Ok(nodes)
}

impl DecisionTree {
    /// Serialize to the persistence text format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("deepeye-model decision-tree v1\n");
        encode_tree_nodes(&self.persist_nodes(), &mut out);
        out
    }

    /// Decode from [`DecisionTree::to_text`] output.
    pub fn from_text(text: &str) -> Result<Self, PersistError> {
        let mut lines = Lines::new(text);
        lines.expect("deepeye-model decision-tree v1")?;
        let nodes = decode_tree_nodes(&mut lines)?;
        DecisionTree::from_persist_nodes(nodes)
            .ok_or_else(|| PersistError::new("empty or malformed tree"))
    }
}

impl RegressionTree {
    pub fn to_text(&self) -> String {
        let mut out = String::from("deepeye-model regression-tree v1\n");
        encode_tree_nodes(&self.persist_nodes(), &mut out);
        out
    }

    pub fn from_text(text: &str) -> Result<Self, PersistError> {
        let mut lines = Lines::new(text);
        lines.expect("deepeye-model regression-tree v1")?;
        Self::from_text_body(&mut lines)
    }

    fn from_text_body(lines: &mut Lines) -> Result<Self, PersistError> {
        let nodes = decode_tree_nodes(lines)?;
        RegressionTree::from_persist_nodes(nodes)
            .ok_or_else(|| PersistError::new("empty or malformed tree"))
    }
}

// --- naive Bayes -----------------------------------------------------------

impl GaussianNb {
    pub fn to_text(&self) -> String {
        let (pos, neg) = self.persist_parts();
        let mut out = String::from("deepeye-model gaussian-nb v1\n");
        for (log_prior, means, vars) in [pos, neg] {
            out.push_str(&format!("prior {}\n", encode_f64(log_prior)));
            out.push_str(&join_floats(&means));
            out.push('\n');
            out.push_str(&join_floats(&vars));
            out.push('\n');
        }
        out
    }

    pub fn from_text(text: &str) -> Result<Self, PersistError> {
        let mut lines = Lines::new(text);
        lines.expect("deepeye-model gaussian-nb v1")?;
        let mut classes = Vec::with_capacity(2);
        for _ in 0..2 {
            let prior_line = lines.next()?;
            let log_prior = decode_f64(
                prior_line
                    .strip_prefix("prior ")
                    .ok_or_else(|| PersistError::new("expected prior line"))?,
            )?;
            let means = lines.floats()?;
            let vars = lines.floats()?;
            if means.len() != vars.len() {
                return Err(PersistError::new("mean/variance width mismatch"));
            }
            if vars.iter().any(|v| *v <= 0.0) {
                return Err(PersistError::new("non-positive variance"));
            }
            classes.push((log_prior, means, vars));
        }
        let (Some(neg), Some(pos)) = (classes.pop(), classes.pop()) else {
            return Err(PersistError::new("expected two classes"));
        };
        Ok(GaussianNb::from_persist_parts(pos, neg))
    }
}

// --- linear SVM --------------------------------------------------------------

impl LinearSvm {
    pub fn to_text(&self) -> String {
        let (weights, bias, means, stds) = self.persist_parts();
        let mut out = String::from("deepeye-model linear-svm v1\n");
        out.push_str(&join_floats(&weights));
        out.push('\n');
        out.push_str(&format!("bias {}\n", encode_f64(bias)));
        out.push_str(&join_floats(&means));
        out.push('\n');
        out.push_str(&join_floats(&stds));
        out.push('\n');
        out
    }

    pub fn from_text(text: &str) -> Result<Self, PersistError> {
        let mut lines = Lines::new(text);
        lines.expect("deepeye-model linear-svm v1")?;
        let weights = lines.floats()?;
        let bias_line = lines.next()?;
        let bias = decode_f64(
            bias_line
                .strip_prefix("bias ")
                .ok_or_else(|| PersistError::new("expected bias line"))?,
        )?;
        let means = lines.floats()?;
        let stds = lines.floats()?;
        if weights.len() != means.len() || means.len() != stds.len() {
            return Err(PersistError::new("weight/standardizer width mismatch"));
        }
        Ok(LinearSvm::from_persist_parts(
            weights,
            bias,
            Standardizer::from_parts(means, stds),
        ))
    }
}

// --- LambdaMART ---------------------------------------------------------------

impl LambdaMart {
    pub fn to_text(&self) -> String {
        let trees = self.persist_trees();
        let mut out = String::from("deepeye-model lambdamart v1\n");
        out.push_str(&format!("trees {}\n", trees.len()));
        for t in trees {
            encode_tree_nodes(&t.persist_nodes(), &mut out);
        }
        out
    }

    pub fn from_text(text: &str) -> Result<Self, PersistError> {
        let mut lines = Lines::new(text);
        lines.expect("deepeye-model lambdamart v1")?;
        let header = lines.next()?;
        let count: usize = header
            .strip_prefix("trees ")
            .ok_or_else(|| PersistError::new("expected tree count"))
            .and_then(decode_usize)?;
        let mut trees = Vec::with_capacity(count);
        for _ in 0..count {
            trees.push(RegressionTree::from_text_body(&mut lines)?);
        }
        Ok(LambdaMart::from_persist_trees(trees))
    }
}

fn join_floats(xs: &[f64]) -> String {
    xs.iter()
        .map(|x| encode_f64(*x))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::ltr::{LambdaMartParams, QueryGroup};
    use crate::tree::TreeParams;

    fn dataset() -> Dataset {
        let features: Vec<Vec<f64>> = (0..120)
            .map(|i| {
                vec![
                    (i % 17) as f64,
                    ((i * 7) % 23) as f64 - 11.0,
                    i as f64 * 0.5,
                ]
            })
            .collect();
        let labels: Vec<bool> = features.iter().map(|f| f[0] > 8.0 && f[1] < 0.0).collect();
        Dataset::new(features, labels)
    }

    #[test]
    fn float_encoding_is_exact() {
        for x in [
            0.0,
            -0.0,
            1.5,
            -1e-300,
            f64::MAX,
            f64::MIN_POSITIVE,
            std::f64::consts::PI,
        ] {
            let round = decode_f64(&encode_f64(x)).unwrap();
            assert_eq!(x.to_bits(), round.to_bits());
        }
        assert!(decode_f64("zz").is_err());
    }

    #[test]
    fn decision_tree_round_trip() {
        let data = dataset();
        let tree = DecisionTree::fit(&data);
        let text = tree.to_text();
        let back = DecisionTree::from_text(&text).unwrap();
        for row in data.features() {
            assert_eq!(tree.predict_proba(row), back.predict_proba(row));
        }
    }

    #[test]
    fn regression_tree_round_trip() {
        let features: Vec<Vec<f64>> = (0..80).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = (0..80).map(|i| (i as f64 * 0.3).sin()).collect();
        let tree = RegressionTree::train(&features, &targets, TreeParams::default());
        let back = RegressionTree::from_text(&tree.to_text()).unwrap();
        for row in &features {
            assert_eq!(tree.predict(row), back.predict(row));
        }
    }

    #[test]
    fn gaussian_nb_round_trip() {
        let data = dataset();
        let nb = GaussianNb::fit(&data);
        let back = GaussianNb::from_text(&nb.to_text()).unwrap();
        for row in data.features() {
            assert_eq!(nb.decision(row), back.decision(row));
        }
    }

    #[test]
    fn svm_round_trip() {
        let data = dataset();
        let svm = LinearSvm::fit(&data);
        let back = LinearSvm::from_text(&svm.to_text()).unwrap();
        for row in data.features() {
            assert_eq!(svm.decision(row), back.decision(row));
        }
    }

    #[test]
    fn lambdamart_round_trip() {
        let groups: Vec<QueryGroup> = (0..3)
            .map(|g| {
                let features: Vec<Vec<f64>> =
                    (0..12).map(|d| vec![d as f64, (d * g) as f64]).collect();
                let relevance: Vec<f64> = (0..12).map(|d| (d % 4) as f64).collect();
                QueryGroup::new(features, relevance)
            })
            .collect();
        let model = LambdaMart::train(
            &groups,
            LambdaMartParams {
                trees: 8,
                ..Default::default()
            },
        );
        let back = LambdaMart::from_text(&model.to_text()).unwrap();
        for g in &groups {
            for row in &g.features {
                assert_eq!(model.score(row), back.score(row));
            }
        }
    }

    #[test]
    fn corrupted_inputs_rejected() {
        assert!(DecisionTree::from_text("").is_err());
        assert!(DecisionTree::from_text("deepeye-model linear-svm v1\n").is_err());
        assert!(DecisionTree::from_text("deepeye-model decision-tree v1\nnodes 1\nX 5\n").is_err());
        // Out-of-range child index.
        assert!(DecisionTree::from_text(
            "deepeye-model decision-tree v1\nnodes 1\nS 0 3ff0000000000000 5 6\n"
        )
        .is_err());
        // Self/backward references would loop forever at predict time.
        assert!(DecisionTree::from_text(
            "deepeye-model decision-tree v1\nnodes 2\nS 0 3ff0000000000000 0 1\nL 3ff0000000000000\n"
        )
        .is_err());
        assert!(GaussianNb::from_text("deepeye-model gaussian-nb v1\nprior zz\n").is_err());
        assert!(LambdaMart::from_text("deepeye-model lambdamart v1\ntrees 1\n").is_err());
    }
}
