//! Linear SVM trained with the Pegasos stochastic sub-gradient algorithm —
//! the paper's "SVM" baseline in the recognition experiments.
//!
//! Features are standardized internally (fit on training data, reapplied at
//! prediction time); labels are mapped to ±1 and the model minimizes the
//! regularized hinge loss `λ/2‖w‖² + mean(max(0, 1 − y·(w·x + b)))`.

use crate::dataset::{Dataset, Standardizer};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// SVM hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvmParams {
    /// Regularization strength λ.
    pub lambda: f64,
    /// Number of passes over the training data.
    pub epochs: usize,
    /// RNG seed for the shuffling order (deterministic training).
    pub seed: u64,
}

impl Default for SvmParams {
    fn default() -> Self {
        SvmParams {
            lambda: 1e-4,
            epochs: 30,
            seed: 0x5eed,
        }
    }
}

/// A trained linear SVM.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearSvm {
    weights: Vec<f64>,
    bias: f64,
    standardizer: Standardizer,
}

impl LinearSvm {
    /// Train with the given parameters.
    pub fn train(data: &Dataset, params: SvmParams) -> Self {
        let standardizer = Standardizer::fit(data.features());
        let rows = standardizer.transform(data.features());
        let ys: Vec<f64> = data
            .labels()
            .iter()
            .map(|&l| if l { 1.0 } else { -1.0 })
            .collect();
        let width = data.width();
        let mut weights = vec![0.0; width];
        let mut bias = 0.0;
        let mut order: Vec<usize> = (0..rows.len()).collect();
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut t: u64 = 0;
        for _ in 0..params.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                t += 1;
                let eta = 1.0 / (params.lambda * t as f64);
                let margin = ys[i] * (dot(&weights, &rows[i]) + bias);
                // Regularization shrink.
                let shrink = 1.0 - eta * params.lambda;
                for w in &mut weights {
                    *w *= shrink;
                }
                if margin < 1.0 {
                    for (w, x) in weights.iter_mut().zip(&rows[i]) {
                        *w += eta * ys[i] * x;
                    }
                    bias += eta * ys[i];
                }
            }
        }
        LinearSvm {
            weights,
            bias,
            standardizer,
        }
    }

    /// Train with default parameters.
    pub fn fit(data: &Dataset) -> Self {
        Self::train(data, SvmParams::default())
    }

    /// Signed distance to the hyperplane (in standardized feature space).
    pub fn decision(&self, row: &[f64]) -> f64 {
        let z = self.standardizer.transform_row(row);
        dot(&self.weights, &z) + self.bias
    }

    pub fn predict(&self, row: &[f64]) -> bool {
        self.decision(row) >= 0.0
    }

    pub fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<bool> {
        rows.iter().map(|r| self.predict(r)).collect()
    }

    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// `(weights, bias, standardizer means, standardizer stds)`.
    pub(crate) fn persist_parts(&self) -> (Vec<f64>, f64, Vec<f64>, Vec<f64>) {
        let (means, stds) = self.standardizer.parts();
        (self.weights.clone(), self.bias, means, stds)
    }

    pub(crate) fn from_persist_parts(
        weights: Vec<f64>,
        bias: f64,
        standardizer: crate::dataset::Standardizer,
    ) -> Self {
        LinearSvm {
            weights,
            bias,
            standardizer,
        }
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linearly_separable() -> Dataset {
        // Positive iff x0 + x1 > 4 with a wide margin.
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..12 {
            for j in 0..12 {
                let (x, y) = (i as f64 / 2.0, j as f64 / 2.0);
                let s = x + y;
                if (s - 4.0).abs() < 0.8 {
                    continue; // margin gap
                }
                features.push(vec![x, y]);
                labels.push(s > 4.0);
            }
        }
        Dataset::new(features, labels)
    }

    #[test]
    fn separable_data_classified() {
        let data = linearly_separable();
        let svm = LinearSvm::fit(&data);
        let preds = svm.predict_batch(data.features());
        let errors = preds
            .iter()
            .zip(data.labels())
            .filter(|(p, a)| p != a)
            .count();
        let rate = errors as f64 / data.len() as f64;
        assert!(rate < 0.03, "error rate {rate}");
    }

    #[test]
    fn decision_sign_matches_prediction() {
        let data = linearly_separable();
        let svm = LinearSvm::fit(&data);
        for row in data.features().iter().take(20) {
            assert_eq!(svm.predict(row), svm.decision(row) >= 0.0);
        }
    }

    #[test]
    fn training_is_deterministic() {
        let data = linearly_separable();
        let a = LinearSvm::train(&data, SvmParams::default());
        let b = LinearSvm::train(&data, SvmParams::default());
        assert_eq!(a, b);
        let c = LinearSvm::train(
            &data,
            SvmParams {
                seed: 7,
                ..Default::default()
            },
        );
        // Different shuffle order gives (slightly) different weights.
        assert_ne!(a.weights(), c.weights());
    }

    #[test]
    fn nonlinear_concept_underfits() {
        // XOR-style concept: a linear model cannot fit it — this is exactly
        // why the paper's SVM trails the decision tree on rule-shaped data.
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                let (x, y) = (i as f64, j as f64);
                features.push(vec![x, y]);
                labels.push((x > 4.5) ^ (y > 4.5));
            }
        }
        let data = Dataset::new(features, labels);
        let svm = LinearSvm::fit(&data);
        let preds = svm.predict_batch(data.features());
        let errors = preds
            .iter()
            .zip(data.labels())
            .filter(|(p, a)| p != a)
            .count();
        assert!(
            errors > 20,
            "a linear SVM should not fit XOR (errors={errors})"
        );
    }

    #[test]
    fn handles_single_class() {
        let data = Dataset::new(vec![vec![1.0], vec![2.0]], vec![true, true]);
        let svm = LinearSvm::fit(&data);
        assert!(svm.predict(&[1.5]));
    }
}
