//! Evaluation metrics: precision / recall / F-measure for recognition
//! (Figure 10, Tables VII–VIII) and NDCG for ranking quality (Figure 11).

/// Binary-classification confusion counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Confusion {
    pub true_positive: usize,
    pub false_positive: usize,
    pub true_negative: usize,
    pub false_negative: usize,
}

impl Confusion {
    /// Tally predictions against gold labels.
    pub fn from_predictions(predicted: &[bool], actual: &[bool]) -> Self {
        assert_eq!(
            predicted.len(),
            actual.len(),
            "prediction/label length mismatch"
        );
        let mut c = Confusion::default();
        for (&p, &a) in predicted.iter().zip(actual) {
            match (p, a) {
                (true, true) => c.true_positive += 1,
                (true, false) => c.false_positive += 1,
                (false, false) => c.true_negative += 1,
                (false, true) => c.false_negative += 1,
            }
        }
        c
    }

    /// Precision of the positive class; 1 when nothing was predicted
    /// positive (vacuous truth, standard IR convention).
    pub fn precision(&self) -> f64 {
        let denom = self.true_positive + self.false_positive;
        if denom == 0 {
            1.0
        } else {
            self.true_positive as f64 / denom as f64
        }
    }

    /// Recall of the positive class; 1 when there are no positives.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positive + self.false_negative;
        if denom == 0 {
            1.0
        } else {
            self.true_positive as f64 / denom as f64
        }
    }

    /// F-measure: harmonic mean of precision and recall.
    pub fn f_measure(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let total =
            self.true_positive + self.false_positive + self.true_negative + self.false_negative;
        if total == 0 {
            1.0
        } else {
            (self.true_positive + self.true_negative) as f64 / total as f64
        }
    }
}

/// Discounted cumulative gain at `k` with the standard exponential gain
/// `(2^rel − 1) / log2(i + 2)`.
pub fn dcg_at(relevances: &[f64], k: usize) -> f64 {
    relevances
        .iter()
        .take(k)
        .enumerate()
        .map(|(i, &rel)| (2f64.powf(rel) - 1.0) / (i as f64 + 2.0).log2())
        .sum()
}

/// Normalized DCG at `k` ∈ [0, 1]; 1 for a perfect ranking (§VI-C cites
/// NDCG as its ranking-quality measure). `relevances` is in *ranked order*
/// — the relevance of the item placed first, second, ….
pub fn ndcg_at(relevances: &[f64], k: usize) -> f64 {
    let dcg = dcg_at(relevances, k);
    let mut ideal: Vec<f64> = relevances.to_vec();
    ideal.sort_by(|a, b| b.total_cmp(a));
    let idcg = dcg_at(&ideal, k);
    if idcg <= 0.0 {
        // No relevant items at all: any ordering is perfect.
        1.0
    } else {
        (dcg / idcg).clamp(0.0, 1.0)
    }
}

/// NDCG over the full list.
pub fn ndcg(relevances: &[f64]) -> f64 {
    ndcg_at(relevances, relevances.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts() {
        let c = Confusion::from_predictions(
            &[true, true, false, false, true],
            &[true, false, false, true, true],
        );
        assert_eq!(c.true_positive, 2);
        assert_eq!(c.false_positive, 1);
        assert_eq!(c.true_negative, 1);
        assert_eq!(c.false_negative, 1);
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.f_measure() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.accuracy() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn perfect_and_degenerate_confusion() {
        let perfect = Confusion::from_predictions(&[true, false], &[true, false]);
        assert_eq!(perfect.precision(), 1.0);
        assert_eq!(perfect.recall(), 1.0);
        assert_eq!(perfect.f_measure(), 1.0);
        // All-negative predictions over all-negative gold: vacuously perfect.
        let none = Confusion::from_predictions(&[false, false], &[false, false]);
        assert_eq!(none.precision(), 1.0);
        assert_eq!(none.recall(), 1.0);
        // Empty input.
        let empty = Confusion::from_predictions(&[], &[]);
        assert_eq!(empty.accuracy(), 1.0);
    }

    #[test]
    fn dcg_hand_computed() {
        // rel = [3, 2]: DCG = (2^3-1)/log2(2) + (2^2-1)/log2(3) = 7 + 3/1.585
        let d = dcg_at(&[3.0, 2.0], 2);
        let expected = 7.0 / 1.0 + 3.0 / 3f64.log2();
        assert!((d - expected).abs() < 1e-12);
    }

    #[test]
    fn ndcg_is_one_for_ideal_order() {
        assert_eq!(ndcg(&[3.0, 2.0, 1.0, 0.0]), 1.0);
        assert_eq!(ndcg(&[]), 1.0);
        assert_eq!(ndcg(&[0.0, 0.0]), 1.0); // nothing relevant
    }

    #[test]
    fn ndcg_penalizes_inversions() {
        let worst = ndcg(&[0.0, 1.0, 2.0, 3.0]);
        let better = ndcg(&[3.0, 1.0, 2.0, 0.0]);
        assert!(worst < better);
        assert!(better < 1.0);
        assert!(worst > 0.0);
    }

    #[test]
    fn ndcg_at_k_truncates() {
        // Only the first position counts at k=1.
        assert_eq!(ndcg_at(&[3.0, 0.0, 0.0], 1), 1.0);
        assert!(ndcg_at(&[0.0, 3.0], 1) < 1e-12);
    }

    #[test]
    fn ndcg_bounded() {
        let r = [0.5, 2.5, 1.0, 0.0, 3.0];
        let v = ndcg(&r);
        assert!((0.0..=1.0).contains(&v));
    }
}
