//! CART decision trees.
//!
//! The paper uses a decision tree as its visualization-recognition
//! classifier (§III, citing Quinlan) and finds it "way better than SVM and
//! Bayes … possibly because visualization recognition should follow the
//! rules [of §V-A] and decision tree could capture these rules well."
//! This module provides the binary classification tree plus the regression
//! tree that gradient boosting (and thus LambdaMART) builds on.

use crate::dataset::Dataset;

/// One comparison along a decision path: feature `feature` of the scored
/// row had value `value`, was compared against `threshold`, and the walk
/// went left (`value <= threshold`) or right.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathStep {
    pub feature: usize,
    pub threshold: f64,
    /// The row's value for that feature.
    pub value: f64,
    pub went_left: bool,
}

/// A tree node in persistence form (see [`crate::persist`]).
#[derive(Debug, Clone, PartialEq)]
pub enum PersistNode {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// Hyperparameters shared by both tree kinds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeParams {
    pub max_depth: usize,
    /// Minimum samples a node needs before a split is attempted.
    pub min_samples_split: usize,
    /// Minimum samples each child must receive.
    pub min_samples_leaf: usize,
    /// Minimum impurity / SSE reduction for a split to be kept.
    pub min_gain: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 12,
            min_samples_split: 4,
            min_samples_leaf: 2,
            min_gain: 1e-7,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        /// Positive-class probability (classification) or mean target
        /// (regression).
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// Flat-array tree storage shared by both kinds.
#[derive(Debug, Clone, PartialEq)]
struct Arena {
    nodes: Vec<Node>,
}

impl Arena {
    fn traverse(&self, row: &[f64]) -> usize {
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { .. } => return idx,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let v = row.get(*feature).copied().unwrap_or(f64::NEG_INFINITY);
                    idx = if v <= *threshold { *left } else { *right };
                }
            }
        }
    }

    fn value(&self, row: &[f64]) -> f64 {
        match self.nodes.get(self.traverse(row)) {
            Some(Node::Leaf { value }) => *value,
            _ => unreachable!("traverse stops at leaves"),
        }
    }
}

/// Candidate split thresholds for a feature: midpoints between consecutive
/// distinct sorted values (capped for speed on large nodes).
fn candidate_order(features: &[Vec<f64>], indices: &[usize], feature: usize) -> Vec<usize> {
    let mut order = indices.to_vec();
    let key = |i: usize| {
        features
            .get(i)
            .and_then(|row| row.get(feature))
            .copied()
            .unwrap_or(f64::NEG_INFINITY)
    };
    order.sort_by(|&a, &b| key(a).total_cmp(&key(b)));
    order
}

// ---------------------------------------------------------------------------
// Classification
// ---------------------------------------------------------------------------

/// Binary CART classifier trained with Gini impurity.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    arena: Arena,
    params: TreeParams,
}

fn gini(pos: f64, total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    let p = pos / total;
    2.0 * p * (1.0 - p)
}

impl DecisionTree {
    /// Train on a dataset with the given parameters.
    pub fn train(data: &Dataset, params: TreeParams) -> Self {
        let mut arena = Arena { nodes: Vec::new() };
        let indices: Vec<usize> = (0..data.len()).collect();
        if data.is_empty() {
            arena.nodes.push(Node::Leaf { value: 0.0 });
        } else {
            build_classifier(&mut arena, data, indices, 0, &params);
        }
        DecisionTree { arena, params }
    }

    /// Train with default parameters.
    pub fn fit(data: &Dataset) -> Self {
        Self::train(data, TreeParams::default())
    }

    /// Positive-class probability for one row.
    pub fn predict_proba(&self, row: &[f64]) -> f64 {
        self.arena.value(row)
    }

    /// Hard prediction at the 0.5 threshold.
    pub fn predict(&self, row: &[f64]) -> bool {
        self.predict_proba(row) >= 0.5
    }

    pub fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<bool> {
        rows.iter().map(|r| self.predict(r)).collect()
    }

    /// The CART decision path for one row: every split comparison walked
    /// root-to-leaf plus the reached leaf's positive-class probability.
    /// This is the classifier *evidence* the provenance layer records —
    /// the exact rule chain that admitted or rejected a candidate.
    pub fn decision_path(&self, row: &[f64]) -> (Vec<PathStep>, f64) {
        let mut steps = Vec::new();
        let mut idx = 0;
        loop {
            match &self.arena.nodes[idx] {
                Node::Leaf { value } => return (steps, *value),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let value = row.get(*feature).copied().unwrap_or(0.0);
                    let went_left = value <= *threshold;
                    steps.push(PathStep {
                        feature: *feature,
                        threshold: *threshold,
                        value,
                        went_left,
                    });
                    idx = if went_left { *left } else { *right };
                }
            }
        }
    }

    /// Number of nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.arena.nodes.len()
    }

    /// Depth of the deepest leaf.
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], idx: usize) -> usize {
            match &nodes[idx] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, *left).max(depth_of(nodes, *right))
                }
            }
        }
        depth_of(&self.arena.nodes, 0)
    }

    pub fn params(&self) -> TreeParams {
        self.params
    }

    /// The node list in persistence form.
    pub(crate) fn persist_nodes(&self) -> Vec<PersistNode> {
        self.arena.nodes.iter().map(Node::to_persist).collect()
    }

    /// Rebuild from persisted nodes; `None` when empty.
    pub(crate) fn from_persist_nodes(nodes: Vec<PersistNode>) -> Option<Self> {
        if nodes.is_empty() {
            return None;
        }
        Some(DecisionTree {
            arena: Arena {
                nodes: nodes.into_iter().map(Node::from_persist).collect(),
            },
            params: TreeParams::default(),
        })
    }
}

impl Node {
    fn to_persist(&self) -> PersistNode {
        match self {
            Node::Leaf { value } => PersistNode::Leaf { value: *value },
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => PersistNode::Split {
                feature: *feature,
                threshold: *threshold,
                left: *left,
                right: *right,
            },
        }
    }

    fn from_persist(n: PersistNode) -> Node {
        match n {
            PersistNode::Leaf { value } => Node::Leaf { value },
            PersistNode::Split {
                feature,
                threshold,
                left,
                right,
            } => Node::Split {
                feature,
                threshold,
                left,
                right,
            },
        }
    }
}

fn build_classifier(
    arena: &mut Arena,
    data: &Dataset,
    indices: Vec<usize>,
    depth: usize,
    params: &TreeParams,
) -> usize {
    let total = indices.len() as f64;
    let pos = indices.iter().filter(|&&i| data.label(i)).count() as f64;
    let node_idx = arena.nodes.len();
    arena.nodes.push(Node::Leaf { value: pos / total });

    if depth >= params.max_depth
        || indices.len() < params.min_samples_split
        || pos == 0.0
        || pos == total
    {
        return node_idx;
    }

    let parent_impurity = gini(pos, total);
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
    for feature in 0..data.width() {
        let order = candidate_order(data.features(), &indices, feature);
        let mut left_pos = 0.0;
        let mut left_total = 0.0;
        for w in 0..order.len() - 1 {
            let i = order[w];
            left_total += 1.0;
            if data.label(i) {
                left_pos += 1.0;
            }
            let x_here = data.row(i)[feature];
            let x_next = data.row(order[w + 1])[feature];
            if x_here == x_next {
                continue; // can't split between equal values
            }
            let right_total = total - left_total;
            if (left_total as usize) < params.min_samples_leaf
                || (right_total as usize) < params.min_samples_leaf
            {
                continue;
            }
            let right_pos = pos - left_pos;
            let weighted = (left_total / total) * gini(left_pos, left_total)
                + (right_total / total) * gini(right_pos, right_total);
            let gain = parent_impurity - weighted;
            if gain > params.min_gain && best.is_none_or(|(_, _, g)| gain > g) {
                best = Some((feature, (x_here + x_next) / 2.0, gain));
            }
        }
    }

    let Some((feature, threshold, _)) = best else {
        return node_idx;
    };
    let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
        .into_iter()
        .partition(|&i| data.row(i)[feature] <= threshold);
    let left = build_classifier(arena, data, left_idx, depth + 1, params);
    let right = build_classifier(arena, data, right_idx, depth + 1, params);
    arena.nodes[node_idx] = Node::Split {
        feature,
        threshold,
        left,
        right,
    };
    node_idx
}

// ---------------------------------------------------------------------------
// Regression
// ---------------------------------------------------------------------------

/// CART regression tree (squared-error splits), the weak learner for
/// gradient boosting / LambdaMART.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionTree {
    arena: Arena,
    /// For each training row, the index of the leaf it fell into — needed
    /// by LambdaMART's Newton leaf re-estimation.
    leaf_assignment: Vec<usize>,
}

impl RegressionTree {
    /// Fit to (features, targets) with the given parameters.
    pub fn train(features: &[Vec<f64>], targets: &[f64], params: TreeParams) -> Self {
        assert_eq!(
            features.len(),
            targets.len(),
            "feature/target length mismatch"
        );
        let mut arena = Arena { nodes: Vec::new() };
        let mut leaf_assignment = vec![0usize; targets.len()];
        let indices: Vec<usize> = (0..targets.len()).collect();
        if targets.is_empty() {
            arena.nodes.push(Node::Leaf { value: 0.0 });
        } else {
            build_regressor(
                &mut arena,
                features,
                targets,
                indices,
                0,
                &params,
                &mut leaf_assignment,
            );
        }
        RegressionTree {
            arena,
            leaf_assignment,
        }
    }

    pub fn predict(&self, row: &[f64]) -> f64 {
        self.arena.value(row)
    }

    /// The arena index of the leaf this row lands in.
    pub fn leaf_of(&self, row: &[f64]) -> usize {
        self.arena.traverse(row)
    }

    /// Leaf index assigned to each training row at fit time.
    pub fn training_leaves(&self) -> &[usize] {
        &self.leaf_assignment
    }

    /// Overwrite a leaf's output value (Newton step in LambdaMART).
    /// Split nodes are left untouched.
    pub fn set_leaf_value(&mut self, leaf: usize, value: f64) {
        match &mut self.arena.nodes[leaf] {
            Node::Leaf { value: v } => *v = value,
            Node::Split { .. } => debug_assert!(false, "node {leaf} is not a leaf"),
        }
    }

    /// Scale every leaf by the learning rate.
    pub fn shrink(&mut self, rate: f64) {
        for node in &mut self.arena.nodes {
            if let Node::Leaf { value } = node {
                *value *= rate;
            }
        }
    }

    pub fn node_count(&self) -> usize {
        self.arena.nodes.len()
    }

    /// The node list in persistence form.
    pub(crate) fn persist_nodes(&self) -> Vec<PersistNode> {
        self.arena.nodes.iter().map(Node::to_persist).collect()
    }

    /// Rebuild from persisted nodes (training-leaf assignments are not
    /// persisted — a loaded tree only predicts).
    pub(crate) fn from_persist_nodes(nodes: Vec<PersistNode>) -> Option<Self> {
        if nodes.is_empty() {
            return None;
        }
        Some(RegressionTree {
            arena: Arena {
                nodes: nodes.into_iter().map(Node::from_persist).collect(),
            },
            leaf_assignment: Vec::new(),
        })
    }
}

#[allow(clippy::too_many_arguments)]
fn build_regressor(
    arena: &mut Arena,
    features: &[Vec<f64>],
    targets: &[f64],
    indices: Vec<usize>,
    depth: usize,
    params: &TreeParams,
    leaf_assignment: &mut [usize],
) -> usize {
    let total = indices.len() as f64;
    let sum: f64 = indices.iter().map(|&i| targets[i]).sum();
    let mean = sum / total;
    let node_idx = arena.nodes.len();
    arena.nodes.push(Node::Leaf { value: mean });

    let sse: f64 = indices.iter().map(|&i| (targets[i] - mean).powi(2)).sum();
    if depth >= params.max_depth || indices.len() < params.min_samples_split || sse <= 1e-12 {
        for &i in &indices {
            leaf_assignment[i] = node_idx;
        }
        return node_idx;
    }

    let width = features.first().map_or(0, Vec::len);
    let total_sq: f64 = indices.iter().map(|&i| targets[i] * targets[i]).sum();
    let mut best: Option<(usize, f64, f64)> = None;
    for feature in 0..width {
        let order = candidate_order(features, &indices, feature);
        let mut left_sum = 0.0;
        let mut left_sq = 0.0;
        let mut left_n = 0.0;
        for w in 0..order.len() - 1 {
            let i = order[w];
            left_sum += targets[i];
            left_sq += targets[i] * targets[i];
            left_n += 1.0;
            let x_here = features[i][feature];
            let x_next = features[order[w + 1]][feature];
            if x_here == x_next {
                continue;
            }
            let right_n = total - left_n;
            if (left_n as usize) < params.min_samples_leaf
                || (right_n as usize) < params.min_samples_leaf
            {
                continue;
            }
            let right_sum = sum - left_sum;
            let right_sq = total_sq - left_sq;
            let left_sse = left_sq - left_sum * left_sum / left_n;
            let right_sse = right_sq - right_sum * right_sum / right_n;
            let gain = sse - (left_sse + right_sse);
            if gain > params.min_gain && best.is_none_or(|(_, _, g)| gain > g) {
                best = Some((feature, (x_here + x_next) / 2.0, gain));
            }
        }
    }

    let Some((feature, threshold, _)) = best else {
        for &i in &indices {
            leaf_assignment[i] = node_idx;
        }
        return node_idx;
    };
    let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
        .into_iter()
        .partition(|&i| features[i][feature] <= threshold);
    let left = build_regressor(
        arena,
        features,
        targets,
        left_idx,
        depth + 1,
        params,
        leaf_assignment,
    );
    let right = build_regressor(
        arena,
        features,
        targets,
        right_idx,
        depth + 1,
        params,
        leaf_assignment,
    );
    arena.nodes[node_idx] = Node::Split {
        feature,
        threshold,
        left,
        right,
    };
    node_idx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_ish() -> Dataset {
        // Axis-aligned two-split concept: positive iff x0 > 0.5 && x1 > 0.5.
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                let (x, y) = (i as f64 / 20.0, j as f64 / 20.0);
                features.push(vec![x, y]);
                labels.push(x > 0.5 && y > 0.5);
            }
        }
        Dataset::new(features, labels)
    }

    #[test]
    fn classifier_learns_axis_aligned_concept() {
        let data = xor_ish();
        let tree = DecisionTree::fit(&data);
        let preds = tree.predict_batch(data.features());
        let errors = preds
            .iter()
            .zip(data.labels())
            .filter(|(p, a)| p != a)
            .count();
        assert_eq!(errors, 0, "tree should fit a rule-based concept exactly");
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn classifier_respects_max_depth() {
        let data = xor_ish();
        let tree = DecisionTree::train(
            &data,
            TreeParams {
                max_depth: 1,
                ..Default::default()
            },
        );
        assert!(tree.depth() <= 1);
    }

    #[test]
    fn pure_node_is_leaf() {
        let data = Dataset::new(
            vec![vec![0.0], vec![1.0], vec![2.0]],
            vec![true, true, true],
        );
        let tree = DecisionTree::fit(&data);
        assert_eq!(tree.node_count(), 1);
        assert!(tree.predict(&[5.0]));
        assert_eq!(tree.predict_proba(&[5.0]), 1.0);
    }

    #[test]
    fn empty_dataset_predicts_negative() {
        let tree = DecisionTree::fit(&Dataset::new(vec![], vec![]));
        assert!(!tree.predict(&[1.0, 2.0]));
    }

    #[test]
    fn probability_reflects_leaf_purity() {
        // One feature that can't separate: leaf probability = positive rate.
        let data = Dataset::new(
            vec![vec![1.0], vec![1.0], vec![1.0], vec![1.0]],
            vec![true, true, true, false],
        );
        let tree = DecisionTree::fit(&data);
        assert_eq!(tree.predict_proba(&[1.0]), 0.75);
        assert!(tree.predict(&[1.0]));
    }

    #[test]
    fn regression_tree_fits_step_function() {
        let features: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = (0..100).map(|i| if i < 50 { 1.0 } else { 5.0 }).collect();
        let tree = RegressionTree::train(&features, &targets, TreeParams::default());
        assert!((tree.predict(&[10.0]) - 1.0).abs() < 1e-9);
        assert!((tree.predict(&[80.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn regression_training_leaves_consistent() {
        let features: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = (0..50).map(|i| (i as f64).sin()).collect();
        let tree = RegressionTree::train(&features, &targets, TreeParams::default());
        for (i, row) in features.iter().enumerate() {
            assert_eq!(tree.leaf_of(row), tree.training_leaves()[i]);
        }
    }

    #[test]
    fn leaf_value_override_and_shrink() {
        let features = vec![vec![0.0], vec![10.0], vec![0.5], vec![9.5]];
        let targets = vec![0.0, 10.0, 0.0, 10.0];
        let mut tree = RegressionTree::train(
            &features,
            &targets,
            TreeParams {
                min_samples_split: 2,
                min_samples_leaf: 1,
                ..Default::default()
            },
        );
        let leaf = tree.leaf_of(&[0.0]);
        tree.set_leaf_value(leaf, 42.0);
        assert_eq!(tree.predict(&[0.0]), 42.0);
        tree.shrink(0.5);
        assert_eq!(tree.predict(&[0.0]), 21.0);
    }

    #[test]
    fn constant_targets_single_leaf() {
        let features = vec![vec![1.0], vec![2.0], vec![3.0]];
        let tree = RegressionTree::train(&features, &[7.0, 7.0, 7.0], TreeParams::default());
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[99.0]), 7.0);
    }
}
