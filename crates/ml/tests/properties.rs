//! Property-based tests for the ML substrate.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use deepeye_ml::{
    ndcg, ndcg_at, Confusion, Dataset, DecisionTree, GaussianNb, LambdaMart, LinearSvm, QueryGroup,
    RegressionTree, TreeParams,
};
use proptest::prelude::*;

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (2usize..60).prop_flat_map(|n| {
        (
            proptest::collection::vec(proptest::collection::vec(-10.0f64..10.0, 3), n),
            proptest::collection::vec(any::<bool>(), n),
        )
            .prop_map(|(features, labels)| Dataset::new(features, labels))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All three classifiers train and predict without panicking on
    /// arbitrary data, and predictions are deterministic.
    #[test]
    fn classifiers_total(data in dataset_strategy()) {
        let tree = DecisionTree::fit(&data);
        let nb = GaussianNb::fit(&data);
        let svm = LinearSvm::fit(&data);
        for row in data.features() {
            let t1 = tree.predict(row);
            prop_assert_eq!(t1, tree.predict(row));
            let _ = nb.predict(row);
            prop_assert!(nb.decision(row).is_finite() || nb.decision(row).is_infinite());
            prop_assert!(svm.decision(row).is_finite());
        }
    }

    /// Decision tree probability is a valid probability.
    #[test]
    fn tree_proba_bounded(data in dataset_strategy()) {
        let tree = DecisionTree::fit(&data);
        for row in data.features() {
            let p = tree.predict_proba(row);
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }

    /// An unconstrained tree drives training error to zero whenever no two
    /// identical rows carry conflicting labels.
    #[test]
    fn tree_fits_consistent_data(data in dataset_strategy()) {
        let mut seen: std::collections::HashMap<String, bool> = std::collections::HashMap::new();
        let mut consistent = true;
        for (row, &label) in data.features().iter().zip(data.labels()) {
            let key = format!("{row:?}");
            if let Some(&prev) = seen.get(&key) {
                if prev != label {
                    consistent = false;
                    break;
                }
            }
            seen.insert(key, label);
        }
        prop_assume!(consistent);
        let tree = DecisionTree::train(
            &data,
            TreeParams { max_depth: 64, min_samples_split: 2, min_samples_leaf: 1, min_gain: 1e-12 },
        );
        let preds = tree.predict_batch(data.features());
        let errs = preds.iter().zip(data.labels()).filter(|(p, a)| p != a).count();
        prop_assert_eq!(errs, 0);
    }

    /// Regression tree predictions stay within the target range.
    #[test]
    fn regression_within_range(
        targets in proptest::collection::vec(-100.0f64..100.0, 2..50),
    ) {
        let features: Vec<Vec<f64>> = (0..targets.len()).map(|i| vec![i as f64]).collect();
        let tree = RegressionTree::train(&features, &targets, TreeParams::default());
        let lo = targets.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = targets.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for row in &features {
            let p = tree.predict(row);
            prop_assert!(lo - 1e-9 <= p && p <= hi + 1e-9);
        }
    }

    /// NDCG is bounded, 1 for sorted input, and invariant under appending
    /// zero-relevance items at the end.
    #[test]
    fn ndcg_laws(rels in proptest::collection::vec(0.0f64..4.0, 1..30)) {
        let v = ndcg(&rels);
        prop_assert!((0.0..=1.0).contains(&v));
        let mut sorted = rels.clone();
        sorted.sort_by(|a, b| b.total_cmp(a));
        prop_assert!((ndcg(&sorted) - 1.0).abs() < 1e-12);
        // Truncated NDCG of the ideal order is still 1.
        prop_assert!((ndcg_at(&sorted, 5) - 1.0).abs() < 1e-12);
    }

    /// Confusion metrics are all in [0, 1] and accuracy is consistent.
    #[test]
    fn confusion_bounds(
        preds in proptest::collection::vec(any::<bool>(), 0..40),
    ) {
        let actual: Vec<bool> = preds.iter().map(|p| !p).collect();
        let c = Confusion::from_predictions(&preds, &actual);
        for v in [c.precision(), c.recall(), c.f_measure(), c.accuracy()] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        // All predictions inverted: accuracy 0 unless empty.
        if !preds.is_empty() {
            prop_assert_eq!(c.accuracy(), 0.0);
        }
    }

    /// LambdaMART scores are finite on arbitrary groups.
    #[test]
    fn lambdamart_total(
        rels in proptest::collection::vec(0.0f64..3.0, 2..12),
    ) {
        let features: Vec<Vec<f64>> = rels.iter().enumerate()
            .map(|(i, &r)| vec![r + (i as f64 * 0.01), i as f64])
            .collect();
        let group = QueryGroup::new(features.clone(), rels);
        let model = LambdaMart::train(
            &[group],
            deepeye_ml::LambdaMartParams { trees: 5, ..Default::default() },
        );
        for row in &features {
            prop_assert!(model.score(row).is_finite());
        }
        let order = model.rank(&features);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..features.len()).collect::<Vec<_>>());
    }
}
