//! Property-based tests for the data substrate.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use deepeye_data::stats;
use deepeye_data::temporal::{Civil, TimeUnit, Timestamp};
use deepeye_data::{correlation, detect_type, parse_column, trend_of_series, Column, DataType};
use proptest::prelude::*;

fn civil_strategy() -> impl Strategy<Value = Civil> {
    (1900i32..2100, 1u8..=12, 1u8..=28, 0u8..24, 0u8..60, 0u8..60)
        .prop_map(|(y, mo, d, h, mi, s)| Civil::new(y, mo, d, h, mi, s).unwrap())
}

proptest! {
    /// Civil → Timestamp → Civil is the identity.
    #[test]
    fn civil_round_trip(c in civil_strategy()) {
        let t = Timestamp::from_civil(c);
        prop_assert_eq!(t.civil(), c);
    }

    /// Truncation is idempotent, never moves forward, and is monotone.
    #[test]
    fn truncate_laws(c1 in civil_strategy(), c2 in civil_strategy(), unit_idx in 0usize..7) {
        let unit = TimeUnit::ALL[unit_idx];
        let (a, b) = (Timestamp::from_civil(c1), Timestamp::from_civil(c2));
        let (ta, tb) = (a.truncate(unit), b.truncate(unit));
        prop_assert_eq!(ta.truncate(unit), ta);
        prop_assert!(ta <= a);
        if a <= b {
            prop_assert!(ta <= tb);
        }
    }

    /// Timestamp ordering agrees with second counts.
    #[test]
    fn timestamp_order(s1 in -4_000_000_000i64..4_000_000_000, s2 in -4_000_000_000i64..4_000_000_000) {
        let (a, b) = (Timestamp::from_unix_seconds(s1), Timestamp::from_unix_seconds(s2));
        prop_assert_eq!(a.cmp(&b), s1.cmp(&s2));
    }

    /// Type detection is total and parsing never changes the column length.
    #[test]
    fn detect_parse_total(cells in proptest::collection::vec("[a-z0-9./: -]{0,12}", 0..40)) {
        let ty = detect_type(&cells);
        let data = parse_column(&cells, ty);
        prop_assert_eq!(data.len(), cells.len());
        prop_assert_eq!(data.data_type(), ty);
    }

    /// Numeric strings of plain integers are never detected as categorical.
    #[test]
    fn integers_detected_numeric_or_temporal(nums in proptest::collection::vec(-10_000i64..10_000, 1..50)) {
        let cells: Vec<String> = nums.iter().map(|n| n.to_string()).collect();
        let ty = detect_type(&cells);
        prop_assert_ne!(ty, DataType::Categorical);
    }

    /// distinct_count is at most the length and unique_ratio is in [0,1].
    #[test]
    fn distinct_bounds(vals in proptest::collection::vec(-100i64..100, 0..100)) {
        let col = Column::numeric("x", vals.iter().map(|&v| v as f64));
        prop_assert!(col.distinct_count() <= col.len());
        let r = col.unique_ratio();
        prop_assert!((0.0..=1.0).contains(&r));
    }

    /// min/max scalars bracket every value.
    #[test]
    fn min_max_bracket(vals in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let col = Column::numeric("x", vals.iter().copied());
        let lo = col.min_scalar().unwrap();
        let hi = col.max_scalar().unwrap();
        prop_assert!(lo <= hi);
        for v in &vals {
            prop_assert!(lo <= *v && *v <= hi);
        }
    }

    /// Correlation coefficients always land in [-1, 1] and are finite.
    #[test]
    fn correlation_bounded(
        xs in proptest::collection::vec(-1e4f64..1e4, 0..60),
        ys in proptest::collection::vec(-1e4f64..1e4, 0..60),
    ) {
        let c = correlation(&xs, &ys);
        prop_assert!(c.coefficient.is_finite());
        prop_assert!((-1.0..=1.0).contains(&c.coefficient));
        prop_assert!((0.0..=1.0).contains(&c.strength()));
    }

    /// Correlation is symmetric in absolute strength for the linear model
    /// when inputs are equal-length (swap x and y).
    #[test]
    fn perfect_line_always_detected(b in 1i32..50, a in -100i32..100) {
        let xs: Vec<f64> = (1..40).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| f64::from(a) + f64::from(b) * x).collect();
        let c = correlation(&xs, &ys);
        prop_assert!(c.strength() > 0.999);
    }

    /// Trend fit is bounded and trend of a constant-free linear ramp holds.
    #[test]
    fn trend_bounded(ys in proptest::collection::vec(-1e4f64..1e4, 0..60)) {
        let t = trend_of_series(&ys);
        prop_assert!((0.0..=1.0).contains(&t.fit));
    }

    /// Entropy of k equal weights is ln k; normalized entropy in [0,1].
    #[test]
    fn entropy_properties(w in proptest::collection::vec(0.0f64..100.0, 0..30)) {
        let e = stats::entropy(&w);
        prop_assert!(e >= 0.0 && e.is_finite());
        let ne = stats::normalized_entropy(&w);
        prop_assert!((0.0..=1.0).contains(&ne));
    }

    /// The CSV record parser never panics on arbitrary input, and a
    /// field-quoting round trip through it is lossless.
    #[test]
    fn csv_parser_total(input in ".{0,200}") {
        let _ = deepeye_data::csv::parse_records(&input, ',');
    }

    /// Any grid of arbitrary field strings survives a write-then-parse
    /// round trip when fields are quoted.
    #[test]
    fn csv_quote_round_trip(
        grid in proptest::collection::vec(
            proptest::collection::vec("[ -~]{0,12}", 1..5),
            1..6,
        ),
    ) {
        let width = grid[0].len();
        let grid: Vec<Vec<String>> =
            grid.into_iter().map(|mut r| { r.resize(width, String::new()); r }).collect();
        let text: String = grid
            .iter()
            .map(|row| {
                row.iter()
                    .map(|f| format!("\"{}\"", f.replace('"', "\"\"")))
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect::<Vec<_>>()
            .join("\n");
        match deepeye_data::csv::parse_records(&text, ',') {
            Ok(parsed) => {
                // Fully-empty records are dropped by design; compare the
                // surviving rows against the non-degenerate originals.
                let kept: Vec<&Vec<String>> = grid
                    .iter()
                    .filter(|r| !(r.len() == 1 && r[0].is_empty()))
                    .collect();
                prop_assert_eq!(kept.len(), parsed.len());
                for (orig, got) in kept.iter().zip(&parsed) {
                    prop_assert_eq!(*orig, got);
                }
            }
            Err(deepeye_data::CsvError::Empty) => {
                // Only possible when every row was a single empty field.
                prop_assert!(grid.iter().all(|r| r.len() == 1 && r[0].is_empty()));
            }
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    /// Table filtering preserves schema and row predicates compose.
    #[test]
    fn filter_rows_laws(vals in proptest::collection::vec(-100i64..100, 0..60)) {
        let t = deepeye_data::TableBuilder::new("t")
            .numeric("v", vals.iter().map(|&v| v as f64))
            .build()
            .unwrap();
        let pos = t.filter_rows(|r| t.value(r, 0).as_number().unwrap_or(0.0) > 0.0);
        prop_assert_eq!(pos.column_count(), 1);
        let expected = vals.iter().filter(|&&v| v > 0).count();
        prop_assert_eq!(pos.row_count(), expected);
        for x in pos.column(0).unwrap().numbers() {
            prop_assert!(x > 0.0);
        }
    }

    /// SUM conservation for quadratic fit residuals: fitted quadratic on a
    /// true quadratic is exact.
    #[test]
    fn quadratic_exact(c0 in -10f64..10.0, c1 in -10f64..10.0, c2 in -3f64..3.0) {
        let xs: Vec<f64> = (0..25).map(|i| i as f64 * 0.5).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| c0 + c1 * x + c2 * x * x).collect();
        let (f0, f1, f2) = stats::quadratic_fit(&xs, &ys);
        prop_assert!((f0 - c0).abs() < 1e-5 * (1.0 + c0.abs()));
        prop_assert!((f1 - c1).abs() < 1e-5 * (1.0 + c1.abs()));
        prop_assert!((f2 - c2).abs() < 1e-5 * (1.0 + c2.abs()));
    }
}
