//! The relational table `D` over scheme `R(A_1, …, A_m)` (§II-A).

use crate::column::{Column, ColumnData};
use crate::value::Value;
use std::fmt;

/// Errors raised while constructing or accessing tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// Columns passed to [`Table::new`] had differing lengths.
    RaggedColumns {
        expected: usize,
        column: String,
        got: usize,
    },
    /// Two columns share a name.
    DuplicateColumn(String),
    /// A referenced column does not exist.
    NoSuchColumn(String),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::RaggedColumns {
                expected,
                column,
                got,
            } => write!(
                f,
                "column {column:?} has {got} rows but the table has {expected}"
            ),
            TableError::DuplicateColumn(name) => write!(f, "duplicate column name {name:?}"),
            TableError::NoSuchColumn(name) => write!(f, "no such column {name:?}"),
        }
    }
}

impl std::error::Error for TableError {}

/// An immutable relational table: a name plus equally sized columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    name: String,
    columns: Vec<Column>,
    rows: usize,
}

impl Table {
    /// Build a table, validating that all columns have equal length and
    /// unique names.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Result<Self, TableError> {
        let rows = columns.first().map_or(0, Column::len);
        for c in &columns {
            if c.len() != rows {
                return Err(TableError::RaggedColumns {
                    expected: rows,
                    column: c.name().to_owned(),
                    got: c.len(),
                });
            }
        }
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|o| o.name() == c.name()) {
                return Err(TableError::DuplicateColumn(c.name().to_owned()));
            }
        }
        Ok(Table {
            name: name.into(),
            columns,
            rows,
        })
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of tuples.
    pub fn row_count(&self) -> usize {
        self.rows
    }

    /// Number of attributes, `m` in the paper.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    pub fn column(&self, index: usize) -> Option<&Column> {
        self.columns.get(index)
    }

    /// Look up a column by name (exact match).
    pub fn column_by_name(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name() == name)
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name() == name)
    }

    /// The cell at (`row`, `col`).
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.columns[col].get(row)
    }

    /// Iterate over rows as value vectors (mainly for display/tests; hot
    /// paths should use the columnar accessors).
    pub fn iter_rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.rows).map(move |r| self.columns.iter().map(|c| c.get(r)).collect())
    }

    /// Project onto a subset of columns (by name, in the given order).
    /// Unknown names produce an error.
    pub fn select_columns(&self, names: &[&str]) -> Result<Table, TableError> {
        let columns: Result<Vec<Column>, TableError> = names
            .iter()
            .map(|n| {
                self.column_by_name(n)
                    .cloned()
                    .ok_or_else(|| TableError::NoSuchColumn((*n).to_owned()))
            })
            .collect();
        Table::new(self.name.clone(), columns?)
    }

    /// Keep only the rows where `predicate(row_index)` holds — the subset
    /// side of SeeDB-style subset-vs-whole comparisons, and general
    /// slicing for examples and tests.
    pub fn filter_rows(&self, predicate: impl Fn(usize) -> bool) -> Table {
        let keep: Vec<usize> = (0..self.rows).filter(|&r| predicate(r)).collect();
        let columns: Vec<Column> = self
            .columns
            .iter()
            .map(|c| {
                let data = match c.data() {
                    ColumnData::Numeric(v) => {
                        ColumnData::Numeric(keep.iter().map(|&r| v[r]).collect())
                    }
                    ColumnData::Text(v) => {
                        ColumnData::Text(keep.iter().map(|&r| v[r].clone()).collect())
                    }
                    ColumnData::Temporal(v) => {
                        ColumnData::Temporal(keep.iter().map(|&r| v[r]).collect())
                    }
                };
                Column::new(c.name().to_owned(), data)
            })
            .collect();
        // Every filtered column has exactly `keep.len()` rows, so the
        // length-alignment check in `Table::new` cannot fail here.
        #[allow(clippy::expect_used)]
        let filtered =
            Table::new(self.name.clone(), columns).expect("filtered columns stay aligned");
        filtered
    }

    /// A short human-readable schema summary, e.g.
    /// `flights(scheduled: Tem, carrier: Cat, delay: Num) [99527 rows]`.
    pub fn schema_string(&self) -> String {
        let cols: Vec<String> = self
            .columns
            .iter()
            .map(|c| format!("{}: {}", c.name(), c.data_type()))
            .collect();
        format!("{}({}) [{} rows]", self.name, cols.join(", "), self.rows)
    }
}

/// Convenience builder for assembling tables column by column.
#[derive(Debug, Default)]
pub struct TableBuilder {
    name: String,
    columns: Vec<Column>,
}

impl TableBuilder {
    pub fn new(name: impl Into<String>) -> Self {
        TableBuilder {
            name: name.into(),
            columns: Vec::new(),
        }
    }

    pub fn column(mut self, column: Column) -> Self {
        self.columns.push(column);
        self
    }

    pub fn numeric(self, name: impl Into<String>, values: impl IntoIterator<Item = f64>) -> Self {
        self.column(Column::numeric(name, values))
    }

    pub fn text<S: Into<String>>(
        self,
        name: impl Into<String>,
        values: impl IntoIterator<Item = S>,
    ) -> Self {
        self.column(Column::text(name, values))
    }

    pub fn data(self, name: impl Into<String>, data: ColumnData) -> Self {
        self.column(Column::new(name, data))
    }

    pub fn build(self) -> Result<Table, TableError> {
        Table::new(self.name, self.columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        TableBuilder::new("t")
            .text("carrier", ["UA", "AA", "UA"])
            .numeric("delay", [1.0, 2.0, 3.0])
            .build()
            .unwrap()
    }

    #[test]
    fn construction_and_lookup() {
        let t = sample();
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.column_count(), 2);
        assert_eq!(
            t.column_by_name("delay").unwrap().numbers(),
            vec![1.0, 2.0, 3.0]
        );
        assert_eq!(t.column_index("carrier"), Some(0));
        assert_eq!(t.column_index("nope"), None);
        assert_eq!(t.value(1, 0), Value::from("AA"));
    }

    #[test]
    fn ragged_columns_rejected() {
        let err = TableBuilder::new("t")
            .numeric("a", [1.0])
            .numeric("b", [1.0, 2.0])
            .build()
            .unwrap_err();
        assert!(matches!(err, TableError::RaggedColumns { .. }));
        assert!(err.to_string().contains("\"b\""));
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = TableBuilder::new("t")
            .numeric("a", [1.0])
            .numeric("a", [2.0])
            .build()
            .unwrap_err();
        assert_eq!(err, TableError::DuplicateColumn("a".into()));
    }

    #[test]
    fn empty_table_ok() {
        let t = Table::new("empty", vec![]).unwrap();
        assert_eq!(t.row_count(), 0);
        assert_eq!(t.column_count(), 0);
    }

    #[test]
    fn row_iteration() {
        let t = sample();
        let rows: Vec<Vec<Value>> = t.iter_rows().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], vec![Value::from("UA"), Value::Number(3.0)]);
    }

    #[test]
    fn schema_string() {
        assert_eq!(
            sample().schema_string(),
            "t(carrier: Cat, delay: Num) [3 rows]"
        );
    }

    #[test]
    fn select_columns_projects_and_reorders() {
        let t = sample();
        let p = t.select_columns(&["delay", "carrier"]).unwrap();
        assert_eq!(p.column_count(), 2);
        assert_eq!(p.column(0).unwrap().name(), "delay");
        assert_eq!(p.row_count(), 3);
        assert!(matches!(
            t.select_columns(&["nope"]),
            Err(TableError::NoSuchColumn(_))
        ));
    }

    #[test]
    fn filter_rows_keeps_alignment() {
        let t = sample();
        let f = t.filter_rows(|r| t.value(r, 0) == Value::from("UA"));
        assert_eq!(f.row_count(), 2);
        assert_eq!(f.column_by_name("delay").unwrap().numbers(), vec![1.0, 3.0]);
        // Empty filter yields a valid zero-row table.
        let empty = t.filter_rows(|_| false);
        assert_eq!(empty.row_count(), 0);
        assert_eq!(empty.column_count(), 2);
    }
}
