//! Column profiling: the summary a data-exploration tool shows before any
//! chart is drawn — quantiles, dispersion, shape, and top categories.
//! Backs the CLI's `inspect` subcommand and available to library users.

use crate::column::{Column, ColumnData};
use crate::stats;
use crate::value::DataType;
use std::collections::HashMap;

/// Numeric distribution summary.
#[derive(Debug, Clone, PartialEq)]
pub struct NumericProfile {
    pub count: usize,
    pub mean: f64,
    pub stddev: f64,
    pub min: f64,
    /// 25th / 50th / 75th percentiles.
    pub q1: f64,
    pub median: f64,
    pub q3: f64,
    pub max: f64,
    /// Fisher skewness (0 for symmetric data; undefined → 0).
    pub skewness: f64,
    /// Count of points outside the 1.5·IQR Tukey fences.
    pub outliers: usize,
}

/// Categorical summary: the most frequent values.
#[derive(Debug, Clone, PartialEq)]
pub struct CategoricalProfile {
    pub count: usize,
    pub distinct: usize,
    /// `(value, occurrences)` sorted by frequency descending, capped.
    pub top: Vec<(String, usize)>,
}

/// The profile of one column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnProfile {
    Numeric(NumericProfile),
    Categorical(CategoricalProfile),
    /// Temporal columns profile their span as Unix-second numerics.
    Temporal(NumericProfile),
    /// All-null or empty column.
    Empty,
}

/// Linear-interpolated quantile of an already **sorted** slice, `q ∈ [0,1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

fn numeric_profile(values: &[f64]) -> Option<NumericProfile> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mean = stats::mean(&sorted);
    let sd = stats::stddev(&sorted);
    let q1 = quantile_sorted(&sorted, 0.25);
    let median = quantile_sorted(&sorted, 0.5);
    let q3 = quantile_sorted(&sorted, 0.75);
    let iqr = q3 - q1;
    let (lo_fence, hi_fence) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
    let outliers = sorted
        .iter()
        .filter(|&&x| x < lo_fence || x > hi_fence)
        .count();
    let skewness = if sd > 1e-12 {
        sorted
            .iter()
            .map(|x| ((x - mean) / sd).powi(3))
            .sum::<f64>()
            / sorted.len() as f64
    } else {
        0.0
    };
    Some(NumericProfile {
        count: sorted.len(),
        mean,
        stddev: sd,
        min: sorted[0],
        q1,
        median,
        q3,
        max: sorted[sorted.len() - 1],
        skewness,
        outliers,
    })
}

/// Maximum categories listed in a categorical profile.
pub const TOP_CATEGORIES: usize = 5;

/// Profile a column according to its type.
pub fn profile_column(column: &Column) -> ColumnProfile {
    match column.data() {
        ColumnData::Numeric(_) => {
            numeric_profile(&column.numbers()).map_or(ColumnProfile::Empty, ColumnProfile::Numeric)
        }
        ColumnData::Temporal(_) => {
            let secs: Vec<f64> = column
                .timestamps()
                .iter()
                .map(|t| t.unix_seconds() as f64)
                .collect();
            numeric_profile(&secs).map_or(ColumnProfile::Empty, ColumnProfile::Temporal)
        }
        ColumnData::Text(vals) => {
            let mut counts: HashMap<&str, usize> = HashMap::new();
            for v in vals.iter().flatten() {
                *counts.entry(v.as_str()).or_insert(0) += 1;
            }
            if counts.is_empty() {
                return ColumnProfile::Empty;
            }
            let count: usize = counts.values().sum();
            let distinct = counts.len();
            let mut top: Vec<(String, usize)> =
                counts.into_iter().map(|(v, c)| (v.to_owned(), c)).collect();
            top.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            top.truncate(TOP_CATEGORIES);
            ColumnProfile::Categorical(CategoricalProfile {
                count,
                distinct,
                top,
            })
        }
    }
}

impl ColumnProfile {
    /// One-line rendering for terminal output.
    pub fn summary_line(&self, dtype: DataType) -> String {
        match self {
            ColumnProfile::Numeric(p) | ColumnProfile::Temporal(p) => format!(
                "{dtype}  n={}  mean={:.4}  sd={:.4}  min={:.4}  q1={:.4}  med={:.4}  q3={:.4}  max={:.4}  skew={:+.2}  outliers={}",
                p.count, p.mean, p.stddev, p.min, p.q1, p.median, p.q3, p.max, p.skewness, p.outliers
            ),
            ColumnProfile::Categorical(p) => {
                let tops: Vec<String> =
                    p.top.iter().map(|(v, c)| format!("{v}×{c}")).collect();
                format!("{dtype}  n={}  distinct={}  top: {}", p.count, p.distinct, tops.join(", "))
            }
            ColumnProfile::Empty => format!("{dtype}  (empty)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temporal::parse_timestamp;

    #[test]
    fn quantiles_hand_computed() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile_sorted(&sorted, 0.0), 1.0);
        assert_eq!(quantile_sorted(&sorted, 0.5), 3.0);
        assert_eq!(quantile_sorted(&sorted, 1.0), 5.0);
        assert_eq!(quantile_sorted(&sorted, 0.25), 2.0);
        // Interpolation between ranks.
        assert_eq!(quantile_sorted(&[0.0, 10.0], 0.5), 5.0);
        assert_eq!(quantile_sorted(&[], 0.5), 0.0);
    }

    #[test]
    fn numeric_profile_statistics() {
        let c = Column::numeric("v", (1..=100).map(f64::from));
        let ColumnProfile::Numeric(p) = profile_column(&c) else {
            panic!()
        };
        assert_eq!(p.count, 100);
        assert_eq!(p.min, 1.0);
        assert_eq!(p.max, 100.0);
        assert!((p.mean - 50.5).abs() < 1e-12);
        assert!((p.median - 50.5).abs() < 1e-9);
        assert!(p.skewness.abs() < 0.01, "uniform ramp is symmetric");
        assert_eq!(p.outliers, 0);
    }

    #[test]
    fn outliers_detected_by_tukey_fences() {
        let mut vals: Vec<f64> = (1..=50).map(f64::from).collect();
        vals.push(1_000.0);
        vals.push(-1_000.0);
        let ColumnProfile::Numeric(p) = profile_column(&Column::numeric("v", vals)) else {
            panic!()
        };
        assert_eq!(p.outliers, 2);
    }

    #[test]
    fn skew_sign_matches_tail() {
        let right_tail: Vec<f64> = (0..100).map(|i| (i as f64 / 10.0).exp()).collect();
        let ColumnProfile::Numeric(p) = profile_column(&Column::numeric("v", right_tail)) else {
            panic!()
        };
        assert!(
            p.skewness > 1.0,
            "exponential data is right-skewed: {}",
            p.skewness
        );
    }

    #[test]
    fn categorical_profile_top_values() {
        let c = Column::text("c", ["a", "b", "a", "c", "a", "b"]);
        let ColumnProfile::Categorical(p) = profile_column(&c) else {
            panic!()
        };
        assert_eq!(p.count, 6);
        assert_eq!(p.distinct, 3);
        assert_eq!(p.top[0], ("a".to_owned(), 3));
        assert_eq!(p.top[1], ("b".to_owned(), 2));
    }

    #[test]
    fn temporal_profile_spans_seconds() {
        let ts: Vec<_> = ["2015-01-01", "2015-12-31"]
            .iter()
            .map(|s| parse_timestamp(s).unwrap())
            .collect();
        let c = Column::temporal("t", ts);
        let ColumnProfile::Temporal(p) = profile_column(&c) else {
            panic!()
        };
        assert_eq!(p.count, 2);
        assert!(p.max > p.min);
    }

    #[test]
    fn empty_columns_profile_empty() {
        let c = Column::new("e", ColumnData::Numeric(vec![None, None]));
        assert_eq!(profile_column(&c), ColumnProfile::Empty);
        let c = Column::text("t", Vec::<String>::new());
        assert_eq!(profile_column(&c), ColumnProfile::Empty);
    }

    #[test]
    fn summary_lines_render() {
        let c = Column::numeric("v", [1.0, 2.0, 3.0]);
        let line = profile_column(&c).summary_line(DataType::Numerical);
        assert!(line.contains("med="));
        let c = Column::text("c", ["x", "x", "y"]);
        let line = profile_column(&c).summary_line(DataType::Categorical);
        assert!(line.contains("top: x×2, y×1"));
    }
}
