//! Column correlation (feature (6)) and trend detection (Eq. 4).
//!
//! The paper measures the correlation `c(X, Y) ∈ [-1, 1]` of two columns as
//! the **maximum over four models** — linear, polynomial, power, and log —
//! taking "maximum" as the strongest association (largest magnitude). Trend
//! detection asks whether a series follows one of the distributions named by
//! Eq. 4: linear, power-law, log, or exponential.

use crate::stats::{linear_fit, pearson, quadratic_fit, r_squared};

/// Which functional form produced a correlation or trend score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorrelationModel {
    /// `y ~ a + b·x`
    Linear,
    /// `y ~ c0 + c1·x + c2·x²`
    Polynomial,
    /// `y ~ a·x^b` (fit as `ln y ~ ln a + b·ln x`)
    Power,
    /// `y ~ a + b·ln x`
    Log,
    /// `y ~ a·e^(b·x)` (fit as `ln y ~ ln a + b·x`); used by trend
    /// detection only, per Eq. 4.
    Exponential,
}

/// Correlation strength plus the model that achieved it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Correlation {
    /// Signed coefficient of the best model, in [-1, 1].
    pub coefficient: f64,
    pub model: CorrelationModel,
}

impl Correlation {
    /// Association strength regardless of direction, in [0, 1].
    pub fn strength(self) -> f64 {
        self.coefficient.abs()
    }
}

fn paired_filter(
    xs: &[f64],
    ys: &[f64],
    keep: impl Fn(f64, f64) -> bool,
    fx: impl Fn(f64) -> f64,
    fy: impl Fn(f64) -> f64,
) -> (Vec<f64>, Vec<f64>) {
    let n = xs.len().min(ys.len());
    let mut tx = Vec::with_capacity(n);
    let mut ty = Vec::with_capacity(n);
    for i in 0..n {
        if xs[i].is_finite() && ys[i].is_finite() && keep(xs[i], ys[i]) {
            tx.push(fx(xs[i]));
            ty.push(fy(ys[i]));
        }
    }
    (tx, ty)
}

/// Pearson correlation under a quadratic model: the correlation between the
/// fitted quadratic's predictions and the observations, signed by the linear
/// component's direction.
fn polynomial_r(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len().min(ys.len());
    if n < 4 {
        return 0.0;
    }
    let (c0, c1, c2) = quadratic_fit(xs, ys);
    let predicted: Vec<f64> = xs[..n].iter().map(|&x| c0 + c1 * x + c2 * x * x).collect();
    let r2 = r_squared(&ys[..n], &predicted);
    let sign = if pearson(xs, ys) < 0.0 { -1.0 } else { 1.0 };
    sign * r2.sqrt()
}

/// Minimum fraction of pairs a transformed model (power/log) must retain for
/// its fit to be meaningful; guards against judging correlation from a
/// handful of positive outliers.
const MIN_SUPPORT: f64 = 0.8;

/// Compute `c(X, Y)`: evaluate all four models and return the one with the
/// greatest absolute correlation. Returns a zero-coefficient linear
/// correlation when fewer than two valid pairs exist.
pub fn correlation(raw_xs: &[f64], raw_ys: &[f64]) -> Correlation {
    // Drop pairs with a non-finite side so every model sees clean input.
    let (fx, fy) = paired_filter(raw_xs, raw_ys, |_, _| true, |x| x, |y| y);
    let (xs, ys) = (fx.as_slice(), fy.as_slice());
    let n = xs.len() as f64;
    let mut best = Correlation {
        coefficient: pearson(xs, ys),
        model: CorrelationModel::Linear,
    };
    let mut consider = |coefficient: f64, model: CorrelationModel| {
        if coefficient.abs() > best.coefficient.abs() {
            best = Correlation { coefficient, model };
        }
    };

    consider(polynomial_r(xs, ys), CorrelationModel::Polynomial);

    // Log: y vs ln x, needs x > 0.
    let (lx, ly) = paired_filter(xs, ys, |x, _| x > 0.0, f64::ln, |y| y);
    if lx.len() as f64 >= MIN_SUPPORT * n {
        consider(pearson(&lx, &ly), CorrelationModel::Log);
    }

    // Power: ln y vs ln x, needs x > 0 and y > 0.
    let (px, py) = paired_filter(xs, ys, |x, y| x > 0.0 && y > 0.0, f64::ln, f64::ln);
    if px.len() as f64 >= MIN_SUPPORT * n {
        consider(pearson(&px, &py), CorrelationModel::Power);
    }

    best
}

/// Result of Eq. 4's trend test on a y-series (x taken as the sorted scale).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trend {
    /// 1 if the series follows one of the four distributions, else 0 — the
    /// paper's `Trend(Y)` is binary.
    pub follows_distribution: bool,
    /// Goodness of the best fit in [0, 1] (R² of the winning model), kept
    /// for diagnostics and for the perception oracle.
    pub fit: f64,
    pub model: CorrelationModel,
}

/// R² threshold above which a series "follows a distribution". The paper
/// does not publish its cutoff; 0.5 makes Figure 1(c) (clear daily delay
/// pattern) pass and Figure 1(d) (structureless daily averages) fail on our
/// synthetic flight data, matching the user-study verdicts in Example 1.
pub const TREND_R2_THRESHOLD: f64 = 0.5;

fn model_r2(xs: &[f64], ys: &[f64], model: CorrelationModel) -> f64 {
    let n = xs.len().min(ys.len());
    if n < 3 {
        return 0.0;
    }
    match model {
        CorrelationModel::Linear => {
            let (a, b) = linear_fit(xs, ys);
            let pred: Vec<f64> = xs[..n].iter().map(|&x| a + b * x).collect();
            r_squared(&ys[..n], &pred)
        }
        CorrelationModel::Polynomial => {
            let (c0, c1, c2) = quadratic_fit(xs, ys);
            let pred: Vec<f64> = xs[..n].iter().map(|&x| c0 + c1 * x + c2 * x * x).collect();
            r_squared(&ys[..n], &pred)
        }
        CorrelationModel::Log => {
            let (tx, ty) = paired_filter(xs, ys, |x, _| x > 0.0, f64::ln, |y| y);
            if (tx.len() as f64) < MIN_SUPPORT * n as f64 {
                return 0.0;
            }
            let (a, b) = linear_fit(&tx, &ty);
            let pred: Vec<f64> = tx.iter().map(|&x| a + b * x).collect();
            r_squared(&ty, &pred)
        }
        CorrelationModel::Power => {
            let (tx, ty) = paired_filter(xs, ys, |x, y| x > 0.0 && y > 0.0, f64::ln, f64::ln);
            if (tx.len() as f64) < MIN_SUPPORT * n as f64 {
                return 0.0;
            }
            let (a, b) = linear_fit(&tx, &ty);
            let pred: Vec<f64> = tx.iter().map(|&x| a + b * x).collect();
            r_squared(&ty, &pred)
        }
        CorrelationModel::Exponential => {
            let (tx, ty) = paired_filter(xs, ys, |_, y| y > 0.0, |x| x, f64::ln);
            if (tx.len() as f64) < MIN_SUPPORT * n as f64 {
                return 0.0;
            }
            let (a, b) = linear_fit(&tx, &ty);
            let pred: Vec<f64> = tx.iter().map(|&x| a + b * x).collect();
            r_squared(&ty, &pred)
        }
    }
}

/// Eq. 4's `Trend(Y)` over a y-series indexed by its x positions. Tries the
/// linear, power, log, and exponential models (plus quadratic, which the
/// paper's examples like Figure 1(c)'s daily curve implicitly need) and
/// reports whether any fit exceeds [`TREND_R2_THRESHOLD`].
pub fn trend(xs: &[f64], ys: &[f64]) -> Trend {
    let models = [
        CorrelationModel::Linear,
        CorrelationModel::Polynomial,
        CorrelationModel::Power,
        CorrelationModel::Log,
        CorrelationModel::Exponential,
    ];
    let mut best = Trend {
        follows_distribution: false,
        fit: 0.0,
        model: CorrelationModel::Linear,
    };
    for m in models {
        let fit = model_r2(xs, ys, m);
        if fit > best.fit {
            best = Trend {
                follows_distribution: fit >= TREND_R2_THRESHOLD,
                fit,
                model: m,
            };
        }
    }
    best
}

/// Convenience: trend of a y-series against its own index (0, 1, 2, …),
/// which is how a sorted x-scale series is evaluated.
pub fn trend_of_series(ys: &[f64]) -> Trend {
    let xs: Vec<f64> = (1..=ys.len()).map(|i| i as f64).collect();
    trend(&xs, ys)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn range(n: usize) -> Vec<f64> {
        (1..=n).map(|i| i as f64).collect()
    }

    #[test]
    fn linear_correlation_detected() {
        let xs = range(50);
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let c = correlation(&xs, &ys);
        assert!(c.coefficient > 0.999);
        assert_eq!(c.model, CorrelationModel::Linear);
    }

    #[test]
    fn log_correlation_beats_linear_on_log_data() {
        let xs = range(200);
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x.ln() + 0.5).collect();
        let c = correlation(&xs, &ys);
        assert!(c.strength() > 0.999, "strength={}", c.strength());
        assert_eq!(c.model, CorrelationModel::Log);
    }

    #[test]
    fn power_correlation_detected() {
        let xs = range(100);
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x.powf(1.7)).collect();
        let c = correlation(&xs, &ys);
        assert!(c.strength() > 0.999);
        assert_eq!(c.model, CorrelationModel::Power);
    }

    #[test]
    fn polynomial_correlation_detected() {
        // Symmetric parabola: linear r ≈ 0 but quadratic fits perfectly.
        let xs: Vec<f64> = (-50..=50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x * x).collect();
        let c = correlation(&xs, &ys);
        assert!(c.strength() > 0.99, "strength={}", c.strength());
        assert_eq!(c.model, CorrelationModel::Polynomial);
    }

    /// Deterministic xorshift noise for structureless test series.
    fn noise(n: usize) -> Vec<f64> {
        let mut state = 0x9e3779b97f4a7c15u64;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 1000) as f64
            })
            .collect()
    }

    #[test]
    fn noise_has_low_correlation() {
        let xs = range(100);
        let ys = noise(100);
        let c = correlation(&xs, &ys);
        assert!(c.strength() < 0.3, "strength={}", c.strength());
    }

    #[test]
    fn negative_correlation_signed() {
        let xs = range(50);
        let ys: Vec<f64> = xs.iter().map(|x| 100.0 - 2.0 * x).collect();
        let c = correlation(&xs, &ys);
        assert!(c.coefficient < -0.999);
        assert_eq!(c.strength(), c.coefficient.abs());
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(correlation(&[], &[]).coefficient, 0.0);
        assert_eq!(correlation(&[1.0], &[2.0]).coefficient, 0.0);
        assert_eq!(
            correlation(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).coefficient,
            0.0
        );
        let c = correlation(&[f64::NAN, 1.0], &[1.0, 2.0]);
        assert!(c.coefficient.is_finite());
    }

    #[test]
    fn trend_detects_exponential() {
        let ys: Vec<f64> = (1..=30).map(|i| (0.2 * i as f64).exp()).collect();
        let t = trend_of_series(&ys);
        assert!(t.follows_distribution);
        assert!(t.fit > 0.99);
        // Exponential data is also perfectly power/poly-fittable in parts;
        // accept any model as long as the distribution test passes.
    }

    #[test]
    fn trend_rejects_structureless_series() {
        let t = trend_of_series(&noise(60));
        assert!(!t.follows_distribution, "fit={} model={:?}", t.fit, t.model);
    }

    #[test]
    fn trend_detects_linear() {
        let ys: Vec<f64> = (1..=20).map(|i| 3.0 * i as f64 + 1.0).collect();
        let t = trend_of_series(&ys);
        assert!(t.follows_distribution);
        assert_eq!(t.model, CorrelationModel::Linear);
    }

    #[test]
    fn trend_handles_short_series() {
        assert!(!trend_of_series(&[]).follows_distribution);
        assert!(!trend_of_series(&[1.0, 2.0]).follows_distribution);
    }
}
