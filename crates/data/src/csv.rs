//! Minimal RFC-4180-style CSV reader.
//!
//! Supports quoted fields (with embedded commas, quotes, and newlines),
//! CRLF/LF line endings, and a configurable delimiter. Paired with type
//! detection ([`crate::infer`]) it turns a CSV text into a typed [`Table`].

use crate::column::Column;
use crate::infer::detect_and_parse;
use crate::table::{Table, TableError};
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// Errors raised while reading CSV input.
#[derive(Debug)]
pub enum CsvError {
    Io(io::Error),
    /// A record had a different number of fields than the header.
    FieldCount {
        line: usize,
        expected: usize,
        got: usize,
    },
    /// Unterminated quoted field at end of input.
    UnterminatedQuote,
    /// The input had no header row.
    Empty,
    Table(TableError),
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "I/O error: {e}"),
            CsvError::FieldCount {
                line,
                expected,
                got,
            } => {
                write!(
                    f,
                    "record on line {line} has {got} fields, expected {expected}"
                )
            }
            CsvError::UnterminatedQuote => f.write_str("unterminated quoted field"),
            CsvError::Empty => f.write_str("CSV input is empty"),
            CsvError::Table(e) => write!(f, "table error: {e}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

impl From<TableError> for CsvError {
    fn from(e: TableError) -> Self {
        CsvError::Table(e)
    }
}

/// Parse CSV text into records of string fields.
pub fn parse_records(text: &str, delimiter: char) -> Result<Vec<Vec<String>>, CsvError> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;

    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                '\r' => {} // swallow; LF terminates
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                c if c == delimiter => record.push(std::mem::take(&mut field)),
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(CsvError::UnterminatedQuote);
    }
    if !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push(record);
    }
    if !any {
        return Err(CsvError::Empty);
    }
    // Drop fully empty trailing records (e.g. file ends with a blank line).
    records.retain(|r| !(r.len() == 1 && r[0].is_empty()));
    if records.is_empty() {
        return Err(CsvError::Empty);
    }
    Ok(records)
}

/// Read a typed table from CSV text. The first record is the header; each
/// column's type is auto-detected.
pub fn table_from_csv_str(name: &str, text: &str) -> Result<Table, CsvError> {
    table_from_csv_str_delim(name, text, ',')
}

/// Like [`table_from_csv_str`] with an explicit delimiter.
pub fn table_from_csv_str_delim(
    name: &str,
    text: &str,
    delimiter: char,
) -> Result<Table, CsvError> {
    let records = parse_records(text, delimiter)?;
    let (header, body) = records.split_first().ok_or(CsvError::Empty)?;
    let width = header.len();
    for (i, rec) in body.iter().enumerate() {
        if rec.len() != width {
            return Err(CsvError::FieldCount {
                line: i + 2,
                expected: width,
                got: rec.len(),
            });
        }
    }
    let mut columns = Vec::with_capacity(width);
    for (ci, col_name) in header.iter().enumerate() {
        let raw: Vec<String> = body.iter().map(|rec| rec[ci].clone()).collect();
        let (_, data) = detect_and_parse(&raw);
        let trimmed = col_name.trim();
        let final_name = if trimmed.is_empty() {
            format!("column_{ci}")
        } else {
            trimmed.to_owned()
        };
        columns.push(Column::new(final_name, data));
    }
    Ok(Table::new(name, columns)?)
}

/// Read a typed table from a CSV file; the table is named after the file
/// stem.
pub fn table_from_csv_path(path: impl AsRef<Path>) -> Result<Table, CsvError> {
    let path = path.as_ref();
    let text = fs::read_to_string(path)?;
    let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("table");
    table_from_csv_str(name, &text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    #[test]
    fn parses_simple_csv() {
        let t = table_from_csv_str("t", "a,b\n1,x\n2,y\n").unwrap();
        assert_eq!(t.column_count(), 2);
        assert_eq!(t.row_count(), 2);
        assert_eq!(
            t.column_by_name("a").unwrap().data_type(),
            DataType::Numerical
        );
        assert_eq!(
            t.column_by_name("b").unwrap().data_type(),
            DataType::Categorical
        );
    }

    #[test]
    fn quoted_fields_with_commas_and_newlines() {
        let recs =
            parse_records("a,\"x,y\"\n\"line1\nline2\",\"he said \"\"hi\"\"\"\n", ',').unwrap();
        assert_eq!(recs[0], vec!["a", "x,y"]);
        assert_eq!(recs[1], vec!["line1\nline2", "he said \"hi\""]);
    }

    #[test]
    fn crlf_and_trailing_newline() {
        let recs = parse_records("a,b\r\n1,2\r\n", ',').unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1], vec!["1", "2"]);
    }

    #[test]
    fn no_trailing_newline() {
        let recs = parse_records("a,b\n1,2", ',').unwrap();
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn field_count_mismatch_reported() {
        let err = table_from_csv_str("t", "a,b\n1\n").unwrap_err();
        match err {
            CsvError::FieldCount {
                line,
                expected,
                got,
            } => {
                assert_eq!((line, expected, got), (2, 2, 1));
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn unterminated_quote_reported() {
        assert!(matches!(
            parse_records("a,\"b\n", ','),
            Err(CsvError::UnterminatedQuote)
        ));
    }

    #[test]
    fn empty_input_reported() {
        assert!(matches!(table_from_csv_str("t", ""), Err(CsvError::Empty)));
        assert!(matches!(
            table_from_csv_str("t", "\n\n"),
            Err(CsvError::Empty)
        ));
    }

    #[test]
    fn temporal_detection_via_csv() {
        let t = table_from_csv_str("t", "when,delay\n2015-01-01 08:30,5\n2015-01-02 09:00,7\n")
            .unwrap();
        assert_eq!(
            t.column_by_name("when").unwrap().data_type(),
            DataType::Temporal
        );
    }

    #[test]
    fn blank_header_names_filled() {
        let t = table_from_csv_str("t", ",b\n1,2\n").unwrap();
        assert!(t.column_by_name("column_0").is_some());
    }

    #[test]
    fn custom_delimiter() {
        let t = table_from_csv_str_delim("t", "a\tb\n1\t2\n", '\t').unwrap();
        assert_eq!(t.column_count(), 2);
        assert_eq!(t.row_count(), 1);
    }
}
