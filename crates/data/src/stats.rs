//! Descriptive statistics used by feature extraction and the ranking
//! factors: moments, entropy (the `-Σ p log p` term of Eq. 1), and simple
//! least-squares fits shared by the correlation and trend detectors.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance; 0 for fewer than two values.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Minimum of a slice; `None` when empty.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().fold(None, |acc: Option<f64>, x| {
        Some(acc.map_or(x, |a| a.min(x)))
    })
}

/// Maximum of a slice; `None` when empty.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().fold(None, |acc: Option<f64>, x| {
        Some(acc.map_or(x, |a| a.max(x)))
    })
}

/// Shannon entropy (nats) of a distribution given by non-negative weights.
///
/// Equation 1 of the paper scores pie charts by `-Σ_y p(y)·log p(y)` where
/// `p(y)` is a slice's share of the whole; diverse slice sizes give higher
/// entropy and thus a more informative pie chart.
pub fn entropy(weights: &[f64]) -> f64 {
    let total: f64 = weights.iter().filter(|w| **w > 0.0).sum();
    if total <= 0.0 {
        return 0.0;
    }
    weights
        .iter()
        .filter(|w| **w > 0.0)
        .map(|w| {
            let p = w / total;
            -p * p.ln()
        })
        .sum()
}

/// Normalized entropy in [0, 1]: entropy divided by `ln(k)` for `k` positive
/// weights. 1 means uniform, 0 means a single slice dominates (or k < 2).
pub fn normalized_entropy(weights: &[f64]) -> f64 {
    let k = weights.iter().filter(|w| **w > 0.0).count();
    if k < 2 {
        return 0.0;
    }
    (entropy(weights) / (k as f64).ln()).clamp(0.0, 1.0)
}

/// Pearson correlation coefficient of two equal-length slices.
///
/// Returns 0 when either side has zero variance or fewer than two points,
/// so callers can treat "no correlation computable" and "no correlation"
/// uniformly.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len().min(ys.len());
    if n < 2 {
        return 0.0;
    }
    let (xs, ys) = (&xs[..n], &ys[..n]);
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 0.0;
    }
    (sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0)
}

/// Least-squares straight line `y = a + b·x`; returns `(a, b)`.
/// Falls back to a horizontal line through the mean when x is degenerate.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    let n = xs.len().min(ys.len());
    if n == 0 {
        return (0.0, 0.0);
    }
    let (xs, ys) = (&xs[..n], &ys[..n]);
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    for i in 0..n {
        sxy += (xs[i] - mx) * (ys[i] - my);
        sxx += (xs[i] - mx) * (xs[i] - mx);
    }
    if sxx <= 0.0 {
        return (my, 0.0);
    }
    let b = sxy / sxx;
    (my - b * mx, b)
}

/// Coefficient of determination R² of predictions against observations,
/// clamped to [0, 1].
pub fn r_squared(observed: &[f64], predicted: &[f64]) -> f64 {
    let n = observed.len().min(predicted.len());
    if n < 2 {
        return 0.0;
    }
    let m = mean(&observed[..n]);
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    for i in 0..n {
        ss_res += (observed[i] - predicted[i]).powi(2);
        ss_tot += (observed[i] - m).powi(2);
    }
    if ss_tot <= 0.0 {
        return 0.0;
    }
    (1.0 - ss_res / ss_tot).clamp(0.0, 1.0)
}

/// Least-squares quadratic `y = c0 + c1·x + c2·x²` via the normal equations
/// of a 3×3 system; returns `(c0, c1, c2)`.
pub fn quadratic_fit(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    let n = xs.len().min(ys.len());
    if n < 3 {
        let (a, b) = linear_fit(xs, ys);
        return (a, b, 0.0);
    }
    // Center x for conditioning.
    let mx = mean(&xs[..n]);
    let cx: Vec<f64> = xs[..n].iter().map(|x| x - mx).collect();
    let mut s = [0.0f64; 5]; // Σ x^k for k=0..4
    let mut t = [0.0f64; 3]; // Σ y·x^k for k=0..2
    for i in 0..n {
        let x = cx[i];
        let mut p = 1.0;
        for sk in s.iter_mut() {
            *sk += p;
            p *= x;
        }
        let y = ys[i];
        t[0] += y;
        t[1] += y * x;
        t[2] += y * x * x;
    }
    // Solve the symmetric system [[s0,s1,s2],[s1,s2,s3],[s2,s3,s4]] c = t
    // by Gaussian elimination with partial pivoting.
    let mut a = [
        [s[0], s[1], s[2], t[0]],
        [s[1], s[2], s[3], t[1]],
        [s[2], s[3], s[4], t[2]],
    ];
    for col in 0..3 {
        let pivot = (col..3)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .unwrap_or(col);
        a.swap(col, pivot);
        if a[col][col].abs() < 1e-12 {
            let (c0, c1) = linear_fit(xs, ys);
            return (c0, c1, 0.0);
        }
        for row in 0..3 {
            if row != col {
                let f = a[row][col] / a[col][col];
                let pivot_row = a[col];
                for (cell, pivot) in a[row][col..4].iter_mut().zip(&pivot_row[col..4]) {
                    *cell -= f * pivot;
                }
            }
        }
    }
    let c0c = a[0][3] / a[0][0];
    let c1c = a[1][3] / a[1][1];
    let c2c = a[2][3] / a[2][2];
    // Un-center: y = c0c + c1c (x - mx) + c2c (x - mx)^2.
    let c0 = c0c - c1c * mx + c2c * mx * mx;
    let c1 = c1c - 2.0 * c2c * mx;
    (c0, c1, c2c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
        assert_eq!(min(&xs), Some(1.0));
        assert_eq!(max(&xs), Some(4.0));
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert_eq!(min(&[]), None);
    }

    #[test]
    fn entropy_extremes() {
        // Uniform distribution over 4 values: ln 4.
        assert!((entropy(&[1.0, 1.0, 1.0, 1.0]) - 4.0f64.ln()).abs() < 1e-12);
        // Single spike: zero entropy.
        assert_eq!(entropy(&[10.0, 0.0, 0.0]), 0.0);
        assert_eq!(entropy(&[]), 0.0);
        assert_eq!(entropy(&[0.0, 0.0]), 0.0);
        // Negative weights are ignored rather than producing NaN.
        assert!(entropy(&[-1.0, 2.0, 2.0]).is_finite());
    }

    #[test]
    fn normalized_entropy_bounds() {
        assert_eq!(normalized_entropy(&[1.0, 1.0]), 1.0);
        assert_eq!(normalized_entropy(&[5.0]), 0.0);
        let e = normalized_entropy(&[8.0, 1.0, 1.0]);
        assert!(e > 0.0 && e < 1.0);
    }

    #[test]
    fn pearson_known_values() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let up = [2.0, 4.0, 6.0, 8.0];
        let down = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &up) - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &down) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&xs, &[5.0, 5.0, 5.0, 5.0]), 0.0);
        assert_eq!(pearson(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn linear_fit_recovers_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x).collect();
        let (a, b) = linear_fit(&xs, &ys);
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
        // Degenerate x.
        let (a, b) = linear_fit(&[1.0, 1.0], &[2.0, 4.0]);
        assert_eq!((a, b), (3.0, 0.0));
    }

    #[test]
    fn quadratic_fit_recovers_parabola() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64 / 2.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.0 - 2.0 * x + 0.5 * x * x).collect();
        let (c0, c1, c2) = quadratic_fit(&xs, &ys);
        assert!((c0 - 1.0).abs() < 1e-6, "c0={c0}");
        assert!((c1 + 2.0).abs() < 1e-6, "c1={c1}");
        assert!((c2 - 0.5).abs() < 1e-6, "c2={c2}");
    }

    #[test]
    fn r_squared_perfect_and_mean() {
        let obs = [1.0, 2.0, 3.0];
        assert_eq!(r_squared(&obs, &obs), 1.0);
        assert_eq!(r_squared(&obs, &[2.0, 2.0, 2.0]), 0.0);
        // Worse than the mean clamps to 0.
        assert_eq!(r_squared(&obs, &[3.0, 2.0, 1.0]), 0.0);
    }
}
