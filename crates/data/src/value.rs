//! Cell values and the three semantic data types DeepEye reasons about.

use crate::temporal::Timestamp;
use std::cmp::Ordering;
use std::fmt;

/// The semantic type of a column (§III feature (5)).
///
/// The paper restricts attention to three types: *categorical* columns
/// contain values from a fixed vocabulary (e.g. carriers), *numerical*
/// columns contain numbers (e.g. delays), and *temporal* columns contain
/// dates or times (e.g. scheduled departure).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataType {
    Categorical,
    Numerical,
    Temporal,
}

impl DataType {
    /// Paper abbreviation: `Cat`, `Num`, `Tem`.
    pub fn abbrev(self) -> &'static str {
        match self {
            DataType::Categorical => "Cat",
            DataType::Numerical => "Num",
            DataType::Temporal => "Tem",
        }
    }

    pub const ALL: [DataType; 3] = [
        DataType::Categorical,
        DataType::Numerical,
        DataType::Temporal,
    ];
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// One cell of a table.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Number(f64),
    Text(String),
    Time(Timestamp),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The numeric content, if any.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_time(&self) -> Option<Timestamp> {
        match self {
            Value::Time(t) => Some(*t),
            _ => None,
        }
    }

    /// Total ordering used by ORDER BY: nulls first, then by natural order;
    /// mixed types compare by type tag so sorting is always well defined.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Number(_) => 1,
                Time(_) => 2,
                Text(_) => 3,
            }
        }
        match (self, other) {
            (Number(a), Number(b)) => a.total_cmp(b),
            (Time(a), Time(b)) => a.cmp(b),
            (Text(a), Text(b)) => a.cmp(b),
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str(""),
            Value::Number(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{}", *x as i64)
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Text(s) => f.write_str(s),
            Value::Time(t) => write!(f, "{t}"),
        }
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        if x.is_nan() {
            Value::Null
        } else {
            Value::Number(x)
        }
    }
}

impl From<i64> for Value {
    fn from(x: i64) -> Self {
        Value::Number(x as f64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

impl From<Timestamp> for Value {
    fn from(t: Timestamp) -> Self {
        Value::Time(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temporal::parse_timestamp;

    #[test]
    fn accessors() {
        assert_eq!(Value::Number(3.5).as_number(), Some(3.5));
        assert_eq!(Value::from("x").as_text(), Some("x"));
        assert!(Value::Null.is_null());
        assert!(Value::from(f64::NAN).is_null());
        let t = parse_timestamp("2015-01-01").unwrap();
        assert_eq!(Value::from(t).as_time(), Some(t));
        assert_eq!(Value::Null.as_number(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Value::Number(3.0).to_string(), "3");
        assert_eq!(Value::Number(3.25).to_string(), "3.25");
        assert_eq!(Value::from("abc").to_string(), "abc");
        assert_eq!(Value::Null.to_string(), "");
    }

    #[test]
    fn total_cmp_orders_within_and_across_types() {
        let mut vals = vec![
            Value::from("b"),
            Value::Number(2.0),
            Value::Null,
            Value::from("a"),
            Value::Number(-1.0),
        ];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(
            vals,
            vec![
                Value::Null,
                Value::Number(-1.0),
                Value::Number(2.0),
                Value::from("a"),
                Value::from("b"),
            ]
        );
    }

    #[test]
    fn datatype_abbrevs() {
        assert_eq!(DataType::Categorical.abbrev(), "Cat");
        assert_eq!(DataType::Numerical.to_string(), "Num");
        assert_eq!(DataType::Temporal.abbrev(), "Tem");
    }
}
