//! # deepeye-data
//!
//! Relational data substrate for the DeepEye automatic-visualization system
//! (Luo, Qin, Tang, Li — ICDE 2018).
//!
//! Provides the table model of §II-A of the paper:
//!
//! - typed cell [`Value`]s and the three semantic [`DataType`]s
//!   (categorical / numerical / temporal);
//! - columnar [`Column`]/[`Table`] storage with the per-column statistics
//!   that feed DeepEye's 14-feature vector (`d(X)`, `|X|`, `r(X)`,
//!   min/max, type);
//! - temporal parsing and calendar truncation for the seven bin units
//!   (minute … year);
//! - a CSV reader with automatic type detection;
//! - the four-model column [`correlation`] (linear / polynomial / power /
//!   log) and the [`trend`] test backing Eq. 4.
//!
//! ```
//! use deepeye_data::{table_from_csv_str, DataType};
//!
//! let t = table_from_csv_str("flights", "when,delay\n2015-01-01,4\n2015-01-02,9\n").unwrap();
//! assert_eq!(t.column_by_name("when").unwrap().data_type(), DataType::Temporal);
//! assert_eq!(t.column_by_name("delay").unwrap().numbers(), vec![4.0, 9.0]);
//! ```

#![forbid(unsafe_code)]

pub mod column;
pub mod correlate;
pub mod csv;
pub mod infer;
pub mod profile;
pub mod stats;
pub mod table;
pub mod temporal;
pub mod value;

pub use column::{Column, ColumnData};
pub use correlate::{correlation, trend, trend_of_series, Correlation, CorrelationModel, Trend};
pub use csv::{table_from_csv_path, table_from_csv_str, table_from_csv_str_delim, CsvError};
pub use infer::{detect_and_parse, detect_type, parse_column};
pub use profile::{
    profile_column, quantile_sorted, CategoricalProfile, ColumnProfile, NumericProfile,
};
pub use table::{Table, TableBuilder, TableError};
pub use temporal::{parse_timestamp, parse_timestamp_loose, Civil, TimeUnit, Timestamp};
pub use value::{DataType, Value};
