//! Typed columnar storage.

use crate::temporal::Timestamp;
use crate::value::{DataType, Value};
use std::collections::HashSet;

/// Physical storage for one column, chosen to match its semantic type.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// Numerical column; `None` marks a null/unparseable cell.
    Numeric(Vec<Option<f64>>),
    /// Categorical column.
    Text(Vec<Option<String>>),
    /// Temporal column.
    Temporal(Vec<Option<Timestamp>>),
}

impl ColumnData {
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Numeric(v) => v.len(),
            ColumnData::Text(v) => v.len(),
            ColumnData::Temporal(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn data_type(&self) -> DataType {
        match self {
            ColumnData::Numeric(_) => DataType::Numerical,
            ColumnData::Text(_) => DataType::Categorical,
            ColumnData::Temporal(_) => DataType::Temporal,
        }
    }

    /// The cell at `row` as a [`Value`].
    pub fn get(&self, row: usize) -> Value {
        match self {
            ColumnData::Numeric(v) => v[row].map_or(Value::Null, Value::Number),
            ColumnData::Text(v) => v[row]
                .as_ref()
                .map_or(Value::Null, |s| Value::Text(s.clone())),
            ColumnData::Temporal(v) => v[row].map_or(Value::Null, Value::Time),
        }
    }

    pub fn is_null(&self, row: usize) -> bool {
        match self {
            ColumnData::Numeric(v) => v[row].is_none(),
            ColumnData::Text(v) => v[row].is_none(),
            ColumnData::Temporal(v) => v[row].is_none(),
        }
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    name: String,
    data: ColumnData,
}

impl Column {
    pub fn new(name: impl Into<String>, data: ColumnData) -> Self {
        Column {
            name: name.into(),
            data,
        }
    }

    /// Build a numerical column; NaNs become nulls.
    pub fn numeric(name: impl Into<String>, values: impl IntoIterator<Item = f64>) -> Self {
        Column::new(
            name,
            ColumnData::Numeric(
                values
                    .into_iter()
                    .map(|x| if x.is_nan() { None } else { Some(x) })
                    .collect(),
            ),
        )
    }

    /// Build a categorical column.
    pub fn text<S: Into<String>>(
        name: impl Into<String>,
        values: impl IntoIterator<Item = S>,
    ) -> Self {
        Column::new(
            name,
            ColumnData::Text(values.into_iter().map(|s| Some(s.into())).collect()),
        )
    }

    /// Build a temporal column.
    pub fn temporal(name: impl Into<String>, values: impl IntoIterator<Item = Timestamp>) -> Self {
        Column::new(
            name,
            ColumnData::Temporal(values.into_iter().map(Some).collect()),
        )
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    pub fn data_type(&self) -> DataType {
        self.data.data_type()
    }

    /// Number of rows, `|X|` in the paper's feature (2).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn get(&self, row: usize) -> Value {
        self.data.get(row)
    }

    /// Non-null numeric values (empty for non-numeric columns).
    pub fn numbers(&self) -> Vec<f64> {
        match &self.data {
            ColumnData::Numeric(v) => v.iter().flatten().copied().collect(),
            _ => Vec::new(),
        }
    }

    /// Non-null timestamps (empty for non-temporal columns).
    pub fn timestamps(&self) -> Vec<Timestamp> {
        match &self.data {
            ColumnData::Temporal(v) => v.iter().flatten().copied().collect(),
            _ => Vec::new(),
        }
    }

    /// Number of distinct non-null values, `d(X)` in feature (1).
    pub fn distinct_count(&self) -> usize {
        match &self.data {
            ColumnData::Numeric(v) => {
                let mut set: HashSet<u64> = HashSet::new();
                for x in v.iter().flatten() {
                    set.insert(x.to_bits());
                }
                set.len()
            }
            ColumnData::Text(v) => {
                let set: HashSet<&str> = v.iter().flatten().map(String::as_str).collect();
                set.len()
            }
            ColumnData::Temporal(v) => {
                let set: HashSet<Timestamp> = v.iter().flatten().copied().collect();
                set.len()
            }
        }
    }

    /// Ratio of unique values, `r(X) = d(X)/|X|` in feature (3).
    pub fn unique_ratio(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.distinct_count() as f64 / self.len() as f64
        }
    }

    /// Number of null cells.
    pub fn null_count(&self) -> usize {
        (0..self.len()).filter(|&i| self.data.is_null(i)).count()
    }

    /// Minimum value as a comparable scalar (numeric value or Unix seconds);
    /// `None` for categorical or all-null columns. Feature (4).
    pub fn min_scalar(&self) -> Option<f64> {
        match &self.data {
            ColumnData::Numeric(v) => v
                .iter()
                .flatten()
                .copied()
                .fold(None, |acc: Option<f64>, x| {
                    Some(acc.map_or(x, |a| a.min(x)))
                }),
            ColumnData::Temporal(v) => v
                .iter()
                .flatten()
                .map(|t| t.unix_seconds() as f64)
                .fold(None, |acc: Option<f64>, x| {
                    Some(acc.map_or(x, |a| a.min(x)))
                }),
            ColumnData::Text(_) => None,
        }
    }

    /// Maximum value as a comparable scalar. Feature (4).
    pub fn max_scalar(&self) -> Option<f64> {
        match &self.data {
            ColumnData::Numeric(v) => v
                .iter()
                .flatten()
                .copied()
                .fold(None, |acc: Option<f64>, x| {
                    Some(acc.map_or(x, |a| a.max(x)))
                }),
            ColumnData::Temporal(v) => v
                .iter()
                .flatten()
                .map(|t| t.unix_seconds() as f64)
                .fold(None, |acc: Option<f64>, x| {
                    Some(acc.map_or(x, |a| a.max(x)))
                }),
            ColumnData::Text(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temporal::parse_timestamp;

    #[test]
    fn numeric_column_stats() {
        let c = Column::numeric("d", [1.0, 2.0, 2.0, f64::NAN, 5.0]);
        assert_eq!(c.len(), 5);
        assert_eq!(c.distinct_count(), 3);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.unique_ratio(), 3.0 / 5.0);
        assert_eq!(c.min_scalar(), Some(1.0));
        assert_eq!(c.max_scalar(), Some(5.0));
        assert_eq!(c.data_type(), DataType::Numerical);
        assert_eq!(c.numbers(), vec![1.0, 2.0, 2.0, 5.0]);
    }

    #[test]
    fn text_column_stats() {
        let c = Column::text("carrier", ["UA", "AA", "UA", "MQ"]);
        assert_eq!(c.distinct_count(), 3);
        assert_eq!(c.data_type(), DataType::Categorical);
        assert_eq!(c.min_scalar(), None);
        assert_eq!(c.get(1), Value::from("AA"));
        assert!(c.numbers().is_empty());
    }

    #[test]
    fn temporal_column_stats() {
        let a = parse_timestamp("2015-01-01").unwrap();
        let b = parse_timestamp("2015-06-01").unwrap();
        let c = Column::temporal("t", [b, a, b]);
        assert_eq!(c.distinct_count(), 2);
        assert_eq!(c.data_type(), DataType::Temporal);
        assert_eq!(c.min_scalar(), Some(a.unix_seconds() as f64));
        assert_eq!(c.max_scalar(), Some(b.unix_seconds() as f64));
        assert_eq!(c.timestamps().len(), 3);
    }

    #[test]
    fn empty_column() {
        let c = Column::numeric("e", []);
        assert!(c.is_empty());
        assert_eq!(c.unique_ratio(), 0.0);
        assert_eq!(c.min_scalar(), None);
    }

    #[test]
    fn all_null_column() {
        let c = Column::new("n", ColumnData::Numeric(vec![None, None]));
        assert_eq!(c.distinct_count(), 0);
        assert_eq!(c.null_count(), 2);
        assert_eq!(c.max_scalar(), None);
        assert!(c.get(0).is_null());
    }
}
