//! Temporal values and parsing.
//!
//! DeepEye detects temporal columns automatically from the attribute values
//! (§II-A of the paper) and bins them by minute, hour, day, week, month,
//! quarter, or year. This module provides a compact timestamp type with the
//! civil-calendar conversions those bins need, plus a permissive parser for
//! the date/time formats that appear in the paper's datasets (for example
//! `01-Jan 00:05` from the flight-delay table).

use std::fmt;

/// Seconds-precision timestamp, stored as seconds relative to the Unix epoch.
///
/// A full datetime library is overkill for binning: all DeepEye needs is to
/// parse common formats and truncate to calendar boundaries. Ordering and
/// arithmetic are those of the underlying second count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Timestamp(i64);

/// A broken-down civil (proleptic Gregorian) datetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Civil {
    pub year: i32,
    /// 1-12
    pub month: u8,
    /// 1-31
    pub day: u8,
    /// 0-23
    pub hour: u8,
    /// 0-59
    pub minute: u8,
    /// 0-59
    pub second: u8,
}

/// Days since 1970-01-01 for a civil date (Howard Hinnant's algorithm).
fn days_from_civil(y: i32, m: u8, d: u8) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let m = i64::from(m);
    let d = i64::from(d);
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Inverse of [`days_from_civil`].
fn civil_from_days(z: i64) -> (i32, u8, u8) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m as u8, d as u8)
}

fn is_leap(y: i32) -> bool {
    (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
}

fn days_in_month(y: i32, m: u8) -> u8 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(y) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

impl Civil {
    /// Validate field ranges, returning `None` on an impossible date.
    pub fn new(year: i32, month: u8, day: u8, hour: u8, minute: u8, second: u8) -> Option<Self> {
        if !(1..=12).contains(&month) || day < 1 || day > days_in_month(year, month) {
            return None;
        }
        if hour > 23 || minute > 59 || second > 59 {
            return None;
        }
        Some(Self {
            year,
            month,
            day,
            hour,
            minute,
            second,
        })
    }

    /// Midnight on the given date.
    pub fn date(year: i32, month: u8, day: u8) -> Option<Self> {
        Self::new(year, month, day, 0, 0, 0)
    }
}

/// Calendar granularities a temporal column may be binned by (§II-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TimeUnit {
    Minute,
    Hour,
    Day,
    Week,
    Month,
    Quarter,
    Year,
}

impl TimeUnit {
    /// All seven units, coarsest last — matches the paper's bin list.
    pub const ALL: [TimeUnit; 7] = [
        TimeUnit::Minute,
        TimeUnit::Hour,
        TimeUnit::Day,
        TimeUnit::Week,
        TimeUnit::Month,
        TimeUnit::Quarter,
        TimeUnit::Year,
    ];

    /// Keyword used by the visualization language (`BIN X BY HOUR`).
    pub fn keyword(self) -> &'static str {
        match self {
            TimeUnit::Minute => "MINUTE",
            TimeUnit::Hour => "HOUR",
            TimeUnit::Day => "DAY",
            TimeUnit::Week => "WEEK",
            TimeUnit::Month => "MONTH",
            TimeUnit::Quarter => "QUARTER",
            TimeUnit::Year => "YEAR",
        }
    }

    /// Parse a (case-insensitive) keyword.
    pub fn from_keyword(s: &str) -> Option<Self> {
        Self::ALL
            .into_iter()
            .find(|u| u.keyword().eq_ignore_ascii_case(s.trim()))
    }
}

impl fmt::Display for TimeUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

impl Timestamp {
    pub const fn from_unix_seconds(secs: i64) -> Self {
        Timestamp(secs)
    }

    pub const fn unix_seconds(self) -> i64 {
        self.0
    }

    /// Build from a civil datetime (interpreted as UTC).
    pub fn from_civil(c: Civil) -> Self {
        let days = days_from_civil(c.year, c.month, c.day);
        Timestamp(
            days * 86_400
                + i64::from(c.hour) * 3_600
                + i64::from(c.minute) * 60
                + i64::from(c.second),
        )
    }

    /// Break into civil fields.
    pub fn civil(self) -> Civil {
        let days = self.0.div_euclid(86_400);
        let secs = self.0.rem_euclid(86_400);
        let (year, month, day) = civil_from_days(days);
        Civil {
            year,
            month,
            day,
            hour: (secs / 3_600) as u8,
            minute: (secs % 3_600 / 60) as u8,
            second: (secs % 60) as u8,
        }
    }

    /// Truncate down to the start of the enclosing `unit` period.
    ///
    /// Weeks start on Monday (ISO-8601); quarters on Jan/Apr/Jul/Oct 1.
    pub fn truncate(self, unit: TimeUnit) -> Timestamp {
        match unit {
            TimeUnit::Minute => Timestamp(self.0.div_euclid(60) * 60),
            TimeUnit::Hour => Timestamp(self.0.div_euclid(3_600) * 3_600),
            TimeUnit::Day => Timestamp(self.0.div_euclid(86_400) * 86_400),
            TimeUnit::Week => {
                let days = self.0.div_euclid(86_400);
                // 1970-01-01 was a Thursday; shift so weeks start on Monday.
                let dow = (days + 3).rem_euclid(7); // 0 = Monday
                Timestamp((days - dow) * 86_400)
            }
            TimeUnit::Month => {
                let c = self.civil();
                Timestamp::from_civil(Civil {
                    day: 1,
                    hour: 0,
                    minute: 0,
                    second: 0,
                    ..c
                })
            }
            TimeUnit::Quarter => {
                let c = self.civil();
                let month = 1 + (c.month - 1) / 3 * 3;
                Timestamp::from_civil(Civil {
                    month,
                    day: 1,
                    hour: 0,
                    minute: 0,
                    second: 0,
                    ..c
                })
            }
            TimeUnit::Year => {
                let c = self.civil();
                Timestamp::from_civil(Civil {
                    month: 1,
                    day: 1,
                    hour: 0,
                    minute: 0,
                    second: 0,
                    ..c
                })
            }
        }
    }

    /// The periodic component of this timestamp for the given unit —
    /// DeepEye's temporal bins put "the rows with the same hour … in the
    /// same bucket" (§II-A / Example 1), and the paper's Table II confirms
    /// the periodic reading (`BIN scheduled BY HOUR` over a year of data
    /// yields `|X'| = 24`):
    ///
    /// - `Minute` → minute of hour (0–59)
    /// - `Hour` → hour of day (0–23)
    /// - `Day` → day of year (1–366)
    /// - `Week` → week of year (1–53)
    /// - `Month` → month of year (1–12)
    /// - `Quarter` → quarter of year (1–4)
    /// - `Year` → the calendar year itself (the one non-periodic unit)
    pub fn period_index(self, unit: TimeUnit) -> i64 {
        let c = self.civil();
        match unit {
            TimeUnit::Minute => i64::from(c.minute),
            TimeUnit::Hour => i64::from(c.hour),
            TimeUnit::Day => self.day_of_year(),
            TimeUnit::Week => (self.day_of_year() - 1) / 7 + 1,
            TimeUnit::Month => i64::from(c.month),
            TimeUnit::Quarter => i64::from((c.month - 1) / 3 + 1),
            TimeUnit::Year => i64::from(c.year),
        }
    }

    /// 1-based day of year.
    fn day_of_year(self) -> i64 {
        let c = self.civil();
        days_from_civil(c.year, c.month, c.day) - days_from_civil(c.year, 1, 1) + 1
    }

    /// Human-readable label for a periodic bin index, e.g. `14:00` for
    /// hour 14 or `Jan` for month 1.
    pub fn period_label(unit: TimeUnit, index: i64) -> String {
        match unit {
            TimeUnit::Minute => format!(":{index:02}"),
            TimeUnit::Hour => format!("{index:02}:00"),
            TimeUnit::Day => format!("day {index}"),
            TimeUnit::Week => format!("week {index}"),
            TimeUnit::Month => MONTH_LABELS
                .get((index - 1).clamp(0, 11) as usize)
                .map(|s| (*s).to_owned())
                .unwrap_or_else(|| format!("month {index}")),
            TimeUnit::Quarter => format!("Q{index}"),
            TimeUnit::Year => format!("{index}"),
        }
    }

    /// Human-readable label for a bin boundary at the given granularity,
    /// e.g. `2015-03` for a month bin or `14:00` for an hour bin (used by
    /// calendar *truncation*, e.g. axis ticks — periodic bins use
    /// [`Timestamp::period_label`]).
    pub fn bin_label(self, unit: TimeUnit) -> String {
        let c = self.civil();
        match unit {
            TimeUnit::Minute => format!(
                "{:04}-{:02}-{:02} {:02}:{:02}",
                c.year, c.month, c.day, c.hour, c.minute
            ),
            TimeUnit::Hour => {
                format!("{:04}-{:02}-{:02} {:02}:00", c.year, c.month, c.day, c.hour)
            }
            TimeUnit::Day | TimeUnit::Week => {
                format!("{:04}-{:02}-{:02}", c.year, c.month, c.day)
            }
            TimeUnit::Month => format!("{:04}-{:02}", c.year, c.month),
            TimeUnit::Quarter => format!("{:04}-Q{}", c.year, (c.month - 1) / 3 + 1),
            TimeUnit::Year => format!("{:04}", c.year),
        }
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = self.civil();
        if (c.hour, c.minute, c.second) == (0, 0, 0) {
            write!(f, "{:04}-{:02}-{:02}", c.year, c.month, c.day)
        } else {
            write!(
                f,
                "{:04}-{:02}-{:02} {:02}:{:02}:{:02}",
                c.year, c.month, c.day, c.hour, c.minute, c.second
            )
        }
    }
}

const MONTH_LABELS: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

const MONTH_NAMES: [&str; 12] = [
    "jan", "feb", "mar", "apr", "may", "jun", "jul", "aug", "sep", "oct", "nov", "dec",
];

fn month_from_name(s: &str) -> Option<u8> {
    let lower = s.to_ascii_lowercase();
    let key = lower.get(..3)?;
    MONTH_NAMES
        .iter()
        .position(|m| *m == key)
        .map(|i| i as u8 + 1)
}

/// Year assumed when a format omits it (e.g. `01-Jan 00:05`). The flight
/// table in the paper covers calendar year 2015.
pub const DEFAULT_YEAR: i32 = 2015;

fn parse_u32(s: &str) -> Option<u32> {
    if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    s.parse().ok()
}

fn parse_hms(s: &str) -> Option<(u8, u8, u8)> {
    let mut it = s.split(':');
    let h = parse_u32(it.next()?)?;
    let m = parse_u32(it.next()?)?;
    let sec = match it.next() {
        Some(x) => parse_u32(x)?,
        None => 0,
    };
    if it.next().is_some() || h > 23 || m > 59 || sec > 59 {
        return None;
    }
    Some((h as u8, m as u8, sec as u8))
}

/// Parse a date-only token. Accepted shapes:
/// `YYYY-MM-DD`, `YYYY/MM/DD`, `MM/DD/YYYY`, `YYYY-MM`, `DD-Mon[-YYYY]`,
/// `Mon-YYYY`, `Mon DD[,] YYYY` handled at the caller via whitespace split.
fn parse_date_token(s: &str) -> Option<Civil> {
    let seps: &[char] = &['-', '/'];
    let parts: Vec<&str> = s.split(seps).collect();
    match parts.as_slice() {
        [a, b, c] => {
            if let (Some(y), Some(m), Some(d)) = (parse_u32(a), parse_u32(b), parse_u32(c)) {
                if a.len() == 4 {
                    return Civil::date(y as i32, m as u8, d as u8);
                }
                // MM/DD/YYYY
                if c.len() == 4 {
                    return Civil::date(d as i32, y as u8, m as u8);
                }
                return None;
            }
            // DD-Mon-YYYY
            if let (Some(d), Some(m), Some(y)) = (parse_u32(a), month_from_name(b), parse_u32(c)) {
                return Civil::date(y as i32, m, d as u8);
            }
            None
        }
        [a, b] => {
            if let (Some(y), Some(m)) = (parse_u32(a), parse_u32(b)) {
                if a.len() == 4 {
                    return Civil::date(y as i32, m as u8, 1);
                }
                return None;
            }
            // DD-Mon (default year) or Mon-YYYY
            if let (Some(d), Some(m)) = (parse_u32(a), month_from_name(b)) {
                return Civil::date(DEFAULT_YEAR, m, d as u8);
            }
            if let (Some(m), Some(y)) = (month_from_name(a), parse_u32(b)) {
                if b.len() == 4 {
                    return Civil::date(y as i32, m, 1);
                }
            }
            None
        }
        _ => None,
    }
}

/// Parse a string as a timestamp, trying the formats common in the paper's
/// datasets. Returns `None` when the string is not temporal.
///
/// Bare 4-digit integers in `[1500, 2100]` are treated as years only by
/// [`parse_timestamp_loose`]; this strict variant rejects them so that
/// numeric columns containing values like `2000` are not misdetected.
pub fn parse_timestamp(s: &str) -> Option<Timestamp> {
    let s = s.trim();
    if s.is_empty() {
        return None;
    }
    // "<date>T<time>" or "<date> <time>".
    let (date_part, time_part) = match s.split_once('T').or_else(|| s.split_once(' ')) {
        Some((d, t)) => (d, Some(t.trim())),
        None => (s, None),
    };
    if let Some(mut c) = parse_date_token(date_part) {
        if let Some(t) = time_part {
            let (h, m, sec) = parse_hms(t)?;
            c.hour = h;
            c.minute = m;
            c.second = sec;
        }
        return Some(Timestamp::from_civil(c));
    }
    // Time-only values like "14:05" (mapped onto the epoch date so that
    // hour/minute binning still works).
    if time_part.is_none() {
        if let Some((h, m, sec)) = parse_hms(s) {
            return Some(Timestamp::from_civil(Civil {
                year: 1970,
                month: 1,
                day: 1,
                hour: h,
                minute: m,
                second: sec,
            }));
        }
    }
    // "Mon DD, YYYY" / "DD Mon YYYY" on the whole string (the date/time
    // split above would have torn these apart at the first space).
    let cleaned = s.replace(',', " ");
    let words: Vec<&str> = cleaned.split_whitespace().collect();
    if words.len() == 3 {
        if let (Some(m), Some(d), Some(y)) = (
            month_from_name(words[0]),
            parse_u32(words[1]),
            parse_u32(words[2]),
        ) {
            return Civil::date(y as i32, m, d as u8).map(Timestamp::from_civil);
        }
        if let (Some(d), Some(m), Some(y)) = (
            parse_u32(words[0]),
            month_from_name(words[1]),
            parse_u32(words[2]),
        ) {
            return Civil::date(y as i32, m, d as u8).map(Timestamp::from_civil);
        }
    }
    None
}

/// Like [`parse_timestamp`] but also accepts bare years (`1999`).
pub fn parse_timestamp_loose(s: &str) -> Option<Timestamp> {
    if let Some(t) = parse_timestamp(s) {
        return Some(t);
    }
    let s = s.trim();
    if s.len() == 4 {
        if let Some(y) = parse_u32(s) {
            if (1500..=2100).contains(&y) {
                return Civil::date(y as i32, 1, 1).map(Timestamp::from_civil);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(y: i32, mo: u8, d: u8, h: u8, mi: u8, s: u8) -> Timestamp {
        Timestamp::from_civil(Civil::new(y, mo, d, h, mi, s).unwrap())
    }

    #[test]
    fn civil_round_trip_epoch() {
        let t = Timestamp::from_unix_seconds(0);
        let c = t.civil();
        assert_eq!((c.year, c.month, c.day), (1970, 1, 1));
        assert_eq!(Timestamp::from_civil(c), t);
    }

    #[test]
    fn civil_round_trip_pre_epoch() {
        let t = ts(1969, 12, 31, 23, 59, 59);
        assert_eq!(t.unix_seconds(), -1);
        let c = t.civil();
        assert_eq!((c.year, c.month, c.day, c.second), (1969, 12, 31, 59));
    }

    #[test]
    fn leap_years_handled() {
        assert!(Civil::date(2016, 2, 29).is_some());
        assert!(Civil::date(2015, 2, 29).is_none());
        assert!(Civil::date(2000, 2, 29).is_some());
        assert!(Civil::date(1900, 2, 29).is_none());
    }

    #[test]
    fn invalid_fields_rejected() {
        assert!(Civil::new(2015, 13, 1, 0, 0, 0).is_none());
        assert!(Civil::new(2015, 0, 1, 0, 0, 0).is_none());
        assert!(Civil::new(2015, 4, 31, 0, 0, 0).is_none());
        assert!(Civil::new(2015, 1, 1, 24, 0, 0).is_none());
    }

    #[test]
    fn parses_paper_flight_format() {
        // "01-Jan 00:05" from Table I, year defaults to 2015.
        let t = parse_timestamp("01-Jan 00:05").unwrap();
        let c = t.civil();
        assert_eq!(
            (c.year, c.month, c.day, c.hour, c.minute),
            (2015, 1, 1, 0, 5)
        );
    }

    #[test]
    fn parses_iso_formats() {
        assert_eq!(
            parse_timestamp("2015-07-04").unwrap(),
            ts(2015, 7, 4, 0, 0, 0)
        );
        assert_eq!(
            parse_timestamp("2015-07-04 13:30:05").unwrap(),
            ts(2015, 7, 4, 13, 30, 5)
        );
        assert_eq!(
            parse_timestamp("2015-07-04T13:30:05").unwrap(),
            ts(2015, 7, 4, 13, 30, 5)
        );
        assert_eq!(parse_timestamp("2015-07").unwrap(), ts(2015, 7, 1, 0, 0, 0));
    }

    #[test]
    fn parses_us_and_name_formats() {
        assert_eq!(
            parse_timestamp("7/4/2015").unwrap(),
            ts(2015, 7, 4, 0, 0, 0)
        );
        assert_eq!(
            parse_timestamp("04-Jul-2015").unwrap(),
            ts(2015, 7, 4, 0, 0, 0)
        );
        assert_eq!(
            parse_timestamp("Jul-2015").unwrap(),
            ts(2015, 7, 1, 0, 0, 0)
        );
        assert_eq!(
            parse_timestamp("Jul 4, 2015").unwrap(),
            ts(2015, 7, 4, 0, 0, 0)
        );
        assert_eq!(
            parse_timestamp("4 Jul 2015").unwrap(),
            ts(2015, 7, 4, 0, 0, 0)
        );
    }

    #[test]
    fn parses_time_only() {
        let t = parse_timestamp("14:05").unwrap();
        let c = t.civil();
        assert_eq!((c.year, c.hour, c.minute), (1970, 14, 5));
    }

    #[test]
    fn strict_rejects_bare_years_loose_accepts() {
        assert!(parse_timestamp("1999").is_none());
        assert_eq!(
            parse_timestamp_loose("1999").unwrap(),
            ts(1999, 1, 1, 0, 0, 0)
        );
        assert!(parse_timestamp_loose("123").is_none());
        assert!(parse_timestamp_loose("2500").is_none());
    }

    #[test]
    fn rejects_non_temporal() {
        for s in [
            "",
            "hello",
            "12.5",
            "-42",
            "2015-13-01",
            "25:00",
            "Foo-2015",
        ] {
            assert!(parse_timestamp(s).is_none(), "should reject {s:?}");
        }
    }

    #[test]
    fn truncation_boundaries() {
        let t = ts(2015, 8, 19, 14, 37, 42);
        assert_eq!(t.truncate(TimeUnit::Minute), ts(2015, 8, 19, 14, 37, 0));
        assert_eq!(t.truncate(TimeUnit::Hour), ts(2015, 8, 19, 14, 0, 0));
        assert_eq!(t.truncate(TimeUnit::Day), ts(2015, 8, 19, 0, 0, 0));
        // 2015-08-19 was a Wednesday; the week starts Monday 2015-08-17.
        assert_eq!(t.truncate(TimeUnit::Week), ts(2015, 8, 17, 0, 0, 0));
        assert_eq!(t.truncate(TimeUnit::Month), ts(2015, 8, 1, 0, 0, 0));
        assert_eq!(t.truncate(TimeUnit::Quarter), ts(2015, 7, 1, 0, 0, 0));
        assert_eq!(t.truncate(TimeUnit::Year), ts(2015, 1, 1, 0, 0, 0));
    }

    #[test]
    fn truncation_is_idempotent_and_monotone() {
        let samples = [
            ts(2015, 1, 1, 0, 0, 0),
            ts(2015, 12, 31, 23, 59, 59),
            ts(1969, 6, 15, 11, 11, 11),
            ts(2000, 2, 29, 5, 0, 0),
        ];
        for unit in TimeUnit::ALL {
            for t in samples {
                let tr = t.truncate(unit);
                assert_eq!(tr.truncate(unit), tr, "{unit} not idempotent");
                assert!(tr <= t, "{unit} truncation must not move forward");
            }
        }
    }

    #[test]
    fn bin_labels() {
        let t = ts(2015, 8, 19, 14, 37, 42);
        assert_eq!(
            t.truncate(TimeUnit::Hour).bin_label(TimeUnit::Hour),
            "2015-08-19 14:00"
        );
        assert_eq!(t.bin_label(TimeUnit::Month), "2015-08");
        assert_eq!(t.bin_label(TimeUnit::Quarter), "2015-Q3");
        assert_eq!(t.bin_label(TimeUnit::Year), "2015");
    }

    #[test]
    fn display_forms() {
        assert_eq!(ts(2015, 7, 4, 0, 0, 0).to_string(), "2015-07-04");
        assert_eq!(ts(2015, 7, 4, 1, 2, 3).to_string(), "2015-07-04 01:02:03");
    }

    #[test]
    fn period_indices_match_paper_semantics() {
        let t = ts(2015, 8, 19, 14, 37, 42);
        assert_eq!(t.period_index(TimeUnit::Minute), 37);
        assert_eq!(t.period_index(TimeUnit::Hour), 14);
        // 2015-08-19 is day 231 of a non-leap year.
        assert_eq!(t.period_index(TimeUnit::Day), 231);
        assert_eq!(t.period_index(TimeUnit::Week), (231 - 1) / 7 + 1);
        assert_eq!(t.period_index(TimeUnit::Month), 8);
        assert_eq!(t.period_index(TimeUnit::Quarter), 3);
        assert_eq!(t.period_index(TimeUnit::Year), 2015);
    }

    #[test]
    fn period_index_ranges() {
        // One year of hourly samples yields exactly 24 distinct hour bins —
        // the |X'| = 24 of the paper's Table II.
        let mut hours = std::collections::HashSet::new();
        let mut days = std::collections::HashSet::new();
        for i in 0..8760 {
            let t = Timestamp::from_unix_seconds(
                Timestamp::from_civil(Civil::date(2015, 1, 1).unwrap()).unix_seconds() + i * 3600,
            );
            hours.insert(t.period_index(TimeUnit::Hour));
            days.insert(t.period_index(TimeUnit::Day));
        }
        assert_eq!(hours.len(), 24);
        assert_eq!(days.len(), 365);
    }

    #[test]
    fn leap_year_day_index() {
        let t = ts(2016, 12, 31, 0, 0, 0);
        assert_eq!(t.period_index(TimeUnit::Day), 366);
    }

    #[test]
    fn period_labels() {
        assert_eq!(Timestamp::period_label(TimeUnit::Hour, 14), "14:00");
        assert_eq!(Timestamp::period_label(TimeUnit::Month, 1), "Jan");
        assert_eq!(Timestamp::period_label(TimeUnit::Quarter, 3), "Q3");
        assert_eq!(Timestamp::period_label(TimeUnit::Minute, 5), ":05");
        assert_eq!(Timestamp::period_label(TimeUnit::Year, 2015), "2015");
        assert_eq!(Timestamp::period_label(TimeUnit::Week, 33), "week 33");
    }

    #[test]
    fn timeunit_keywords_round_trip() {
        for u in TimeUnit::ALL {
            assert_eq!(TimeUnit::from_keyword(u.keyword()), Some(u));
            assert_eq!(TimeUnit::from_keyword(&u.keyword().to_lowercase()), Some(u));
        }
        assert_eq!(TimeUnit::from_keyword("fortnight"), None);
    }
}
