//! Automatic data-type detection.
//!
//! The paper states that a column's type (categorical / numerical /
//! temporal) "can be automatically detected based on the attribute values"
//! (§II-A). This module implements that detection for raw string cells, as
//! produced by the CSV reader.

use crate::column::ColumnData;
use crate::temporal::{parse_timestamp, parse_timestamp_loose, Timestamp};
use crate::value::DataType;

/// Fraction of non-empty cells that must parse as a type for the column to
/// be detected as that type. Tolerates a small amount of dirty data.
const DETECT_THRESHOLD: f64 = 0.95;

fn parse_number(s: &str) -> Option<f64> {
    let t = s.trim().replace(',', "");
    // Strip a leading currency symbol or trailing percent sign.
    let t = t.strip_prefix('$').unwrap_or(&t);
    let (t, pct) = match t.strip_suffix('%') {
        Some(u) => (u, true),
        None => (t, false),
    };
    let x: f64 = t.trim().parse().ok()?;
    if x.is_finite() {
        Some(if pct { x / 100.0 } else { x })
    } else {
        None
    }
}

fn is_missing(s: &str) -> bool {
    let t = s.trim();
    t.is_empty()
        || t.eq_ignore_ascii_case("na")
        || t.eq_ignore_ascii_case("n/a")
        || t.eq_ignore_ascii_case("null")
        || t == "-"
}

/// Detect the semantic type of a column of raw string cells.
///
/// Priority is temporal, then numerical, then categorical: temporal formats
/// like `2015-07-04` would otherwise partially parse as numbers, and bare
/// years are only treated as temporal when *every* value looks like a year
/// (via [`parse_timestamp_loose`]) and not all values parse as plain
/// numbers in a wider range.
pub fn detect_type(raw: &[String]) -> DataType {
    let non_missing: Vec<&str> = raw
        .iter()
        .map(String::as_str)
        .filter(|s| !is_missing(s))
        .collect();
    if non_missing.is_empty() {
        return DataType::Categorical;
    }
    let n = non_missing.len() as f64;
    let temporal_strict = non_missing
        .iter()
        .filter(|s| parse_timestamp(s).is_some())
        .count();
    if temporal_strict as f64 / n >= DETECT_THRESHOLD {
        return DataType::Temporal;
    }
    // All-bare-year columns (e.g. "1990", "1991", …) read better as
    // temporal, so check loose-temporal before falling back to numeric.
    let temporal_loose = non_missing
        .iter()
        .filter(|s| parse_timestamp_loose(s).is_some())
        .count();
    if temporal_loose == non_missing.len() {
        return DataType::Temporal;
    }
    let numeric = non_missing
        .iter()
        .filter(|s| parse_number(s).is_some())
        .count();
    if numeric as f64 / n >= DETECT_THRESHOLD {
        return DataType::Numerical;
    }
    DataType::Categorical
}

/// Convert raw string cells into typed storage for the detected type.
/// Cells that fail to parse become nulls.
pub fn parse_column(raw: &[String], ty: DataType) -> ColumnData {
    match ty {
        DataType::Numerical => ColumnData::Numeric(
            raw.iter()
                .map(|s| if is_missing(s) { None } else { parse_number(s) })
                .collect(),
        ),
        DataType::Temporal => {
            let strict: Vec<Option<Timestamp>> = raw
                .iter()
                .map(|s| {
                    if is_missing(s) {
                        None
                    } else {
                        parse_timestamp(s)
                    }
                })
                .collect();
            if strict.iter().any(Option::is_some) {
                ColumnData::Temporal(strict)
            } else {
                ColumnData::Temporal(
                    raw.iter()
                        .map(|s| {
                            if is_missing(s) {
                                None
                            } else {
                                parse_timestamp_loose(s)
                            }
                        })
                        .collect(),
                )
            }
        }
        DataType::Categorical => ColumnData::Text(
            raw.iter()
                .map(|s| {
                    if is_missing(s) {
                        None
                    } else {
                        Some(s.trim().to_owned())
                    }
                })
                .collect(),
        ),
    }
}

/// Detect and parse in one step.
pub fn detect_and_parse(raw: &[String]) -> (DataType, ColumnData) {
    let ty = detect_type(raw);
    (ty, parse_column(raw, ty))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn detects_numeric() {
        assert_eq!(
            detect_type(&v(&["1", "2.5", "-3", "4e2"])),
            DataType::Numerical
        );
        assert_eq!(
            detect_type(&v(&["$1,200", "15%", "3"])),
            DataType::Numerical
        );
    }

    #[test]
    fn detects_temporal() {
        assert_eq!(
            detect_type(&v(&["2015-01-01", "2015-02-01", "2015-03-01"])),
            DataType::Temporal
        );
        assert_eq!(
            detect_type(&v(&["01-Jan 00:05", "01-Jan 04:00"])),
            DataType::Temporal
        );
    }

    #[test]
    fn bare_year_columns_are_temporal() {
        assert_eq!(
            detect_type(&v(&["1990", "1991", "1992"])),
            DataType::Temporal
        );
        // Mixed magnitudes are plain numbers.
        assert_eq!(
            detect_type(&v(&["1990", "12", "1992"])),
            DataType::Numerical
        );
    }

    #[test]
    fn detects_categorical() {
        assert_eq!(detect_type(&v(&["UA", "AA", "MQ"])), DataType::Categorical);
        assert_eq!(
            detect_type(&v(&["yes", "no", "yes"])),
            DataType::Categorical
        );
        // Mostly text with a few numbers stays categorical.
        assert_eq!(
            detect_type(&v(&["a", "b", "c", "1"])),
            DataType::Categorical
        );
    }

    #[test]
    fn tolerates_missing_and_dirty_cells() {
        let raw = v(&[
            "1", "2", "", "NA", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "14",
            "15", "16", "17", "18", "19", "oops",
        ]);
        // 20/21 non-missing parse as numbers (>95%).
        assert_eq!(detect_type(&raw), DataType::Numerical);
        let parsed = parse_column(&raw, DataType::Numerical);
        match parsed {
            ColumnData::Numeric(vals) => {
                assert_eq!(vals[2], None);
                assert_eq!(vals[3], None);
                assert_eq!(vals[21], None);
                assert_eq!(vals[0], Some(1.0));
            }
            _ => panic!("expected numeric"),
        }
    }

    #[test]
    fn empty_column_is_categorical() {
        assert_eq!(detect_type(&v(&[])), DataType::Categorical);
        assert_eq!(detect_type(&v(&["", "NA"])), DataType::Categorical);
    }

    #[test]
    fn parse_respects_type() {
        let raw = v(&["2015-01-01", "bogus"]);
        let (ty, data) = detect_and_parse(&raw);
        // 1/2 temporal misses the threshold, so categorical wins.
        assert_eq!(ty, DataType::Categorical);
        assert_eq!(data.data_type(), DataType::Categorical);
    }

    #[test]
    fn percent_and_currency_values() {
        assert_eq!(parse_number("15%"), Some(0.15));
        assert_eq!(parse_number("$1,234.5"), Some(1234.5));
        assert_eq!(parse_number("abc"), None);
        assert_eq!(parse_number("inf"), None);
    }
}
