//! Property-based tests for the core ranking machinery.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use deepeye_core::{compute_factors, DominanceGraph, Factors, HybridRanker};
use proptest::prelude::*;

fn factor_strategy() -> impl Strategy<Value = Factors> {
    (0.0f64..=1.0, 0.0f64..=1.0, 0.0f64..=1.0).prop_map(|(m, q, w)| Factors { m, q, w })
}

fn factors_vec(max: usize) -> impl Strategy<Value = Vec<Factors>> {
    proptest::collection::vec(factor_strategy(), 0..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dominance is a partial order: reflexive (⪰), antisymmetric on ≻,
    /// transitive — for ⪰ on every generated triple, for ≻ whenever it
    /// holds pairwise.
    #[test]
    fn dominance_axioms(a in factor_strategy(), b in factor_strategy(), c in factor_strategy()) {
        prop_assert!(a.dominates(&a));
        prop_assert!(!a.strictly_dominates(&a));
        prop_assert!(!(a.strictly_dominates(&b) && b.strictly_dominates(&a)));
        if a.dominates(&b) && b.dominates(&c) {
            prop_assert!(a.dominates(&c));
        }
        if a.strictly_dominates(&b) && b.strictly_dominates(&c) {
            prop_assert!(a.strictly_dominates(&c));
        }
    }

    /// Eq. 9 edge weights are positive on strict dominance and bounded by 1.
    #[test]
    fn edge_weight_bounds(a in factor_strategy(), b in factor_strategy()) {
        if a.strictly_dominates(&b) {
            let w = a.edge_weight(&b);
            prop_assert!(w > 0.0 && w <= 1.0, "w={w}");
        }
    }

    /// Eq. 9 is antisymmetric as a function of its endpoints —
    /// `w(a, b) == -w(b, a)` exactly (the factor differences negate
    /// term-by-term, so no epsilon is needed) — and zero on the diagonal.
    #[test]
    fn edge_weight_antisymmetric(a in factor_strategy(), b in factor_strategy()) {
        prop_assert_eq!(a.edge_weight(&b), -b.edge_weight(&a));
        prop_assert_eq!(a.edge_weight(&a), 0.0);
    }

    /// Pruned and naive graph construction agree exactly on edges and
    /// on the final ranking.
    #[test]
    fn pruned_equals_naive(factors in factors_vec(60)) {
        let naive = DominanceGraph::build_naive(&factors);
        let pruned = DominanceGraph::build_pruned(&factors);
        prop_assert_eq!(naive.edge_count(), pruned.edge_count());
        for u in 0..factors.len() {
            for v in 0..factors.len() {
                prop_assert_eq!(naive.has_edge(u, v), pruned.has_edge(u, v));
            }
        }
        prop_assert_eq!(naive.ranking(), pruned.ranking());
    }

    /// The strict-dominance graph is acyclic: scores terminate and every
    /// node gets a finite log-score or -inf.
    #[test]
    fn graph_scores_terminate(factors in factors_vec(60)) {
        let g = DominanceGraph::build_pruned(&factors);
        let scores = g.log_scores();
        prop_assert_eq!(scores.len(), factors.len());
        for s in scores {
            prop_assert!(s == f64::NEG_INFINITY || s.is_finite());
        }
    }

    /// top_k output is a prefix of the full ranking, which is a
    /// permutation.
    #[test]
    fn topk_is_ranking_prefix((factors, k) in (factors_vec(40), 0usize..50)) {
        let g = DominanceGraph::build_pruned(&factors);
        let full = g.ranking();
        let mut sorted = full.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..factors.len()).collect::<Vec<_>>());
        let top = g.top_k(k);
        prop_assert_eq!(top.as_slice(), &full[..k.min(factors.len())]);
    }

    /// A node that strictly dominates another never ranks below it.
    #[test]
    fn dominance_respected_in_ranking(factors in factors_vec(30)) {
        let g = DominanceGraph::build_pruned(&factors);
        let ranking = g.ranking();
        let pos = |i: usize| ranking.iter().position(|&x| x == i).unwrap();
        for u in 0..factors.len() {
            for v in 0..factors.len() {
                if u != v && factors[u].strictly_dominates(&factors[v]) {
                    prop_assert!(
                        pos(u) < pos(v),
                        "dominating node {u} ranked below {v}"
                    );
                }
            }
        }
    }

    /// Hybrid combine is a permutation and matches the extremes: pure LTR
    /// at α=0, pure partial order as α→∞.
    #[test]
    fn hybrid_combine_laws(n in 1usize..30, seed in 0u64..1000) {
        // Two deterministic pseudo-random permutations of 0..n.
        let perm = |s: u64| {
            let mut v: Vec<usize> = (0..n).collect();
            let mut state = s.wrapping_mul(0x9e3779b97f4a7c15) | 1;
            for i in (1..n).rev() {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                v.swap(i, (state as usize) % (i + 1));
            }
            v
        };
        let ltr = perm(seed);
        let po = perm(seed ^ 0xabcdef);
        let combined = HybridRanker::new(1.0).combine(&ltr, &po);
        let mut sorted = combined.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        prop_assert_eq!(HybridRanker::new(0.0).combine(&ltr, &po), ltr.clone());
        prop_assert_eq!(HybridRanker::new(1e9).combine(&ltr, &po), po.clone());
    }
}

/// compute_factors on a real node set always yields normalized triples.
#[test]
fn compute_factors_normalized_on_real_nodes() {
    let table = deepeye_data::TableBuilder::new("t")
        .text("cat", ["a", "b", "c", "a", "b", "c", "a", "b"])
        .numeric("v", [1.0, 5.0, 2.0, 4.0, 3.0, 8.0, 2.0, 6.0])
        .numeric("w", [2.0, 10.0, 4.0, 8.0, 6.0, 16.0, 4.0, 12.0])
        .build()
        .unwrap();
    let nodes = deepeye_core::DeepEye::with_defaults().candidates(&table);
    assert!(!nodes.is_empty());
    let factors = compute_factors(&nodes);
    for f in &factors {
        assert!((0.0..=1.0).contains(&f.m));
        assert!((0.0..=1.0).contains(&f.q));
        assert!((0.0..=1.0).contains(&f.w));
    }
    // Normalization attains 1 somewhere for W.
    assert!(factors.iter().any(|f| (f.w - 1.0).abs() < 1e-9));
}
