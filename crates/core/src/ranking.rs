//! The three ranking methods DeepEye compares (§III, §IV): partial order,
//! learning-to-rank (LambdaMART over the 14-feature vectors), and the
//! hybrid combination of §IV-D.

use crate::graph::partial_order_log_scores;
use crate::node::VisNode;
use crate::partial_order::compute_factors;
use deepeye_ml::{LambdaMart, LambdaMartParams, QueryGroup};

/// Rank a set of valid nodes with the partial-order scores (Algorithm 1).
/// Returns node indices best-first. Uses the explicit dominance graph for
/// small sets and the O(n)-memory streaming scorer for large ones — the
/// induced ranking is the same (ties break by factor sum, then index,
/// exactly like [`crate::graph::DominanceGraph::top_k`]).
pub fn rank_by_partial_order(nodes: &[VisNode]) -> Vec<usize> {
    let factors = compute_factors(nodes);
    let scores = partial_order_log_scores(&factors);
    let mut order: Vec<usize> = (0..nodes.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .total_cmp(&scores[a])
            .then_with(|| {
                let (fa, fb) = (factors[a], factors[b]);
                (fb.m + fb.q + fb.w).total_cmp(&(fa.m + fa.q + fa.w))
            })
            .then(a.cmp(&b))
    });
    order
}

/// [`rank_by_partial_order`] under a `rank.partial_order` span.
pub fn rank_by_partial_order_observed(
    nodes: &[VisNode],
    obs: &deepeye_obs::Observer,
) -> Vec<usize> {
    let _span = obs.span("rank.partial_order");
    rank_by_partial_order(nodes)
}

/// A trained learning-to-rank model over visualization nodes.
#[derive(Debug, Clone)]
pub struct LtrRanker {
    model: LambdaMart,
}

/// One training "query" for the ranker: a dataset's candidate nodes with
/// graded relevance (higher = better, e.g. from merged human comparisons).
#[derive(Debug, Clone)]
pub struct RankingExample {
    pub features: Vec<Vec<f64>>,
    pub relevance: Vec<f64>,
}

impl LtrRanker {
    /// Train LambdaMART on per-dataset ranking examples.
    pub fn train(examples: &[RankingExample], params: LambdaMartParams) -> Self {
        let groups: Vec<QueryGroup> = examples
            .iter()
            .map(|e| QueryGroup::new(e.features.clone(), e.relevance.clone()))
            .collect();
        LtrRanker {
            model: LambdaMart::train(&groups, params),
        }
    }

    pub fn fit(examples: &[RankingExample]) -> Self {
        Self::train(examples, LambdaMartParams::default())
    }

    /// Ranking score of a node (higher = better).
    pub fn score(&self, node: &VisNode) -> f64 {
        self.model.score(&node.feature_vector())
    }

    /// Ranking score of a raw feature vector (e.g. the paper-faithful
    /// original-column features of [`crate::features::pair_feature_vector`]).
    pub fn score_features(&self, features: &[f64]) -> f64 {
        self.model.score(features)
    }

    /// Rank nodes best-first.
    pub fn rank(&self, nodes: &[VisNode]) -> Vec<usize> {
        let scores: Vec<f64> = nodes.iter().map(|n| self.score(n)).collect();
        let mut order: Vec<usize> = (0..nodes.len()).collect();
        order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
        order
    }

    /// [`LtrRanker::rank`] under a `rank.ltr` span.
    pub fn rank_observed(&self, nodes: &[VisNode], obs: &deepeye_obs::Observer) -> Vec<usize> {
        let _span = obs.span("rank.ltr");
        self.rank(nodes)
    }

    /// Rank arbitrary feature vectors best-first. Exact score ties (e.g.
    /// transform variants of one combo under transform-blind features) are
    /// broken by a deterministic hash of the index — an *uninformed*
    /// shuffle — rather than input order, so the ranker is not silently
    /// credited with the candidate generator's ordering heuristics.
    pub fn rank_features(&self, features: &[Vec<f64>]) -> Vec<usize> {
        let scores: Vec<f64> = features.iter().map(|f| self.score_features(f)).collect();
        let tie_key = |i: usize| (i as u64).wrapping_mul(0x9e3779b97f4a7c15).rotate_left(17);
        let mut order: Vec<usize> = (0..features.len()).collect();
        order.sort_by(|&a, &b| {
            scores[b]
                .total_cmp(&scores[a])
                .then_with(|| tie_key(a).cmp(&tie_key(b)))
        });
        order
    }
}

impl LtrRanker {
    /// Serialize the trained ranker.
    pub fn to_text(&self) -> String {
        self.model.to_text()
    }

    /// Decode a ranker saved by [`LtrRanker::to_text`].
    pub fn from_text(text: &str) -> Result<Self, deepeye_ml::PersistError> {
        Ok(LtrRanker {
            model: LambdaMart::from_text(text)?,
        })
    }
}

/// HybridRank (§IV-D): combine the two rankings by position. A node at
/// position `l_v` under learning-to-rank and `p_v` under the partial order
/// gets combined score `l_v + α·p_v` (lower is better).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridRanker {
    /// Preference weight α of the partial order relative to LTR.
    pub alpha: f64,
}

impl Default for HybridRanker {
    fn default() -> Self {
        HybridRanker { alpha: 1.0 }
    }
}

impl HybridRanker {
    pub fn new(alpha: f64) -> Self {
        HybridRanker { alpha }
    }

    /// The §IV-D combined score for a node at position `l_pos` under LTR
    /// and `p_pos` under the partial order: `l_v + α·p_v`, lower is
    /// better. Provenance records recompute exactly this expression, so
    /// the exported hybrid parts reconcile with the ranking by
    /// construction.
    pub fn combined_score(&self, l_pos: usize, p_pos: usize) -> f64 {
        l_pos as f64 + self.alpha * p_pos as f64
    }

    /// Combine two rankings (each a best-first list of node indices over
    /// the same node set) into a hybrid best-first list.
    pub fn combine(&self, ltr_order: &[usize], po_order: &[usize]) -> Vec<usize> {
        let n = ltr_order.len();
        debug_assert_eq!(n, po_order.len(), "rankings must cover the same nodes");
        let mut l_pos = vec![0usize; n];
        let mut p_pos = vec![0usize; n];
        for (pos, &node) in ltr_order.iter().enumerate() {
            l_pos[node] = pos;
        }
        for (pos, &node) in po_order.iter().enumerate() {
            p_pos[node] = pos;
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            let sa = self.combined_score(l_pos[a], p_pos[a]);
            let sb = self.combined_score(l_pos[b], p_pos[b]);
            sa.total_cmp(&sb).then(a.cmp(&b))
        });
        order
    }

    /// Rank nodes with both methods and combine.
    pub fn rank(&self, ltr: &LtrRanker, nodes: &[VisNode]) -> Vec<usize> {
        let ltr_order = ltr.rank(nodes);
        let po_order = rank_by_partial_order(nodes);
        self.combine(&ltr_order, &po_order)
    }

    /// [`HybridRanker::rank`] under a `rank.hybrid` span, with the two
    /// component rankings as observed child spans.
    pub fn rank_observed(
        &self,
        ltr: &LtrRanker,
        nodes: &[VisNode],
        obs: &deepeye_obs::Observer,
    ) -> Vec<usize> {
        let _span = obs.span("rank.hybrid");
        let ltr_order = ltr.rank_observed(nodes, obs);
        let po_order = rank_by_partial_order_observed(nodes, obs);
        self.combine(&ltr_order, &po_order)
    }

    /// Learn α from labeled data (§IV-D: "the preference weight … can be
    /// learned by some labelled data"): grid-search the α that maximizes
    /// mean NDCG of the combined ranking over validation groups, where each
    /// group provides both rankings and gold relevance grades per node.
    pub fn learn_alpha(
        groups: &[(Vec<usize>, Vec<usize>, Vec<f64>)], // (ltr order, po order, relevance by node)
    ) -> Self {
        const GRID: [f64; 9] = [0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0, 8.0];
        let mut best = (f64::NEG_INFINITY, 1.0);
        for &alpha in &GRID {
            let ranker = HybridRanker::new(alpha);
            let mut total = 0.0;
            for (ltr_order, po_order, relevance) in groups {
                let combined = ranker.combine(ltr_order, po_order);
                let ranked_rel: Vec<f64> = combined.iter().map(|&i| relevance[i]).collect();
                total += deepeye_ml::ndcg(&ranked_rel);
            }
            let mean = if groups.is_empty() {
                0.0
            } else {
                total / groups.len() as f64
            };
            if mean > best.0 {
                best = (mean, alpha);
            }
        }
        HybridRanker::new(best.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepeye_data::{Table, TableBuilder};
    use deepeye_query::{Aggregate, ChartType, SortOrder, Transform, UdfRegistry, VisQuery};

    fn table() -> Table {
        TableBuilder::new("t")
            .text("carrier", ["UA", "AA", "UA", "MQ", "OO", "AA", "UA", "MQ"])
            .numeric("delay", [5.0, 3.0, -1.0, 2.0, -9.0, 4.0, 1.0, 7.0])
            .numeric(
                "passengers",
                [10.0, 30.0, 20.0, 25.0, 40.0, 35.0, 15.0, 22.0],
            )
            .build()
            .unwrap()
    }

    fn nodes() -> Vec<VisNode> {
        let t = table();
        let mk = |chart, y: &str, agg| {
            VisNode::build(
                &t,
                VisQuery {
                    chart,
                    x: "carrier".into(),
                    y: Some(y.into()),
                    transform: Transform::Group,
                    aggregate: agg,
                    order: SortOrder::None,
                },
                &UdfRegistry::default(),
            )
            .unwrap()
        };
        vec![
            mk(ChartType::Bar, "passengers", Aggregate::Avg),
            mk(ChartType::Pie, "passengers", Aggregate::Sum),
            mk(ChartType::Pie, "delay", Aggregate::Sum), // negative slices: bad
            mk(ChartType::Bar, "delay", Aggregate::Avg),
        ]
    }

    #[test]
    fn partial_order_ranking_is_permutation() {
        let ns = nodes();
        let order = rank_by_partial_order(&ns);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..ns.len()).collect::<Vec<_>>());
    }

    #[test]
    fn partial_order_puts_negative_pie_last_among_pies() {
        let ns = nodes();
        let order = rank_by_partial_order(&ns);
        let pos = |i: usize| order.iter().position(|&x| x == i).unwrap();
        assert!(pos(1) < pos(2), "SUM pie should outrank negative-slice pie");
    }

    #[test]
    fn ltr_learns_simple_preference() {
        let ns = nodes();
        // Teach the ranker that bar charts (chart code 0) are best.
        let features: Vec<Vec<f64>> = ns.iter().map(VisNode::feature_vector).collect();
        let relevance: Vec<f64> = ns
            .iter()
            .map(|n| {
                if n.chart_type() == ChartType::Bar {
                    2.0
                } else {
                    0.0
                }
            })
            .collect();
        let examples = vec![
            RankingExample {
                features,
                relevance
            };
            3
        ];
        let ranker = LtrRanker::fit(&examples);
        let order = ranker.rank(&ns);
        assert_eq!(ns[order[0]].chart_type(), ChartType::Bar);
        assert_eq!(ns[order[1]].chart_type(), ChartType::Bar);
    }

    #[test]
    fn hybrid_with_zero_alpha_is_ltr() {
        let ltr = vec![2usize, 0, 3, 1];
        let po = vec![1usize, 3, 0, 2];
        let h = HybridRanker::new(0.0);
        assert_eq!(h.combine(&ltr, &po), ltr);
    }

    #[test]
    fn hybrid_with_large_alpha_follows_partial_order() {
        let ltr = vec![2usize, 0, 3, 1];
        let po = vec![1usize, 3, 0, 2];
        let h = HybridRanker::new(1e6);
        assert_eq!(h.combine(&ltr, &po), po);
    }

    #[test]
    fn hybrid_combines_positions() {
        // Node 0: positions (0, 2) → 0 + 2α; node 1: (1, 0) → 1.
        let ltr = vec![0usize, 1, 2];
        let po = vec![1usize, 2, 0];
        let h = HybridRanker::new(1.0);
        // Scores: n0 = 0+2 = 2, n1 = 1+0 = 1, n2 = 2+1 = 3.
        assert_eq!(h.combine(&ltr, &po), vec![1, 0, 2]);
    }

    #[test]
    fn learn_alpha_prefers_the_better_signal() {
        // Gold relevance agrees with the PO order, LTR is scrambled:
        // learning should pick a large α.
        let po = vec![0usize, 1, 2, 3];
        let ltr = vec![3usize, 2, 1, 0];
        let relevance = vec![3.0, 2.0, 1.0, 0.0];
        let groups = vec![(ltr, po, relevance)];
        let learned = HybridRanker::learn_alpha(&groups);
        // α ≥ 1 lets the partial order dominate (at α = 1 the scores tie
        // and the deterministic tie-break already restores gold order).
        assert!(learned.alpha >= 1.0, "alpha={}", learned.alpha);
        // And the reverse.
        let po = vec![3usize, 2, 1, 0];
        let ltr = vec![0usize, 1, 2, 3];
        let relevance = vec![3.0, 2.0, 1.0, 0.0];
        let learned = HybridRanker::learn_alpha(&[(ltr, po, relevance)]);
        assert_eq!(learned.alpha, 0.0);
    }

    #[test]
    fn learn_alpha_empty_is_default_scale() {
        let learned = HybridRanker::learn_alpha(&[]);
        assert!(learned.alpha.is_finite());
    }
}
