//! Deviation-based interestingness — the SeeDB-style baseline the paper
//! contrasts itself with (§I: "a chart that is dramatically different from
//! the other charts"; §VII).
//!
//! SeeDB scores a grouped view by how far its distribution deviates from a
//! reference — usually the same view computed over the whole table vs a
//! subset, or against a uniform reference. Here a chart's keyed series is
//! normalized to a probability vector and compared against either the
//! uniform distribution or a caller-supplied reference chart, with the
//! standard distance choices (EMD over sorted keys, KL divergence, L1).

use crate::node::VisNode;
use deepeye_query::Series;

/// Distance used to compare two distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviationMetric {
    /// Earth mover's distance over the (ordered) key positions.
    EarthMover,
    /// KL(view ‖ reference), with additive smoothing.
    KullbackLeibler,
    /// Total variation (half L1).
    TotalVariation,
}

/// Normalize a keyed series into a probability vector over its y-mass
/// (negative values clamped to 0). `None` when the chart has no mass.
fn distribution(node: &VisNode) -> Option<Vec<f64>> {
    let ys: Vec<f64> = match &node.data.series {
        Series::Keyed(pairs) => pairs.iter().map(|(_, y)| y.max(0.0)).collect(),
        Series::Points(_) => return None, // raw scatters have no grouped mass
    };
    let total: f64 = ys.iter().sum();
    if total <= 0.0 || ys.is_empty() {
        return None;
    }
    Some(ys.iter().map(|y| y / total).collect())
}

/// Distance between two probability vectors (padded to equal length with
/// zero mass).
pub fn distance(p: &[f64], q: &[f64], metric: DeviationMetric) -> f64 {
    let n = p.len().max(q.len());
    let get = |v: &[f64], i: usize| v.get(i).copied().unwrap_or(0.0);
    match metric {
        DeviationMetric::TotalVariation => {
            0.5 * (0..n).map(|i| (get(p, i) - get(q, i)).abs()).sum::<f64>()
        }
        DeviationMetric::KullbackLeibler => {
            const EPS: f64 = 1e-9;
            (0..n)
                .map(|i| {
                    let a = get(p, i) + EPS;
                    let b = get(q, i) + EPS;
                    a * (a / b).ln()
                })
                .sum::<f64>()
                .max(0.0)
        }
        DeviationMetric::EarthMover => {
            // 1D EMD = sum of |CDF differences|, normalized by length so
            // the score stays comparable across cardinalities.
            let mut cum = 0.0;
            let mut total = 0.0;
            for i in 0..n {
                cum += get(p, i) - get(q, i);
                total += cum.abs();
            }
            total / n.max(1) as f64
        }
    }
}

/// Deviation of a chart from the uniform distribution over its keys
/// (SeeDB's "no reference" mode): 0 means perfectly flat (boring under the
/// deviation lens), larger means more skew.
pub fn deviation_from_uniform(node: &VisNode, metric: DeviationMetric) -> Option<f64> {
    let p = distribution(node)?;
    let q = vec![1.0 / p.len() as f64; p.len()];
    Some(distance(&p, &q, metric))
}

/// Deviation between two charts of the same shape (e.g. the same view over
/// a subset vs the full table — SeeDB's headline query). `None` when either
/// side lacks grouped mass.
pub fn deviation_between(
    view: &VisNode,
    reference: &VisNode,
    metric: DeviationMetric,
) -> Option<f64> {
    Some(distance(
        &distribution(view)?,
        &distribution(reference)?,
        metric,
    ))
}

/// Rank nodes by uniform-deviation, best (most deviating) first — the
/// SeeDB-style ranker used as a comparison point in the ablation harness.
/// Charts with no grouped mass sink to the end.
pub fn rank_by_deviation(nodes: &[VisNode], metric: DeviationMetric) -> Vec<usize> {
    let scores: Vec<f64> = nodes
        .iter()
        .map(|n| deviation_from_uniform(n, metric).unwrap_or(f64::NEG_INFINITY))
        .collect();
    let mut order: Vec<usize> = (0..nodes.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepeye_data::TableBuilder;
    use deepeye_query::{Aggregate, ChartType, SortOrder, Transform, UdfRegistry, VisQuery};

    fn node(values: &[f64]) -> VisNode {
        let n = values.len();
        let t = TableBuilder::new("t")
            .text("cat", (0..n).map(|i| format!("c{i}")))
            .numeric("v", values.iter().copied())
            .build()
            .unwrap();
        VisNode::build(
            &t,
            VisQuery {
                chart: ChartType::Bar,
                x: "cat".into(),
                y: Some("v".into()),
                transform: Transform::Group,
                aggregate: Aggregate::Sum,
                order: SortOrder::None,
            },
            &UdfRegistry::default(),
        )
        .unwrap()
    }

    #[test]
    fn uniform_chart_has_zero_deviation() {
        let flat = node(&[5.0, 5.0, 5.0, 5.0]);
        for metric in [
            DeviationMetric::TotalVariation,
            DeviationMetric::EarthMover,
            DeviationMetric::KullbackLeibler,
        ] {
            let d = deviation_from_uniform(&flat, metric).unwrap();
            assert!(d.abs() < 1e-6, "{metric:?}: {d}");
        }
    }

    #[test]
    fn skew_increases_deviation() {
        let mild = node(&[6.0, 5.0, 5.0, 4.0]);
        let extreme = node(&[17.0, 1.0, 1.0, 1.0]);
        for metric in [
            DeviationMetric::TotalVariation,
            DeviationMetric::EarthMover,
            DeviationMetric::KullbackLeibler,
        ] {
            let dm = deviation_from_uniform(&mild, metric).unwrap();
            let de = deviation_from_uniform(&extreme, metric).unwrap();
            assert!(de > dm, "{metric:?}: {de} vs {dm}");
        }
    }

    #[test]
    fn deviation_between_views() {
        let a = node(&[10.0, 0.0, 0.0]);
        let b = node(&[0.0, 0.0, 10.0]);
        let same = deviation_between(&a, &a, DeviationMetric::TotalVariation).unwrap();
        let diff = deviation_between(&a, &b, DeviationMetric::TotalVariation).unwrap();
        assert!(same.abs() < 1e-12);
        assert!(
            (diff - 1.0).abs() < 1e-9,
            "disjoint mass: TV = 1, got {diff}"
        );
        // EMD sees how *far* mass moved, not just that it moved.
        let near = node(&[0.0, 10.0, 0.0]);
        let emd_near = deviation_between(&a, &near, DeviationMetric::EarthMover).unwrap();
        let emd_far = deviation_between(&a, &b, DeviationMetric::EarthMover).unwrap();
        assert!(emd_far > emd_near);
    }

    #[test]
    fn ranking_puts_skewed_first() {
        let nodes = vec![
            node(&[5.0, 5.0, 5.0]),
            node(&[13.0, 1.0, 1.0]),
            node(&[7.0, 5.0, 3.0]),
        ];
        let order = rank_by_deviation(&nodes, DeviationMetric::TotalVariation);
        assert_eq!(order[0], 1);
        assert_eq!(order[2], 0);
    }

    #[test]
    fn kl_is_nonnegative_and_finite() {
        let a = node(&[1.0, 0.0, 0.0]);
        let b = node(&[0.0, 0.0, 1.0]);
        let d = deviation_between(&a, &b, DeviationMetric::KullbackLeibler).unwrap();
        assert!(d.is_finite() && d > 0.0);
    }

    #[test]
    fn distance_handles_unequal_lengths() {
        let d = distance(&[0.5, 0.5], &[1.0], DeviationMetric::TotalVariation);
        assert!((d - 0.5).abs() < 1e-12);
    }
}
